#!/usr/bin/env python
"""Docs gate: links and quoted CLI commands must not rot.

Two checks over ``README.md`` + ``docs/*.md``:

1. **Link check** — every relative markdown link target and every
   backticked repo path (``src/...``, ``tests/...``, ``benchmarks/...``,
   ``docs/...``, ``examples/...``, ``tools/...``,
   ``.github/workflows/...``) must exist in the working tree.  External
   URLs are not fetched.
2. **CLI check** — every ``python -m repro ...`` invocation quoted in a
   fenced code block must parse against the real argparse surface
   (``repro.cli._build_parser``), so command examples cannot drift from
   ``--help``.  Placeholders like ``<campaign_key>`` are substituted
   with dummies first; ``python -m pytest <path>`` lines are checked for
   path existence.

``--smoke`` additionally *executes* the cheap read-only commands
(``repro list`` and every quoted ``--help``-safe parse), plus one real
short mission run — the CI docs lane runs with it.

Exit status 0 = clean; 1 = problems (each printed on its own line).
Usable as a script or via :func:`check_file` from the test suite.
"""

from __future__ import annotations

import re
import shlex
import subprocess
import sys
from pathlib import Path
from typing import List

REPO = Path(__file__).resolve().parent.parent

#: Top-level prefixes whose backticked mentions must exist on disk.
_PATH_PREFIXES = (
    "src/", "tests/", "benchmarks/", "docs/", "examples/", "tools/",
    ".github/",
)

_MD_LINK = re.compile(r"\[[^\]]*\]\(([^)#\s]+)(?:#[^)]*)?\)")
_BACKTICK = re.compile(r"`([^`\s]+)`")
_FENCE = re.compile(r"```(?:bash|sh|console)?\n(.*?)```", re.DOTALL)
#: Doc placeholders -> substitutable dummies for parse checks.
_PLACEHOLDERS = {
    "<campaign_key>": "0123456789abcdef",
    "I/N": "1/2",
}


def _strip_test_selector(token: str) -> str:
    """``tests/test_x.py::TestY::test_z`` -> ``tests/test_x.py``."""
    return token.split("::", 1)[0]


def check_links(md_path: Path) -> List[str]:
    """Problems with relative links / repo-path mentions in one file."""
    problems: List[str] = []
    text = md_path.read_text()
    for target in _MD_LINK.findall(text):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        resolved = (md_path.parent / target).resolve()
        if not resolved.exists():
            problems.append(f"{md_path.name}: broken link -> {target}")
    for token in _BACKTICK.findall(text):
        token = _strip_test_selector(token.rstrip("…").rstrip("."))
        if not token.startswith(_PATH_PREFIXES):
            continue
        if "*" in token or "<" in token:
            continue  # globs / placeholders describe families, not files
        if not (REPO / token).exists():
            problems.append(f"{md_path.name}: missing path -> {token}")
    return problems


def _quoted_commands(md_path: Path) -> List[str]:
    """``python -m ...`` command lines from fenced code blocks, with
    backslash continuations joined and placeholders substituted."""
    commands: List[str] = []
    for block in _FENCE.findall(md_path.read_text()):
        joined = re.sub(r"\\\n\s*", " ", block)
        for line in joined.splitlines():
            line = line.split(" # ")[0].strip()  # inline comments
            for k, v in _PLACEHOLDERS.items():
                line = line.replace(k, v)
            if line.startswith(("python -m repro", "python -m pytest")):
                # Drop env-var prefixes kept on the same line elsewhere.
                commands.append(line)
            elif " python -m repro" in line or " python -m pytest" in line:
                idx = line.index("python -m ")
                if "=" in line.split("python -m ")[0]:  # ENV=x python -m ...
                    commands.append(line[idx:])
    return commands


def check_cli(md_path: Path) -> List[str]:
    """Parse every quoted ``python -m repro`` command against the real
    argparse tree; check quoted pytest paths exist."""
    problems: List[str] = []
    sys.path.insert(0, str(REPO / "src"))
    try:
        from repro.cli import _build_parser
    finally:
        sys.path.pop(0)
    parser = _build_parser()
    for cmd in _quoted_commands(md_path):
        argv = shlex.split(cmd)
        if argv[:3] == ["python", "-m", "pytest"]:
            skip_next = False
            for token in argv[3:]:
                if skip_next:  # a -m marker expression, not a path
                    skip_next = False
                    continue
                if token == "-m":
                    skip_next = True
                    continue
                if token.startswith(("-", '"', "'")) or "=" in token:
                    continue
                if not (REPO / _strip_test_selector(token)).exists():
                    problems.append(
                        f"{md_path.name}: pytest target missing -> {token}"
                    )
            continue
        try:
            parser.parse_args(argv[3:])
        except SystemExit as exc:
            if exc.code not in (0, None):
                problems.append(
                    f"{md_path.name}: CLI example no longer parses -> {cmd}"
                )
    return problems


def check_file(md_path: Path) -> List[str]:
    return check_links(md_path) + check_cli(md_path)


def _doc_files() -> List[Path]:
    return [REPO / "README.md", *sorted((REPO / "docs").glob("*.md"))]


def _smoke() -> List[str]:
    """Actually execute the cheap quoted commands."""
    problems: List[str] = []
    env_cmds = [
        ["python", "-m", "repro", "list"],
        ["python", "-m", "repro", "run", "package_delivery",
         "--scenario", "urban:0.3", "--seed", "1"],
    ]
    import os

    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    for cmd in env_cmds:
        proc = subprocess.run(
            cmd, cwd=REPO, env=env, capture_output=True, text=True,
            timeout=900,
        )
        if proc.returncode != 0:
            problems.append(
                f"smoke failed ({proc.returncode}): {' '.join(cmd)}\n"
                f"{proc.stderr.strip().splitlines()[-1] if proc.stderr else ''}"
            )
    return problems


def main(argv: List[str]) -> int:
    problems: List[str] = []
    for md in _doc_files():
        problems.extend(check_file(md))
    if "--smoke" in argv:
        problems.extend(_smoke())
    for p in problems:
        print(p)
    n = len(_doc_files())
    if not problems:
        print(f"docs OK: {n} files, links and CLI examples all resolve")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
