#!/usr/bin/env python
"""Bench-artifact gate: summarize and compare ``BENCH_*.json`` files.

The benchmark harness (``benchmarks/conftest.py``) emits one JSON
artifact per kernel family — ``BENCH_octomap.json``,
``BENCH_planners.json``, ``BENCH_scenarios.json`` — with schema
``bench-<family>/1`` and a ``benchmarks`` map of fully qualified test
names to ``median_s``/``mean_s``/``min_s``/``rounds``.  CI uploads them
so the perf trajectory is visible PR-over-PR; this tool is how anyone
(CI included) reads them:

* ``summarize FILE...`` — one aligned table per artifact, slowest first.
* ``compare OLD NEW [--max-ratio R]`` — per-benchmark median ratios
  between two artifacts of the same family; with ``--max-ratio`` the
  exit status fails when any shared benchmark slowed beyond ``R``x.

Both commands **fail loudly on schema drift**: a missing/unknown schema
tag, a malformed benchmarks map, wrong stat keys, or non-numeric values
exit with status 2 and a per-problem message — an artifact the emitter
and this checker disagree about must never pass silently.

Exit status: 0 = clean, 1 = comparison regression (with ``--max-ratio``),
2 = schema drift / unreadable artifact.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path
from typing import Any, Dict, List, Tuple

#: The schema family tag every artifact must carry: ``bench-<family>/1``.
_SCHEMA_RE = re.compile(r"^bench-([a-z0-9_]+)/1$")

#: Exactly these per-benchmark stat keys, all numeric.
STAT_KEYS = ("median_s", "mean_s", "min_s", "rounds")


def validate_bench(doc: Any, label: str = "artifact") -> List[str]:
    """Structural problems with one BENCH document (empty = valid).

    Pins the contract ``benchmarks/conftest.py`` writes; any key the
    emitter adds or drops shows up here instead of silently passing.
    """
    problems: List[str] = []
    if not isinstance(doc, dict):
        return [f"{label}: document must be a dict, got {type(doc).__name__}"]
    schema = doc.get("schema")
    if not isinstance(schema, str) or not _SCHEMA_RE.match(schema):
        problems.append(
            f"{label}: schema must match 'bench-<family>/1', got {schema!r}"
        )
    unknown_top = sorted(set(doc) - {"schema", "benchmarks"})
    if unknown_top:
        problems.append(f"{label}: unknown top-level keys {unknown_top}")
    benches = doc.get("benchmarks")
    if not isinstance(benches, dict) or not benches:
        problems.append(f"{label}: 'benchmarks' must be a non-empty dict")
        return problems
    for name, stats in benches.items():
        if not isinstance(stats, dict):
            problems.append(f"{label}: {name}: stats must be a dict")
            continue
        missing = [k for k in STAT_KEYS if k not in stats]
        extra = sorted(set(stats) - set(STAT_KEYS))
        if missing:
            problems.append(f"{label}: {name}: missing stat keys {missing}")
        if extra:
            problems.append(f"{label}: {name}: unknown stat keys {extra}")
        for key in STAT_KEYS:
            value = stats.get(key)
            if key in stats and (
                not isinstance(value, (int, float)) or isinstance(value, bool)
            ):
                problems.append(
                    f"{label}: {name}: {key} must be numeric, got {value!r}"
                )
            elif isinstance(value, (int, float)) and value < 0:
                problems.append(f"{label}: {name}: {key} is negative ({value})")
    return problems


def load_bench(path: Path) -> Tuple[Dict[str, Any], List[str]]:
    """Load + validate one artifact; returns ``(doc, problems)``."""
    label = str(path)
    try:
        doc = json.loads(path.read_text())
    except FileNotFoundError:
        return {}, [f"{label}: no such file"]
    except json.JSONDecodeError as exc:
        return {}, [f"{label}: not valid JSON ({exc})"]
    return doc, validate_bench(doc, label)


def _fmt_seconds(value: float) -> str:
    if value >= 1.0:
        return f"{value:.3f}s"
    if value >= 1e-3:
        return f"{value * 1e3:.3f}ms"
    return f"{value * 1e6:.1f}us"


def _table(header: Tuple[str, ...], rows: List[Tuple[str, ...]]) -> str:
    widths = [
        max(len(header[i]), *(len(r[i]) for r in rows)) if rows else len(header[i])
        for i in range(len(header))
    ]

    def _fmt(row: Tuple[str, ...]) -> str:
        cells = [row[0].ljust(widths[0])]
        cells += [row[i].rjust(widths[i]) for i in range(1, len(row))]
        return "  ".join(cells)

    lines = [_fmt(header), _fmt(tuple("-" * w for w in widths))]
    lines += [_fmt(r) for r in rows]
    return "\n".join(lines)


def summarize(paths: List[Path]) -> int:
    status = 0
    for path in paths:
        doc, problems = load_bench(path)
        if problems:
            for problem in problems:
                print(f"SCHEMA DRIFT: {problem}", file=sys.stderr)
            status = 2
            continue
        benches = doc["benchmarks"]
        rows = [
            (
                name,
                _fmt_seconds(stats["median_s"]),
                _fmt_seconds(stats["mean_s"]),
                str(int(stats["rounds"])),
            )
            for name, stats in sorted(
                benches.items(), key=lambda item: -item[1]["median_s"]
            )
        ]
        print(f"{path} [{doc['schema']}]: {len(benches)} benchmarks")
        print(_table(("benchmark", "median", "mean", "rounds"), rows))
        print()
    return status


def compare(old_path: Path, new_path: Path, max_ratio: float = 0.0) -> int:
    old_doc, old_problems = load_bench(old_path)
    new_doc, new_problems = load_bench(new_path)
    if old_problems or new_problems:
        for problem in old_problems + new_problems:
            print(f"SCHEMA DRIFT: {problem}", file=sys.stderr)
        return 2
    if old_doc["schema"] != new_doc["schema"]:
        print(
            f"SCHEMA DRIFT: comparing different families "
            f"({old_doc['schema']} vs {new_doc['schema']})",
            file=sys.stderr,
        )
        return 2
    old_b, new_b = old_doc["benchmarks"], new_doc["benchmarks"]
    shared = sorted(set(old_b) & set(new_b))
    rows: List[Tuple[str, ...]] = []
    regressions: List[Tuple[str, float]] = []
    for name in shared:
        old_med, new_med = old_b[name]["median_s"], new_b[name]["median_s"]
        ratio = new_med / old_med if old_med > 0 else float("inf")
        rows.append(
            (name, _fmt_seconds(old_med), _fmt_seconds(new_med), f"{ratio:.2f}x")
        )
        if max_ratio > 0 and ratio > max_ratio:
            regressions.append((name, ratio))
    print(
        f"compare {old_path} -> {new_path} [{new_doc['schema']}]: "
        f"{len(shared)} shared benchmarks"
    )
    print(_table(("benchmark", "old median", "new median", "ratio"), rows))
    for name in sorted(set(old_b) - set(new_b)):
        print(f"  removed: {name}")
    for name in sorted(set(new_b) - set(old_b)):
        print(f"  added:   {name}")
    if regressions:
        print()
        for name, ratio in regressions:
            print(
                f"REGRESSION: {name} slowed {ratio:.2f}x "
                f"(> {max_ratio:.2f}x budget)",
                file=sys.stderr,
            )
        return 1
    return 0


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="bench_report",
        description="summarize/compare BENCH_*.json benchmark artifacts",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sum_p = sub.add_parser("summarize", help="print one table per artifact")
    sum_p.add_argument("paths", nargs="+", type=Path, metavar="BENCH.json")
    cmp_p = sub.add_parser(
        "compare", help="per-benchmark median ratios between two artifacts"
    )
    cmp_p.add_argument("old", type=Path)
    cmp_p.add_argument("new", type=Path)
    cmp_p.add_argument(
        "--max-ratio", type=float, default=0.0,
        help="fail (exit 1) when any shared benchmark's median slowed "
             "beyond this ratio (0 = report only)",
    )
    args = parser.parse_args(argv)
    if args.command == "summarize":
        return summarize(args.paths)
    return compare(args.old, args.new, max_ratio=args.max_ratio)


if __name__ == "__main__":
    sys.exit(main())
