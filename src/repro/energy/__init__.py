"""Energy substrate: rotor power model (Eq. 1) and coulomb-counter battery."""

from .power_model import (
    MATRICE_100_COEFFICIENTS,
    SOLO_COEFFICIENTS,
    PowerModelCoefficients,
    RotorPowerModel,
)
from .battery import COMMERCIAL_PACKS, Battery

__all__ = [
    "Battery",
    "COMMERCIAL_PACKS",
    "MATRICE_100_COEFFICIENTS",
    "PowerModelCoefficients",
    "RotorPowerModel",
    "SOLO_COEFFICIENTS",
]
