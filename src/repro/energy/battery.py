"""Coulomb-counter battery model with SoC-dependent voltage.

The paper's battery model "implements a coulomb counter approach": each
cycle, the simulator computes the charge (current x time) drawn from the
battery, where current = power / voltage, and voltage is "modeled as a
function of the percentage of the remaining coulomb in the battery"
following Chen & Rincon-Mora (2006).

We model a LiPo pack: per-cell open-circuit voltage as a mildly nonlinear
function of state-of-charge (SoC) — a steep knee below ~10% SoC, a flat
plateau in the middle, and a slight rise near full charge — plus an internal
series resistance causing voltage sag under load.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List


@dataclass
class Battery:
    """A LiPo battery pack tracked by coulomb counting.

    Attributes
    ----------
    capacity_mah:
        Rated capacity in milliamp-hours.
    cells:
        Number of series cells (a "4S" pack has ``cells=4``).
    internal_resistance_ohm:
        Total pack series resistance (voltage sag under load).
    """

    capacity_mah: float = 5700.0  # TB47D pack of the DJI Matrice 100
    cells: int = 6
    internal_resistance_ohm: float = 0.02

    #: Per-cell open-circuit voltage at 0% and 100% SoC.
    CELL_V_EMPTY: float = 3.3
    CELL_V_FULL: float = 4.2

    def __post_init__(self) -> None:
        if self.capacity_mah <= 0:
            raise ValueError("battery capacity must be positive")
        if self.cells < 1:
            raise ValueError("battery needs at least one cell")
        self._capacity_coulombs = self.capacity_mah * 3.6  # mAh -> C
        self._remaining_coulombs = self._capacity_coulombs
        self._energy_drawn_j = 0.0

    # ------------------------------------------------------------------
    # State of charge and voltage
    # ------------------------------------------------------------------
    @property
    def capacity_coulombs(self) -> float:
        return self._capacity_coulombs

    @property
    def remaining_coulombs(self) -> float:
        return self._remaining_coulombs

    @property
    def soc(self) -> float:
        """State of charge in [0, 1]."""
        return max(self._remaining_coulombs / self._capacity_coulombs, 0.0)

    @property
    def remaining_percent(self) -> float:
        return 100.0 * self.soc

    @property
    def energy_drawn_j(self) -> float:
        """Total energy (J) drawn since construction/reset."""
        return self._energy_drawn_j

    @property
    def depleted(self) -> bool:
        return self._remaining_coulombs <= 0.0

    def open_circuit_voltage(self) -> float:
        """Pack open-circuit voltage as a function of SoC.

        Piecewise model after Chen & Rincon-Mora: exponential knee below the
        plateau, linear plateau, slight super-linear rise near full.
        """
        s = self.soc
        v_span = self.CELL_V_FULL - self.CELL_V_EMPTY
        if s <= 0.1:
            # Steep knee: drop the lower 40% of the span over the last 10% SoC.
            cell_v = self.CELL_V_EMPTY + v_span * 0.4 * (s / 0.1)
        elif s <= 0.9:
            cell_v = self.CELL_V_EMPTY + v_span * (0.4 + 0.5 * (s - 0.1) / 0.8)
        else:
            cell_v = self.CELL_V_EMPTY + v_span * (0.9 + 1.0 * (s - 0.9))
        return cell_v * self.cells

    def loaded_voltage(self, power_w: float) -> float:
        """Terminal voltage under a load of ``power_w`` watts."""
        v_oc = self.open_circuit_voltage()
        if power_w <= 0 or v_oc <= 0:
            return v_oc
        current = power_w / v_oc  # first-order current estimate
        return max(v_oc - current * self.internal_resistance_ohm, 0.0)

    # ------------------------------------------------------------------
    # Coulomb counting
    # ------------------------------------------------------------------
    def draw(self, power_w: float, dt: float) -> float:
        """Draw ``power_w`` watts for ``dt`` seconds; return charge used (C).

        Implements the coulomb counter: current = P / V(SoC, load), charge
        = current * dt, subtracted from the remaining capacity.
        """
        if dt < 0:
            raise ValueError("dt must be non-negative")
        if power_w < 0:
            raise ValueError("power draw must be non-negative")
        voltage = self.loaded_voltage(power_w)
        if voltage <= 0:
            self._remaining_coulombs = 0.0
            return 0.0
        current = power_w / voltage
        charge = current * dt
        self._remaining_coulombs = max(self._remaining_coulombs - charge, 0.0)
        self._energy_drawn_j += power_w * dt
        return charge

    def reset(self) -> None:
        """Restore a full charge (fresh pack)."""
        self._remaining_coulombs = self._capacity_coulombs
        self._energy_drawn_j = 0.0

    def endurance_estimate_s(self, power_w: float) -> float:
        """Estimated time to depletion at a constant power draw.

        Numerically integrates the coulomb counter at 1-second steps on a
        throwaway copy so the live pack is unaffected.
        """
        if power_w <= 0:
            return float("inf")
        shadow = Battery(
            capacity_mah=self.capacity_mah,
            cells=self.cells,
            internal_resistance_ohm=self.internal_resistance_ohm,
        )
        shadow._remaining_coulombs = self._remaining_coulombs
        t = 0.0
        step = 1.0
        max_t = 24 * 3600.0
        while not shadow.depleted and t < max_t:
            shadow.draw(power_w, step)
            t += step
        return t


#: Battery capacity (mAh) and pack layout of well-known commercial MAVs,
#: used by the Fig. 2 endurance study.
COMMERCIAL_PACKS = {
    "DJI Matrice 100": dict(capacity_mah=5700, cells=6),
    "3DR Solo": dict(capacity_mah=5200, cells=4),
    "Bebop 2 Power": dict(capacity_mah=3350, cells=3),
    "Disco FPV": dict(capacity_mah=2700, cells=3),
    "DJI Spark": dict(capacity_mah=1480, cells=3),
    "Racing drone (5in)": dict(capacity_mah=1300, cells=4),
}
