"""Rotor power model — Equation (1) of the paper.

The paper extends AirSim with an energy model "a function of the velocity
and acceleration of the MAV" using the parametric estimator of Tseng et al.
(arXiv:1703.10049):

    P = [b1 b2 b3] . [|vxy|, |axy|, |vxy||axy|]^T
      + [b4 b5 b6] . [|vz|,  |az|,  |vz||az|]^T
      + [b7 b8 b9] . [m, vxy.wxy, 1]^T

Nine constant coefficients are fit per airframe.  The defaults below are
calibrated so that a ~2.4 kg quadrotor hovers around 330 W and draws
~400-500 W in fast forward flight — matching the paper's observation that
off-the-shelf MAVs such as the DJI Matrice or 3DR Solo "consume between
300 W to 400 W for its rotors" and the measured 3DR Solo breakdown of
Fig. 9 (rotors ~287 W, compute ~13 W, i.e. ~20X).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from ..dynamics.state import VehicleState


@dataclass(frozen=True)
class PowerModelCoefficients:
    """The nine beta coefficients of Eq. (1), plus the airframe mass term.

    ``beta[0..2]`` weight horizontal speed, accel, and their product;
    ``beta[3..5]`` the vertical equivalents; ``beta[6..8]`` weight mass,
    the wind coupling term, and a constant (hover) baseline.
    """

    beta: Sequence[float] = (
        6.0,    # b1: |vxy| (W per m/s)
        2.5,    # b2: |axy| (W per m/s^2)
        1.2,    # b3: |vxy| * |axy|
        10.0,   # b4: |vz|
        3.0,    # b5: |az|
        1.5,    # b6: |vz| * |az|
        30.0,   # b7: m (W per kg)
        2.0,    # b8: m * (vxy . wxy)
        215.0,  # b9: constant baseline (W)
    )

    def __post_init__(self) -> None:
        if len(self.beta) != 9:
            raise ValueError("power model requires exactly 9 coefficients")


#: Coefficients fit for the DJI Matrice 100 class airframe used in the
#: heatmap studies (hover ~330 W at m=2.4 kg, cruise 400-500 W).
MATRICE_100_COEFFICIENTS = PowerModelCoefficients()

#: Coefficients for the 3DR Solo airframe measured in Fig. 9 (hover ~287 W).
SOLO_COEFFICIENTS = PowerModelCoefficients(
    beta=(5.0, 2.0, 1.0, 9.0, 2.5, 1.2, 28.0, 1.8, 182.0)
)


@dataclass
class RotorPowerModel:
    """Evaluates Eq. (1) for a vehicle state.

    Attributes
    ----------
    coefficients:
        Airframe-specific beta coefficients.
    mass_kg:
        Vehicle mass (m in Eq. 1).
    """

    coefficients: PowerModelCoefficients = field(
        default_factory=lambda: MATRICE_100_COEFFICIENTS
    )
    mass_kg: float = 2.4

    def power(
        self,
        velocity: np.ndarray,
        acceleration: np.ndarray,
        wind_xy: Optional[np.ndarray] = None,
    ) -> float:
        """Instantaneous rotor power (W) for the given kinematics.

        Power is floored at the hover baseline: rotors cannot recover
        energy, so braking never reports less than hover power.
        """
        b = self.coefficients.beta
        v = np.asarray(velocity, dtype=float)
        a = np.asarray(acceleration, dtype=float)
        vxy = float(np.hypot(v[0], v[1]))
        axy = float(np.hypot(a[0], a[1]))
        vz = abs(float(v[2]))
        az = abs(float(a[2]))
        horizontal = b[0] * vxy + b[1] * axy + b[2] * vxy * axy
        vertical = b[3] * vz + b[4] * az + b[5] * vz * az
        if wind_xy is not None:
            w = np.asarray(wind_xy, dtype=float)
            wind_term = float(v[0] * w[0] + v[1] * w[1])
        else:
            wind_term = 0.0
        body = b[6] * self.mass_kg + b[7] * self.mass_kg * wind_term + b[8]
        hover_floor = b[6] * self.mass_kg + b[8]
        return max(horizontal + vertical + body, hover_floor)

    def power_for_state(
        self, state: VehicleState, wind_xy: Optional[np.ndarray] = None
    ) -> float:
        """Eq. (1) evaluated on a :class:`VehicleState`."""
        return self.power(state.velocity, state.acceleration, wind_xy)

    def hover_power(self) -> float:
        """Power when holding position (v = a = 0)."""
        return self.power(np.zeros(3), np.zeros(3))

    def steady_flight_power(self, speed: float) -> float:
        """Power in steady level flight at ``speed`` m/s (a = 0)."""
        return self.power(np.array([speed, 0.0, 0.0]), np.zeros(3))
