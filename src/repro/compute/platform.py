"""Companion-computer platform models.

Substitute for the NVIDIA Jetson TX2 (and the cloud-side Intel i7 + GTX
1080) used in the paper.  A platform is described by its core count, the
set of selectable clock frequencies, and a CPU power model.  The paper's
sensitivity studies sweep the TX2's quad ARM A57 cluster over {2, 3, 4}
cores and {0.8, 1.5, 2.2} GHz (the Denver cores are disabled); our
:class:`PlatformConfig` captures exactly that operating-point grid.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Sequence, Tuple


@dataclass(frozen=True)
class PlatformSpec:
    """Static description of a compute platform.

    Attributes
    ----------
    name:
        Human-readable platform name.
    max_cores:
        Number of usable CPU cores.
    frequencies_ghz:
        Selectable clock frequencies, ascending.
    reference_frequency_ghz:
        Frequency at which kernel base runtimes are calibrated.
    idle_power_w:
        Power draw with all cores idle (SoC + memory + carrier board).
    core_dynamic_power_w:
        Dynamic power of one fully busy core at the reference frequency.
    gpu_power_w:
        Additional power when the GPU-heavy kernels (detection) run.
    perf_multiplier:
        Single-thread throughput relative to the TX2 at its reference
        frequency.  The cloud i7 is ~2.5x faster per core.
    """

    name: str
    max_cores: int
    frequencies_ghz: Tuple[float, ...]
    reference_frequency_ghz: float
    idle_power_w: float = 2.5
    core_dynamic_power_w: float = 1.8
    gpu_power_w: float = 4.0
    perf_multiplier: float = 1.0

    def __post_init__(self) -> None:
        if self.max_cores < 1:
            raise ValueError("platform needs at least one core")
        if not self.frequencies_ghz:
            raise ValueError("platform needs at least one frequency")
        if self.reference_frequency_ghz not in self.frequencies_ghz:
            raise ValueError(
                "reference frequency must be one of the selectable frequencies"
            )


#: The paper's companion computer: Jetson TX2, quad ARM A57 cluster
#: (Denver cores disabled for determinism, as in Section V-C).
JETSON_TX2 = PlatformSpec(
    name="Jetson TX2",
    max_cores=4,
    frequencies_ghz=(0.8, 1.5, 2.2),
    reference_frequency_ghz=2.2,
    idle_power_w=2.5,
    core_dynamic_power_w=1.8,
    gpu_power_w=4.0,
    perf_multiplier=1.0,
)

#: The cloud node of the performance case study: i7-4740 @ 4 GHz + GTX 1080.
CLOUD_I7_GTX1080 = PlatformSpec(
    name="Cloud i7 + GTX 1080",
    max_cores=8,
    frequencies_ghz=(4.0,),
    reference_frequency_ghz=4.0,
    idle_power_w=40.0,
    core_dynamic_power_w=12.0,
    gpu_power_w=120.0,
    perf_multiplier=2.5,
)

#: A Cortex-M3-class flight controller — only runs the flight stack.
PIXHAWK = PlatformSpec(
    name="Pixhawk (Cortex-M3)",
    max_cores=1,
    frequencies_ghz=(0.072,),
    reference_frequency_ghz=0.072,
    idle_power_w=0.2,
    core_dynamic_power_w=0.3,
    gpu_power_w=0.0,
    perf_multiplier=0.01,
)


@dataclass(frozen=True)
class PlatformConfig:
    """A platform at a chosen operating point (active cores + frequency).

    This is the unit the sensitivity heatmaps sweep: 9 operating points of
    the TX2 = {2, 3, 4} cores x {0.8, 1.5, 2.2} GHz.
    """

    spec: PlatformSpec = JETSON_TX2
    cores: int = 4
    frequency_ghz: float = 2.2

    def __post_init__(self) -> None:
        if not 1 <= self.cores <= self.spec.max_cores:
            raise ValueError(
                f"{self.spec.name} supports 1..{self.spec.max_cores} cores, "
                f"got {self.cores}"
            )
        if self.frequency_ghz not in self.spec.frequencies_ghz:
            raise ValueError(
                f"{self.spec.name} supports frequencies "
                f"{self.spec.frequencies_ghz}, got {self.frequency_ghz}"
            )

    @property
    def frequency_ratio(self) -> float:
        """This operating point's clock relative to the reference clock."""
        return self.frequency_ghz / self.spec.reference_frequency_ghz

    def cpu_power_w(self, busy_cores: float, gpu_active: bool = False) -> float:
        """Compute-subsystem power at this operating point.

        Dynamic power scales ~ f^2.7 with the clock (voltage rides with
        frequency on the TX2's DVFS rails); idle power is constant.

        Parameters
        ----------
        busy_cores:
            Average number of cores doing work (may be fractional).
        gpu_active:
            Whether a GPU kernel (object detection) is executing.
        """
        busy = min(max(busy_cores, 0.0), float(self.cores))
        dyn = self.spec.core_dynamic_power_w * busy * self.frequency_ratio**2.7
        gpu = self.spec.gpu_power_w if gpu_active else 0.0
        return self.spec.idle_power_w + dyn + gpu

    def max_cpu_power_w(self) -> float:
        """Power with every core busy and the GPU active."""
        return self.cpu_power_w(self.cores, gpu_active=True)

    def with_operating_point(self, cores: int, frequency_ghz: float) -> "PlatformConfig":
        return replace(self, cores=cores, frequency_ghz=frequency_ghz)


def tx2_operating_points() -> List[PlatformConfig]:
    """The paper's 3x3 sweep grid: {2,3,4} cores x {0.8,1.5,2.2} GHz."""
    return [
        PlatformConfig(spec=JETSON_TX2, cores=c, frequency_ghz=f)
        for c in (2, 3, 4)
        for f in (0.8, 1.5, 2.2)
    ]
