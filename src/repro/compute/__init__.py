"""Compute substrate: platform models, kernel runtimes, scheduler, cloud.

Substitutes for the NVIDIA Jetson TX2 companion computer (hardware-in-the-
loop in the paper) and the cloud node of the performance case study.
"""

from .platform import (
    CLOUD_I7_GTX1080,
    JETSON_TX2,
    PIXHAWK,
    PlatformConfig,
    PlatformSpec,
    tx2_operating_points,
)
from .kernels import (
    DEFAULT_KERNELS,
    WORKLOAD_KERNEL_OVERRIDES,
    KernelModel,
    KernelProfile,
    octomap_runtime_scale,
)
from .scheduler import ComputeScheduler, Job
from .cloud import (
    FIVE_G_LINK,
    KERNEL_PAYLOADS,
    LTE_LINK,
    CloudOffloadModel,
    NetworkLink,
)

__all__ = [
    "CLOUD_I7_GTX1080",
    "CloudOffloadModel",
    "ComputeScheduler",
    "DEFAULT_KERNELS",
    "FIVE_G_LINK",
    "JETSON_TX2",
    "Job",
    "KERNEL_PAYLOADS",
    "KernelModel",
    "KernelProfile",
    "LTE_LINK",
    "NetworkLink",
    "PIXHAWK",
    "PlatformConfig",
    "PlatformSpec",
    "WORKLOAD_KERNEL_OVERRIDES",
    "octomap_runtime_scale",
    "tx2_operating_points",
]
