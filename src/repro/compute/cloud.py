"""Sensor-cloud offload model for the performance case study (Fig. 16).

The paper compares a "fully-on-edge" drone (all kernels on the TX2)
against a "fully-in-cloud" drone whose planning-stage kernels run on an
Intel i7 4740 @ 4 GHz with a GTX 1080, connected over a 1 Gb/s LAN that
"mimics a future 5G network".  Offloading a kernel trades compute time for
network transfer time:

    t_offload = t_uplink(payload) + t_remote + t_downlink(result)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from .kernels import KernelModel
from .platform import CLOUD_I7_GTX1080, JETSON_TX2, PlatformConfig


@dataclass(frozen=True)
class NetworkLink:
    """A symmetric network link between the drone and a remote node."""

    bandwidth_mbps: float = 1000.0  # 1 Gb/s LAN, the paper's 5G stand-in
    latency_ms: float = 2.0  # one-way
    reliability: float = 1.0  # fraction of transfers that succeed

    def __post_init__(self) -> None:
        if self.bandwidth_mbps <= 0:
            raise ValueError("bandwidth must be positive")
        if not 0.0 <= self.reliability <= 1.0:
            raise ValueError("reliability must be in [0, 1]")

    def transfer_time_s(self, payload_bytes: float) -> float:
        """One-way transfer time for ``payload_bytes`` including latency."""
        serialize = payload_bytes * 8.0 / (self.bandwidth_mbps * 1e6)
        return self.latency_ms / 1000.0 + serialize


#: Typical payload sizes (bytes) for offloaded kernel inputs/outputs.
KERNEL_PAYLOADS: Dict[str, Dict[str, float]] = {
    "frontier_exploration": {"up": 2.0e6, "down": 4.0e3},  # octomap up, path down
    "shortest_path": {"up": 2.0e6, "down": 4.0e3},
    "octomap": {"up": 1.2e6, "down": 2.0e6},  # point cloud up, map down
    "object_detection_yolo": {"up": 0.5e6, "down": 1.0e3},  # image up, boxes down
    "slam": {"up": 0.5e6, "down": 0.5e3},
}

#: 4G/LTE-class link for ablations against the paper's 1 Gb/s assumption.
LTE_LINK = NetworkLink(bandwidth_mbps=50.0, latency_ms=40.0, reliability=0.98)
FIVE_G_LINK = NetworkLink(bandwidth_mbps=1000.0, latency_ms=2.0)


@dataclass
class CloudOffloadModel:
    """Computes effective kernel latency when offloaded to the cloud.

    Attributes
    ----------
    edge_config:
        Operating point of the onboard companion computer.
    cloud_config:
        Operating point of the remote node.
    link:
        The network between them.
    offloaded_kernels:
        Kernels to run remotely; all others run on the edge.
    """

    edge_config: PlatformConfig = field(
        default_factory=lambda: PlatformConfig(JETSON_TX2, 4, 2.2)
    )
    cloud_config: PlatformConfig = field(
        default_factory=lambda: PlatformConfig(CLOUD_I7_GTX1080, 8, 4.0)
    )
    link: NetworkLink = field(default_factory=lambda: FIVE_G_LINK)
    offloaded_kernels: frozenset = frozenset({"frontier_exploration",
                                              "shortest_path"})
    kernel_model: KernelModel = field(default_factory=KernelModel)

    def is_offloaded(self, kernel: str) -> bool:
        return kernel in self.offloaded_kernels

    def effective_runtime_s(
        self,
        kernel: str,
        rng: Optional[np.random.Generator] = None,
    ) -> float:
        """Latency the drone observes for one invocation of ``kernel``."""
        if not self.is_offloaded(kernel):
            return self.kernel_model.runtime_s(kernel, self.edge_config, rng)
        payload = KERNEL_PAYLOADS.get(kernel, {"up": 1.0e6, "down": 1.0e4})
        uplink = self.link.transfer_time_s(payload["up"])
        downlink = self.link.transfer_time_s(payload["down"])
        remote = self.kernel_model.runtime_s(kernel, self.cloud_config, rng)
        return uplink + remote + downlink

    def speedup(self, kernel: str) -> float:
        """Edge runtime / offloaded runtime for ``kernel`` (deterministic)."""
        edge = self.kernel_model.runtime_s(kernel, self.edge_config)
        offloaded = self.effective_runtime_s(kernel)
        if offloaded <= 0:
            return float("inf")
        return edge / offloaded
