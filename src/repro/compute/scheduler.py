"""Compute scheduler: kernel jobs executing on the companion computer.

Models the ROS-node execution the paper runs on the TX2: each kernel
invocation becomes a job occupying one or more cores for its modeled
runtime.  When more jobs are ready than cores available, jobs queue —
exactly the contention that makes core scaling matter for the concurrent
workloads (Mapping/SAR run perception, planning, and control nodes in
parallel; see Fig. 7).

The scheduler advances with the simulation clock: :meth:`advance_to` moves
time forward, retiring finished jobs and starting queued ones.  Energy
accounting integrates busy-core-time so the compute power model can report
average compute power.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from .kernels import KernelModel
from .platform import PlatformConfig

_job_ids = itertools.count()


@dataclass
class Job:
    """One kernel invocation in flight (or queued)."""

    kernel: str
    duration_s: float
    cores: int
    uses_gpu: bool
    submitted_at: float
    on_done: Optional[Callable[["Job"], None]] = None
    job_id: int = field(default_factory=lambda: next(_job_ids))
    started_at: Optional[float] = None
    finished_at: Optional[float] = None

    @property
    def done(self) -> bool:
        return self.finished_at is not None

    @property
    def queue_delay_s(self) -> float:
        """Time spent waiting for a core."""
        if self.started_at is None:
            return 0.0
        return self.started_at - self.submitted_at

    @property
    def latency_s(self) -> float:
        """End-to-end latency: queueing + execution."""
        if self.finished_at is None:
            return 0.0
        return self.finished_at - self.submitted_at


@dataclass
class ComputeScheduler:
    """FIFO multi-core job scheduler driven by the simulation clock."""

    config: PlatformConfig
    kernel_model: KernelModel = field(default_factory=KernelModel)
    rng: Optional[np.random.Generator] = None

    def __post_init__(self) -> None:
        self.now = 0.0
        self._free_cores = self.config.cores
        self._running: List[Job] = []  # heap keyed by finish time
        self._queue: List[Job] = []
        self._busy_core_seconds = 0.0
        self._gpu_seconds = 0.0
        self._completed: List[Job] = []
        self._energy_j = 0.0
        self._last_energy_time = 0.0

    # ------------------------------------------------------------------
    # Job submission
    # ------------------------------------------------------------------
    def submit(
        self,
        kernel: str,
        on_done: Optional[Callable[[Job], None]] = None,
        duration_s: Optional[float] = None,
    ) -> Job:
        """Submit one invocation of ``kernel``; runs when cores free up.

        ``duration_s`` overrides the modeled runtime (used when the caller
        measured the real data-structure operation, e.g. OctoMap insertion).
        """
        profile = self.kernel_model.profile(kernel)
        if duration_s is None:
            duration_s = profile.runtime_s(self.config, self.rng)
        cores = min(profile.cores_used, self.config.cores)
        job = Job(
            kernel=kernel,
            duration_s=duration_s,
            cores=cores,
            uses_gpu=profile.uses_gpu,
            submitted_at=self.now,
            on_done=on_done,
        )
        self._queue.append(job)
        self._try_start_jobs()
        return job

    def _try_start_jobs(self) -> None:
        """Start queued jobs in FIFO order while cores are available."""
        started = True
        while started and self._queue:
            started = False
            head = self._queue[0]
            if head.cores <= self._free_cores:
                self._queue.pop(0)
                head.started_at = self.now
                head.finished_at = self.now + head.duration_s
                self._free_cores -= head.cores
                heapq.heappush(
                    self._running, (head.finished_at, head.job_id, head)
                )
                started = True

    # ------------------------------------------------------------------
    # Time advance
    # ------------------------------------------------------------------
    def advance_to(self, t: float) -> List[Job]:
        """Advance the clock to ``t``; return jobs that completed.

        Completion callbacks fire in finish-time order.  Busy-core time is
        integrated piecewise between job completions for the power model.
        """
        if t < self.now:
            raise ValueError(f"cannot move time backwards ({t} < {self.now})")
        finished: List[Job] = []
        while self._running and self._running[0][0] <= t:
            finish_time, _jid, job = heapq.heappop(self._running)
            self._integrate_busy(finish_time)
            self.now = finish_time
            self._free_cores += job.cores
            self._busy_core_seconds += 0.0  # integration handled above
            finished.append(job)
            self._completed.append(job)
            self._try_start_jobs()
        self._integrate_busy(t)
        self.now = t
        for job in finished:
            if job.on_done is not None:
                job.on_done(job)
        return finished

    def _integrate_busy(self, t: float) -> None:
        """Accumulate busy-core-seconds and compute energy up to ``t``."""
        dt = t - self._last_energy_time
        if dt <= 0:
            return
        busy = self.busy_cores
        gpu = self.gpu_active
        self._busy_core_seconds += busy * dt
        if gpu:
            self._gpu_seconds += dt
        self._energy_j += self.config.cpu_power_w(busy, gpu) * dt
        self._last_energy_time = t

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def busy_cores(self) -> int:
        return self.config.cores - self._free_cores

    @property
    def gpu_active(self) -> bool:
        return any(job.uses_gpu for _, _, job in self._running)

    @property
    def pending_jobs(self) -> int:
        return len(self._queue) + len(self._running)

    @property
    def completed_jobs(self) -> List[Job]:
        return list(self._completed)

    @property
    def compute_energy_j(self) -> float:
        """Total compute-subsystem energy consumed so far (J)."""
        return self._energy_j

    @property
    def busy_core_seconds(self) -> float:
        return self._busy_core_seconds

    def average_compute_power_w(self) -> float:
        """Mean compute power over the elapsed simulation time."""
        if self.now <= 0:
            return self.config.cpu_power_w(0.0)
        return self._energy_j / self.now

    def kernel_latency_stats(self) -> Dict[str, Dict[str, float]]:
        """Per-kernel count/mean/max latency over all completed jobs."""
        stats: Dict[str, List[float]] = {}
        for job in self._completed:
            stats.setdefault(job.kernel, []).append(job.latency_s)
        return {
            kernel: {
                "count": float(len(vals)),
                "mean_s": float(np.mean(vals)),
                "max_s": float(np.max(vals)),
            }
            for kernel, vals in stats.items()
        }
