"""Kernel runtime model calibrated against Table I of the paper.

Table I profiles every computational kernel of the five workloads on the
TX2 at its top operating point (4 cores, 2.2 GHz).  Our model attaches to
each kernel:

* ``base_ms``        — runtime at the calibration point (4 cores, 2.2 GHz);
* ``serial_fraction``— Amdahl's-law serial fraction governing core scaling;
* ``freq_exponent``  — runtime ~ (1/f)^freq_exponent.  1.0 for CPU-bound
  kernels; < 1 for GPU-heavy kernels whose CPU clock only affects pre/post
  processing (object detection); > 1 for kernels with cache/memory effects
  that make clock scaling superlinear (the paper reports up to 9.2X/10X
  total speedups for motion planning and tracking over a 5.5X naive
  clock x core ratio);
* ``uses_gpu``       — whether the invocation occupies the GPU (power);
* ``jitter``         — lognormal sigma of run-to-run variation (randomized
  sampling-based planners vary a lot; fixed pipelines very little).

Runtime at an operating point (c cores, f GHz) with reference (C, F):

    t(c, f) = base * (F/f)^alpha * A(c)/A(C) / perf_multiplier
    A(n) = s + (1 - s)/n          (Amdahl)

The calibration targets the speedups the paper reports between the
(2 cores, 0.8 GHz) and (4 cores, 2.2 GHz) corners, per workload:
OctoMap 2.9X (PD) / 6X (Mapping) / 6.6X (SAR); motion planning 9.2X (PD) /
6.3X (Mapping) / 6.8X (SAR) / 3X (Scanning); detection 1.8X (SAR) /
2.49X (AP); tracking 10X (AP).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple

import numpy as np

from .platform import PlatformConfig


@dataclass(frozen=True)
class KernelProfile:
    """Performance profile of one computational kernel.

    See the module docstring for the runtime formula.
    """

    name: str
    base_ms: float
    serial_fraction: float = 0.1
    freq_exponent: float = 1.0
    uses_gpu: bool = False
    cores_used: int = 1
    jitter: float = 0.0
    reference_cores: int = 4

    def __post_init__(self) -> None:
        if self.base_ms < 0:
            raise ValueError("base runtime must be non-negative")
        if not 0.0 <= self.serial_fraction <= 1.0:
            raise ValueError("serial fraction must be in [0, 1]")
        if self.reference_cores < 1:
            raise ValueError("reference core count must be >= 1")

    def _amdahl(self, cores: int) -> float:
        s = self.serial_fraction
        return s + (1.0 - s) / max(cores, 1)

    def runtime_ms(
        self,
        config: PlatformConfig,
        rng: Optional[np.random.Generator] = None,
    ) -> float:
        """Runtime (ms) of one invocation at the given operating point."""
        freq_factor = (1.0 / config.frequency_ratio) ** self.freq_exponent
        core_factor = self._amdahl(config.cores) / self._amdahl(
            self.reference_cores
        )
        runtime = (
            self.base_ms * freq_factor * core_factor / config.spec.perf_multiplier
        )
        if self.jitter > 0 and rng is not None:
            runtime *= float(rng.lognormal(mean=0.0, sigma=self.jitter))
        return runtime

    def runtime_s(
        self,
        config: PlatformConfig,
        rng: Optional[np.random.Generator] = None,
    ) -> float:
        return self.runtime_ms(config, rng) / 1000.0

    def speedup(self, slow: PlatformConfig, fast: PlatformConfig) -> float:
        """Deterministic speedup going from ``slow`` to ``fast``."""
        return self.runtime_ms(slow) / self.runtime_ms(fast)


def _p(name: str, base_ms: float, **kw) -> KernelProfile:
    return KernelProfile(name=name, base_ms=base_ms, **kw)


#: Default per-kernel profiles (Table I values at 4 cores / 2.2 GHz).
DEFAULT_KERNELS: Dict[str, KernelProfile] = {
    k.name: k
    for k in [
        _p("point_cloud", 2.0, serial_fraction=0.1, freq_exponent=1.0,
           cores_used=1),
        _p("octomap", 500.0, serial_fraction=0.05, freq_exponent=1.1,
           cores_used=1, jitter=0.05),
        _p("collision_check", 1.0, serial_fraction=0.2, freq_exponent=1.0),
        _p("object_detection_yolo", 307.0, serial_fraction=0.7,
           freq_exponent=0.8, uses_gpu=True, cores_used=1, jitter=0.03),
        _p("object_detection_hog", 420.0, serial_fraction=0.15,
           freq_exponent=1.0, cores_used=2, jitter=0.03),
        _p("object_detection_haar", 180.0, serial_fraction=0.25,
           freq_exponent=1.0, cores_used=1, jitter=0.03),
        _p("tracking_buffered", 80.0, serial_fraction=0.0,
           freq_exponent=1.45, cores_used=1, jitter=0.02),
        _p("tracking_realtime", 18.0, serial_fraction=0.0,
           freq_exponent=1.45, cores_used=1, jitter=0.02),
        _p("localization_gps", 0.05, serial_fraction=1.0, freq_exponent=1.0),
        _p("slam", 48.0, serial_fraction=0.25, freq_exponent=1.0,
           cores_used=2, jitter=0.05),
        _p("pid", 0.1, serial_fraction=1.0, freq_exponent=1.0),
        _p("shortest_path", 182.0, serial_fraction=0.0, freq_exponent=1.35,
           cores_used=1, jitter=0.25),
        _p("frontier_exploration", 2650.0, serial_fraction=0.05,
           freq_exponent=1.2, cores_used=1, jitter=0.15),
        _p("lawnmower", 89.0, serial_fraction=0.5, freq_exponent=1.0),
        _p("smoothing", 25.0, serial_fraction=0.3, freq_exponent=1.0),
        _p("path_tracking", 1.0, serial_fraction=0.8, freq_exponent=1.0),
    ]
}

#: Per-workload overrides: (workload, kernel) -> profile.  Table I shows
#: the same kernel costs different amounts in different workloads (input
#: sizes differ), and the paper reports different scaling per workload.
WORKLOAD_KERNEL_OVERRIDES: Dict[Tuple[str, str], KernelProfile] = {
    ("package_delivery", "octomap"): _p(
        "octomap", 630.0, serial_fraction=0.6, freq_exponent=0.95,
        jitter=0.05),
    ("mapping", "octomap"): _p(
        "octomap", 482.0, serial_fraction=0.05, freq_exponent=1.1,
        jitter=0.05),
    ("search_rescue", "octomap"): _p(
        "octomap", 427.0, serial_fraction=0.02, freq_exponent=1.15,
        jitter=0.05),
    ("package_delivery", "slam"): _p(
        "slam", 55.0, serial_fraction=0.25, freq_exponent=1.0,
        cores_used=2, jitter=0.05),
    ("mapping", "slam"): _p(
        "slam", 46.0, serial_fraction=0.25, freq_exponent=1.0,
        cores_used=2, jitter=0.05),
    ("search_rescue", "slam"): _p(
        "slam", 45.0, serial_fraction=0.25, freq_exponent=1.0,
        cores_used=2, jitter=0.05),
    ("search_rescue", "object_detection_yolo"): _p(
        "object_detection_yolo", 271.0, serial_fraction=0.8,
        freq_exponent=0.55, uses_gpu=True, jitter=0.03),
    ("mapping", "frontier_exploration"): _p(
        "frontier_exploration", 2647.0, serial_fraction=0.05,
        freq_exponent=1.2, jitter=0.15),
    ("search_rescue", "frontier_exploration"): _p(
        "frontier_exploration", 2693.0, serial_fraction=0.03,
        freq_exponent=1.25, jitter=0.15),
}


@dataclass
class KernelModel:
    """Resolves kernel runtimes for a workload at an operating point.

    The model is "plug-and-play" like the paper's kernels: overrides let a
    workload swap, e.g., YOLO for HOG, or rescale OctoMap with resolution.
    """

    workload: Optional[str] = None
    overrides: Dict[str, KernelProfile] = field(default_factory=dict)

    def profile(self, kernel: str) -> KernelProfile:
        """Resolve a kernel profile (workload override > default).

        Raises
        ------
        KeyError
            For unknown kernel names.
        """
        if kernel in self.overrides:
            return self.overrides[kernel]
        if self.workload is not None:
            key = (self.workload, kernel)
            if key in WORKLOAD_KERNEL_OVERRIDES:
                return WORKLOAD_KERNEL_OVERRIDES[key]
        if kernel not in DEFAULT_KERNELS:
            known = ", ".join(sorted(DEFAULT_KERNELS))
            raise KeyError(f"unknown kernel '{kernel}' (known: {known})")
        return DEFAULT_KERNELS[kernel]

    def runtime_s(
        self,
        kernel: str,
        config: PlatformConfig,
        rng: Optional[np.random.Generator] = None,
    ) -> float:
        """Runtime (s) of one ``kernel`` invocation on ``config``."""
        return self.profile(kernel).runtime_s(config, rng)

    def set_override(self, kernel: str, profile: KernelProfile) -> None:
        self.overrides[kernel] = profile

    def scale_kernel(self, kernel: str, factor: float) -> None:
        """Multiply a kernel's base runtime by ``factor`` (e.g. OctoMap
        resolution scaling or sensor-noise-induced extra work)."""
        base = self.profile(kernel)
        self.overrides[kernel] = replace(base, base_ms=base.base_ms * factor)


def octomap_runtime_scale(resolution_m: float, reference_m: float = 0.15) -> float:
    """OctoMap runtime multiplier as a function of voxel resolution.

    Fig. 18: going from <0.2 m to 1.0 m voxels cuts processing from >0.4 s
    to <0.1 s — a ~4.5X improvement for a ~6.5X coarser map.  Ray
    insertion cost grows roughly with traversed-voxel count per ray
    (~1/resolution) plus a tree-depth (log) term; an inverse power law with
    exponent ~0.8 reproduces the measured curve shape.
    """
    if resolution_m <= 0:
        raise ValueError("resolution must be positive")
    return (reference_m / resolution_m) ** 0.8
