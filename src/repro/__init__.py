"""repro — a from-scratch Python reproduction of MAVBench (MICRO 2018).

MAVBench is a closed-loop micro-aerial-vehicle (MAV) simulator plus an
end-to-end benchmark suite of five drone applications.  This package
implements the full system: the world/sensor/dynamics/energy simulation
substrate, a compute-platform model for the companion computer, a ROS-like
middleware, the perception/planning/control kernel library, the five
workloads, and the analysis harness that regenerates every table and figure
in the paper's evaluation.

Quickstart
----------
>>> from repro import run_workload
>>> result = run_workload("package_delivery", cores=4, frequency_ghz=2.2)
>>> result.mission_time_s  # doctest: +SKIP
"""

__version__ = "1.0.0"

from .core.api import WorkloadResult, available_workloads, run_workload

__all__ = ["WorkloadResult", "available_workloads", "run_workload", "__version__"]
