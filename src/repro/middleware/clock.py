"""Simulated clock shared by all middleware components.

ROS nodes in the paper run against wall-clock time on the TX2; our nodes
run against this simulated clock so experiments are perfectly reproducible
(one of MAVBench's stated goals: "ensure reproducible runs across
experiments").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Tuple


@dataclass
class SimClock:
    """A monotonically advancing simulation clock."""

    now: float = 0.0

    def advance(self, dt: float) -> float:
        """Move time forward by ``dt`` seconds (must be non-negative)."""
        if dt < 0:
            raise ValueError("clock cannot move backwards")
        self.now += dt
        return self.now

    def advance_to(self, t: float) -> float:
        """Move time forward to absolute time ``t``."""
        if t < self.now:
            raise ValueError(f"clock cannot move backwards ({t} < {self.now})")
        self.now = t
        return self.now


@dataclass
class Timer:
    """A periodic timer tied to a :class:`SimClock`.

    Fires (returns True from :meth:`due`) every ``period`` seconds of
    simulated time.  Used to model ROS rate loops (e.g. a 5 Hz camera
    publisher is a Timer with period 0.2).
    """

    clock: SimClock
    period: float
    offset: float = 0.0

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ValueError("timer period must be positive")
        self._next_fire = self.offset

    def due(self) -> bool:
        """True (and schedules the next fire) if the period has elapsed."""
        if self.clock.now + 1e-12 >= self._next_fire:
            # Catch up without bursting: jump to the next future deadline.
            while self._next_fire <= self.clock.now + 1e-12:
                self._next_fire += self.period
            return True
        return False

    @property
    def next_fire_time(self) -> float:
        return self._next_fire

    def reset(self) -> None:
        self._next_fire = self.clock.now + self.period
