"""ROS-like middleware substrate: clock, topics, services, nodes.

Substitutes for the Robot Operating System runtime the paper's workloads
run within on the TX2.
"""

from .clock import SimClock, Timer
from .topics import Message, Subscription, Topic, TopicRegistry
from .services import Service, ServiceError, ServiceRegistry
from .node import CallbackNode, Node, NodeGraph

__all__ = [
    "CallbackNode",
    "Message",
    "Node",
    "NodeGraph",
    "Service",
    "ServiceError",
    "ServiceRegistry",
    "SimClock",
    "Subscription",
    "Timer",
    "Topic",
    "TopicRegistry",
]
