"""Blocking service calls — the ROS client/server model.

The dotted red arrows of Fig. 7 are client/server (service) edges: the
caller blocks until the server produces a response.  In our simulated
middleware, "blocking" means the caller node stays busy until the service
handler's compute job finishes on the scheduler; the handler itself is a
plain callable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generic, Optional, TypeVar

Req = TypeVar("Req")
Resp = TypeVar("Resp")


class ServiceError(RuntimeError):
    """Raised when a service call cannot be completed."""


class Service(Generic[Req, Resp]):
    """A named request/response endpoint."""

    def __init__(self, name: str, handler: Callable[[Req], Resp]) -> None:
        self.name = name
        self._handler = handler
        self.call_count = 0

    def call(self, request: Req) -> Resp:
        """Invoke the handler synchronously.

        Raises
        ------
        ServiceError
            If the handler raises; the original exception is chained.
        """
        self.call_count += 1
        try:
            return self._handler(request)
        except Exception as exc:  # noqa: BLE001 - service boundary
            raise ServiceError(f"service '{self.name}' failed: {exc}") from exc


class ServiceRegistry:
    """Name -> Service lookup."""

    def __init__(self) -> None:
        self._services: Dict[str, Service] = {}

    def advertise(self, name: str, handler: Callable) -> Service:
        """Register a service; re-advertising a name replaces the handler."""
        service = Service(name, handler)
        self._services[name] = service
        return service

    def lookup(self, name: str) -> Service:
        if name not in self._services:
            raise ServiceError(f"no such service: '{name}'")
        return self._services[name]

    def call(self, name: str, request: Any) -> Any:
        return self.lookup(name).call(request)

    def names(self):
        return sorted(self._services)
