"""ROS-like nodes and the node graph runtime.

A :class:`Node` is one concurrently-running process of Fig. 7 — e.g. the
OctoMap generator, the motion planner, or path tracking.  Nodes own
subscriptions and publishers, and execute work as *kernel jobs* on the
shared :class:`~repro.compute.scheduler.ComputeScheduler`, so node
concurrency costs cores exactly as it does on the TX2.

Execution model per simulation tick (:meth:`NodeGraph.spin_once`):

1. every idle node is offered a chance to start work (``try_start``);
   a node typically consumes a pending message and submits a kernel job;
2. the scheduler advances to the new simulation time, completing jobs;
3. completed jobs trigger the owning node's ``on_complete``, which usually
   publishes a result message downstream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from ..compute.scheduler import ComputeScheduler, Job
from .clock import SimClock, Timer
from .services import ServiceRegistry
from .topics import Subscription, Topic, TopicRegistry


class Node:
    """Base class for a processing node.

    Subclasses (or instances configured with callables) implement:

    * ``try_start(graph)`` — called when the node is idle; may submit a
      kernel job via :meth:`run_kernel` and return True if work started;
    * ``on_complete(graph, job, context)`` — called when the node's kernel
      job finishes.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.busy = False
        self.jobs_completed = 0
        self._subscriptions: Dict[str, Subscription] = {}
        self._graph: Optional["NodeGraph"] = None

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def subscribe(self, topic_name: str, queue_size: int = 10) -> Subscription:
        if self._graph is None:
            raise RuntimeError(f"node '{self.name}' is not attached to a graph")
        sub = self._graph.topics.topic(topic_name).subscribe(queue_size)
        self._subscriptions[topic_name] = sub
        return sub

    def subscription(self, topic_name: str) -> Subscription:
        return self._subscriptions[topic_name]

    def publish(self, topic_name: str, data: Any) -> None:
        if self._graph is None:
            raise RuntimeError(f"node '{self.name}' is not attached to a graph")
        self._graph.topics.topic(topic_name).publish(
            data, stamp=self._graph.clock.now
        )

    # ------------------------------------------------------------------
    # Kernel execution
    # ------------------------------------------------------------------
    def run_kernel(
        self,
        kernel: str,
        context: Any = None,
        duration_s: Optional[float] = None,
    ) -> Job:
        """Submit ``kernel`` on the shared scheduler; node goes busy."""
        if self._graph is None:
            raise RuntimeError(f"node '{self.name}' is not attached to a graph")
        self.busy = True

        def _done(job: Job) -> None:
            self.busy = False
            self.jobs_completed += 1
            self.on_complete(self._graph, job, context)

        return self._graph.scheduler.submit(
            kernel, on_done=_done, duration_s=duration_s
        )

    # ------------------------------------------------------------------
    # Hooks for subclasses
    # ------------------------------------------------------------------
    def on_attach(self, graph: "NodeGraph") -> None:
        """Called when the node joins a graph; wire subscriptions here."""

    def try_start(self, graph: "NodeGraph") -> bool:
        """Offer the idle node a chance to begin work. Returns True if it
        started a job."""
        return False

    def on_complete(self, graph: "NodeGraph", job: Job, context: Any) -> None:
        """Called when this node's kernel job finishes."""


class CallbackNode(Node):
    """A node defined by plain callables instead of a subclass.

    Parameters
    ----------
    name:
        Node name.
    try_start:
        ``fn(node, graph) -> bool``.
    on_complete:
        ``fn(node, graph, job, context) -> None``.
    """

    def __init__(
        self,
        name: str,
        try_start: Optional[Callable[["CallbackNode", "NodeGraph"], bool]] = None,
        on_complete: Optional[
            Callable[["CallbackNode", "NodeGraph", Job, Any], None]
        ] = None,
    ) -> None:
        super().__init__(name)
        self._try_start = try_start
        self._on_complete = on_complete

    def try_start(self, graph: "NodeGraph") -> bool:
        if self._try_start is None:
            return False
        return self._try_start(self, graph)

    def on_complete(self, graph: "NodeGraph", job: Job, context: Any) -> None:
        if self._on_complete is not None:
            self._on_complete(self, graph, job, context)


@dataclass
class NodeGraph:
    """The running node graph: clock + topics + services + scheduler + nodes."""

    clock: SimClock
    scheduler: ComputeScheduler
    topics: TopicRegistry = field(default_factory=TopicRegistry)
    services: ServiceRegistry = field(default_factory=ServiceRegistry)

    def __post_init__(self) -> None:
        self._nodes: List[Node] = []

    def add_node(self, node: Node) -> Node:
        node._graph = self
        self._nodes.append(node)
        node.on_attach(self)
        return node

    def node(self, name: str) -> Node:
        for n in self._nodes:
            if n.name == name:
                return n
        raise KeyError(f"no node named '{name}'")

    @property
    def nodes(self) -> List[Node]:
        return list(self._nodes)

    def make_timer(self, period: float, offset: float = 0.0) -> Timer:
        return Timer(self.clock, period, offset)

    def spin_once(self, dt: float) -> None:
        """Advance the graph by ``dt`` of simulated time.

        Idle nodes get a start opportunity both before and after the
        scheduler advances, so a job completing mid-tick can immediately
        hand work to a downstream node.
        """
        for node in self._nodes:
            if not node.busy:
                node.try_start(self)
        self.clock.advance(dt)
        self.scheduler.advance_to(self.clock.now)
        for node in self._nodes:
            if not node.busy:
                node.try_start(self)
