"""Publisher/subscriber message passing — the ROS topic model.

The paper: "ROS provides peer-to-peer communication between nodes, either
through blocking 'service' calls, or through non-blocking FIFOs (known as
the Publisher/Subscriber paradigm)."  This module implements the
non-blocking FIFO side; :mod:`repro.middleware.services` the blocking side.

Each subscriber gets its own bounded FIFO; publishing never blocks, and a
full queue drops the *oldest* message (matching ROS queue_size semantics),
which is exactly the frame-dropping behaviour the Search-and-Rescue study
relies on ("a faster object detection kernel prevents the drone from
missing sampled frames").
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, Generic, List, Optional, TypeVar

T = TypeVar("T")


@dataclass
class Message(Generic[T]):
    """An envelope carrying a payload plus its publication timestamp."""

    data: T
    stamp: float
    seq: int = 0


class Subscription(Generic[T]):
    """A subscriber's private FIFO onto a topic."""

    def __init__(self, topic: "Topic", queue_size: int = 10) -> None:
        if queue_size < 1:
            raise ValueError("queue size must be >= 1")
        self.topic = topic
        self._queue: Deque[Message[T]] = deque(maxlen=queue_size)
        self.dropped = 0

    def _push(self, msg: Message[T]) -> None:
        if len(self._queue) == self._queue.maxlen:
            self.dropped += 1
        self._queue.append(msg)

    def pop(self) -> Optional[Message[T]]:
        """Oldest pending message, or None when empty."""
        if not self._queue:
            return None
        return self._queue.popleft()

    def latest(self) -> Optional[Message[T]]:
        """Newest pending message, discarding older ones."""
        if not self._queue:
            return None
        msg = self._queue[-1]
        self._queue.clear()
        return msg

    def pending(self) -> int:
        return len(self._queue)

    def clear(self) -> None:
        self._queue.clear()


class Topic(Generic[T]):
    """A named many-to-many channel."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._subs: List[Subscription[T]] = []
        self._seq = 0
        self.publish_count = 0

    def subscribe(self, queue_size: int = 10) -> Subscription[T]:
        sub = Subscription(self, queue_size=queue_size)
        self._subs.append(sub)
        return sub

    def publish(self, data: T, stamp: float) -> Message[T]:
        """Deliver ``data`` to every subscriber queue (non-blocking)."""
        self._seq += 1
        self.publish_count += 1
        msg = Message(data=data, stamp=stamp, seq=self._seq)
        for sub in self._subs:
            sub._push(msg)
        return msg

    @property
    def subscriber_count(self) -> int:
        return len(self._subs)


class TopicRegistry:
    """Name -> Topic lookup, the rosmaster equivalent."""

    def __init__(self) -> None:
        self._topics: Dict[str, Topic] = {}

    def topic(self, name: str) -> Topic:
        """Get or create the topic called ``name``."""
        if name not in self._topics:
            self._topics[name] = Topic(name)
        return self._topics[name]

    def names(self) -> List[str]:
        return sorted(self._topics)

    def __contains__(self, name: str) -> bool:
        return name in self._topics
