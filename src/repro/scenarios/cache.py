"""Content-hashed scenario instantiation cache.

Campaign sweeps instantiate the same scenario many times (every seed of
every operating point shares one world when the scenario pins its seed).
``instantiate_scenario`` builds each distinct scenario exactly once per
process, snapshots it through the world serializer, and rebuilds callers'
copies from the snapshot — so cached worlds are *isolated*: a mission
that mutates its world (adding people, a tracked subject, …) can never
leak obstacles into another run's world.

The cache key is the resolved spec's content hash (``scenario_key``), the
same naming discipline ``RunSpec.run_key`` uses for result stores.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Union

from ..observability import trace as _trace
from ..world.environment import World
from ..world.serialization import world_from_dict, world_to_dict
from .families import FAMILIES
from .spec import ScenarioSpec

__all__ = ["cache_stats", "clear_scenario_cache", "instantiate_scenario"]

_WORLD_CACHE: Dict[str, Dict[str, Any]] = {}
_STATS = {"hits": 0, "misses": 0}


def instantiate_scenario(
    scenario: Union[ScenarioSpec, str, Dict[str, Any]],
    default_seed: int = 0,
    cache: bool = True,
) -> World:
    """Materialize the world for ``scenario``.

    Parameters
    ----------
    scenario:
        A :class:`ScenarioSpec`, a ``family:difficulty[:seed]`` token, or
        a spec payload dict.
    default_seed:
        Seed used when the spec leaves its seed unset (inherit mode).
    cache:
        Reuse/populate the per-process content-hash cache.  Cached
        entries are serialized snapshots; every call returns a fresh,
        independently mutable :class:`World`.
    """
    spec = ScenarioSpec.coerce(scenario).resolved(default_seed)
    key = spec.scenario_key
    if cache and key in _WORLD_CACHE:
        _STATS["hits"] += 1
        _trace.count("scenario_cache.hits")
        with _trace.span("setup.scenario_rebuild", "campaign"):
            return world_from_dict(_WORLD_CACHE[key])
    with _trace.span("setup.scenario_build", "campaign") as _sp:
        _sp.set(scenario=spec.label())
        world = FAMILIES[spec.family].build(spec)
    if cache:
        _STATS["misses"] += 1
        _trace.count("scenario_cache.misses")
        # Snapshot *before* handing the world out: later caller mutations
        # must not reach the cache.
        _WORLD_CACHE[key] = world_to_dict(world)
    return world


def cache_stats() -> Dict[str, int]:
    """Hit/miss/size counters for the per-process scenario cache."""
    return {"hits": _STATS["hits"], "misses": _STATS["misses"],
            "size": len(_WORLD_CACHE)}


def clear_scenario_cache() -> None:
    """Drop every cached world and reset the counters (test isolation)."""
    _WORLD_CACHE.clear()
    _STATS["hits"] = 0
    _STATS["misses"] = 0
