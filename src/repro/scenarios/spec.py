"""Declarative scenario specifications.

A *scenario* names an environment the way a :class:`~repro.campaign.spec.RunSpec`
names a mission: declaratively, canonically serialized, and content-hashed.
``ScenarioSpec`` couples a scenario *family* (a named generator recipe over
``world/generator.py``) with a normalized ``difficulty`` knob in ``[0, 1]``
and a world seed; the registry in :mod:`repro.scenarios.families` maps the
requested difficulty onto concrete generator knobs (building density, tree
count, corridor width, rubble clutter, moving-people count/speed).

The spec is deliberately JSON-shaped end to end so it can ride inside
``workload_kwargs``, campaign run payloads, and JSONL stores unchanged.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Union

__all__ = ["ScenarioSpec", "canonical_json", "parse_scenario"]


def canonical_json(obj: Any) -> str:
    """Canonical JSON used for content hashing.

    The one hashing recipe shared by ``ScenarioSpec`` and the campaign
    layer's ``RunSpec``: ``sort_keys`` makes the hash independent of dict
    insertion order; non-JSON values degrade to their ``repr``.
    """
    return json.dumps(obj, sort_keys=True, separators=(",", ":"), default=repr)


@dataclass
class ScenarioSpec:
    """One environment configuration: family + difficulty + seed (+ overrides).

    Attributes
    ----------
    family:
        Name of a registered scenario family (see
        :func:`repro.scenarios.families.available_families`).
    difficulty:
        Normalized hardness in ``[0, 1]``.  ``0`` is the family's easiest
        rendition, ``1`` the hardest; the family maps it onto concrete
        generator knobs.
    seed:
        World-generation seed.  ``None`` means "inherit the mission seed"
        — a campaign's seed axis then varies the world along with the
        mission RNG, exactly as the canonical per-workload generators do.
    knobs:
        Family-specific overrides (e.g. ``{"size": 50.0}``) applied on
        top of the difficulty mapping.  Must be JSON-serializable.
    """

    family: str
    difficulty: float = 0.5
    seed: Optional[int] = None
    knobs: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.family = str(self.family)
        self.difficulty = float(self.difficulty)
        if not 0.0 <= self.difficulty <= 1.0:
            raise ValueError(
                f"scenario difficulty must be in [0, 1], got {self.difficulty}"
            )
        if self.seed is not None:
            self.seed = int(self.seed)
        # Normalize numeric knob values (120 vs 120.0 must name the same
        # scenario, exactly as RunSpec normalizes its numeric axes).
        self.knobs = {
            key: (
                float(value)
                if isinstance(value, (int, float)) and not isinstance(value, bool)
                else value
            )
            for key, value in dict(self.knobs).items()
        }
        # Validate the family and knob names eagerly so a typo fails at
        # spec time, not mid-campaign inside a worker process.
        from .families import FAMILIES  # local import: families -> world only

        if self.family not in FAMILIES:
            raise KeyError(
                f"unknown scenario family '{self.family}' "
                f"(choose from {sorted(FAMILIES)})"
            )
        accepted = set(FAMILIES[self.family].default_knobs)
        unknown = sorted(set(self.knobs) - accepted)
        if unknown:
            raise TypeError(
                f"unknown knobs for scenario family '{self.family}': "
                f"{unknown} (accepted: {sorted(accepted)})"
            )

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    def payload(self) -> Dict[str, Any]:
        """The JSON-shaped identity of this scenario (what the key hashes)."""
        return {
            "family": self.family,
            "difficulty": self.difficulty,
            "seed": self.seed,
            "knobs": dict(self.knobs),
        }

    @property
    def scenario_key(self) -> str:
        """16-hex-char content hash naming this scenario (cache key)."""
        return hashlib.sha256(
            canonical_json(self.payload()).encode()
        ).hexdigest()[:16]

    def resolved(self, default_seed: int = 0) -> "ScenarioSpec":
        """A concrete spec with the seed filled in (inherit -> ``default_seed``)."""
        if self.seed is not None:
            return self
        return ScenarioSpec(
            family=self.family,
            difficulty=self.difficulty,
            seed=int(default_seed),
            knobs=dict(self.knobs),
        )

    def label(self) -> str:
        """Compact human-readable name, e.g. ``urban:0.7`` or ``forest:1#s3``."""
        text = f"{self.family}:{self.difficulty:g}"
        if self.seed is not None:
            text += f"#s{self.seed}"
        return text

    # ------------------------------------------------------------------
    # Coercion / parsing
    # ------------------------------------------------------------------
    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "ScenarioSpec":
        known = {"family", "difficulty", "seed", "knobs"}
        stray = sorted(set(payload) - known)
        if stray:
            raise KeyError(f"unknown scenario fields: {stray}")
        return cls(
            family=payload["family"],
            difficulty=payload.get("difficulty", 0.5),
            seed=payload.get("seed"),
            knobs=dict(payload.get("knobs", {})),
        )

    @classmethod
    def coerce(
        cls, value: Union["ScenarioSpec", str, Dict[str, Any]]
    ) -> "ScenarioSpec":
        """Accept a spec, a ``family:difficulty[:seed]`` token, or a payload."""
        if isinstance(value, ScenarioSpec):
            return value
        if isinstance(value, str):
            return parse_scenario(value)
        if isinstance(value, dict):
            return cls.from_payload(value)
        raise TypeError(
            f"cannot interpret {type(value).__name__!r} as a scenario "
            "(expected ScenarioSpec, 'family:difficulty' string, or dict)"
        )


def parse_scenario(token: str) -> ScenarioSpec:
    """Parse a CLI token: ``family``, ``family:DIFF``, or ``family:DIFF:SEED``."""
    parts = token.split(":")
    if not parts[0]:
        raise ValueError(f"bad scenario token '{token}' (empty family)")
    try:
        if len(parts) == 1:
            return ScenarioSpec(family=parts[0])
        if len(parts) == 2:
            return ScenarioSpec(family=parts[0], difficulty=float(parts[1]))
        if len(parts) == 3:
            return ScenarioSpec(
                family=parts[0],
                difficulty=float(parts[1]),
                seed=int(parts[2]),
            )
    except ValueError as exc:
        raise ValueError(f"bad scenario token '{token}': {exc}") from None
    raise ValueError(
        f"bad scenario token '{token}' (expected FAMILY[:DIFFICULTY[:SEED]])"
    )
