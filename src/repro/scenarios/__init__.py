"""Scenario subsystem: declarative, content-hashed scenario families.

MAVBench evaluates its workloads under programmed environment knobs
(static obstacle density, dynamic-obstacle count/speed, congestion); this
package makes "which world, how hard" data instead of code:

* :mod:`~repro.scenarios.spec` — :class:`ScenarioSpec`, a canonically
  serialized, content-hashed scenario identity (family + normalized
  difficulty + seed + knob overrides);
* :mod:`~repro.scenarios.families` — the registry of scenario families
  layered over ``world/generator.py``, each mapping ``difficulty`` in
  ``[0, 1]`` onto concrete knobs with batched obstacle placement;
* :mod:`~repro.scenarios.metrics` — measured difficulty (occupied-volume
  fraction, corridor-width percentiles from vectorized free-space
  probes, dynamic congestion) so requested and realized difficulty can
  be compared;
* :mod:`~repro.scenarios.cache` — content-hash instantiation cache with
  serialization-snapshot isolation.

Workloads accept an injected scenario (``run_workload(...,
workload_kwargs={"scenario": "urban:0.7"})``), and campaigns sweep them
as a first-class axis (``CampaignSpec(scenarios=[...])`` /
``repro campaign --scenario urban:0.3 urban:0.9``).
"""

from .cache import cache_stats, clear_scenario_cache, instantiate_scenario
from .families import (
    CANONICAL_FAMILY,
    FAMILIES,
    ScenarioFamily,
    available_families,
    build_scenario_world,
    family_knobs,
    member_route,
    supports_member_routes,
)
from .metrics import (
    ScenarioMetrics,
    corridor_width_percentiles,
    dynamic_congestion,
    free_space_clearances,
    measure_scenario,
)
from .spec import ScenarioSpec, parse_scenario

__all__ = [
    "CANONICAL_FAMILY",
    "FAMILIES",
    "ScenarioFamily",
    "ScenarioMetrics",
    "ScenarioSpec",
    "available_families",
    "build_scenario_world",
    "cache_stats",
    "clear_scenario_cache",
    "corridor_width_percentiles",
    "dynamic_congestion",
    "family_knobs",
    "free_space_clearances",
    "instantiate_scenario",
    "measure_scenario",
    "member_route",
    "parse_scenario",
    "supports_member_routes",
]
