"""Scenario families: named, difficulty-graded environment recipes.

A family layers a normalized ``difficulty`` knob over the procedural
generators in :mod:`repro.world.generator`: each family maps
``difficulty in [0, 1]`` onto the concrete knobs the paper programs
(static obstacle density, tree count, corridor width, rubble clutter,
moving-people count/speed) and builds the corresponding
:class:`~repro.world.environment.World`.

Two properties make families fit for campaign-scale sweeps:

* **Batched placement** — each builder draws its obstacle parameter table
  in one RNG call per family (``rng.uniform(size=(N_MAX, k))``) and
  materializes obstacles from array slices, so instantiating a
  5-family x 5-difficulty sweep is vectorized rather than a per-obstacle
  Python sampling loop.
* **Nested difficulty** — for a fixed seed, the obstacle set at a lower
  difficulty is (up to deterministic growth of individual obstacles) a
  *subset* of the set at a higher difficulty: every obstacle comes from
  one fixed per-seed table, and difficulty only decides how much of the
  table materializes.  Deterministic knobs (door width, building height,
  patrol speed) move monotonically too, so measured congestion is
  non-decreasing in requested difficulty — not just in expectation, but
  per seed (pinned by ``tests/test_scenarios.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List

import numpy as np

from ..world.environment import World, empty_world
from ..world.generator import indoor_world
from ..world.obstacles import make_box_obstacle, make_person
from .spec import ScenarioSpec

__all__ = [
    "FAMILIES",
    "CANONICAL_FAMILY",
    "ScenarioFamily",
    "available_families",
    "build_scenario_world",
    "family_knobs",
    "member_route",
    "supports_member_routes",
]


def _lerp(lo: float, hi: float, difficulty: float) -> float:
    return lo + (hi - lo) * difficulty


def _count(lo: int, hi: int, difficulty: float) -> int:
    return int(round(_lerp(float(lo), float(hi), difficulty)))


def _fill_order(n: int) -> List[int]:
    """Indices ``0..n-1`` in bit-reversed order: every prefix of the
    sequence is spread roughly evenly over the range, so a difficulty
    prefix of fixed slots both *nests* and stays uniform."""
    width = max(1, (n - 1).bit_length())
    return sorted(
        range(n), key=lambda i: int(format(i, f"0{width}b")[::-1], 2)
    )


def _resolve_knobs(
    family: str, defaults: Dict[str, Any], overrides: Dict[str, Any]
) -> Dict[str, Any]:
    """Family defaults with the spec's overrides applied.

    Knob *names* are already validated against ``default_knobs`` by
    ``ScenarioSpec.__post_init__`` — every builder input is a constructed
    spec — so this is a pure merge.
    """
    merged = dict(defaults)
    merged.update(overrides)
    return merged


def _moving_people(
    world: World,
    count: int,
    speed: float,
    draws: np.ndarray,
    name_prefix: str = "walker",
    z: float = 0.9,
) -> None:
    """Materialize ``count`` patrolling people from a pre-drawn table.

    ``draws`` has one row per *potential* person (``(N_MAX, 4)`` in
    ``[0, 1)``), so lower difficulties use a strict prefix of higher
    ones — the dynamic-congestion analogue of nested static placement.
    """
    if count <= 0:
        return
    lo, hi = world.bounds.lo, world.bounds.hi
    xs = lo[0] + 3.0 + draws[:count, 0] * (hi[0] - lo[0] - 6.0)
    ys = lo[1] + 3.0 + draws[:count, 1] * (hi[1] - lo[1] - 6.0)
    dxs = 3.0 + draws[:count, 2] * 7.0
    dys = 3.0 + draws[:count, 3] * 7.0
    for k in range(count):
        x, y = float(xs[k]), float(ys[k])
        fx = min(x + float(dxs[k]), hi[0] - 1.0)
        fy = min(y + float(dys[k]), hi[1] - 1.0)
        world.add(
            make_person(
                (x, y, z),
                waypoints=[(x, y, z), (fx, y, z), (fx, fy, z), (x, fy, z)],
                speed=speed,
                name=f"{name_prefix}-{k}",
            )
        )


# ----------------------------------------------------------------------
# Builders (one per family)
# ----------------------------------------------------------------------
_FARM_DEFAULTS = {"width": 120.0, "length": 120.0, "min_rows": 4, "max_rows": 16}


def _farm_knobs(d: float) -> Dict[str, float]:
    return {
        "crop_rows": _count(_FARM_DEFAULTS["min_rows"], _FARM_DEFAULTS["max_rows"], d),
        "moving_people": 0,
    }


def _build_farm(spec: ScenarioSpec) -> World:
    k = _resolve_knobs("farm", _FARM_DEFAULTS, spec.knobs)
    width, length = float(k["width"]), float(k["length"])
    n_max = int(k["max_rows"])
    n = _count(int(k["min_rows"]), n_max, spec.difficulty)
    rng = np.random.default_rng(spec.seed)
    heights = 0.3 + rng.uniform(size=n_max) * 0.6  # one draw for the family
    world = empty_world((width, length, 40.0), name=f"farm@{spec.difficulty:g}")
    # Rows live on the fixed n_max grid and fill in bit-reversed order,
    # so a lower difficulty's rows are a subset of a higher one's while
    # staying evenly spread across the field.
    rows = -length / 2 + (np.arange(n_max) + 0.5) * length / n_max
    for i in sorted(_fill_order(n_max)[:n]):
        h = float(heights[i])
        world.add(
            make_box_obstacle(
                center=(0.0, float(rows[i]), h / 2),
                size=(width * 0.9, 1.0, h),
                kind="crop",
                name=f"crop-{i}",
            )
        )
    return world


_URBAN_DEFAULTS = {
    "blocks": 4,
    "block_size": 24.0,
    "street_width": 13.0,
    "min_density": 0.15,
    "max_density": 0.95,
    "min_height": 10.0,
    "max_height": 28.0,
    "max_people": 8,
    "min_people_speed": 0.8,
    "max_people_speed": 2.0,
}


def _urban_knobs(d: float) -> Dict[str, float]:
    k = _URBAN_DEFAULTS
    return {
        "building_density": _lerp(k["min_density"], k["max_density"], d),
        "max_height_m": _lerp(k["min_height"], k["max_height"], d),
        "moving_people": _count(0, k["max_people"], d),
        "people_speed_ms": _lerp(k["min_people_speed"], k["max_people_speed"], d),
    }


def _build_urban(spec: ScenarioSpec) -> World:
    k = _resolve_knobs("urban", _URBAN_DEFAULTS, spec.knobs)
    blocks = int(k["blocks"])
    block_size = float(k["block_size"])
    street = float(k["street_width"])
    d = spec.difficulty
    density = _lerp(float(k["min_density"]), float(k["max_density"]), d)
    h_max = _lerp(float(k["min_height"]), float(k["max_height"]), d)
    pitch = block_size + street
    span = blocks * pitch + street
    world = empty_world((span, span, float(k["max_height"]) + 17.0),
                        name=f"urban@{d:g}")
    rng = np.random.default_rng(spec.seed)
    lots = blocks * blocks
    draws = rng.uniform(size=(lots, 4))  # presence, width, depth, height
    people_draws = rng.uniform(size=(int(k["max_people"]), 4))
    origin = -span / 2 + street + block_size / 2
    ii, jj = np.divmod(np.arange(lots), blocks)
    cxs = origin + ii * pitch
    cys = origin + jj * pitch
    # A lot holds a building iff its (fixed) draw is under the difficulty's
    # density — so the built set at low difficulty nests inside high.
    present = draws[:, 0] < density
    widths = (0.5 + 0.45 * draws[:, 1]) * block_size
    depths = (0.5 + 0.45 * draws[:, 2]) * block_size
    heights = 6.0 + draws[:, 3] * max(h_max - 6.0, 0.0)
    for idx in np.nonzero(present)[0]:
        h = float(heights[idx])
        world.add(
            make_box_obstacle(
                center=(float(cxs[idx]), float(cys[idx]), h / 2),
                size=(float(widths[idx]), float(depths[idx]), h),
                kind="building",
                name=f"building-{int(idx)}",
            )
        )
    speed = _lerp(float(k["min_people_speed"]), float(k["max_people_speed"]), d)
    _moving_people(world, _count(0, int(k["max_people"]), d), speed, people_draws)
    return world


_FOREST_DEFAULTS = {"size": 80.0, "min_trees": 12, "max_trees": 120}


def _forest_knobs(d: float) -> Dict[str, float]:
    k = _FOREST_DEFAULTS
    return {"trees": _count(k["min_trees"], k["max_trees"], d), "moving_people": 0}


def _build_forest(spec: ScenarioSpec) -> World:
    k = _resolve_knobs("forest", _FOREST_DEFAULTS, spec.knobs)
    size = float(k["size"])
    n_max = int(k["max_trees"])
    n = _count(int(k["min_trees"]), n_max, spec.difficulty)
    rng = np.random.default_rng(spec.seed)
    draws = rng.uniform(size=(n_max, 5))  # x, y, height, trunk, canopy
    world = empty_world((size, size, 35.0), name=f"forest@{spec.difficulty:g}")
    xs = -size / 2 + 2.0 + draws[:, 0] * (size - 4.0)
    ys = -size / 2 + 2.0 + draws[:, 1] * (size - 4.0)
    hs = 8.0 + draws[:, 2] * 12.0
    trunks = 0.4 + draws[:, 3] * 0.6
    canopies = 2.0 + draws[:, 4] * 3.0
    for i in range(n):
        x, y, h = float(xs[i]), float(ys[i]), float(hs[i])
        t, c = float(trunks[i]), float(canopies[i])
        world.add(
            make_box_obstacle(
                center=(x, y, h / 2), size=(t, t, h), kind="tree",
                name=f"tree-{i}",
            )
        )
        world.add(
            make_box_obstacle(
                center=(x, y, h + c / 2), size=(c, c, c), kind="canopy",
                name=f"canopy-{i}",
            )
        )
    return world


_INDOOR_DEFAULTS = {
    "rooms_x": 3,
    "rooms_y": 2,
    "room_size": 8.0,
    "max_door_width": 1.3,
    "min_door_width": 0.72,
    "max_furniture": 10,
}


def _indoor_knobs(d: float) -> Dict[str, float]:
    k = _INDOOR_DEFAULTS
    return {
        "door_width_m": _lerp(k["max_door_width"], k["min_door_width"], d),
        "furniture": _count(0, k["max_furniture"], d),
        "moving_people": 0,
    }


def _build_indoor(spec: ScenarioSpec) -> World:
    k = _resolve_knobs("indoor", _INDOOR_DEFAULTS, spec.knobs)
    d = spec.difficulty
    door = _lerp(float(k["max_door_width"]), float(k["min_door_width"]), d)
    # The structural shell comes from the canonical generator (same walls
    # and door positions at every difficulty — only the gap narrows).
    world = indoor_world(
        rooms_x=int(k["rooms_x"]),
        rooms_y=int(k["rooms_y"]),
        room_size=float(k["room_size"]),
        door_width=door,
        seed=spec.seed,
    )
    world.name = f"indoor@{d:g}"
    # The generator auto-names walls from a process-global counter; pin
    # them so same-spec instantiations are identical, names included.
    for idx, obstacle in enumerate(world.obstacles):
        obstacle.name = f"wall-{idx}"
    # Clutter (furniture-sized boxes) rides on an independent stream so
    # door-position draws stay identical across difficulties.
    n_max = int(k["max_furniture"])
    n = _count(0, n_max, d)
    if n_max > 0:
        rng = np.random.default_rng(spec.seed + 101)
        draws = rng.uniform(size=(n_max, 5))  # x, y, w, d, h
        span_x = int(k["rooms_x"]) * float(k["room_size"])
        span_y = int(k["rooms_y"]) * float(k["room_size"])
        xs = -span_x / 2 + 1.0 + draws[:, 0] * (span_x - 2.0)
        ys = -span_y / 2 + 1.0 + draws[:, 1] * (span_y - 2.0)
        ws = 0.4 + draws[:, 2] * 1.2
        ds = 0.4 + draws[:, 3] * 1.2
        hs = 0.4 + draws[:, 4] * 1.0
        for i in range(n):
            h = float(hs[i])
            world.add(
                make_box_obstacle(
                    center=(float(xs[i]), float(ys[i]), h / 2),
                    size=(float(ws[i]), float(ds[i]), h),
                    kind="furniture",
                    name=f"furniture-{i}",
                )
            )
    return world


_DISASTER_DEFAULTS = {
    "size": 70.0,
    "min_debris": 12,
    "max_debris": 110,
    "n_survivors": 3,
}


def _disaster_knobs(d: float) -> Dict[str, float]:
    k = _DISASTER_DEFAULTS
    return {
        "debris": _count(k["min_debris"], k["max_debris"], d),
        "survivors": k["n_survivors"],
        "moving_people": 0,
    }


def _build_disaster(spec: ScenarioSpec) -> World:
    k = _resolve_knobs("disaster", _DISASTER_DEFAULTS, spec.knobs)
    size = float(k["size"])
    n_max = int(k["max_debris"])
    n = _count(int(k["min_debris"]), n_max, spec.difficulty)
    rng = np.random.default_rng(spec.seed)
    draws = rng.uniform(size=(n_max, 5))  # x, y, w, d, h
    world = empty_world((size, size, 25.0), name=f"disaster@{spec.difficulty:g}")
    xs = -size / 2 + 2.0 + draws[:, 0] * (size - 4.0)
    ys = -size / 2 + 2.0 + draws[:, 1] * (size - 4.0)
    ws = 2.0 + draws[:, 2] * 6.0
    ds = 2.0 + draws[:, 3] * 6.0
    hs = 1.0 + draws[:, 4] * 5.0
    for i in range(n):
        h = float(hs[i])
        world.add(
            make_box_obstacle(
                center=(float(xs[i]), float(ys[i]), h / 2),
                size=(float(ws[i]), float(ds[i]), h),
                kind="debris",
                name=f"debris-{i}",
            )
        )
    # Survivors hide in the far (north-east) quadrant, like the canonical
    # generator; their stream is independent of the debris table size.
    srng = np.random.default_rng(spec.seed + 7)
    placed = 0
    tries = 0
    while placed < int(k["n_survivors"]) and tries < 500:
        tries += 1
        x = float(srng.uniform(0.0, size / 2 - 3))
        y = float(srng.uniform(0.0, size / 2 - 3))
        person = make_person((x, y, 0.9), name=f"survivor-{placed}")
        if not any(person.box.intersects(o.box) for o in world.static_obstacles):
            world.add(person)
            placed += 1
    return world


_PARK_DEFAULTS = {
    "size": 120.0,
    "min_people": 1,
    "max_people": 12,
    "min_speed": 0.5,
    "max_speed": 2.2,
}


def _park_knobs(d: float) -> Dict[str, float]:
    k = _PARK_DEFAULTS
    return {
        "moving_people": _count(k["min_people"], k["max_people"], d),
        "people_speed_ms": _lerp(k["min_speed"], k["max_speed"], d),
    }


def _build_park(spec: ScenarioSpec) -> World:
    k = _resolve_knobs("park", _PARK_DEFAULTS, spec.knobs)
    size = float(k["size"])
    world = empty_world((size, size, 30.0), name=f"park@{spec.difficulty:g}")
    rng = np.random.default_rng(spec.seed)
    draws = rng.uniform(size=(int(k["max_people"]), 4))
    speed = _lerp(float(k["min_speed"]), float(k["max_speed"]), spec.difficulty)
    count = _count(int(k["min_people"]), int(k["max_people"]), spec.difficulty)
    _moving_people(world, count, speed, draws)
    return world


_SHARED_CITY_DEFAULTS = {
    "blocks": 4,
    "block_size": 24.0,
    "street_width": 13.0,
    "min_density": 0.10,
    "max_density": 0.60,
    "min_height": 8.0,
    "max_height": 20.0,
    "max_traffic": 10,
    "min_traffic_speed": 0.8,
    "max_traffic_speed": 2.0,
    # Member-route assignment knobs (consumed by ``member_route``, not
    # the world builder — the world is identical for every member).
    "route_altitude_m": 3.0,
    "altitude_step_m": 2.0,
    "altitude_slots": 6,
    "cross_traffic": 0.0,
}


def _shared_city_knobs(d: float) -> Dict[str, float]:
    k = _SHARED_CITY_DEFAULTS
    return {
        "building_density": _lerp(k["min_density"], k["max_density"], d),
        "max_height_m": _lerp(k["min_height"], k["max_height"], d),
        "traffic": _count(0, k["max_traffic"], d),
        "traffic_speed_ms": _lerp(
            k["min_traffic_speed"], k["max_traffic_speed"], d
        ),
    }


def _build_shared_city(spec: ScenarioSpec) -> World:
    """One city for a whole fleet: an urban street grid whose streets are
    building-free by construction (buildings stay inside their lots), so
    the lane assignments :func:`member_route` hands out are flyable at
    every difficulty.  Difficulty raises building density/height and the
    street-level traffic count/speed; the world never depends on which
    member is asking — one content hash, one shared city."""
    k = _resolve_knobs("shared_city", _SHARED_CITY_DEFAULTS, spec.knobs)
    blocks = int(k["blocks"])
    block_size = float(k["block_size"])
    street = float(k["street_width"])
    d = spec.difficulty
    density = _lerp(float(k["min_density"]), float(k["max_density"]), d)
    h_max = _lerp(float(k["min_height"]), float(k["max_height"]), d)
    pitch = block_size + street
    span = blocks * pitch + street
    world = empty_world(
        (span, span, float(k["max_height"]) + 17.0),
        name=f"shared_city@{d:g}",
    )
    rng = np.random.default_rng(spec.seed)
    lots = blocks * blocks
    draws = rng.uniform(size=(lots, 4))  # presence, width, depth, height
    traffic_draws = rng.uniform(size=(int(k["max_traffic"]), 4))
    origin = -span / 2 + street + block_size / 2
    ii, jj = np.divmod(np.arange(lots), blocks)
    cxs = origin + ii * pitch
    cys = origin + jj * pitch
    present = draws[:, 0] < density
    widths = (0.5 + 0.45 * draws[:, 1]) * block_size
    depths = (0.5 + 0.45 * draws[:, 2]) * block_size
    heights = 6.0 + draws[:, 3] * max(h_max - 6.0, 0.0)
    for idx in np.nonzero(present)[0]:
        h = float(heights[idx])
        world.add(
            make_box_obstacle(
                center=(float(cxs[idx]), float(cys[idx]), h / 2),
                size=(float(widths[idx]), float(depths[idx]), h),
                kind="building",
                name=f"building-{int(idx)}",
            )
        )
    speed = _lerp(
        float(k["min_traffic_speed"]), float(k["max_traffic_speed"]), d
    )
    _moving_people(
        world,
        _count(0, int(k["max_traffic"]), d),
        speed,
        traffic_draws,
        name_prefix="traffic",
    )
    return world


def _shared_city_route(spec: ScenarioSpec, member: int) -> Dict[str, Any]:
    k = _resolve_knobs("shared_city", _SHARED_CITY_DEFAULTS, spec.knobs)
    blocks = int(k["blocks"])
    block_size = float(k["block_size"])
    street = float(k["street_width"])
    pitch = block_size + street
    span = blocks * pitch + street
    # North-south street center lines: blocks+1 flyable lanes.
    lanes = blocks + 1
    centers = [-span / 2 + street / 2 + lane * pitch for lane in range(lanes)]
    i = member % lanes
    # Default assignment flies each member straight up its own street
    # (parallel lanes, laterally separated by >= one block pitch);
    # ``cross_traffic`` mirrors the goal lane so routes cross mid-city,
    # exercising the conflict-resolution policy.
    gi = (lanes - 1 - i) if float(k["cross_traffic"]) > 0.0 else i
    slots = max(int(k["altitude_slots"]), 1)
    altitude = (
        float(k["route_altitude_m"])
        + (member % slots) * float(k["altitude_step_m"])
    )
    y0 = -span / 2 + street / 2
    y1 = span / 2 - street / 2
    return {
        "start": np.array([centers[i], y0, 0.0]),
        "goal": np.array([centers[gi], y1, altitude]),
        "altitude_m": altitude,
        "span_m": span,
    }


#: Families whose worlds are meant to be shared by a fleet: maps family
#: name to its per-member start/goal assignment function.
_MEMBER_ROUTES: Dict[str, Callable[[ScenarioSpec, int], Dict[str, Any]]] = {
    "shared_city": _shared_city_route,
}


def supports_member_routes(family: str) -> bool:
    """True when ``family`` assigns per-member routes (a shared-world
    family whose one content-hashed world is flown by a whole fleet)."""
    return family in _MEMBER_ROUTES


def member_route(spec: ScenarioSpec, member: int) -> Dict[str, Any] | None:
    """Deterministic start/goal/altitude assignment for fleet member
    ``member`` of a shared-world scenario.

    A pure function of the resolved spec and the member index (no world
    needed), so every process and every enrollment order agrees on the
    assignment.  Returns ``None`` for families without member routes.
    """
    if member is None:
        return None
    builder = _MEMBER_ROUTES.get(spec.family)
    if builder is None:
        return None
    return builder(spec, int(member))


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ScenarioFamily:
    """A named, difficulty-graded environment recipe.

    Attributes
    ----------
    name:
        Registry key (what ``ScenarioSpec.family`` references).
    base:
        The ``world/generator.py`` environment this family layers over.
    description:
        One line for ``repro list`` and the README table.
    knobs_at:
        Maps difficulty to the resolved headline knobs (for labels/docs).
    build:
        Materializes the world for a resolved :class:`ScenarioSpec`.
    default_knobs:
        The override vocabulary: exactly the keys a ``ScenarioSpec.knobs``
        dict may set for this family (anything else is a ``TypeError``).
    """

    name: str
    base: str
    description: str
    knobs_at: Callable[[float], Dict[str, float]]
    build: Callable[[ScenarioSpec], World]
    default_knobs: Dict[str, Any]


FAMILIES: Dict[str, ScenarioFamily] = {
    f.name: f
    for f in (
        ScenarioFamily(
            "farm", "farm",
            "open cropland; difficulty adds crop rows (Scanning's canvas)",
            _farm_knobs, _build_farm, _FARM_DEFAULTS,
        ),
        ScenarioFamily(
            "urban", "urban",
            "street-grid city; difficulty raises building density/height "
            "and street congestion",
            _urban_knobs, _build_urban, _URBAN_DEFAULTS,
        ),
        ScenarioFamily(
            "forest", "forest",
            "scattered trunks+canopies; difficulty multiplies tree count",
            _forest_knobs, _build_forest, _FOREST_DEFAULTS,
        ),
        ScenarioFamily(
            "indoor", "indoor",
            "room grid; difficulty narrows doorways and adds furniture",
            _indoor_knobs, _build_indoor, _INDOOR_DEFAULTS,
        ),
        ScenarioFamily(
            "disaster", "disaster",
            "rubble field with hidden survivors; difficulty adds debris",
            _disaster_knobs, _build_disaster, _DISASTER_DEFAULTS,
        ),
        ScenarioFamily(
            "park", "empty",
            "open park with patrolling people; difficulty raises their "
            "count and walking speed",
            _park_knobs, _build_park, _PARK_DEFAULTS,
        ),
        ScenarioFamily(
            "shared_city", "urban",
            "one city shared by a whole fleet: building-free street "
            "lanes with per-member routes; difficulty raises density "
            "and street traffic",
            _shared_city_knobs, _build_shared_city, _SHARED_CITY_DEFAULTS,
        ),
    )
}

#: The family each workload's canonical generator corresponds to — what a
#: ``--scenario`` sweep varies when it replaces the hard-wired world.
CANONICAL_FAMILY: Dict[str, str] = {
    "scanning": "farm",
    "package_delivery": "urban",
    "mapping": "forest",
    "search_rescue": "disaster",
    "aerial_photography": "park",
}


def available_families() -> List[str]:
    """Registered scenario family names, sorted."""
    return sorted(FAMILIES)


def family_knobs(family: str, difficulty: float) -> Dict[str, float]:
    """The resolved headline knobs for ``family`` at ``difficulty``."""
    if family not in FAMILIES:
        raise KeyError(
            f"unknown scenario family '{family}' "
            f"(choose from {available_families()})"
        )
    return FAMILIES[family].knobs_at(float(difficulty))


def build_scenario_world(spec: ScenarioSpec) -> World:
    """Build the world for a (resolved) spec, bypassing the cache."""
    resolved = spec.resolved(0)
    return FAMILIES[resolved.family].build(resolved)
