"""Measured scenario difficulty.

A requested ``difficulty`` is a promise; these metrics check what the
generated world actually delivers, so studies can compare *requested*
against *realized* hardness:

* **occupied_fraction** — static obstacle volume over world volume (the
  paper's "(static) obstacle density" knob, measured);
* **corridor widths** — percentiles of free-space clearance at flight
  altitude, from a vectorized grid of free-space probes (one batched
  point-to-AABB distance computation, no per-probe Python loop);
* **dynamic_congestion** — patrolling-obstacle speed mass per 1000 m²
  (the "(dynamic) obstacle speed" knob, measured).

``congestion_score`` folds static and dynamic terms into one scalar that
is non-decreasing in requested difficulty for every registered family
(pinned by ``tests/test_scenarios.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..world.environment import World

__all__ = [
    "ScenarioMetrics",
    "corridor_width_percentiles",
    "dynamic_congestion",
    "free_space_clearances",
    "measure_scenario",
]


@dataclass(frozen=True)
class ScenarioMetrics:
    """Realized difficulty of one generated world."""

    occupied_fraction: float
    corridor_widths_m: Dict[str, float]  # {"p10": ..., "p50": ..., "p90": ...}
    dynamic_congestion: float
    congestion_score: float

    def as_dict(self) -> Dict[str, float]:
        row = {
            "occupied_fraction": self.occupied_fraction,
            "dynamic_congestion": self.dynamic_congestion,
            "congestion_score": self.congestion_score,
        }
        for key, value in self.corridor_widths_m.items():
            row[f"corridor_{key}_m"] = value
        return row


def _static_boxes(world: World) -> Tuple[np.ndarray, np.ndarray]:
    statics = world.static_obstacles
    if not statics:
        return np.zeros((0, 3)), np.zeros((0, 3))
    los = np.stack([o.box.lo for o in statics])
    his = np.stack([o.box.hi for o in statics])
    return los, his


def free_space_clearances(
    world: World, z: float = 1.5, spacing: Optional[float] = None
) -> np.ndarray:
    """Clearance (m) to the nearest static obstacle or boundary for every
    *free* probe on an xy grid at height ``z`` — fully vectorized.

    ``spacing`` defaults to ~1/64 of the larger horizontal extent
    (clamped to [0.5 m, 4 m]) so the probe count stays bounded on large
    worlds and dense on small ones.
    """
    lo, hi = world.bounds.lo, world.bounds.hi
    extent = float(max(hi[0] - lo[0], hi[1] - lo[1]))
    if spacing is None:
        spacing = min(max(extent / 64.0, 0.5), 4.0)
    xs = np.arange(lo[0] + spacing / 2, hi[0], spacing)
    ys = np.arange(lo[1] + spacing / 2, hi[1], spacing)
    gx, gy = np.meshgrid(xs, ys, indexing="ij")
    points = np.column_stack(
        [gx.ravel(), gy.ravel(), np.full(gx.size, float(z))]
    )
    # Distance from every probe to every static AABB in one broadcast:
    # clamp the probe into the box, then measure the displacement.
    los, his = _static_boxes(world)
    if los.shape[0]:
        nearest = np.clip(points[:, None, :], los[None, :, :], his[None, :, :])
        dists = np.linalg.norm(points[:, None, :] - nearest, axis=2)
        min_dist = dists.min(axis=1)
    else:
        min_dist = np.full(points.shape[0], np.inf)
    # Boundary walls count as obstacles for corridor purposes.
    boundary = np.minimum(
        np.minimum(points[:, 0] - lo[0], hi[0] - points[:, 0]),
        np.minimum(points[:, 1] - lo[1], hi[1] - points[:, 1]),
    )
    clearance = np.minimum(min_dist, boundary)
    return clearance[min_dist > 0.0]  # drop probes inside obstacles


def corridor_width_percentiles(
    world: World,
    percentiles: Sequence[float] = (10.0, 50.0, 90.0),
    z: float = 1.5,
    spacing: Optional[float] = None,
) -> Dict[str, float]:
    """Corridor width (2 x clearance) percentiles over the free probes."""
    clearances = free_space_clearances(world, z=z, spacing=spacing)
    if clearances.size == 0:
        return {f"p{int(p)}": 0.0 for p in percentiles}
    widths = 2.0 * clearances
    values = np.percentile(widths, list(percentiles))
    return {f"p{int(p)}": float(v) for p, v in zip(percentiles, values)}


def dynamic_congestion(world: World) -> float:
    """Patrolling-obstacle speed mass per 1000 m² of ground area.

    Only obstacles that actually move count (a survivor standing in
    rubble is a degenerate patrol of length zero).
    """
    lo, hi = world.bounds.lo, world.bounds.hi
    area = float((hi[0] - lo[0]) * (hi[1] - lo[1]))
    if area <= 0:
        return 0.0
    speed_mass = sum(
        o.speed for o in world.dynamic_obstacles if o.is_patrolling
    )
    return float(speed_mass) * 1000.0 / area


def measure_scenario(
    world: World, z: float = 1.5, spacing: Optional[float] = None
) -> ScenarioMetrics:
    """Measure the realized difficulty of ``world``."""
    occupied = float(world.density())
    corridors = corridor_width_percentiles(world, z=z, spacing=spacing)
    dynamic = dynamic_congestion(world)
    # Static density dominates; the dynamic term breaks ties for families
    # whose hardness is purely congestion (e.g. "park").  The corridor
    # term is reported but kept out of the score: clearance percentiles
    # shift with probe layout, while the two score terms are exactly
    # monotone in every family's difficulty mapping.
    score = occupied + 0.05 * dynamic
    return ScenarioMetrics(
        occupied_fraction=occupied,
        corridor_widths_m=corridors,
        dynamic_congestion=dynamic,
        congestion_score=float(score),
    )
