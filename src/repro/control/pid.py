"""PID controller.

The Aerial Photography workload plans motion with a PID loop that keeps
the tracked target near the image center (Fig. 7b).  A generic scalar PID
with anti-windup plus a convenience multi-axis wrapper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np


@dataclass
class Pid:
    """A scalar PID controller with output clamping and anti-windup.

    Attributes
    ----------
    kp, ki, kd:
        Gains.
    output_limit:
        Symmetric clamp on the output (None = unclamped).
    integral_limit:
        Symmetric clamp on the integral term (anti-windup).
    """

    kp: float
    ki: float = 0.0
    kd: float = 0.0
    output_limit: Optional[float] = None
    integral_limit: Optional[float] = None

    def __post_init__(self) -> None:
        self._integral = 0.0
        self._prev_error: Optional[float] = None

    def reset(self) -> None:
        self._integral = 0.0
        self._prev_error = None

    def update(self, error: float, dt: float) -> float:
        """One control step; returns the actuation command."""
        if dt <= 0:
            raise ValueError("dt must be positive")
        self._integral += error * dt
        if self.integral_limit is not None:
            self._integral = float(
                np.clip(self._integral, -self.integral_limit, self.integral_limit)
            )
        derivative = 0.0
        if self._prev_error is not None:
            derivative = (error - self._prev_error) / dt
        self._prev_error = error
        out = self.kp * error + self.ki * self._integral + self.kd * derivative
        if self.output_limit is not None:
            out = float(np.clip(out, -self.output_limit, self.output_limit))
        return out


@dataclass
class VectorPid:
    """Independent PID loops over each axis of a vector error."""

    axes: Sequence[Pid]

    @classmethod
    def uniform(
        cls,
        n: int,
        kp: float,
        ki: float = 0.0,
        kd: float = 0.0,
        output_limit: Optional[float] = None,
        integral_limit: Optional[float] = None,
    ) -> "VectorPid":
        return cls(
            axes=[
                Pid(kp, ki, kd, output_limit, integral_limit) for _ in range(n)
            ]
        )

    def update(self, error: np.ndarray, dt: float) -> np.ndarray:
        error = np.asarray(error, dtype=float)
        if error.shape != (len(self.axes),):
            raise ValueError(
                f"error must have shape ({len(self.axes)},), got {error.shape}"
            )
        return np.array(
            [pid.update(float(e), dt) for pid, e in zip(self.axes, error)]
        )

    def reset(self) -> None:
        for pid in self.axes:
            pid.reset()
