"""Control kernels: PID and trajectory path tracking.

From-scratch implementations of the control stage of the MAVBench
pipeline (Fig. 5).
"""

from .pid import Pid, VectorPid
from .path_tracking import PathTracker, TrackingStatus

__all__ = ["PathTracker", "Pid", "TrackingStatus", "VectorPid"]
