"""Path tracking: follow a time-parameterized trajectory, correcting drift.

"MAVBench includes a computational kernel that guides MAVs to follow
trajectories while repeatedly checking and correcting the error in the
MAV's position" (Section IV-C).  The tracker samples the reference
trajectory, and commands the feed-forward reference velocity plus a
proportional correction of the position error.

The reference is *governed*: it advances with wall time only while the
vehicle keeps up.  When an external speed limit (the Eq.-2 bound, the
reactive obstacle brake, the unknown-space crawl) slows the vehicle below
the trajectory's planned profile, the reference slows with it instead of
racing ahead — otherwise the proportional pull toward a distant reference
point would cut corners straight through obstacles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..planning.smoothing import Trajectory
from ..world.geometry import norm
from .pid import VectorPid


@dataclass
class TrackingStatus:
    """Tracker output for one control step."""

    velocity_command: np.ndarray
    cross_track_error: float
    progress: float  # 0..1 fraction of trajectory duration elapsed
    finished: bool


@dataclass
class PathTracker:
    """Trajectory-following controller with a governed reference.

    Attributes
    ----------
    trajectory:
        Reference to follow (retarget with :meth:`set_trajectory`).
    position_gain:
        Proportional gain on position error (feed-forward + P correction).
    max_speed:
        Clamp on the commanded speed.
    governor_full_error / governor_freeze_error:
        Cross-track error (m) below which the reference advances at full
        rate, and above which it freezes entirely (linear in between).
    """

    trajectory: Optional[Trajectory] = None
    position_gain: float = 1.2
    max_speed: float = 10.0
    finish_tolerance: float = 0.6
    governor_full_error: float = 1.0
    governor_freeze_error: float = 3.0

    def __post_init__(self) -> None:
        self._ref_elapsed = 0.0
        self._last_now: Optional[float] = None
        self._errors: List[float] = []
        self._replay: Optional[tuple] = None

    def set_trajectory(self, trajectory: Trajectory, now: float) -> None:
        """Begin following a new trajectory at simulated time ``now``."""
        self.trajectory = trajectory
        self._ref_elapsed = 0.0
        self._last_now = now
        self._errors = []
        self._replay = None

    @property
    def active(self) -> bool:
        return self.trajectory is not None and bool(self.trajectory.points)

    def update(self, position: np.ndarray, now: float) -> TrackingStatus:
        """Compute the velocity command for the current instant."""
        if not self.active or self._last_now is None:
            return TrackingStatus(np.zeros(3), 0.0, 1.0, True)
        traj = self.trajectory
        t0 = traj.points[0].time
        position = np.asarray(position, dtype=float)

        # Control loops often ask twice per instant (the tick callback and
        # the run-until predicate pass the same (position, now)).  With
        # ``now == _last_now`` the governor's dt is zero, so the reference
        # doesn't move and the whole computation replays the previous
        # answer; serve it from the one-entry replay cache.  The duplicate
        # error sample is still recorded, exactly as the full path would.
        replay = self._replay
        if (
            replay is not None
            and replay[0] is traj
            and replay[1] == now
            and now == self._last_now
            and replay[2] == self._ref_elapsed
            and np.array_equal(replay[3], position)
        ):
            status = replay[4]
            self._errors.append(status.cross_track_error)
            return status

        # Governor: advance the reference proportionally to how well the
        # vehicle is keeping up (full rate below governor_full_error,
        # frozen above governor_freeze_error).  Only the *along-track lag*
        # counts — the distance by which the reference leads the vehicle
        # along its direction of travel.  A vehicle that overshot the
        # reference (negative lag, e.g. corner overshoot at speed) must
        # see the reference advance at full rate so it can re-converge;
        # freezing on absolute error there deadlocks the tracker.
        ref = traj.sample(t0 + self._ref_elapsed)
        error_vec_now = ref.position - position
        ref_speed = float(norm(ref.velocity))
        if ref_speed > 0.1:
            lag = float(np.dot(error_vec_now, ref.velocity)) / ref_speed
        else:
            lag = 0.0
        span = self.governor_freeze_error - self.governor_full_error
        if span > 0:
            rate = 1.0 - (lag - self.governor_full_error) / span
        else:
            rate = 1.0
        rate = float(np.clip(rate, 0.0, 1.0))
        dt = max(now - self._last_now, 0.0)
        self._last_now = now
        self._ref_elapsed += dt * rate

        ref = traj.sample(t0 + self._ref_elapsed)
        error_vec = ref.position - position
        error = float(norm(error_vec))
        self._errors.append(error)
        command = ref.velocity + self.position_gain * error_vec
        speed = norm(command)
        if speed > self.max_speed:
            command = command * (self.max_speed / speed)
        end = traj.points[-1]
        progress = (
            min(self._ref_elapsed / traj.duration, 1.0)
            if traj.duration > 0
            else 1.0
        )
        finished = (
            progress >= 1.0
            and float(norm(end.position - position)) <= self.finish_tolerance
        )
        status = TrackingStatus(
            velocity_command=command,
            cross_track_error=error,
            progress=progress,
            finished=finished,
        )
        self._replay = (traj, now, self._ref_elapsed, position, status)
        return status

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def mean_error(self) -> float:
        if not self._errors:
            return 0.0
        return float(np.mean(self._errors))

    def max_error(self) -> float:
        if not self._errors:
            return 0.0
        return float(np.max(self._errors))
