"""Struct-of-arrays per-tick kernels for fleet execution.

Each per-tick phase of :meth:`repro.core.simulator.Simulation.step` —
control, dynamics, collision sensing, energy — has a ``*_batch`` kernel
here that advances N missions with stacked ``(N, ...)`` state arrays,
plus a ``*_scalar`` twin that runs the original single-mission code
path.  The repo-wide twin convention applies: the batched kernels must
be **bit-identical** to the scalar references (pinned by
``tests/test_fleet_batched.py``), so a fleet of N missions produces
exactly the records N sequential missions would.

Bit-identity notes
------------------
The sequential code computes Euclidean norms as
``float(np.linalg.norm(v))`` on a length-3 vector, which NumPy lowers to
``sqrt(dot(v, v))`` — a BLAS dot.  Axis-wise reformulations
(``np.sqrt(np.sum(v*v, axis=1))``, ``np.linalg.norm(..., axis=1)``,
``einsum``) round differently in the last ulp on some BLAS builds.  The
stacked matmul ``(V[:, None, :] @ V[:, :, None])`` dispatches to the
*same* dot kernel per row, so :func:`batched_norms` is the one norm
idiom every kernel here uses.  ``hypot``/``arctan2``/``fmod``/``clip``
are ufuncs and agree elementwise by construction.

Branches (acceleration clamping, speed clamping, yaw hold, waypoint
arrival) become boolean masks; rows are gathered, transformed with the
identical per-element operations, and scattered back.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..dynamics.flight_controller import FlightMode
from ..dynamics.state import VehicleState

__all__ = [
    "batched_norms",
    "wrap_angles",
    "flying_setpoints",
    "quadrotor_step_arrays",
    "aabb_distances",
    "rotor_power_arrays",
    "FleetBatchArrays",
    "control_step_batch",
    "control_step_scalar",
    "dynamics_step_batch",
    "dynamics_step_scalar",
    "sense_check_batch",
    "sense_check_scalar",
    "energy_step_batch",
    "energy_step_scalar",
    "pairwise_separations",
    "pairwise_separations_scalar",
    "resolve_conflicts",
    "resolve_conflicts_scalar",
]


# ----------------------------------------------------------------------
# Gathered per-mission constants
# ----------------------------------------------------------------------
class FleetBatchArrays:
    """Stacked mission constants for one fleet composition.

    Vehicle parameters, rotor coefficients, wind, tick lengths, and (for
    worlds without dynamic obstacles) the collision-box geometry never
    change over a mission, yet naive struct-of-arrays kernels would
    re-gather them from N Python objects every tick.  The coordinator
    builds one of these per *live set* of missions (rebuilding only when
    membership changes — a retirement or a mid-tick failure) so the
    per-tick kernels gather only state that actually evolves.
    """

    def __init__(self, sims: Sequence, dts: Sequence[float]) -> None:
        # ``key`` is an id() tuple, so the cache must pin the sims alive:
        # were they collectable, CPython could hand a *new* live set the
        # same ids and a stale cache would validate against it.
        self.sims = list(sims)
        self.key = tuple(id(s) for s in sims)
        quads = [s.vehicle for s in sims]
        self.dts = [float(d) for d in dts]
        self.dt = np.array(self.dts)
        self.gain = np.array([q.velocity_gain for q in quads])
        self.drag = np.array([q.params.drag_coefficient for q in quads])
        self.a_max = np.array([q.params.max_acceleration_ms2 for q in quads])
        self.v_max = np.array([q.params.max_speed_ms for q in quads])
        self.vz_max = np.array([q.params.max_vertical_speed_ms for q in quads])
        self.yaw_rate_max = np.array([q.params.max_yaw_rate_rads for q in quads])
        self.wind = np.stack([s.wind for s in sims])
        self.wind_xy = np.ascontiguousarray(self.wind[:, :2])
        self.beta = np.stack(
            [
                np.asarray(s.rotor_power.coefficients.beta, dtype=float)
                for s in sims
            ]
        )
        self.mass = np.array([s.rotor_power.mass_kg for s in sims])
        self.margins = np.array([s.ground_truth.drone_radius for s in sims])

        # Collision geometry: static worlds always return the same box
        # stacks from ``boxes_at``, so flatten them once, owner-indexed.
        self.sense_static = all(not s.world.dynamic_obstacles for s in sims)
        if self.sense_static:
            owner_parts: List[np.ndarray] = []
            lo_parts: List[np.ndarray] = []
            hi_parts: List[np.ndarray] = []
            counts = []
            self._static_refs = []
            for i, sim in enumerate(sims):
                los, his = sim.world._static_boxes()
                self._static_refs.append(sim.world._static_boxes_cache)
                count = los.shape[0]
                counts.append(count)
                if count:
                    owner_parts.append(np.full(count, i, dtype=np.int64))
                    lo_parts.append(los)
                    hi_parts.append(his)
            self.sense_counts = np.asarray(counts, dtype=np.int64)
            if owner_parts:
                self.sense_owner = np.concatenate(owner_parts)
                self.sense_lo = np.concatenate(lo_parts)
                self.sense_hi = np.concatenate(hi_parts)
                self.sense_box_margin = self.margins[self.sense_owner]
            else:
                self.sense_owner = np.zeros(0, dtype=np.int64)
                self.sense_lo = np.zeros((0, 3))
                self.sense_hi = np.zeros((0, 3))
                self.sense_box_margin = np.zeros(0)

    def sense_fresh(self, sims: Sequence) -> bool:
        """True while the pre-flattened geometry still mirrors each
        world (``World.add`` invalidates the per-world box cache this
        holds references into; a mismatch sends the sense kernel down
        the always-correct generic path)."""
        if not self.sense_static:
            return False
        return all(
            sim.world._static_boxes_cache is ref
            for sim, ref in zip(sims, self._static_refs)
        )


# ----------------------------------------------------------------------
# Array primitives
# ----------------------------------------------------------------------
def batched_norms(arr: np.ndarray) -> np.ndarray:
    """Per-row Euclidean norm of an ``(N, 3)`` array.

    Bit-identical to ``float(np.linalg.norm(row))`` per row: the stacked
    matmul runs the same BLAS dot kernel the 1-D ``np.linalg.norm`` path
    uses (see module docstring).
    """
    arr = np.asarray(arr, dtype=float)
    if arr.shape[0] == 0:
        return np.zeros(0)
    return np.sqrt((arr[:, None, :] @ arr[:, :, None])[:, 0, 0])


def wrap_angles(theta: np.ndarray) -> np.ndarray:
    """Vectorized :func:`repro.world.geometry.wrap_angle` — (-pi, pi]."""
    wrapped = np.fmod(np.asarray(theta, dtype=float) + math.pi, 2.0 * math.pi)
    wrapped = np.where(wrapped <= 0.0, wrapped + 2.0 * math.pi, wrapped)
    return wrapped - math.pi


# ----------------------------------------------------------------------
# Control (FlightController.update, FLYING-to-waypoint branch)
# ----------------------------------------------------------------------
def flying_setpoints(
    targets: np.ndarray,
    positions: np.ndarray,
    target_speeds: np.ndarray,
    tolerances: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Waypoint-tracking velocity setpoints for M missions at once.

    Returns ``(commands, at_waypoint)``: rows with ``at_waypoint`` True
    have reached their waypoint (the controller hovers); the others get
    ``unit(delta) * min(target_speed, max(0.8, 1.5 * dist))`` exactly as
    the scalar FLYING branch computes it.
    """
    deltas = np.asarray(targets, dtype=float) - np.asarray(positions, dtype=float)
    dists = batched_norms(deltas)
    at_waypoint = dists <= np.asarray(tolerances, dtype=float)
    speeds = np.minimum(
        np.asarray(target_speeds, dtype=float), np.maximum(0.8, 1.5 * dists)
    )
    # Guard the division on arrived rows (their command is discarded).
    safe = np.where(at_waypoint, 1.0, dists)
    commands = deltas / safe[:, None] * speeds[:, None]
    return commands, at_waypoint


def control_step_scalar(sim, dt: float) -> None:
    """Scalar twin: the original per-sim controller update."""
    sim.flight_controller.update(dt)


def control_step_batch(sims: Sequence, dts: Sequence[float]) -> None:
    """Advance every fleet member's flight controller by one tick.

    The steady-state cruise branch (FLYING toward a waypoint) is the hot
    one and runs batched; transient modes (arming, takeoff, landing,
    hover) are rare, O(1) each, and run through the original scalar
    update so their stateful side effects stay byte-exact.  FLYING with
    no waypoint (velocity tracking) is a no-op, as in the scalar code.
    """
    flying: List[int] = []
    for i, sim in enumerate(sims):
        fc = sim.flight_controller
        if fc.mode is FlightMode.FLYING:
            if fc._target is not None:
                flying.append(i)
        else:
            fc.update(dts[i])
    if not flying:
        return
    controllers = [sims[i].flight_controller for i in flying]
    commands, at_waypoint = flying_setpoints(
        np.array([fc._target for fc in controllers]),
        np.array([sims[i].state.position for i in flying]),
        np.array([fc._target_speed for fc in controllers]),
        np.array([fc.waypoint_tolerance for fc in controllers]),
    )
    for row, fc in enumerate(controllers):
        if at_waypoint[row]:
            fc.hover()
        else:
            fc.vehicle.command_velocity(commands[row])


# ----------------------------------------------------------------------
# Dynamics (Quadrotor.step)
# ----------------------------------------------------------------------
def quadrotor_step_arrays(
    position: np.ndarray,
    velocity: np.ndarray,
    yaw: np.ndarray,
    vel_cmd: np.ndarray,
    yaw_cmd: np.ndarray,
    wind: np.ndarray,
    dt: np.ndarray,
    gain: np.ndarray,
    drag: np.ndarray,
    a_max: np.ndarray,
    v_max: np.ndarray,
    vz_max: np.ndarray,
    yaw_rate_max: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Point-mass quadrotor integration over N stacked vehicles.

    ``yaw_cmd`` rows are NaN where no yaw command is active (the vehicle
    then yaws toward its direction of travel above 0.2 m/s horizontal,
    or holds).  Returns ``(new_position, new_velocity, new_yaw)``.
    """
    v_err = vel_cmd - velocity
    accel = gain[:, None] * v_err
    airspeed = velocity - wind
    accel = accel - drag[:, None] * airspeed
    a_mag = batched_norms(accel)
    over_a = a_mag > a_max
    if np.any(over_a):
        accel[over_a] = accel[over_a] * (a_max[over_a] / a_mag[over_a])[:, None]
    new_velocity = velocity + accel * dt[:, None]
    speed = batched_norms(new_velocity)
    over_v = speed > v_max
    if np.any(over_v):
        new_velocity[over_v] = (
            new_velocity[over_v] * (v_max[over_v] / speed[over_v])[:, None]
        )
    new_velocity[:, 2] = np.clip(new_velocity[:, 2], -vz_max, vz_max)
    new_position = position + new_velocity * dt[:, None]

    has_cmd = ~np.isnan(yaw_cmd)
    horizontal = np.hypot(new_velocity[:, 0], new_velocity[:, 1])
    track = np.arctan2(new_velocity[:, 1], new_velocity[:, 0])
    target = np.where(has_cmd, yaw_cmd, track)
    hold = ~has_cmd & ~(horizontal > 0.2)
    err = wrap_angles(target - yaw)
    max_step = yaw_rate_max * dt
    step = np.clip(err, -max_step, max_step)
    new_yaw = np.where(hold, yaw, wrap_angles(yaw + step))
    return new_position, new_velocity, new_yaw


def dynamics_step_scalar(sim, dt: float) -> None:
    """Scalar twin: the original per-sim dynamics integration."""
    sim.vehicle.step(dt, wind=sim.wind)


def dynamics_step_batch(
    sims: Sequence, dts: Sequence[float], cache: Optional[FleetBatchArrays] = None
) -> None:
    """Integrate every fleet member's dynamics by one tick (one gather,
    one array kernel, one scatter).  ``cache`` supplies the stacked
    mission constants; without one they are gathered ad hoc."""
    if cache is None:
        cache = FleetBatchArrays(sims, dts)
    quads = [sim.vehicle for sim in sims]
    states = [quad.state for quad in quads]
    new_p, new_v, new_yaw = quadrotor_step_arrays(
        position=np.array([s.position for s in states]),
        velocity=np.array([s.velocity for s in states]),
        yaw=np.array([s.yaw for s in states]),
        vel_cmd=np.array([q._velocity_command for q in quads]),
        yaw_cmd=np.array(
            [math.nan if q._yaw_command is None else q._yaw_command for q in quads]
        ),
        wind=cache.wind,
        dt=cache.dt,
        gain=cache.gain,
        drag=cache.drag,
        a_max=cache.a_max,
        v_max=cache.v_max,
        vz_max=cache.vz_max,
        yaw_rate_max=cache.yaw_rate_max,
    )
    for i, quad in enumerate(quads):
        old = states[i]
        dt = cache.dts[i]
        quad.state = VehicleState(
            position=new_p[i],
            velocity=new_v[i],
            acceleration=(new_v[i] - old.velocity) / dt,
            yaw=float(new_yaw[i]),
            time=old.time + dt,
        )


# ----------------------------------------------------------------------
# Sense (Simulation._check_collision)
# ----------------------------------------------------------------------
def aabb_distances(
    points: np.ndarray, los: np.ndarray, his: np.ndarray
) -> np.ndarray:
    """Distance from ``points[k]`` to the AABB ``(los[k], his[k])``.

    The batched form of :meth:`repro.world.geometry.AABB.distance_to`:
    clamp the point into the box, then the norm of the residual.
    """
    points = np.asarray(points, dtype=float)
    return batched_norms(np.clip(points, los, his) - points)


def sense_check_scalar(sim) -> None:
    """Scalar twin: the original per-sim ground-truth collision check."""
    sim._check_collision()


def sense_check_batch(
    sims: Sequence, cache: Optional[FleetBatchArrays] = None
) -> None:
    """Ground-truth collision check for the whole fleet in one query.

    Gathers every (mission, obstacle) pair into one flat distance
    computation; a mission collides when it is above the 0.3 m altitude
    gate and any of its obstacle distances is within its ground-truth
    margin, exactly the ``World.is_occupied`` any-semantics.  Static
    worlds reuse the cache's pre-flattened box stacks (distances for
    below-gate rows are computed and discarded — masking replaces the
    scalar path's early return, never changes it).
    """
    if not sims:
        return
    if cache is None:
        cache = FleetBatchArrays(sims, [sim.config.dt for sim in sims])
    if cache.sense_fresh(sims):
        if cache.sense_owner.size == 0:
            return
        positions = np.array([sim.state.position for sim in sims])
        airborne = positions[:, 2] > 0.3
        if not np.any(airborne):
            return
        owner = cache.sense_owner
        distances = aabb_distances(
            np.repeat(positions, cache.sense_counts, axis=0),
            cache.sense_lo,
            cache.sense_hi,
        )
        hits = (distances <= cache.sense_box_margin) & airborne[owner]
        if not np.any(hits):
            return
        hit_owner = np.unique(owner[hits])
    else:
        owners: List[np.ndarray] = []
        lo_parts: List[np.ndarray] = []
        hi_parts: List[np.ndarray] = []
        point_parts: List[np.ndarray] = []
        for i, sim in enumerate(sims):
            position = sim.state.position
            if not position[2] > 0.3:
                continue
            los, his = sim.world.boxes_at(sim.now)
            count = los.shape[0]
            if count == 0:
                continue
            owners.append(np.full(count, i, dtype=np.int64))
            lo_parts.append(los)
            hi_parts.append(his)
            point_parts.append(np.broadcast_to(position, (count, 3)))
        if not owners:
            return
        owner = np.concatenate(owners)
        distances = aabb_distances(
            np.concatenate(point_parts),
            np.concatenate(lo_parts),
            np.concatenate(hi_parts),
        )
        hit_owner = np.unique(owner[distances <= cache.margins[owner]])
    for i in hit_owner:
        sim = sims[int(i)]
        sim.collisions += 1
        sim.fail("collision")


# ----------------------------------------------------------------------
# Energy (Simulation._integrate_energy)
# ----------------------------------------------------------------------
def rotor_power_arrays(
    velocity: np.ndarray,
    acceleration: np.ndarray,
    wind_xy: np.ndarray,
    beta: np.ndarray,
    mass: np.ndarray,
) -> np.ndarray:
    """Eq. (1) rotor power over N stacked vehicles.

    ``beta`` is ``(N, 9)`` so heterogeneous airframes batch together;
    power is floored at each row's hover baseline exactly as
    :meth:`RotorPowerModel.power` does.
    """
    vxy = np.hypot(velocity[:, 0], velocity[:, 1])
    axy = np.hypot(acceleration[:, 0], acceleration[:, 1])
    vz = np.abs(velocity[:, 2])
    az = np.abs(acceleration[:, 2])
    horizontal = beta[:, 0] * vxy + beta[:, 1] * axy + beta[:, 2] * vxy * axy
    vertical = beta[:, 3] * vz + beta[:, 4] * az + beta[:, 5] * vz * az
    wind_term = velocity[:, 0] * wind_xy[:, 0] + velocity[:, 1] * wind_xy[:, 1]
    body = beta[:, 6] * mass + beta[:, 7] * mass * wind_term + beta[:, 8]
    hover_floor = beta[:, 6] * mass + beta[:, 8]
    return np.maximum(horizontal + vertical + body, hover_floor)


def energy_step_scalar(sim, dt: float) -> None:
    """Scalar twin: the original per-sim energy integration."""
    sim._integrate_energy(dt)


def energy_step_batch(
    sims: Sequence, dts: Sequence[float], cache: Optional[FleetBatchArrays] = None
) -> None:
    """Integrate every fleet member's energy draw by one tick.

    Rotor power (the arithmetic-heavy part) runs through the batched
    Eq.-(1) kernel for every row — grounded rows' values are computed
    and discarded, exactly as if never computed; coulomb counting and
    QoF sampling stay per-mission — they are stateful object
    bookkeeping, and grounded rows draw compute power only, as in the
    scalar path.
    """
    if not sims:
        return
    if cache is None:
        cache = FleetBatchArrays(sims, dts)
    airborne = [sim.flight_controller.airborne for sim in sims]
    rotor = rotor_power_arrays(
        velocity=np.array([sim.state.velocity for sim in sims]),
        acceleration=np.array([sim.state.acceleration for sim in sims]),
        wind_xy=cache.wind_xy,
        beta=cache.beta,
        mass=cache.mass,
    )
    for i, sim in enumerate(sims):
        dt = cache.dts[i]
        rotor_w = float(rotor[i]) if airborne[i] else 0.0
        compute_w = sim.platform.cpu_power_w(
            sim.scheduler.busy_cores, sim.scheduler.gpu_active
        )
        sim.battery.draw(rotor_w + compute_w, dt)
        if sim.battery.depleted:
            sim.fail("battery_depleted")
        sim.qof.record(sim.state, rotor_w, compute_w, dt, airborne[i])


# ----------------------------------------------------------------------
# Cross-member sensing (shared-world fleets)
# ----------------------------------------------------------------------
def pairwise_separations_scalar(positions: np.ndarray) -> np.ndarray:
    """Scalar twin: per-pair ``float(np.linalg.norm(a - b))`` loops."""
    positions = np.asarray(positions, dtype=float)
    n = positions.shape[0]
    seps = np.full((n, n), np.inf)
    for i in range(n):
        for j in range(n):
            if i != j:
                seps[i, j] = float(
                    np.linalg.norm(positions[i] - positions[j])
                )
    return seps


def pairwise_separations(positions: np.ndarray) -> np.ndarray:
    """All drone-to-drone distances over stacked ``(N, 3)`` positions.

    Returns an ``(N, N)`` symmetric matrix with ``inf`` on the diagonal
    (a member is never in conflict with itself).  Built on
    :func:`batched_norms` over the flattened difference vectors so every
    entry is bit-identical to the scalar ``np.linalg.norm(a - b)`` the
    sequential near-miss bookkeeping would compute.
    """
    positions = np.asarray(positions, dtype=float)
    n = positions.shape[0]
    if n == 0:
        return np.full((0, 0), np.inf)
    deltas = (positions[:, None, :] - positions[None, :, :]).reshape(-1, 3)
    seps = batched_norms(deltas).reshape(n, n)
    np.fill_diagonal(seps, np.inf)
    return seps


def resolve_conflicts_scalar(
    separations: np.ndarray,
    priorities: np.ndarray,
    conflict_radius: float,
) -> Tuple[np.ndarray, np.ndarray]:
    """Scalar twin: per-member loops over the separation matrix."""
    separations = np.asarray(separations, dtype=float)
    priorities = np.asarray(priorities)
    n = separations.shape[0]
    yields = np.zeros(n, dtype=bool)
    min_seps = np.full(n, np.inf)
    for i in range(n):
        for j in range(n):
            if i == j:
                continue
            min_seps[i] = min(min_seps[i], float(separations[i, j]))
            if (
                separations[i, j] < conflict_radius
                and priorities[j] < priorities[i]
            ):
                yields[i] = True
    return yields, min_seps


def resolve_conflicts(
    separations: np.ndarray,
    priorities: np.ndarray,
    conflict_radius: float,
) -> Tuple[np.ndarray, np.ndarray]:
    """Deterministic priority-ordered conflict resolution.

    A member *yields* (holds instead of flying its command) when any
    other member within ``conflict_radius`` carries a strictly smaller
    priority value — lower value wins the airspace, so of any conflicted
    pair exactly the lower-priority side gives way and the resolution is
    independent of member enumeration order.  Returns
    ``(yields, min_seps)``: the boolean yield mask and each member's
    distance to its nearest peer.
    """
    separations = np.asarray(separations, dtype=float)
    priorities = np.asarray(priorities)
    n = separations.shape[0]
    if n == 0:
        return np.zeros(0, dtype=bool), np.full(0, np.inf)
    min_seps = separations.min(axis=1)
    outranked = priorities[None, :] < priorities[:, None]
    yields = ((separations < conflict_radius) & outranked).any(axis=1)
    return yields, min_seps
