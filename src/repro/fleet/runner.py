"""Fleet runner: N missions advanced per NumPy call.

Sequential campaigns spend their host wall in per-mission Python ticking
— thousands of small NumPy calls on length-3 vectors.  The fleet runner
amortizes that dispatch overhead across missions: each mission runs its
*unchanged* workload code in its own thread, but every
:meth:`Simulation.step` parks at a shared tick gate, and the last thread
to arrive executes the whole fleet's per-tick phases as struct-of-arrays
kernels over stacked ``(N, ...)`` state (see :mod:`repro.fleet.kernels`).

Why threads rather than rewriting the workloads as coroutines: the
mission scripts are ordinary imperative Python (``run_until`` loops,
planning callbacks, mid-mission re-planning) and the thread stack *is*
their continuation.  The GIL serializes execution — threads here are a
control-flow device, not a parallelism device; the speedup comes from
batched kernels and the fleet-side perception fast paths
(:class:`~repro.fleet.pipeline.FleetPerceptionAccel`), not concurrency.

Determinism: missions share no mutable state, each per-tick phase
preserves its sequential per-mission math bit-for-bit, and planning
callbacks run serially inside the gate in enrollment order.  A fleet of
N therefore produces *byte-identical* mission reports, vehicle states,
and RNG end-states to N sequential runs — pinned by
``tests/test_fleet_batched.py`` and the fleet golden-trace suite.

Lifecycle of one fleet member::

    thread: set_adopter(coord.enroll) -> run_workload(...) builds a
    Simulation -> Simulation.__init__ adopts it -> every sim.step()
    parks at coord.step(sim) -> mission finishes -> finally: retire()

Missions that finish (or die) *retire*, shrinking the barrier so the
remaining fleet keeps ticking; a mission that is re-planning simply
isn't calling ``step`` from a kernel completion — planning happens
inside the gate's compute phase via its scheduler callbacks, so slow
planners stall only their own mission's tick, never the batch protocol.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..core import fleet_hook
from ..core.api import WorkloadResult, run_workload
from ..observability import trace as _trace
from .kernels import (
    FleetBatchArrays,
    control_step_batch,
    dynamics_step_batch,
    energy_step_batch,
    sense_check_batch,
)
from .pipeline import FleetPerceptionAccel

__all__ = ["FleetMission", "FleetCoordinator", "run_workloads_fleet"]


@dataclass
class FleetMission:
    """One mission's worth of :func:`repro.core.api.run_workload` inputs."""

    workload: str
    seed: int = 0
    cores: int = 4
    frequency_ghz: float = 2.2
    depth_noise_std: float = 0.0
    workload_kwargs: Optional[Dict[str, Any]] = None
    sim_kwargs: Dict[str, Any] = field(default_factory=dict)


class FleetCoordinator:
    """The shared tick gate for one fleet.

    ``expected`` counts mission threads.  A thread's sim parks here via
    :meth:`step`; when every non-retired thread has parked, the last
    arrival runs the gate: batched control and dynamics, per-sim clock +
    compute (planning callbacks fire here, serially, in enrollment
    order), batched sensing and energy.  The gate runs while holding the
    condition lock — safe, because every other fleet thread is blocked
    in ``wait_for`` at that moment and mission code never re-enters
    ``sim.step`` from a scheduler callback.

    Per-mission failures stay per-mission: an exception raised by a
    mission's compute phase (a planner blowing up, a workload callback
    asserting) is captured into ``_errors`` and re-raised *in that
    mission's thread* when it leaves the gate; the rest of the fleet
    ticks on.  Only an exception inside a batched kernel itself — which
    cannot be attributed to one mission — poisons the whole batch.
    """

    def __init__(self, expected: int) -> None:
        self._cond = threading.Condition()
        self._expected = expected
        self._retired = 0
        self._generation = 0
        self._enrolled = 0
        self._order: Dict[int, int] = {}
        self._waiting: Dict[int, Any] = {}
        self._by_thread: Dict[int, List[Any]] = {}
        self._errors: Dict[int, BaseException] = {}
        self._arrays: Optional[FleetBatchArrays] = None
        self.ticks = 0

    # ------------------------------------------------------------------
    # Enrollment (installed as the thread-local sim adopter)
    # ------------------------------------------------------------------
    def enroll(self, sim) -> None:
        """Adopt a freshly built sim into the fleet (thread-local hook)."""
        with self._cond:
            sim._fleet = self
            self._order[id(sim)] = self._enrolled
            self._enrolled += 1
            self._by_thread.setdefault(threading.get_ident(), []).append(sim)

    def adopt_pipeline(self, pipeline) -> None:
        """Install the perception fast paths on a fleet member's pipeline:
        the clearance/Eq.-2 accelerator plus the shared free-space cache
        on its collision checker (which the planners also query)."""
        accel = FleetPerceptionAccel(pipeline)
        pipeline._accel = accel
        pipeline.checker._fleet_free = accel.free_space

    # ------------------------------------------------------------------
    # The tick gate
    # ------------------------------------------------------------------
    def step(self, sim) -> None:
        """Park ``sim``'s thread until the fleet's next tick has run."""
        ident = threading.get_ident()
        with self._cond:
            generation = self._generation
            self._waiting[ident] = sim
            if len(self._waiting) == self._expected - self._retired:
                self._run_gate()
            else:
                self._cond.wait_for(lambda: self._generation != generation)
            error = self._errors.pop(id(sim), None)
        if error is not None:
            raise error

    def retire(self) -> None:
        """Drop the calling thread from the barrier (mission over).

        Called from each fleet thread's ``finally`` whether the mission
        succeeded, failed, or never finished building its world.  If the
        remaining threads are all already parked, the retiree fires the
        gate on their behalf so they don't wait forever.
        """
        ident = threading.get_ident()
        with self._cond:
            for sim in self._by_thread.pop(ident, []):
                sim._fleet = None
                self._order.pop(id(sim), None)
            self._waiting.pop(ident, None)
            self._retired += 1
            remaining = self._expected - self._retired
            if remaining > 0 and len(self._waiting) == remaining:
                self._run_gate()

    def _arrays_for(self, sims: List[Any], dts: List[float]) -> FleetBatchArrays:
        """The gathered-constants cache for this exact live set (rebuilt
        only when fleet membership changes)."""
        key = tuple(id(s) for s in sims)
        if self._arrays is None or self._arrays.key != key:
            self._arrays = FleetBatchArrays(sims, dts)
        return self._arrays

    def _run_gate(self) -> None:
        """Advance the whole parked fleet by one tick (lock held)."""
        sims = sorted(self._waiting.values(), key=lambda s: self._order[id(s)])
        try:
            dts = [sim.config.dt for sim in sims]
            cache = self._arrays_for(sims, dts)
            control_step_batch(sims, dts)
            dynamics_step_batch(sims, dts, cache)
            live: List[Any] = []
            live_dts: List[float] = []
            for sim, dt in zip(sims, dts):
                try:
                    sim.clock.advance(dt)
                    sim.scheduler.advance_to(sim.clock.now)
                except BaseException as exc:  # per-mission: planning blew up
                    self._errors[id(sim)] = exc
                else:
                    live.append(sim)
                    live_dts.append(dt)
            if live:
                live_cache = (
                    cache
                    if len(live) == len(sims)
                    else FleetBatchArrays(live, live_dts)
                )
                sense_check_batch(live, live_cache)
                energy_step_batch(live, live_dts, live_cache)
        except BaseException as exc:  # batched kernel itself failed
            for sim in sims:
                self._errors.setdefault(id(sim), exc)
        self.ticks += 1
        self._generation += 1
        self._waiting.clear()
        self._cond.notify_all()


def run_workloads_fleet(
    missions: Sequence[FleetMission],
) -> Tuple[List[Optional[WorkloadResult]], List[Optional[BaseException]]]:
    """Fly ``missions`` as one fleet; returns ``(results, errors)``.

    ``results[i]`` is mission *i*'s :class:`WorkloadResult`, or ``None``
    if it raised — in which case ``errors[i]`` holds the exception.  The
    call returns when every mission has finished or failed.

    Tracing is process-global and would interleave N missions' spans
    into one stream, so fleets refuse to run under an installed tracer —
    profile sequentially instead (the campaign layer enforces the same
    rule by falling back to sequential execution).
    """
    if _trace.get_tracer() is not None:
        raise RuntimeError(
            "fleet execution is incompatible with tracing; "
            "run sequentially to profile"
        )
    missions = list(missions)
    coordinator = FleetCoordinator(expected=len(missions))
    results: List[Optional[WorkloadResult]] = [None] * len(missions)
    errors: List[Optional[BaseException]] = [None] * len(missions)

    def _fly(index: int, mission: FleetMission) -> None:
        fleet_hook.set_adopter(coordinator.enroll)
        try:
            results[index] = run_workload(
                mission.workload,
                cores=mission.cores,
                frequency_ghz=mission.frequency_ghz,
                seed=mission.seed,
                depth_noise_std=mission.depth_noise_std,
                workload_kwargs=mission.workload_kwargs,
                **(mission.sim_kwargs or {}),
            )
        except BaseException as exc:
            errors[index] = exc
        finally:
            fleet_hook.set_adopter(None)
            coordinator.retire()

    threads = [
        threading.Thread(target=_fly, args=(i, m), name=f"fleet-{i}")
        for i, m in enumerate(missions)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return results, errors
