"""Fleet runner: N missions advanced per NumPy call.

Sequential campaigns spend their host wall in per-mission Python ticking
— thousands of small NumPy calls on length-3 vectors.  The fleet runner
amortizes that dispatch overhead across missions: each mission runs its
*unchanged* workload code in its own thread, but every
:meth:`Simulation.step` parks at a shared tick gate, and the last thread
to arrive executes the whole fleet's per-tick phases as struct-of-arrays
kernels over stacked ``(N, ...)`` state (see :mod:`repro.fleet.kernels`).

Why threads rather than rewriting the workloads as coroutines: the
mission scripts are ordinary imperative Python (``run_until`` loops,
planning callbacks, mid-mission re-planning) and the thread stack *is*
their continuation.  The GIL serializes execution — threads here are a
control-flow device, not a parallelism device; the speedup comes from
batched kernels and the fleet-side perception fast paths
(:class:`~repro.fleet.pipeline.FleetPerceptionAccel`), not concurrency.

Determinism: missions share no mutable state, each per-tick phase
preserves its sequential per-mission math bit-for-bit, and planning
callbacks run serially inside the gate in enrollment order.  A fleet of
N therefore produces *byte-identical* mission reports, vehicle states,
and RNG end-states to N sequential runs — pinned by
``tests/test_fleet_batched.py`` and the fleet golden-trace suite.

Lifecycle of one fleet member::

    thread: set_adopter(coord.enroll) -> run_workload(...) builds a
    Simulation -> Simulation.__init__ adopts it -> every sim.step()
    parks at coord.step(sim) -> mission finishes -> finally: retire()

Missions that finish (or die) *retire*, shrinking the barrier so the
remaining fleet keeps ticking; a mission that is re-planning simply
isn't calling ``step`` from a kernel completion — planning happens
inside the gate's compute phase via its scheduler callbacks, so slow
planners stall only their own mission's tick, never the batch protocol.

Tracing (see ``docs/observability.md``): fleets run under an installed
tracer.  Each member's spans land on its own mission stream
(:func:`repro.observability.trace.mission_scope`), the gate emits a
``fleet.gate`` span subtree on a dedicated gate stream with
``control``/``dynamics``/``compute``/``sense``/``energy`` children, and
the gate runner re-attributes each member's compute phase (planning
callbacks included) to that member's stream — so a fleet trace splits
into per-mission phase trees identical in shape to sequential ones.
Gate contention lands in per-member histograms: ``fleet.gate.wait.<m>``
(arrival → release, i.e. stragglers + the gate run; the gate runner
itself records 0) and ``fleet.gate.wake.<m>`` (release → resumption —
the wake overhead that grows with N).  When no tracer is installed the
gate pays one ``get_tracer()`` check per park and a handful of shared
no-op context managers per tick, gated <2% in
``benchmarks/test_ablation_tracing.py``.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..core import fleet_hook
from ..core.api import WorkloadResult, run_workload
from ..observability import trace as _trace
from ..observability.trace import _NOOP
from .kernels import (
    FleetBatchArrays,
    control_step_batch,
    dynamics_step_batch,
    energy_step_batch,
    sense_check_batch,
)
from .pipeline import FleetPerceptionAccel
from .shared_world import SharedWorldPolicy, SharedWorldState, gate_conflicts

__all__ = [
    "FleetMission",
    "FleetCoordinator",
    "fleet_gate_stats",
    "run_workloads_fleet",
]


@dataclass
class FleetMission:
    """One mission's worth of :func:`repro.core.api.run_workload` inputs."""

    workload: str
    seed: int = 0
    cores: int = 4
    frequency_ghz: float = 2.2
    depth_noise_std: float = 0.0
    workload_kwargs: Optional[Dict[str, Any]] = None
    sim_kwargs: Dict[str, Any] = field(default_factory=dict)


class FleetCoordinator:
    """The shared tick gate for one fleet.

    ``expected`` counts mission threads.  A thread's sim parks here via
    :meth:`step`; when every non-retired thread has parked, the last
    arrival runs the gate: batched control and dynamics, per-sim clock +
    compute (planning callbacks fire here, serially, in enrollment
    order), batched sensing and energy.  The gate runs while holding the
    condition lock — safe, because every other fleet thread is blocked
    in ``wait_for`` at that moment and mission code never re-enters
    ``sim.step`` from a scheduler callback.  The same lock is what makes
    gate-side *tracing* sound: the runner may push spans onto a parked
    member's mission stream (attributing that member's compute phase)
    because the member cannot resume until the gate releases it.

    Per-mission failures stay per-mission: an exception raised by a
    mission's compute phase (a planner blowing up, a workload callback
    asserting) is captured into ``_errors`` and re-raised *in that
    mission's thread* when it leaves the gate; the rest of the fleet
    ticks on.  Only an exception inside a batched kernel itself — which
    cannot be attributed to one mission — poisons the whole batch.
    """

    def __init__(
        self,
        expected: int,
        group: str = "fleet",
        shared: Optional[SharedWorldState] = None,
    ) -> None:
        self._cond = threading.Condition()
        self._expected = expected
        #: shared-world airspace (peer sensing + conflicts phase), or
        #: None for the classic independent-worlds fleet.
        self.shared = shared
        self._retired = 0
        self._generation = 0
        self._enrolled = 0
        self._order: Dict[int, int] = {}
        self._waiting: Dict[int, Any] = {}
        self._by_thread: Dict[int, List[Any]] = {}
        self._errors: Dict[int, BaseException] = {}
        self._arrays: Optional[FleetBatchArrays] = None
        self.ticks = 0
        #: group name — the trace's process lane for this fleet.
        self.group = group
        self._gate_label = f"{group}.gate"
        #: thread ident -> mission label (set before enrollment).
        self._thread_labels: Dict[int, str] = {}
        #: thread ident -> shared-world member index (set before
        #: enrollment; enrollment order is the fallback).
        self._thread_members: Dict[int, int] = {}
        #: sim id -> mission label (fixed at enrollment).
        self._labels: Dict[int, str] = {}
        #: perf_counter at the most recent gate release (wake latency).
        self._wake_t0 = 0.0
        #: member-label tuple last stamped onto a gate span.
        self._traced_members: Optional[Tuple[str, ...]] = None

    # ------------------------------------------------------------------
    # Enrollment (installed as the thread-local sim adopter)
    # ------------------------------------------------------------------
    def set_thread_label(self, label: str) -> None:
        """Name the calling thread's mission (trace/metric attribution)."""
        with self._cond:
            self._thread_labels[threading.get_ident()] = label

    def set_thread_member(self, member: int) -> None:
        """Pin the calling thread's shared-world member index (conflict
        priority and metrics attribution) ahead of enrollment."""
        with self._cond:
            self._thread_members[threading.get_ident()] = int(member)

    def enroll(self, sim) -> None:
        """Adopt a freshly built sim into the fleet (thread-local hook)."""
        with self._cond:
            sim._fleet = self
            order = self._enrolled
            self._order[id(sim)] = order
            self._enrolled += 1
            ident = threading.get_ident()
            self._by_thread.setdefault(ident, []).append(sim)
            self._labels[id(sim)] = self._thread_labels.get(ident, f"m{order}")
            if self.shared is not None:
                self.shared.register(
                    sim, self._thread_members.get(ident, order)
                )

    def adopt_pipeline(self, pipeline) -> None:
        """Install the perception fast paths on a fleet member's pipeline:
        the clearance/Eq.-2 accelerator plus the shared free-space cache
        on its collision checker (which the planners also query).  In a
        shared world the pipeline and checker additionally start sensing
        the other fleet members as exclusion bubbles."""
        accel = FleetPerceptionAccel(pipeline)
        pipeline._accel = accel
        pipeline.checker._fleet_free = accel.free_space
        if self.shared is not None:
            self.shared.adopt(pipeline)

    def _member_label(self, sim) -> str:
        return self._labels.get(id(sim)) or f"m{self._order.get(id(sim), 0)}"

    # ------------------------------------------------------------------
    # The tick gate
    # ------------------------------------------------------------------
    def step(self, sim) -> None:
        """Park ``sim``'s thread until the fleet's next tick has run."""
        ident = threading.get_ident()
        tracer = _trace.get_tracer()
        with self._cond:
            generation = self._generation
            self._waiting[ident] = sim
            if len(self._waiting) == self._expected - self._retired:
                self._run_gate()
                if tracer is not None:
                    # The runner never parks: zero wait, by definition.
                    label = self._member_label(sim)
                    tracer.metrics.histogram(
                        f"fleet.gate.wait.{label}"
                    ).observe(0.0)
            elif tracer is None:
                self._cond.wait_for(lambda: self._generation != generation)
            else:
                t0 = time.perf_counter()
                self._cond.wait_for(lambda: self._generation != generation)
                t1 = time.perf_counter()
                label = self._member_label(sim)
                metrics = tracer.metrics
                metrics.histogram(f"fleet.gate.wait.{label}").observe(t1 - t0)
                # _wake_t0 is this generation's release stamp: the next
                # gate cannot run (and restamp it) until this waiter has
                # re-parked, so the read is race-free under the lock.
                metrics.histogram(f"fleet.gate.wake.{label}").observe(
                    t1 - self._wake_t0
                )
            error = self._errors.pop(id(sim), None)
        if error is not None:
            raise error

    def retire(self) -> None:
        """Drop the calling thread from the barrier (mission over).

        Called from each fleet thread's ``finally`` whether the mission
        succeeded, failed, or never finished building its world.  If the
        remaining threads are all already parked, the retiree fires the
        gate on their behalf so they don't wait forever.
        """
        ident = threading.get_ident()
        tracer = _trace.get_tracer()
        with self._cond:
            for sim in self._by_thread.pop(ident, []):
                sim._fleet = None
                # Drop *every* id-keyed record for the sim, not just the
                # order: a label or pending error left behind could be
                # claimed by a later sim that CPython hands the same id.
                self._order.pop(id(sim), None)
                self._labels.pop(id(sim), None)
                self._errors.pop(id(sim), None)
                if self.shared is not None:
                    self.shared.unregister(sim)
            self._waiting.pop(ident, None)
            if tracer is not None:
                tracer.metrics.counter("fleet.gate.retired").inc()
            self._thread_labels.pop(ident, None)
            self._thread_members.pop(ident, None)
            self._retired += 1
            remaining = self._expected - self._retired
            if remaining > 0 and len(self._waiting) == remaining:
                self._run_gate()

    def _arrays_for(self, sims: List[Any], dts: List[float]) -> FleetBatchArrays:
        """The gathered-constants cache for this exact live set (rebuilt
        only when fleet membership changes)."""
        key = tuple(id(s) for s in sims)
        if self._arrays is None or self._arrays.key != key:
            self._arrays = FleetBatchArrays(sims, dts)
        return self._arrays

    def _run_gate(self) -> None:
        """Advance the whole parked fleet by one tick (lock held).

        The traced and untraced paths execute the *same* statements in
        the same order — tracing only brackets them with spans (shared
        no-ops when disabled), preserving the bit-identity contract.
        """
        tracer = _trace.get_tracer()
        sims = sorted(self._waiting.values(), key=lambda s: self._order[id(s)])
        if tracer is None:
            gate_scope = gate_span = _NOOP
        else:
            gate_scope = tracer.use_stream(self._gate_label, self.group)
            gate_span = _GateSpan(self, tracer, sims)
        with gate_scope, gate_span:
            try:
                dts = [sim.config.dt for sim in sims]
                cache = self._arrays_for(sims, dts)
                with _phase(tracer, "control"):
                    control_step_batch(sims, dts)
                if self.shared is not None:
                    # Between control (commands are fresh) and dynamics
                    # (overrides integrate this tick): cross-member
                    # sensing, priority holds, airspace metrics.
                    with _phase(tracer, "conflicts"):
                        gate_conflicts(self.shared, sims, tracer)
                with _phase(tracer, "dynamics"):
                    dynamics_step_batch(sims, dts, cache)
                live: List[Any] = []
                live_dts: List[float] = []
                with _phase(tracer, "compute"):
                    for sim, dt in zip(sims, dts):
                        try:
                            with self._member_compute(tracer, sim):
                                sim.clock.advance(dt)
                                sim.scheduler.advance_to(sim.clock.now)
                        except BaseException as exc:  # planning blew up
                            self._errors[id(sim)] = exc
                        else:
                            live.append(sim)
                            live_dts.append(dt)
                if live:
                    live_cache = (
                        cache
                        if len(live) == len(sims)
                        else FleetBatchArrays(live, live_dts)
                    )
                    with _phase(tracer, "sense"):
                        sense_check_batch(live, live_cache)
                    with _phase(tracer, "energy"):
                        energy_step_batch(live, live_dts, live_cache)
            except BaseException as exc:  # batched kernel itself failed
                for sim in sims:
                    self._errors.setdefault(id(sim), exc)
        if tracer is not None:
            tracer.metrics.counter("fleet.gate.ticks").inc()
        self.ticks += 1
        self._generation += 1
        self._waiting.clear()
        self._wake_t0 = time.perf_counter()
        self._cond.notify_all()

    def _member_compute(self, tracer, sim):
        """Attribute one member's compute phase to its mission stream.

        The span nests under the spans the member's parked thread left
        open (``mission/fly``), so a fleet member's ``tick.compute`` —
        planning callbacks included — lands exactly where the
        sequential path would put it.
        """
        if tracer is None:
            return _NOOP
        return _MemberCompute(tracer, self._member_label(sim))


class _MemberCompute:
    """``use_stream(member) + span('tick.compute')`` as one context."""

    __slots__ = ("_tracer", "_label", "_scope", "_span")

    def __init__(self, tracer, label: str) -> None:
        self._tracer = tracer
        self._label = label

    def __enter__(self):
        self._scope = self._tracer.use_stream(self._label)
        self._scope.__enter__()
        self._span = self._tracer.span("tick.compute", "compute")
        return self._span.__enter__()

    def __exit__(self, *exc):
        self._span.__exit__(*exc)
        self._scope.__exit__(*exc)


class _GateSpan:
    """The per-tick ``fleet.gate`` root span, with membership attrs."""

    __slots__ = ("_coord", "_tracer", "_sims", "_span")

    def __init__(self, coord: FleetCoordinator, tracer, sims: List[Any]) -> None:
        self._coord = coord
        self._tracer = tracer
        self._sims = sims

    def __enter__(self):
        self._span = self._tracer.span("fleet.gate", "fleet")
        sp = self._span.__enter__()
        members = tuple(self._coord._member_label(s) for s in self._sims)
        sp.set(n=len(members))
        if members != self._coord._traced_members:
            # Full member list only on membership change (enroll/retire)
            # keeps per-tick span payloads O(1).
            sp.set(members=list(members))
            self._coord._traced_members = members
        return sp

    def __exit__(self, *exc):
        self._span.__exit__(*exc)


def _phase(tracer, name: str):
    """A gate-phase child span, or the shared no-op when untraced."""
    if tracer is None:
        return _NOOP
    return tracer.span(name, "fleet")


def fleet_gate_stats(snapshot: Dict[str, Any]) -> Dict[str, Any]:
    """Extract the gate-contention block from a metrics snapshot.

    Returns ``{"ticks", "retired", "wait": {member: hist}, "wake":
    {member: hist}, "conflicts": {...}}`` — empty member dicts when the
    snapshot holds no fleet metrics (e.g. a sequential run).  The
    ``conflicts`` block folds the shared-world ``fleet.conflicts.*``
    counters (all zero for independent-worlds fleets); its
    ``min_separation`` entry is the per-tick fleet-minimum histogram, or
    None when the conflicts phase never ran.  Both ``repro profile
    --fleet`` and the campaign fleet profile report through here.
    """
    counters = snapshot.get("counters", {})
    histograms = snapshot.get("histograms", {})
    waits: Dict[str, Any] = {}
    wakes: Dict[str, Any] = {}
    for name, hist in histograms.items():
        if name.startswith("fleet.gate.wait."):
            waits[name[len("fleet.gate.wait."):]] = hist
        elif name.startswith("fleet.gate.wake."):
            wakes[name[len("fleet.gate.wake."):]] = hist
    return {
        "ticks": counters.get("fleet.gate.ticks", 0),
        "retired": counters.get("fleet.gate.retired", 0),
        "wait": waits,
        "wake": wakes,
        "conflicts": {
            "holds": counters.get("fleet.conflicts.holds", 0),
            "near_misses": counters.get("fleet.conflicts.near_misses", 0),
            "drone_collisions": counters.get(
                "fleet.conflicts.drone_collisions", 0
            ),
            "min_separation": histograms.get("fleet.conflicts.min_separation"),
        },
    }


def run_workloads_fleet(
    missions: Sequence[FleetMission],
    labels: Optional[Sequence[str]] = None,
    group: str = "fleet",
    shared_world=None,
) -> Tuple[List[Optional[WorkloadResult]], List[Optional[BaseException]]]:
    """Fly ``missions`` as one fleet; returns ``(results, errors)``.

    ``results[i]`` is mission *i*'s :class:`WorkloadResult`, or ``None``
    if it raised — in which case ``errors[i]`` holds the exception.  The
    call returns when every mission has finished or failed.

    ``shared_world`` switches on the shared-airspace layer (see
    :mod:`repro.fleet.shared_world`): pass ``True`` for the default
    :class:`SharedWorldPolicy`, a policy for custom radii, or a
    pre-built :class:`SharedWorldState` to inspect afterwards.  Member
    index (conflict priority) is each mission's ``member`` workload
    kwarg when present, else its position in ``missions``; with two or
    more members, each mission report gains ``fleet_near_misses``,
    ``fleet_conflict_holds``, and ``fleet_min_separation_m`` extras.
    Missions are expected to share one world — pin the scenario seed
    (e.g. ``shared_city:0.4:7``) so every member builds the same city.

    Under an installed tracer each mission's spans collect on a stream
    named ``labels[i]`` (default ``"m{i}:{workload}"``) in process lane
    ``group``, and the tick gate adds its own ``{group}.gate`` lane plus
    per-member wait/wake histograms — see ``docs/observability.md``.
    Tracing never alters execution: results stay byte-identical.
    """
    missions = list(missions)
    if labels is None:
        labels = [f"m{i}:{m.workload}" for i, m in enumerate(missions)]
    else:
        labels = list(labels)
        if len(labels) != len(missions):
            raise ValueError(
                f"labels/missions length mismatch "
                f"({len(labels)} vs {len(missions)})"
            )
    if shared_world is None or shared_world is False:
        shared_state = None
    elif isinstance(shared_world, SharedWorldState):
        shared_state = shared_world
    elif isinstance(shared_world, SharedWorldPolicy):
        shared_state = SharedWorldState(shared_world)
    else:
        shared_state = SharedWorldState()
    members = [
        int((m.workload_kwargs or {}).get("member", i))
        for i, m in enumerate(missions)
    ]
    coordinator = FleetCoordinator(
        expected=len(missions), group=group, shared=shared_state
    )
    results: List[Optional[WorkloadResult]] = [None] * len(missions)
    errors: List[Optional[BaseException]] = [None] * len(missions)

    def _fly(index: int, mission: FleetMission, label: str) -> None:
        fleet_hook.set_adopter(coordinator.enroll)
        coordinator.set_thread_label(label)
        if shared_state is not None:
            coordinator.set_thread_member(members[index])
        try:
            with _trace.mission_scope(label, group):
                results[index] = run_workload(
                    mission.workload,
                    cores=mission.cores,
                    frequency_ghz=mission.frequency_ghz,
                    seed=mission.seed,
                    depth_noise_std=mission.depth_noise_std,
                    workload_kwargs=mission.workload_kwargs,
                    **(mission.sim_kwargs or {}),
                )
        except BaseException as exc:
            errors[index] = exc
        finally:
            fleet_hook.set_adopter(None)
            coordinator.retire()

    threads = [
        threading.Thread(
            target=_fly, args=(i, m, labels[i]), name=f"fleet-{i}"
        )
        for i, m in enumerate(missions)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if shared_state is not None and len(missions) >= 2:
        # Airspace extras only make sense with someone to share the sky
        # with — a fleet of one stays byte-identical to sequential.
        for i, result in enumerate(results):
            if result is None:
                continue
            record = shared_state.metrics.get(members[i])
            if record is None:
                continue
            extra = result.report.extra
            if math.isfinite(record["min_separation_m"]):
                extra["fleet_min_separation_m"] = record["min_separation_m"]
            extra["fleet_near_misses"] = record["near_misses"]
            extra["fleet_conflict_holds"] = record["conflict_holds"]
    return results, errors
