"""Shared-world fleet state: one city, N drones, cross-member sensing.

Classic fleets fly N *independent* worlds — each mission builds its own
city and the batch gate only amortizes NumPy dispatch.  A *shared-world*
fleet flies one content-hashed city (the ``shared_city`` scenario
family): every member plans against the same buildings and traffic, and
the other N-1 drones become dynamic obstacles it must sense and avoid.

Three mechanisms, all deterministic:

1. **Peer sensing** — each member's perception pipeline and collision
   checker see the other drones' *current* positions as exclusion
   bubbles (:meth:`SharedWorldState.adopt`).  Positions only change
   inside the tick gate, and mission code runs only while every other
   thread is parked, so a member always senses a consistent snapshot.
2. **Conflict resolution** (:func:`gate_conflicts`) — a dedicated gate
   phase between control and dynamics computes all pairwise separations
   over the stacked fleet state and applies a priority-ordered
   altitude-hold rule: of any pair closer than the conflict radius, the
   *higher member index* yields (holds laterally and climbs gently)
   while the lower-index member keeps its command.  Lower index always
   wins, so the outcome is independent of enumeration order.
3. **Airspace metrics** — per-member minimum separation, edge-triggered
   near-miss counts, and hold tallies accumulate on the shared state
   and land in each mission report's ``extra`` block (plus
   ``fleet.conflicts.*`` counters when a tracer is installed).

A pair closer than the *collision* radius is a drone-drone crash: both
members fail with reason ``drone_collision``, mirroring the ground-truth
obstacle check's semantics.

With fewer than two registered airborne members every mechanism is
inert, so a shared-world fleet of one is bit-identical to the same
mission run sequentially.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Set, Tuple

import numpy as np

from .kernels import pairwise_separations, resolve_conflicts

__all__ = [
    "SharedWorldPolicy",
    "SharedWorldState",
    "gate_conflicts",
]


@dataclass(frozen=True)
class SharedWorldPolicy:
    """Tunable radii and rules for one shared-world fleet.

    Attributes
    ----------
    conflict_radius_m:
        Pairs closer than this are *in conflict*: the lower-priority
        member holds instead of flying its commanded velocity.
    near_miss_radius_m:
        Pairs closer than this log an (edge-triggered) near miss.
    collision_radius_m:
        Pairs closer than this have physically collided — both members
        fail with ``drone_collision``.  Roughly two drone radii.
    peer_radius_m:
        Exclusion-bubble radius added to the querying drone's own radius
        when peers are injected into clearance and collision queries.
    hold_climb_ms:
        Vertical speed a yielding member climbs at while holding, so
        conflicted pairs open altitude separation instead of stalling.
    altitude_gate_m:
        Grounded drones (at or below this altitude) neither sense peers
        nor count as obstacles — same gate the crash check uses.
    """

    conflict_radius_m: float = 5.0
    near_miss_radius_m: float = 2.5
    collision_radius_m: float = 0.65
    peer_radius_m: float = 0.6
    hold_climb_ms: float = 0.5
    altitude_gate_m: float = 0.3


class SharedWorldState:
    """Cross-member registry and airspace bookkeeping for one fleet.

    The coordinator registers each member's sim at enrollment (keyed by
    ``id`` with a strong reference, so CPython id reuse cannot alias a
    retired member onto a live one) and unregisters it at retirement.
    ``metrics`` maps member index to its accumulated airspace record::

        {"min_separation_m": float, "near_misses": float,
         "conflict_holds": float}
    """

    def __init__(self, policy: Optional[SharedWorldPolicy] = None) -> None:
        self.policy = policy or SharedWorldPolicy()
        self._lock = threading.Lock()
        #: id(sim) -> (sim, member index); the sim ref pins the id.
        self._members: Dict[int, Tuple[object, int]] = {}
        #: member-index pairs currently inside the near-miss radius
        #: (edge-triggering: one near miss per incursion, not per tick).
        self._near_pairs: Set[Tuple[int, int]] = set()
        self.metrics: Dict[int, Dict[str, float]] = {}
        self.min_separation_m = math.inf
        self.near_misses = 0
        self.conflict_holds = 0
        self.drone_collisions = 0

    # ------------------------------------------------------------------
    # Registration (driven by the coordinator's enroll/retire)
    # ------------------------------------------------------------------
    def register(self, sim, member: int) -> None:
        """Add a member's sim to the shared airspace."""
        with self._lock:
            self._members[id(sim)] = (sim, int(member))
            self.metrics.setdefault(
                int(member),
                {
                    "min_separation_m": math.inf,
                    "near_misses": 0.0,
                    "conflict_holds": 0.0,
                },
            )

    def unregister(self, sim) -> None:
        """Remove a retired member's sim (its metrics record stays)."""
        with self._lock:
            self._members.pop(id(sim), None)

    def member_of(self, sim) -> Optional[int]:
        """This sim's member index, or None if it is not registered."""
        entry = self._members.get(id(sim))
        return None if entry is None else entry[1]

    # ------------------------------------------------------------------
    # Peer sensing (queried from mission threads between gates)
    # ------------------------------------------------------------------
    def adopt(self, pipeline) -> None:
        """Wire peer sensing into one member's perception stack: the
        pipeline's clearance queries (safety filter, Eq.-2 velocity cap)
        and its collision checker (all planners) both start seeing the
        other drones."""
        pipeline._shared_world = self
        pipeline.checker._peer_block = _PeerBlock(
            self, pipeline.sim, pipeline.checker.drone_radius
        )

    def peers_for(self, sim) -> Optional[np.ndarray]:
        """Stacked ``(P, 3)`` positions of the *other* airborne members
        (member-index order), or None when the sky is empty."""
        gate = self.policy.altitude_gate_m
        me = id(sim)
        with self._lock:
            entries = sorted(self._members.values(), key=lambda e: e[1])
        rows = [
            e[0].state.position.copy()
            for e in entries
            if id(e[0]) != me and e[0].state.position[2] > gate
        ]
        if not rows:
            return None
        return np.stack(rows)

    def clearance_along(self, sim, direction, max_dist: float = 8.0) -> float:
        """Distance from ``sim`` to the nearest peer bubble along
        ``direction`` (capped at ``max_dist``) — the peer half of the
        pipeline's ray-march clearance.  Ray-sphere entry distance
        against each peer's exclusion bubble."""
        peers = self.peers_for(sim)
        if peers is None:
            return float(max_dist)
        d = np.asarray(direction, dtype=float)
        norm = float(np.linalg.norm(d))
        if norm < 1e-9:
            return float(max_dist)
        unit = d / norm
        radius = self.policy.peer_radius_m + sim.ground_truth.drone_radius
        rel = peers - sim.state.position[None, :]
        along = rel @ unit
        perp2 = np.sum(rel * rel, axis=1) - along * along
        hit = (along > 0.0) & (perp2 <= radius * radius)
        if not np.any(hit):
            return float(max_dist)
        entry = along[hit] - np.sqrt(
            np.maximum(radius * radius - perp2[hit], 0.0)
        )
        return float(min(max(float(entry.min()), 0.0), max_dist))


class _PeerBlock:
    """Point-batch peer test installed on a member's collision checker.

    Callable ``(N, 3) points -> (N,) bool blocked-mask`` (or None when
    no peers are airborne, which keeps the checker's sequential math —
    and its batched/scalar twin identity — untouched).  Both
    ``points_free`` and ``points_free_scalar`` call this same code, so
    the twins keep agreeing with peers present.
    """

    __slots__ = ("_state", "_sim", "_drone_radius")

    def __init__(self, state: SharedWorldState, sim, drone_radius: float):
        self._state = state
        self._sim = sim
        self._drone_radius = float(drone_radius)

    def __call__(self, points: np.ndarray) -> Optional[np.ndarray]:
        peers = self._state.peers_for(self._sim)
        if peers is None:
            return None
        radius = self._state.policy.peer_radius_m + self._drone_radius
        delta = points[:, None, :] - peers[None, :, :]
        return (np.sum(delta * delta, axis=2) <= radius * radius).any(axis=1)


# ----------------------------------------------------------------------
# The conflicts gate phase
# ----------------------------------------------------------------------
def gate_conflicts(state: SharedWorldState, sims: Sequence, tracer=None) -> None:
    """One tick of cross-member sensing and conflict resolution.

    Runs inside the gate after the control phase (commands are fresh)
    and before dynamics (overridden commands take effect this tick):

    1. pairwise separations over the stacked airborne members,
    2. separation metrics (per-member minimums, edge-triggered near
       misses, ``fleet.conflicts.*`` counters under a tracer),
    3. drone-drone collisions (both members of a pair inside the
       collision radius fail with ``drone_collision``),
    4. priority holds: each surviving conflicted member that is
       outranked by a nearby peer has its velocity command overridden
       to a lateral hold plus a gentle climb.

    Deterministic by construction: pure array math over the stacked
    state, priority = member index, no RNG, no wall clock.
    """
    policy = state.policy
    rows = []
    member_list = []
    for i, sim in enumerate(sims):
        member = state.member_of(sim)
        if member is not None:
            rows.append(i)
            member_list.append(member)
    if len(rows) < 2:
        return
    positions = np.stack([sims[i].state.position for i in rows])
    airborne = positions[:, 2] > policy.altitude_gate_m
    act = np.nonzero(airborne)[0]
    if act.size < 2:
        return
    members = np.asarray(member_list)[act]
    seps = pairwise_separations(positions[act])
    yields, min_seps = resolve_conflicts(
        seps, members, policy.conflict_radius_m
    )
    metrics = tracer.metrics if tracer is not None else None

    # -- separation metrics -------------------------------------------
    fleet_min = float(min_seps.min())
    if fleet_min < state.min_separation_m:
        state.min_separation_m = fleet_min
    if metrics is not None:
        metrics.histogram("fleet.conflicts.min_separation").observe(fleet_min)
    for k, member in enumerate(members):
        record = state.metrics[int(member)]
        if min_seps[k] < record["min_separation_m"]:
            record["min_separation_m"] = float(min_seps[k])

    # -- near misses (edge-triggered per pair) ------------------------
    iu, ju = np.triu_indices(int(act.size), k=1)
    close = seps[iu, ju] < policy.near_miss_radius_m
    for a, b, is_close in zip(iu, ju, close):
        pair = (int(members[a]), int(members[b]))
        if is_close:
            if pair not in state._near_pairs:
                state._near_pairs.add(pair)
                state.near_misses += 1
                state.metrics[pair[0]]["near_misses"] += 1.0
                state.metrics[pair[1]]["near_misses"] += 1.0
                if metrics is not None:
                    metrics.counter("fleet.conflicts.near_misses").inc()
        else:
            state._near_pairs.discard(pair)

    # -- drone-drone collisions ---------------------------------------
    collided = min_seps < policy.collision_radius_m
    for k in np.nonzero(collided)[0]:
        sim = sims[rows[int(act[int(k)])]]
        sim.collisions += 1
        sim.fail("drone_collision")
        state.drone_collisions += 1
        if metrics is not None:
            metrics.counter("fleet.conflicts.drone_collisions").inc()

    # -- priority holds -----------------------------------------------
    holding = yields & ~collided
    for k in np.nonzero(holding)[0]:
        sim = sims[rows[int(act[int(k)])]]
        sim.vehicle.command_velocity(
            np.array([0.0, 0.0, policy.hold_climb_ms])
        )
        state.conflict_holds += 1
        state.metrics[int(members[int(k)])]["conflict_holds"] += 1.0
        if metrics is not None:
            metrics.counter("fleet.conflicts.holds").inc()
