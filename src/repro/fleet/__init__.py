"""Fleet-scale batched mission execution.

Advance N missions per NumPy call: unchanged workload code runs per
mission, but the per-tick phases (control, dynamics, sensing, energy)
execute as struct-of-arrays kernels over the whole fleet, and each
mission's perception pipeline gains fleet-only fast paths.  Bit-identical
to sequential execution by construction — see :mod:`repro.fleet.runner`.
"""

from .kernels import (
    aabb_distances,
    batched_norms,
    control_step_batch,
    control_step_scalar,
    dynamics_step_batch,
    dynamics_step_scalar,
    energy_step_batch,
    energy_step_scalar,
    flying_setpoints,
    pairwise_separations,
    pairwise_separations_scalar,
    quadrotor_step_arrays,
    resolve_conflicts,
    resolve_conflicts_scalar,
    rotor_power_arrays,
    sense_check_batch,
    sense_check_scalar,
    wrap_angles,
)
from .pipeline import FleetPerceptionAccel
from .runner import (
    FleetCoordinator,
    FleetMission,
    fleet_gate_stats,
    run_workloads_fleet,
)
from .shared_world import SharedWorldPolicy, SharedWorldState, gate_conflicts

__all__ = [
    "FleetMission",
    "FleetCoordinator",
    "FleetPerceptionAccel",
    "SharedWorldPolicy",
    "SharedWorldState",
    "gate_conflicts",
    "fleet_gate_stats",
    "run_workloads_fleet",
    "batched_norms",
    "wrap_angles",
    "flying_setpoints",
    "quadrotor_step_arrays",
    "rotor_power_arrays",
    "aabb_distances",
    "control_step_batch",
    "control_step_scalar",
    "dynamics_step_batch",
    "dynamics_step_scalar",
    "energy_step_batch",
    "energy_step_scalar",
    "sense_check_batch",
    "sense_check_scalar",
    "pairwise_separations",
    "pairwise_separations_scalar",
    "resolve_conflicts",
    "resolve_conflicts_scalar",
]
