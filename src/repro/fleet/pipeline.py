"""Fleet-side acceleration of the shared perception pipeline.

PR 7's phase-time profile put ``tick.safety_filter`` at ~80% of the
package-delivery host wall: every control tick ray-marches the belief
map twice (speed-limit probe plus emergency-brake probe), and between
replans the map and the march geometry barely change.  Sequentially the
pipeline keeps the straightforward code; inside a fleet each mission's
:class:`~repro.core.workloads.base.OccupancyPipeline` is *adopted* by a
:class:`FleetPerceptionAccel` that answers the same queries from

* the OctoMap's opt-in incremental sorted index
  (:meth:`OctoMap.enable_fast_index` — merge inserts instead of full
  rebuilds),
* a version-stamped clearance cache (exact replays of a probe against an
  unchanged map are free — the emergency-brake probe repeats the
  speed-limit probe whenever the commanded and current velocity align),
* an enclosing-AABB short-circuit: one query over the bounding box of
  the whole probe ladder; when *that* box holds no occupied voxel, no
  individual probe can (voxel keys are per-axis monotone in position, so
  the enclosing box's key range contains every probe's key range), and
* memoized Eq.-2 bounds and march-distance ladders, which depend only on
  the operating point and map resolution.

Every answer is bit-identical to the base pipeline's: the cache keys
cover every input of the computation, the short-circuit is exact, and
cache misses run the very same batched query the base method runs.  The
fleet-vs-sequential differential tests pin this.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ..core.velocity import max_velocity
from ..world.geometry import norm as _vec_norm


class FreeSpaceCache:
    """Version-stamped registry of map regions *proven* free of occupied
    voxels.

    A mission's belief-map reads cluster tightly: the safety filter
    marches the same 8 m corridor every tick, the path re-validation
    probes a few seconds ahead along it, and the map only changes every
    dozen-odd ticks (one OctoMap insert).  So instead of answering each
    query from scratch, prove a *margin-expanded* box free once and then
    answer every query whose extent that box contains — by geometry —
    until the next insert bumps ``octomap.version``.

    Exactness: ``boxes_occupied`` keys boxes by ``floor(corner / res)``,
    which is monotone per axis, so float-space containment implies
    key-range containment; an empty containing key range proves every
    contained box's range empty.  The cache therefore changes *which*
    queries run, never any answer.

    The expansion is a gamble near obstacles (a bigger box is likelier
    to clip one), so each map version gets a small failure budget;
    once spent, callers fall straight through to their exact queries.
    """

    def __init__(
        self, octomap, margin: float = 1.0, capacity: int = 8, budget: int = 4
    ) -> None:
        self.octomap = octomap
        self.margin = margin
        self.capacity = capacity
        self.budget = budget
        self._version: Optional[int] = None
        self._los: list = []
        self._his: list = []
        self._failures = 0

    def _sync(self) -> None:
        if self.octomap.version != self._version:
            self._version = self.octomap.version
            self._los.clear()
            self._his.clear()
            self._failures = 0

    def covers(self, lo: np.ndarray, hi: np.ndarray) -> bool:
        """True if some recorded free box contains ``[lo, hi]``."""
        self._sync()
        for flo, fhi in zip(self._los, self._his):
            if (
                lo[0] >= flo[0] and lo[1] >= flo[1] and lo[2] >= flo[2]
                and hi[0] <= fhi[0] and hi[1] <= fhi[1] and hi[2] <= fhi[2]
            ):
                return True
        return False

    def prove_free(self, lo: np.ndarray, hi: np.ndarray) -> bool:
        """Prove ``[lo, hi]`` holds no occupied voxel, cheaply if possible.

        False means "not proven" — the region may still be free; the
        caller must run its exact query.
        """
        self._sync()
        if self.covers(lo, hi):
            return True
        if self._failures >= self.budget:
            return False
        elo = lo - self.margin
        ehi = hi + self.margin
        if bool(self.octomap.boxes_occupied(elo[None, :], ehi[None, :])[0]):
            self._failures += 1
            return False
        if len(self._los) >= self.capacity:
            self._los.pop(0)
            self._his.pop(0)
        self._los.append(elo)
        self._his.append(ehi)
        return True


class FleetPerceptionAccel:
    """Drop-in fast path for one mission's :class:`OccupancyPipeline`.

    Installed by the fleet coordinator via
    :meth:`~repro.fleet.runner.FleetCoordinator.adopt_pipeline`; the
    pipeline dispatches :meth:`clearance_along` and
    :meth:`allowed_velocity` here when present.
    """

    def __init__(self, pipeline) -> None:
        self.pipeline = pipeline
        pipeline.octomap.enable_fast_index()
        self.free_space = FreeSpaceCache(pipeline.octomap)
        self._allowed: Dict[Tuple[float, float], float] = {}
        self._marches: Dict[Tuple[float, float], np.ndarray] = {}
        self._clearance: Dict[Tuple[bytes, bytes, float], float] = {}
        self._clearance_version: Optional[int] = None

    # ------------------------------------------------------------------
    # Eq. (2) bound
    # ------------------------------------------------------------------
    def allowed_velocity(self) -> float:
        """Memoized Eq.-2 bound.

        ``response_time_s`` is deterministic in the platform operating
        point (fixed for a mission's lifetime) and the map resolution,
        so the bound only changes when :meth:`set_resolution` runs —
        which re-adopts the pipeline and resets this cache anyway; the
        resolution key keeps the entry honest regardless.
        """
        p = self.pipeline
        key = (p.resolution, p.stop_distance_m)
        cached = self._allowed.get(key)
        if cached is None:
            bound = max_velocity(p.response_time_s(), p.stop_distance_m)
            cached = min(bound, p.sim.vehicle.params.max_speed_ms)
            self._allowed[key] = cached
        return cached

    # ------------------------------------------------------------------
    # Clearance ray-march
    # ------------------------------------------------------------------
    #: Probes per ladder chunk (see :meth:`_clearance_miss`).
    CHUNK = 8

    def _march_distances(
        self, step: float, max_dist: float
    ) -> Tuple[np.ndarray, np.ndarray]:
        """The probe-distance ladder, accumulated exactly like the scalar
        loop (``dist += step``) so the float sequence is bit-identical,
        plus its chunk starts; memoized — both depend only on
        (step, max_dist)."""
        key = (step, max_dist)
        cached = self._marches.get(key)
        if cached is None:
            dists = []
            dist = step
            while dist <= max_dist:
                dists.append(dist)
                dist += step
            darr = np.asarray(dists)
            starts = np.arange(0, darr.size, self.CHUNK)
            cached = (darr, starts)
            self._marches[key] = cached
        return cached

    def clearance_along(self, direction: np.ndarray, max_dist: float = 8.0) -> float:
        """Accelerated twin of :meth:`OccupancyPipeline.clearance_along`."""
        d = np.asarray(direction, dtype=float)
        speed = _vec_norm(d)
        if speed < 1e-6:
            return max_dist
        d = d / speed
        p = self.pipeline
        octomap = p.octomap
        if octomap.version != self._clearance_version:
            self._clearance.clear()
            self._clearance_version = octomap.version
        position = p.sim.state.position
        key = (position.tobytes(), d.tobytes(), max_dist)
        cached = self._clearance.get(key)
        if cached is not None:
            return cached
        result = self._clearance_miss(octomap, position, d, max_dist)
        self._clearance[key] = result
        return result

    def _clearance_miss(self, octomap, position, d, max_dist: float) -> float:
        """Chunked ladder march.

        The probe ladder splits into runs of :attr:`CHUNK`; one batched
        query answers each run's *enclosing* box (which contains all of
        its probe boxes — voxel keys are per-axis monotone in position,
        so the run's key range covers each probe's), and only runs whose
        enclosing box holds an occupied voxel expand to per-probe
        queries, in march order.  The first blocked probe is therefore
        exactly the one the flat scan finds: earlier runs are proven
        all-free either way.  Free corridors answer from ~4 small boxes
        instead of a 32-probe scan; blocked ones stop at the first
        occupied run.
        """
        p = self.pipeline
        radius = p.sim.vehicle.params.radius_m
        darr, starts = self._march_distances(octomap.resolution / 2.0, max_dist)
        if darr.size == 0:
            return max_dist
        probes = position[None, :] + d[None, :] * darr[:, None]
        lo = probes - radius
        hi = probes + radius
        run_lo = np.minimum.reduceat(lo, starts)
        run_hi = np.maximum.reduceat(hi, starts)
        hot = np.nonzero(octomap.boxes_occupied(run_lo, run_hi))[0]
        for run in hot:
            begin = int(starts[run])
            end = begin + self.CHUNK
            occupied = octomap.boxes_occupied(lo[begin:end], hi[begin:end])
            blocked = np.nonzero(occupied)[0]
            if blocked.size:
                return float(darr[begin + blocked[0]])
        return max_dist
