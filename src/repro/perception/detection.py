"""Simulated object detectors (YOLO / HOG / Haar).

Substitute for the real detector networks.  The workloads consume a
detector through (a) its latency — supplied by the kernel runtime model —
and (b) its output: bounding boxes with workload-relevant accuracy
characteristics.  Each simulated detector model takes the ground-truth
frustum visibility from the camera and decides, per object, whether it is
detected, with what box jitter, and what false positives appear.

Detection probability follows the photorealism study the paper cites
(precision varying with apparent size / range): large, close, unoccluded
objects are detected reliably; small or distant ones are missed more.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..sensors.camera import Detection2D, RgbdCamera
from ..world.environment import World


@dataclass(frozen=True)
class DetectorModel:
    """Accuracy profile of one detector implementation.

    Attributes
    ----------
    name:
        Kernel name, matching the compute model ("object_detection_yolo",
        "object_detection_hog", "object_detection_haar").
    base_recall:
        Detection probability of an ideal (close, large, unoccluded) target.
    min_apparent_px:
        Apparent size below which detection probability decays to zero.
    box_jitter_px:
        Std of bounding-box center error in pixels.
    false_positive_rate:
        Expected false positives per frame.
    """

    name: str
    base_recall: float
    min_apparent_px: float
    box_jitter_px: float
    false_positive_rate: float


YOLO = DetectorModel(
    name="object_detection_yolo",
    base_recall=0.95,
    min_apparent_px=4.0,
    box_jitter_px=1.0,
    false_positive_rate=0.01,
)
HOG = DetectorModel(
    name="object_detection_hog",
    base_recall=0.85,
    min_apparent_px=8.0,
    box_jitter_px=2.5,
    false_positive_rate=0.05,
)
HAAR = DetectorModel(
    name="object_detection_haar",
    base_recall=0.75,
    min_apparent_px=10.0,
    box_jitter_px=3.5,
    false_positive_rate=0.08,
)

DETECTORS = {"yolo": YOLO, "hog": HOG, "haar": HAAR}


@dataclass
class BoundingBox:
    """A detection output box in pixel coordinates."""

    center_px: Tuple[float, float]
    size_px: Tuple[float, float]
    confidence: float
    label: str
    obstacle_name: Optional[str] = None  # ground-truth link (None for FPs)
    distance_m: Optional[float] = None

    def center_offset_px(self, width: int, height: int) -> float:
        """Distance from the box center to the image center, in pixels —
        the aerial-photography error metric."""
        dx = self.center_px[0] - width / 2.0
        dy = self.center_px[1] - height / 2.0
        return math.hypot(dx, dy)


@dataclass
class ObjectDetector:
    """Runs a :class:`DetectorModel` over the camera's frustum contents."""

    model: DetectorModel = YOLO
    target_kinds: Sequence[str] = ("person",)
    seed: int = 0

    def __post_init__(self) -> None:
        self._rng = np.random.default_rng(self.seed)
        self.frames_processed = 0
        self.true_positives = 0
        self.false_negatives = 0

    def detect(
        self,
        camera: RgbdCamera,
        world: World,
        position: np.ndarray,
        yaw: float,
        time: float = 0.0,
    ) -> List[BoundingBox]:
        """Produce bounding boxes for the current view."""
        self.frames_processed += 1
        visible = camera.visible_objects(
            world, position, yaw, kinds=list(self.target_kinds), time=time
        )
        boxes: List[BoundingBox] = []
        for det in visible:
            p_detect = self._detection_probability(det)
            if self._rng.random() < p_detect:
                self.true_positives += 1
                boxes.append(self._make_box(det))
            else:
                self.false_negatives += 1
        n_fp = self._rng.poisson(self.model.false_positive_rate)
        for _ in range(n_fp):
            boxes.append(self._make_false_positive(camera))
        return boxes

    def _detection_probability(self, det: Detection2D) -> float:
        if det.occluded:
            return 0.05  # nearly always missed when center is blocked
        apparent = min(det.extent_px)
        if apparent <= self.model.min_apparent_px:
            return 0.0
        # Smooth ramp from 0 at the minimum size to base recall at 2.5x it.
        ramp = min(
            (apparent - self.model.min_apparent_px)
            / (1.5 * self.model.min_apparent_px),
            1.0,
        )
        return self.model.base_recall * ramp

    def _make_box(self, det: Detection2D) -> BoundingBox:
        jitter = self._rng.normal(0.0, self.model.box_jitter_px, size=2)
        cx = det.center_px[0] + float(jitter[0])
        cy = det.center_px[1] + float(jitter[1])
        conf = float(
            np.clip(self._rng.normal(self.model.base_recall, 0.05), 0.05, 1.0)
        )
        return BoundingBox(
            center_px=(cx, cy),
            size_px=det.extent_px,
            confidence=conf,
            label=det.obstacle.kind,
            obstacle_name=det.obstacle.name,
            distance_m=det.distance_m,
        )

    def _make_false_positive(self, camera: RgbdCamera) -> BoundingBox:
        intr = camera.intrinsics
        cx = float(self._rng.uniform(0, intr.width))
        cy = float(self._rng.uniform(0, intr.height))
        return BoundingBox(
            center_px=(cx, cy),
            size_px=(
                float(self._rng.uniform(3, 15)),
                float(self._rng.uniform(6, 30)),
            ),
            confidence=float(self._rng.uniform(0.05, 0.45)),
            label="person",
            obstacle_name=None,
            distance_m=None,
        )

    @property
    def recall(self) -> float:
        total = self.true_positives + self.false_negatives
        return self.true_positives / total if total else 0.0
