"""OctoMap: a probabilistic occupancy octree, reimplemented from scratch.

Substitute for Hornung et al.'s OctoMap C++ library.  The paper calls this
kernel "a major bottleneck in three of our end to end applications" and
builds its energy case study on the resolution knob (Figs. 17-19), so we
implement the real data structure, not a model:

* octree over a cubic region, leaves at a configurable ``resolution``;
* log-odds occupancy updates with clamping (the standard OctoMap
  parameters: hit +0.85, miss -0.4, clamp to [-2, 3.5] log-odds);
* ray-cast insertion (3D DDA voxel traversal marking free space along each
  beam and occupied space at the endpoint);
* occupancy queries by point and by box region, plus unknown-space queries
  used by the frontier-exploration planner.

The tree stores only non-unknown leaves in a hash map keyed by voxel
index; interior nodes are implicit.  This keeps insertion O(ray length /
resolution) and memory proportional to observed space, which is what makes
the resolution/runtime trade-off of Fig. 18 emerge naturally when the
benchmarks measure *this very code*.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..observability import trace as _trace
from ..world.geometry import AABB, EPS
from .point_cloud import PointCloud

VoxelKey = Tuple[int, int, int]

#: Packed voxel-key layout: 21 bits per axis, biased by 2^20 so indices in
#: (-2^20, 2^20) pack into one non-negative int64.  That is +-500 km of
#: world at the finest paper resolution (0.15 m) — far beyond any mission.
_PACK_BITS = 21
_PACK_OFFSET = 1 << 20


def pack_keys(keys: np.ndarray) -> np.ndarray:
    """Pack (N, 3) integer voxel keys into sortable int64 scalars."""
    k = np.asarray(keys, dtype=np.int64).reshape(-1, 3)
    return (
        ((k[:, 0] + _PACK_OFFSET) << (2 * _PACK_BITS))
        + ((k[:, 1] + _PACK_OFFSET) << _PACK_BITS)
        + (k[:, 2] + _PACK_OFFSET)
    )


def unpack_keys(packed: np.ndarray) -> np.ndarray:
    """Inverse of :func:`pack_keys`; returns (N, 3) int64 keys."""
    p = np.asarray(packed, dtype=np.int64).reshape(-1)
    mask = (1 << _PACK_BITS) - 1
    out = np.empty((p.shape[0], 3), dtype=np.int64)
    out[:, 0] = (p >> (2 * _PACK_BITS)) - _PACK_OFFSET
    out[:, 1] = ((p >> _PACK_BITS) & mask) - _PACK_OFFSET
    out[:, 2] = (p & mask) - _PACK_OFFSET
    return out


def _sorted_membership(sorted_arr: np.ndarray, queries: np.ndarray) -> np.ndarray:
    """Boolean mask: which ``queries`` appear in ``sorted_arr``."""
    if sorted_arr.size == 0 or queries.size == 0:
        return np.zeros(queries.shape, dtype=bool)
    idx = np.searchsorted(sorted_arr, queries)
    idx = np.minimum(idx, sorted_arr.size - 1)
    return sorted_arr[idx] == queries

#: Standard OctoMap sensor-model parameters (log odds).
LOG_ODDS_HIT = 0.85
LOG_ODDS_MISS = -0.4
LOG_ODDS_MIN = -2.0
LOG_ODDS_MAX = 3.5
OCCUPANCY_THRESHOLD = 0.0  # log-odds 0 == probability 0.5


def probability(log_odds: float) -> float:
    """Convert log-odds to an occupancy probability."""
    return 1.0 / (1.0 + math.exp(-log_odds))


def log_odds(p: float) -> float:
    """Convert a probability to log-odds."""
    if not 0.0 < p < 1.0:
        raise ValueError("probability must be strictly inside (0, 1)")
    return math.log(p / (1.0 - p))


@dataclass
class OctoMap:
    """A probabilistic 3D occupancy map at a fixed voxel resolution.

    Attributes
    ----------
    resolution:
        Voxel edge length in meters — *the* knob of the energy case study.
    bounds:
        Optional region of interest; updates outside it are ignored.
    """

    resolution: float = 0.5
    bounds: Optional[AABB] = None
    hit_update: float = LOG_ODDS_HIT
    miss_update: float = LOG_ODDS_MISS

    def __post_init__(self) -> None:
        if self.resolution <= 0:
            raise ValueError("resolution must be positive")
        self._cells: Dict[VoxelKey, float] = {}
        self.insertions = 0
        self.rays_inserted = 0
        # Sorted packed-key index over _cells, rebuilt lazily after writes.
        # Updates arrive in scan-sized batches while box/point queries run
        # every control tick, so an O(N) rebuild amortized across hundreds
        # of O(log N) vectorized queries is the right trade.
        self._index_dirty = True
        self._idx_packed = np.zeros(0, dtype=np.int64)
        self._idx_values = np.zeros(0, dtype=np.float64)
        self._idx_occupied = np.zeros(0, dtype=np.int64)
        # Opt-in incremental index maintenance (see enable_fast_index):
        # batch writes merge into the sorted index instead of invalidating
        # it.  Off by default so the lazily-rebuilt reference behavior (and
        # its perf profile) stays exactly as shipped.
        self._fast_index = False
        #: Monotone write-generation counter: bumped on every mutation, so
        #: callers can cache derived query results per map state.
        self.version = 0

    # ------------------------------------------------------------------
    # Keys and coordinates
    # ------------------------------------------------------------------
    def key_for(self, point: Sequence[float]) -> VoxelKey:
        """Voxel index containing ``point``."""
        p = np.asarray(point, dtype=float)
        return (
            int(math.floor(p[0] / self.resolution)),
            int(math.floor(p[1] / self.resolution)),
            int(math.floor(p[2] / self.resolution)),
        )

    def center_of(self, key: VoxelKey) -> np.ndarray:
        """World coordinates of a voxel center."""
        return (np.asarray(key, dtype=float) + 0.5) * self.resolution

    def voxel_box(self, key: VoxelKey) -> AABB:
        lo = np.asarray(key, dtype=float) * self.resolution
        return AABB(lo, lo + self.resolution)

    def _in_bounds(self, point: np.ndarray) -> bool:
        return self.bounds is None or self.bounds.contains(point)

    # Batched key/bounds kernels ---------------------------------------
    def keys_for_points(self, points: np.ndarray) -> np.ndarray:
        """Voxel indices for a whole (N, 3) point batch at once."""
        p = np.asarray(points, dtype=float).reshape(-1, 3)
        return np.floor(p / self.resolution).astype(np.int64)

    def centers_of_keys(self, keys: np.ndarray) -> np.ndarray:
        """World centers for an (N, 3) key batch."""
        k = np.asarray(keys, dtype=float).reshape(-1, 3)
        return (k + 0.5) * self.resolution

    def _in_bounds_mask(self, points: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`AABB.contains` over an (N, 3) point batch."""
        p = np.asarray(points, dtype=float).reshape(-1, 3)
        if self.bounds is None:
            return np.ones(p.shape[0], dtype=bool)
        lo, hi = self.bounds.lo, self.bounds.hi
        return np.all((p >= lo - EPS) & (p <= hi + EPS), axis=1)

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def update_cell(self, key: VoxelKey, delta: float) -> float:
        """Apply a log-odds delta with clamping; returns the new value."""
        value = self._cells.get(key, 0.0) + delta
        value = min(max(value, LOG_ODDS_MIN), LOG_ODDS_MAX)
        self._cells[key] = value
        self._index_dirty = True
        self.version += 1
        return value

    def enable_fast_index(self) -> None:
        """Switch to incremental sorted-index maintenance.

        Batch log-odds updates merge their (already computed, clamped)
        values straight into the sorted packed-key index instead of
        invalidating it, turning the per-insert index cost from an O(N)
        dict->array rebuild into an O(N) array merge with no Python-level
        per-cell traffic.  Scalar writes (:meth:`update_cell`) still
        invalidate; the next query falls back to one full rebuild and
        incremental maintenance resumes after it.  Query results are
        identical either way — only *when* the index is built changes.
        """
        self._fast_index = True
        self._ensure_index()

    def _merge_index(self, packed: np.ndarray, values: np.ndarray) -> None:
        """Merge unique sorted ``packed`` keys with their new ``values``
        into the (clean) sorted index in place."""
        idx = np.searchsorted(self._idx_packed, packed)
        if self._idx_packed.size:
            hit = np.minimum(idx, self._idx_packed.size - 1)
            found = self._idx_packed[hit] == packed
        else:
            found = np.zeros(packed.shape, dtype=bool)
        if np.any(found):
            self._idx_values[idx[found]] = values[found]
        missing = ~found
        if np.any(missing):
            # Fused two-array insert: one destination-position computation
            # shared by keys and values (``np.insert`` would redo it, with
            # per-call wrapper overhead, for each array).
            new_p = packed[missing]
            new_v = values[missing]
            n = self._idx_packed.size
            k = new_p.size
            pos = idx[missing] + np.arange(k, dtype=np.int64)
            out_p = np.empty(n + k, dtype=self._idx_packed.dtype)
            out_v = np.empty(n + k, dtype=self._idx_values.dtype)
            old_mask = np.ones(n + k, dtype=bool)
            old_mask[pos] = False
            out_p[pos] = new_p
            out_v[pos] = new_v
            out_p[old_mask] = self._idx_packed
            out_v[old_mask] = self._idx_values
            self._idx_packed = out_p
            self._idx_values = out_v
        self._idx_occupied = self._idx_packed[
            self._idx_values > OCCUPANCY_THRESHOLD
        ]

    def _values_for_sorted_packed(self, packed: np.ndarray) -> np.ndarray:
        """Current log-odds for sorted unique packed keys (0.0 where
        unknown), served from the live sorted index when it is clean —
        one vectorized binary search instead of per-key dict hashing."""
        out = np.zeros(packed.size)
        if self._idx_packed.size:
            idx = np.minimum(
                np.searchsorted(self._idx_packed, packed),
                self._idx_packed.size - 1,
            )
            found = self._idx_packed[idx] == packed
            out[found] = self._idx_values[idx[found]]
        return out

    def _apply_log_odds_batch(
        self,
        packed: np.ndarray,
        delta: float,
        counts: Optional[np.ndarray] = None,
    ) -> None:
        """Apply ``delta`` (optionally ``counts`` times per voxel) to a batch
        of *unique*, sorted packed voxel keys, clamping exactly like
        :meth:`update_cell`.

        All deltas in one batch share a sign, so clamping once after the
        summed update is bit-identical to clamping after every scalar
        update (a monotone sequence crosses each clamp bound at most once).
        """
        if packed.size == 0:
            return
        keys = unpack_keys(packed)
        cells = self._cells
        # zip of column lists + map(dict.get)/dict.update keep the per-voxel
        # hash traffic in C; numpy does the arithmetic and clamping.
        key_tuples = list(
            zip(keys[:, 0].tolist(), keys[:, 1].tolist(), keys[:, 2].tolist())
        )
        if self._fast_index and not self._index_dirty:
            current = self._values_for_sorted_packed(packed)
        else:
            current = np.fromiter(
                map(cells.get, key_tuples, itertools.repeat(0.0)),
                dtype=np.float64,
                count=packed.size,
            )
        step = delta if counts is None else delta * counts
        new = np.clip(current + step, LOG_ODDS_MIN, LOG_ODDS_MAX)
        cells.update(zip(key_tuples, new.tolist()))
        self.version += 1
        if self._fast_index and not self._index_dirty:
            # Keep the sorted index live: the clamped values are already
            # computed, so the merge is pure array work.
            if packed.size > 1 and not np.all(packed[1:] > packed[:-1]):
                order = np.argsort(packed)
                self._merge_index(packed[order], new[order])
            else:
                self._merge_index(packed, new)
        else:
            self._index_dirty = True

    def mark_occupied(self, point: Sequence[float]) -> None:
        p = np.asarray(point, dtype=float)
        if self._in_bounds(p):
            self.update_cell(self.key_for(p), self.hit_update)

    def mark_free(self, point: Sequence[float]) -> None:
        p = np.asarray(point, dtype=float)
        if self._in_bounds(p):
            self.update_cell(self.key_for(p), self.miss_update)

    def ray_keys(
        self, origin: np.ndarray, endpoint: np.ndarray
    ) -> List[VoxelKey]:
        """Voxels traversed from ``origin`` to ``endpoint`` (exclusive of
        the endpoint voxel), via 3D DDA (Amanatides & Woo)."""
        origin = np.asarray(origin, dtype=float)
        endpoint = np.asarray(endpoint, dtype=float)
        direction = endpoint - origin
        length = float(np.linalg.norm(direction))
        if length < 1e-9:
            return []
        direction = direction / length
        key = np.array(self.key_for(origin), dtype=int)
        end_key = self.key_for(endpoint)
        step = np.sign(direction).astype(int)
        # Distance along the ray to the first boundary crossing per axis.
        t_max = np.empty(3)
        t_delta = np.empty(3)
        for i in range(3):
            if direction[i] > 1e-12:
                boundary = (key[i] + 1) * self.resolution
                t_max[i] = (boundary - origin[i]) / direction[i]
                t_delta[i] = self.resolution / direction[i]
            elif direction[i] < -1e-12:
                boundary = key[i] * self.resolution
                t_max[i] = (boundary - origin[i]) / direction[i]
                t_delta[i] = -self.resolution / direction[i]
            else:
                t_max[i] = np.inf
                t_delta[i] = np.inf
        keys: List[VoxelKey] = []
        current: VoxelKey = (int(key[0]), int(key[1]), int(key[2]))
        guard = int(3 * length / self.resolution) + 6
        for _ in range(guard):
            if current == end_key:
                break
            keys.append(current)
            axis = int(np.argmin(t_max))
            if t_max[axis] > length:
                break
            key[axis] += step[axis]
            t_max[axis] += t_delta[axis]
            current = (int(key[0]), int(key[1]), int(key[2]))
        return keys

    def batch_ray_keys(
        self, origins: np.ndarray, endpoints: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized 3D DDA over a whole batch of rays at once.

        Traverses every ray in lock-step: each iteration advances *all*
        still-active rays by one voxel with array ops, instead of walking
        rays one voxel at a time in Python.  Per ray, the emitted voxel
        sequence is identical to :meth:`ray_keys` (same start key, same
        endpoint-voxel exclusion, same tie-breaking and guard limits).

        Parameters
        ----------
        origins:
            Ray origins, shape (3,) (shared origin) or (N, 3).
        endpoints:
            Ray endpoints, shape (N, 3).

        Returns
        -------
        keys, ray_index:
            ``keys`` is the (M, 3) int64 array of all traversed voxels;
            ``ray_index[m]`` tells which ray emitted ``keys[m]``.  Within
            one ray the keys appear in traversal order.
        """
        res = self.resolution
        endpoints = np.asarray(endpoints, dtype=float).reshape(-1, 3)
        n = endpoints.shape[0]
        empty = (np.zeros((0, 3), dtype=np.int64), np.zeros(0, dtype=np.int64))
        if n == 0:
            return empty
        origins = np.asarray(origins, dtype=float)
        if origins.ndim == 1:
            origins = np.broadcast_to(origins, (n, 3))
        delta = endpoints - origins
        length = np.linalg.norm(delta, axis=1)
        valid = length >= 1e-9
        if not np.any(valid):
            return empty
        direction = np.zeros_like(delta)
        np.divide(delta, length[:, None], out=direction, where=valid[:, None])

        key0 = np.floor(origins / res).astype(np.int64)
        end_key = np.floor(endpoints / res).astype(np.int64)
        step = np.sign(direction).astype(np.int64)
        moving = np.abs(direction) > 1e-12
        boundary = np.where(direction > 1e-12, (key0 + 1) * res, key0 * res)
        with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
            t_first = np.where(
                moving, (boundary - origins) / direction, np.inf
            )
            t_delta = np.where(moving, np.abs(res / direction), np.inf)
        guard = (3.0 * length / res).astype(np.int64) + 6

        # Phase 1: every voxel-boundary crossing of every ray, per axis.
        # Crossing times are built by row-wise cumulative sum so each value
        # is the same left-to-right float accumulation the scalar DDA
        # performs with ``t_max += t_delta`` — bit-identical termination.
        max_steps = int(np.max(length[valid]) / res) + 3
        t_flat: List[np.ndarray] = []
        ray_flat: List[np.ndarray] = []
        axis_flat: List[np.ndarray] = []
        rows = np.arange(n)
        for a in range(3):
            ladder = np.empty((n, max_steps))
            ladder[:, 0] = t_first[:, a]
            ladder[:, 1:] = t_delta[:, a, None]
            times = np.cumsum(ladder, axis=1)
            taken = times <= length[:, None]
            taken &= valid[:, None]
            counts = np.count_nonzero(taken, axis=1)
            rid = np.repeat(rows, counts)
            t_flat.append(times[taken])
            ray_flat.append(rid)
            axis_flat.append(np.full(rid.size, a, dtype=np.int64))
        t_all = np.concatenate(t_flat)
        ray_all = np.concatenate(ray_flat)
        axis_all = np.concatenate(axis_flat)

        # Phase 2: merge the three per-axis crossing streams per ray.  A
        # stable (t, axis) order reproduces the scalar loop's first-minimum
        # argmin tie-breaking exactly.
        order = np.lexsort((axis_all, t_all, ray_all))
        ray_s = ray_all[order]
        axis_s = axis_all[order]
        k_total = ray_s.size
        cross_per_ray = np.bincount(ray_s, minlength=n)

        # Phase 3: reconstruct the voxel sequence.  Each crossing advances
        # one axis by its step; keys are exact segmented integer cumsums.
        dk = np.zeros((k_total, 3), dtype=np.int64)
        dk[np.arange(k_total), axis_s] = step[ray_s, axis_s]
        csum = np.cumsum(dk, axis=0)
        excl = csum - dk  # exclusive prefix sums

        ray_ids = rows[valid]
        counts_r = cross_per_ray[valid]
        cand_counts = counts_r + 1  # the origin voxel plus one per crossing
        total = int(cand_counts.sum())
        seg_start_cand = np.concatenate(
            ([0], np.cumsum(cand_counts)[:-1])
        )
        seg_start_cross = np.concatenate(([0], np.cumsum(counts_r)[:-1]))
        cand_ray = np.repeat(ray_ids, cand_counts)
        cand = key0[cand_ray].copy()
        if k_total:
            seg_base = excl[seg_start_cross]
            within = csum - np.repeat(seg_base, counts_r, axis=0)
            seg_ord = np.repeat(
                np.arange(ray_ids.size), counts_r
            )
            slots = np.arange(k_total) + seg_ord + 1
            cand[slots] += within

        # Phase 4: truncate each ray at its endpoint voxel (never emitted)
        # and at the traversal guard, exactly like the scalar walk.
        within_idx = np.arange(total) - np.repeat(seg_start_cand, cand_counts)
        at_end = np.all(cand == end_key[cand_ray], axis=1)
        sentinel = np.where(at_end, within_idx, total + 1)
        first_end = np.minimum.reduceat(sentinel, seg_start_cand)
        emit = np.minimum(cand_counts, first_end)
        emit = np.minimum(emit, guard[ray_ids])
        mask = within_idx < np.repeat(emit, cand_counts)
        if not np.any(mask):
            return empty
        return cand[mask], cand_ray[mask]

    def insert_ray(
        self, origin: np.ndarray, endpoint: np.ndarray, hit: bool = True
    ) -> None:
        """Insert one beam: free space along the ray, occupied endpoint."""
        for key in self.ray_keys(origin, endpoint):
            center = self.center_of(key)
            if self._in_bounds(center):
                self.update_cell(key, self.miss_update)
        p = np.asarray(endpoint, dtype=float)
        if hit and self._in_bounds(p):
            self.update_cell(self.key_for(p), self.hit_update)
        self.rays_inserted += 1

    @staticmethod
    def _subsample_rays(
        cloud: PointCloud, max_rays: Optional[int]
    ) -> Tuple[np.ndarray, np.ndarray]:
        hits = cloud.hits
        misses = cloud.misses
        if max_rays is not None and hits.shape[0] + misses.shape[0] > max_rays:
            frac = max_rays / (hits.shape[0] + misses.shape[0])
            hstride = max(int(round(1.0 / frac)), 1)
            hits = hits[::hstride]
            misses = misses[::hstride]
        return hits, misses

    def insert_point_cloud(
        self,
        cloud: PointCloud,
        max_rays: Optional[int] = None,
        endpoint_only: bool = False,
    ) -> int:
        """Insert a point cloud scan; returns the number of rays processed.

        Batched kernel: all rays are traversed in one vectorized DDA and
        log-odds deltas accumulate per voxel (with multiplicity) before a
        single clamped update.  Free-space carving is applied before the
        endpoint hits, so within one batch occupied evidence lands last —
        for scans where a voxel receives only one kind of update (the
        common case) this is bit-identical to the scalar loop.

        Parameters
        ----------
        cloud:
            Scan to integrate.
        max_rays:
            Optional cap on rays processed (uniform subsample).
        endpoint_only:
            Skip free-space carving and only mark endpoints (the cheap
            approximate mode used as an ablation in DESIGN.md).
        """
        hits, misses = self._subsample_rays(cloud, max_rays)
        count = hits.shape[0] + misses.shape[0]
        if not endpoint_only:
            endpoints = (
                np.vstack([hits, misses]) if misses.size else np.asarray(hits)
            )
            keys, _ = self.batch_ray_keys(cloud.origin, endpoints)
            if keys.size:
                centers = self.centers_of_keys(keys)
                keys = keys[self._in_bounds_mask(centers)]
            if keys.size:
                packed, mult = np.unique(pack_keys(keys), return_counts=True)
                self._apply_log_odds_batch(packed, self.miss_update, mult)
            self.rays_inserted += count
        if hits.shape[0]:
            pts = np.asarray(hits, dtype=float).reshape(-1, 3)
            pts = pts[self._in_bounds_mask(pts)]
            if pts.shape[0]:
                packed, mult = np.unique(
                    pack_keys(self.keys_for_points(pts)), return_counts=True
                )
                self._apply_log_odds_batch(packed, self.hit_update, mult)
        self.insertions += 1
        return count

    def insert_point_cloud_scalar(
        self,
        cloud: PointCloud,
        max_rays: Optional[int] = None,
        endpoint_only: bool = False,
    ) -> int:
        """Reference scalar implementation of :meth:`insert_point_cloud`
        (one Python DDA walk and one clamped dict update per voxel); kept
        for the batched-vs-scalar equivalence suite."""
        hits, misses = self._subsample_rays(cloud, max_rays)
        count = 0
        for point in hits:
            if endpoint_only:
                self.mark_occupied(point)
            else:
                self.insert_ray(cloud.origin, point, hit=True)
            count += 1
        for point in misses:
            if not endpoint_only:
                self.insert_ray(cloud.origin, point, hit=False)
            count += 1
        self.insertions += 1
        return count

    def insert_scan(self, cloud: PointCloud, carve_rays: int = 40) -> int:
        """Insert a full scan: every hit endpoint marked occupied (dense
        surfaces — cheap, one hash update per point) plus free-space
        carving along an evenly strided subset of ``carve_rays`` beams.

        As in the original OctoMap, updates are de-duplicated per scan and
        occupied endpoints take precedence: a voxel hit by any endpoint in
        this scan is never carved free by a grazing beam of the same scan.
        Without this rule, thin obstacles (tree trunks, poles) get outvoted
        by the many near-miss rays passing through their voxel and vanish
        from the map.  Returns the number of endpoint updates performed.

        This is the batched hot path: endpoint voxelization, the carve-ray
        DDA, and both log-odds passes run as whole-scan array kernels.
        Because every voxel receives at most one update per scan, the
        result is identical to :meth:`insert_scan_scalar` (the per-point
        reference implementation) on any input.
        """
        with _trace.span("perceive.octomap_insert", "perceive") as _sp:
            result = self._insert_scan_traced(cloud, carve_rays)
            _sp.set(points=result)
            _trace.observe("octomap.scan_points", result)
            return result

    def _insert_scan_traced(self, cloud: PointCloud, carve_rays: int) -> int:
        hits = np.asarray(cloud.hits, dtype=float).reshape(-1, 3)
        count = hits.shape[0]
        hit_packed = np.zeros(0, dtype=np.int64)
        if count:
            in_bounds = hits[self._in_bounds_mask(hits)]
            if in_bounds.shape[0]:
                hit_packed = np.unique(
                    pack_keys(self.keys_for_points(in_bounds))
                )
                self._apply_log_odds_batch(hit_packed, self.hit_update)
        endpoints = cloud.all_endpoints
        n = endpoints.shape[0]
        if n and carve_rays > 0:
            stride = max(n // carve_rays, 1)
            beams = endpoints[::stride]
            keys, _ = self.batch_ray_keys(cloud.origin, beams)
            if keys.size:
                packed = np.unique(pack_keys(keys))
                # Occupied endpoints of this scan take precedence.
                packed = packed[
                    ~_sorted_membership(hit_packed, packed)
                ]
            else:
                packed = np.zeros(0, dtype=np.int64)
            if packed.size:
                # Grazing-beam guard: never carve a confidently occupied
                # voxel (see insert_scan_scalar for the full rationale —
                # a subsampled carve set would otherwise erode thin walls
                # one miss-update per scan).
                unpacked = unpack_keys(packed)
                if self._fast_index and not self._index_dirty:
                    existing = self._values_for_sorted_packed(packed)
                else:
                    cells = self._cells
                    existing = np.fromiter(
                        map(
                            cells.get,
                            zip(
                                unpacked[:, 0].tolist(),
                                unpacked[:, 1].tolist(),
                                unpacked[:, 2].tolist(),
                            ),
                            itertools.repeat(0.0),
                        ),
                        dtype=np.float64,
                        count=packed.size,
                    )
                keep = ~(existing > 2.0)
                if self.bounds is not None:
                    keep &= self._in_bounds_mask(
                        self.centers_of_keys(unpacked)
                    )
                self._apply_log_odds_batch(packed[keep], self.miss_update)
            self.rays_inserted += beams.shape[0]
        self.insertions += 1
        return count

    def insert_scan_scalar(self, cloud: PointCloud, carve_rays: int = 40) -> int:
        """Reference scalar implementation of :meth:`insert_scan`: one
        Python DDA walk per beam and one dict update per voxel.  Kept (and
        tested) as the ground truth the batched kernels must reproduce."""
        hit_keys = set()
        count = 0
        for point in cloud.hits:
            p = np.asarray(point, dtype=float)
            if self._in_bounds(p):
                hit_keys.add(self.key_for(p))
            count += 1
        for key in hit_keys:
            self.update_cell(key, self.hit_update)
        endpoints = cloud.all_endpoints
        n = endpoints.shape[0]
        if n and carve_rays > 0:
            stride = max(n // carve_rays, 1)
            carved = set()
            for point in endpoints[::stride]:
                for key in self.ray_keys(cloud.origin, point):
                    if key in hit_keys or key in carved:
                        continue
                    # Guard confidently occupied voxels against grazing
                    # beams: with a subsampled carve set, repeated edge-on
                    # views of a thin wall would otherwise erode it to
                    # free one miss-update per scan while contributing no
                    # endpoint hits, and the drone flies through a wall it
                    # once mapped correctly.
                    existing = self._cells.get(key)
                    if existing is not None and existing > 2.0:
                        continue
                    center = self.center_of(key)
                    if self._in_bounds(center):
                        self.update_cell(key, self.miss_update)
                        carved.add(key)
                self.rays_inserted += 1
        self.insertions += 1
        return count

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Number of observed (non-unknown) voxels."""
        return len(self._cells)

    def log_odds_at(self, point: Sequence[float]) -> Optional[float]:
        """Raw log-odds at ``point``; None when unknown."""
        return self._cells.get(self.key_for(point))

    def occupancy_at(self, point: Sequence[float]) -> Optional[float]:
        """Occupancy probability at ``point``; None when unknown."""
        value = self.log_odds_at(point)
        return None if value is None else probability(value)

    def is_occupied(self, point: Sequence[float]) -> bool:
        value = self.log_odds_at(point)
        return value is not None and value > OCCUPANCY_THRESHOLD

    def is_free(self, point: Sequence[float]) -> bool:
        value = self.log_odds_at(point)
        return value is not None and value <= OCCUPANCY_THRESHOLD

    def is_unknown(self, point: Sequence[float]) -> bool:
        return self.log_odds_at(point) is None

    def occupied_keys(self) -> Iterator[VoxelKey]:
        for key, value in self._cells.items():
            if value > OCCUPANCY_THRESHOLD:
                yield key

    def free_keys(self) -> Iterator[VoxelKey]:
        for key, value in self._cells.items():
            if value <= OCCUPANCY_THRESHOLD:
                yield key

    def occupied_centers(self) -> np.ndarray:
        """World centers of all occupied voxels, shape (N, 3)."""
        keys = list(self.occupied_keys())
        if not keys:
            return np.zeros((0, 3))
        return (np.asarray(keys, dtype=float) + 0.5) * self.resolution

    # Vectorized query index -------------------------------------------
    def _ensure_index(self) -> None:
        """Rebuild the sorted packed-key index if writes invalidated it."""
        if not self._index_dirty:
            return
        keys, values = self.cells_arrays()
        if keys.shape[0] == 0:
            self._idx_packed = np.zeros(0, dtype=np.int64)
            self._idx_values = np.zeros(0, dtype=np.float64)
            self._idx_occupied = np.zeros(0, dtype=np.int64)
        else:
            packed = pack_keys(keys)
            order = np.argsort(packed)
            self._idx_packed = packed[order]
            self._idx_values = values[order]
            self._idx_occupied = self._idx_packed[
                self._idx_values > OCCUPANCY_THRESHOLD
            ]
        self._index_dirty = False

    def cells_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """All observed cells as arrays: (N, 3) int64 keys and (N,) values,
        in insertion order (matching ``dict`` iteration)."""
        n = len(self._cells)
        if n == 0:
            return np.zeros((0, 3), dtype=np.int64), np.zeros(0)
        keys = np.array(list(self._cells.keys()), dtype=np.int64)
        values = np.fromiter(self._cells.values(), dtype=np.float64, count=n)
        return keys, values

    def known_mask_for_keys(self, keys: np.ndarray) -> np.ndarray:
        """Boolean mask over an (N, 3) key batch: which voxels are observed."""
        k = np.asarray(keys, dtype=np.int64).reshape(-1, 3)
        self._ensure_index()
        return _sorted_membership(self._idx_packed, pack_keys(k))

    def log_odds_many(self, points: np.ndarray) -> np.ndarray:
        """Log-odds for an (N, 3) point batch; NaN where unknown."""
        p = np.asarray(points, dtype=float).reshape(-1, 3)
        self._ensure_index()
        packed = pack_keys(self.keys_for_points(p))
        out = np.full(p.shape[0], np.nan)
        if self._idx_packed.size:
            idx = np.minimum(
                np.searchsorted(self._idx_packed, packed),
                self._idx_packed.size - 1,
            )
            found = self._idx_packed[idx] == packed
            out[found] = self._idx_values[idx[found]]
        return out

    def _box_key_ranges(
        self, los: np.ndarray, his: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        corners = np.concatenate(
            (
                np.asarray(los, dtype=float).reshape(-1, 3),
                np.asarray(his, dtype=float).reshape(-1, 3),
            )
        )
        keys = np.floor(corners / self.resolution).astype(np.int64)
        m = keys.shape[0] // 2
        return keys[:m], keys[m:]

    def _boxes_range_query(
        self,
        lo_keys: np.ndarray,
        hi_keys: np.ndarray,
        sorted_packed: np.ndarray,
        count: bool,
    ) -> np.ndarray:
        """Core box kernel: for each key-range box, test (or count) stored
        packed keys inside it.

        Exploits the packed layout: for fixed (i, j) the k-axis is a
        contiguous packed range, so one box decomposes into a small grid of
        (i, j) columns, each answered by two binary searches — no voxel
        grid is ever materialized.
        """
        m = lo_keys.shape[0]
        if m == 0:
            return np.zeros(0, dtype=np.int64 if count else bool)
        # Run-length dedupe of identical key-range boxes before the column
        # searches.  Path-validation batches sample at half-voxel spacing,
        # so *consecutive* samples often quantize to the very same box;
        # each run is answered once and scattered back (O(M), no sort).
        scatter = None
        if m > 1:
            both = pack_keys(np.concatenate((lo_keys, hi_keys)))
            run_lo, run_hi = both[:m], both[m:]
            new_run = np.empty(m, dtype=bool)
            new_run[0] = True
            np.not_equal(run_lo[1:], run_lo[:-1], out=new_run[1:])
            np.logical_or(
                new_run[1:], run_hi[1:] != run_hi[:-1], out=new_run[1:]
            )
            if not np.all(new_run):
                scatter = np.cumsum(new_run) - 1
                first = np.nonzero(new_run)[0]
                lo_keys = lo_keys[first]
                hi_keys = hi_keys[first]
                m = first.size
        counts = hi_keys - lo_keys + 1
        # Ragged column layout: box b contributes exactly its own
        # counts_i * counts_j (i, j) columns instead of a padded
        # (M, max_i, max_j) grid, and the per-box reductions run as one
        # ``np.add.reduceat`` over the concatenated column spans.  Every
        # box has >= 1 column, so the reduceat segment starts are strictly
        # increasing (no empty-slice quirk).
        ncols = counts[:, 0] * counts[:, 1]  # (M,)
        offsets = np.concatenate(
            (np.zeros(1, dtype=np.int64), np.cumsum(ncols))
        )
        total = int(offsets[-1])
        box_id = np.repeat(np.arange(m, dtype=np.int64), ncols)
        within = np.arange(total, dtype=np.int64) - offsets[box_id]
        cj = counts[box_id, 1]
        ii = lo_keys[box_id, 0] + within // cj
        jj = lo_keys[box_id, 1] + within % cj
        base = ((ii + _PACK_OFFSET) << (2 * _PACK_BITS)) + (
            (jj + _PACK_OFFSET) << _PACK_BITS
        )
        lo_p = base + (lo_keys[box_id, 2] + _PACK_OFFSET)
        hi_p = base + (hi_keys[box_id, 2] + _PACK_OFFSET)
        # One fused binary search: for sorted int64 keys, a side="left"
        # search for hi+1 lands exactly where side="right" for hi does,
        # so both bounds come back from a single searchsorted call.
        bounds = np.concatenate((lo_p, hi_p + 1))
        pos = sorted_packed.searchsorted(bounds, side="left")
        span = pos[total:] - pos[:total]
        if count:
            out = np.add.reduceat(span, offsets[:-1])
        else:
            # reduceat counts each box's non-empty columns; > 0 is "any".
            out = np.add.reduceat(span > 0, offsets[:-1]) > 0
        return out if scatter is None else out[scatter]

    def boxes_occupied(self, los: np.ndarray, his: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`region_occupied` over (M, 3) corner batches:
        True per box when any occupied voxel intersects it."""
        self._ensure_index()
        lo_keys, hi_keys = self._box_key_ranges(los, his)
        return self._boxes_range_query(
            lo_keys, hi_keys, self._idx_occupied, count=False
        )

    def boxes_unknown_fraction(
        self, los: np.ndarray, his: np.ndarray
    ) -> np.ndarray:
        """Vectorized :meth:`region_unknown_fraction` over corner batches."""
        self._ensure_index()
        lo_keys, hi_keys = self._box_key_ranges(los, his)
        total = np.prod(hi_keys - lo_keys + 1, axis=1)
        known = self._boxes_range_query(
            lo_keys, hi_keys, self._idx_packed, count=True
        )
        return (total - known) / total

    def occupied_in_box(self, box: AABB, margin: float = 0.0) -> bool:
        """True if any occupied voxel intersects ``box`` (inflated).

        This is the collision-check primitive the planners use: the box is
        typically the drone's body at a candidate position, inflated by a
        safety margin.  Unknown space is treated as free here; planners that
        must avoid unknown space use :meth:`region_unknown_fraction`.
        """
        check = box.inflate(margin) if margin > 0 else box
        return bool(
            self.boxes_occupied(check.lo[None, :], check.hi[None, :])[0]
        )

    def region_occupied(self, box: AABB, margin: float = 0.0) -> bool:
        """Compatibility alias for :meth:`occupied_in_box`."""
        return self.occupied_in_box(box, margin)

    def _box_key_range_scalar(self, box: AABB) -> Tuple[VoxelKey, VoxelKey]:
        """Inclusive voxel-key corners of ``box`` (scalar twin of
        :meth:`_box_key_ranges`)."""
        return self.key_for(box.lo), self.key_for(box.hi)

    def region_occupied_scalar(self, box: AABB, margin: float = 0.0) -> bool:
        """Reference scalar implementation of :meth:`occupied_in_box`: a
        Python walk over every voxel the box overlaps, one dict lookup
        each.  Kept (and tested) as the ground truth the batched sorted-
        index query must reproduce — the collision-checker equivalence
        suite builds on it."""
        check = box.inflate(margin) if margin > 0 else box
        lo_key, hi_key = self._box_key_range_scalar(check)
        for i in range(lo_key[0], hi_key[0] + 1):
            for j in range(lo_key[1], hi_key[1] + 1):
                for k in range(lo_key[2], hi_key[2] + 1):
                    value = self._cells.get((i, j, k))
                    if value is not None and value > OCCUPANCY_THRESHOLD:
                        return True
        return False

    def region_unknown_fraction_scalar(self, box: AABB) -> float:
        """Reference scalar implementation of
        :meth:`region_unknown_fraction` (per-voxel dict walk)."""
        lo_key, hi_key = self._box_key_range_scalar(box)
        total = 0
        known = 0
        for i in range(lo_key[0], hi_key[0] + 1):
            for j in range(lo_key[1], hi_key[1] + 1):
                for k in range(lo_key[2], hi_key[2] + 1):
                    total += 1
                    if (i, j, k) in self._cells:
                        known += 1
        return (total - known) / total

    def region_unknown_fraction(self, box: AABB) -> float:
        """Fraction of voxels inside ``box`` that are unobserved."""
        return float(
            self.boxes_unknown_fraction(box.lo[None, :], box.hi[None, :])[0]
        )

    def known_volume(self) -> float:
        """Total volume (m^3) of observed voxels."""
        return len(self._cells) * self.resolution**3

    def coverage_fraction(self, region: Optional[AABB] = None) -> float:
        """Observed fraction of ``region`` (or of ``self.bounds``).

        The 3D Mapping workload's completion metric.
        """
        box = region or self.bounds
        if box is None:
            raise ValueError("coverage needs an explicit region or map bounds")
        if box.volume <= 0:
            return 1.0
        return min(self.known_volume() / box.volume, 1.0)

    # ------------------------------------------------------------------
    # Resolution management (the energy case-study knob)
    # ------------------------------------------------------------------
    def rebuilt_at_resolution(self, resolution: float) -> "OctoMap":
        """A new map at a different resolution carrying over this map's
        knowledge.

        Coarsening max-pools occupancy: any occupied fine voxel makes the
        coarse voxel occupied — the obstacle inflation of Fig. 17.
        Refining expands each occupied coarse voxel into all contained
        fine voxels (conservative: the surface is somewhere inside), and
        carries free space over at a subsampled stride (fresh scans re-
        carve it quickly; losing free-space detail is harmless, losing
        obstacles is not).

        Carried log-odds are capped to +-0.35 in both directions: evidence
        accumulated at a different resolution is weak evidence about the
        re-gridded cells, and fresh observations must be able to overturn
        it within a few scans (a doorway that a coarse map declared
        blocked must re-open quickly once the fine map actually sees it).
        """
        other = OctoMap(
            resolution=resolution,
            bounds=self.bounds,
            hit_update=self.hit_update,
            miss_update=self.miss_update,
        )
        refining = resolution < self.resolution

        def carried(value: float) -> float:
            # Weak-evidence cap: one fresh observation (hit +0.85 or miss
            # -0.4 with the 0.35 floor below it) can overturn any carried
            # cell, so re-gridded knowledge never outvotes current sensing.
            return min(max(value, -0.35), 0.35)

        if not refining:
            for key, value in self._cells.items():
                value = carried(value)
                if value > OCCUPANCY_THRESHOLD:
                    # Occupied fine voxels may straddle coarse boundaries
                    # (resolutions need not nest): mark every overlapping
                    # coarse voxel so no obstacle evidence is dropped.
                    box = self.voxel_box(key)
                    eps = 1e-9
                    targets = {
                        other.key_for(np.clip(corner, box.lo + eps, box.hi - eps))
                        for corner in box.corners()
                    }
                else:
                    targets = {other.key_for(self.center_of(key))}
                for new_key in targets:
                    existing = other._cells.get(new_key)
                    if existing is None or value > existing:
                        other._cells[new_key] = value
            return other
        n_sub = max(int(math.ceil(self.resolution / resolution)), 1)
        free_stride = max(n_sub // 2, 1)
        for key, value in self._cells.items():
            lo = np.asarray(key, dtype=float) * self.resolution
            occupied = value > OCCUPANCY_THRESHOLD
            stride = 1 if occupied else free_stride
            value = carried(value)
            for i in range(0, n_sub, stride):
                for j in range(0, n_sub, stride):
                    for k in range(0, n_sub, stride):
                        center = lo + (np.array([i, j, k]) + 0.5) * resolution
                        if not self._in_bounds(center):
                            continue
                        new_key = other.key_for(center)
                        existing = other._cells.get(new_key)
                        if existing is None or value > existing:
                            other._cells[new_key] = value
        return other

    def memory_cells(self) -> int:
        """Stored leaf count (memory footprint proxy)."""
        return len(self._cells)
