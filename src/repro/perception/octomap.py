"""OctoMap: a probabilistic occupancy octree, reimplemented from scratch.

Substitute for Hornung et al.'s OctoMap C++ library.  The paper calls this
kernel "a major bottleneck in three of our end to end applications" and
builds its energy case study on the resolution knob (Figs. 17-19), so we
implement the real data structure, not a model:

* octree over a cubic region, leaves at a configurable ``resolution``;
* log-odds occupancy updates with clamping (the standard OctoMap
  parameters: hit +0.85, miss -0.4, clamp to [-2, 3.5] log-odds);
* ray-cast insertion (3D DDA voxel traversal marking free space along each
  beam and occupied space at the endpoint);
* occupancy queries by point and by box region, plus unknown-space queries
  used by the frontier-exploration planner.

The tree stores only non-unknown leaves in a hash map keyed by voxel
index; interior nodes are implicit.  This keeps insertion O(ray length /
resolution) and memory proportional to observed space, which is what makes
the resolution/runtime trade-off of Fig. 18 emerge naturally when the
benchmarks measure *this very code*.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..world.geometry import AABB
from .point_cloud import PointCloud

VoxelKey = Tuple[int, int, int]

#: Standard OctoMap sensor-model parameters (log odds).
LOG_ODDS_HIT = 0.85
LOG_ODDS_MISS = -0.4
LOG_ODDS_MIN = -2.0
LOG_ODDS_MAX = 3.5
OCCUPANCY_THRESHOLD = 0.0  # log-odds 0 == probability 0.5


def probability(log_odds: float) -> float:
    """Convert log-odds to an occupancy probability."""
    return 1.0 / (1.0 + math.exp(-log_odds))


def log_odds(p: float) -> float:
    """Convert a probability to log-odds."""
    if not 0.0 < p < 1.0:
        raise ValueError("probability must be strictly inside (0, 1)")
    return math.log(p / (1.0 - p))


@dataclass
class OctoMap:
    """A probabilistic 3D occupancy map at a fixed voxel resolution.

    Attributes
    ----------
    resolution:
        Voxel edge length in meters — *the* knob of the energy case study.
    bounds:
        Optional region of interest; updates outside it are ignored.
    """

    resolution: float = 0.5
    bounds: Optional[AABB] = None
    hit_update: float = LOG_ODDS_HIT
    miss_update: float = LOG_ODDS_MISS

    def __post_init__(self) -> None:
        if self.resolution <= 0:
            raise ValueError("resolution must be positive")
        self._cells: Dict[VoxelKey, float] = {}
        self.insertions = 0
        self.rays_inserted = 0

    # ------------------------------------------------------------------
    # Keys and coordinates
    # ------------------------------------------------------------------
    def key_for(self, point: Sequence[float]) -> VoxelKey:
        """Voxel index containing ``point``."""
        p = np.asarray(point, dtype=float)
        return (
            int(math.floor(p[0] / self.resolution)),
            int(math.floor(p[1] / self.resolution)),
            int(math.floor(p[2] / self.resolution)),
        )

    def center_of(self, key: VoxelKey) -> np.ndarray:
        """World coordinates of a voxel center."""
        return (np.asarray(key, dtype=float) + 0.5) * self.resolution

    def voxel_box(self, key: VoxelKey) -> AABB:
        lo = np.asarray(key, dtype=float) * self.resolution
        return AABB(lo, lo + self.resolution)

    def _in_bounds(self, point: np.ndarray) -> bool:
        return self.bounds is None or self.bounds.contains(point)

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def update_cell(self, key: VoxelKey, delta: float) -> float:
        """Apply a log-odds delta with clamping; returns the new value."""
        value = self._cells.get(key, 0.0) + delta
        value = min(max(value, LOG_ODDS_MIN), LOG_ODDS_MAX)
        self._cells[key] = value
        return value

    def mark_occupied(self, point: Sequence[float]) -> None:
        p = np.asarray(point, dtype=float)
        if self._in_bounds(p):
            self.update_cell(self.key_for(p), self.hit_update)

    def mark_free(self, point: Sequence[float]) -> None:
        p = np.asarray(point, dtype=float)
        if self._in_bounds(p):
            self.update_cell(self.key_for(p), self.miss_update)

    def ray_keys(
        self, origin: np.ndarray, endpoint: np.ndarray
    ) -> List[VoxelKey]:
        """Voxels traversed from ``origin`` to ``endpoint`` (exclusive of
        the endpoint voxel), via 3D DDA (Amanatides & Woo)."""
        origin = np.asarray(origin, dtype=float)
        endpoint = np.asarray(endpoint, dtype=float)
        direction = endpoint - origin
        length = float(np.linalg.norm(direction))
        if length < 1e-9:
            return []
        direction = direction / length
        key = np.array(self.key_for(origin), dtype=int)
        end_key = self.key_for(endpoint)
        step = np.sign(direction).astype(int)
        # Distance along the ray to the first boundary crossing per axis.
        t_max = np.empty(3)
        t_delta = np.empty(3)
        for i in range(3):
            if direction[i] > 1e-12:
                boundary = (key[i] + 1) * self.resolution
                t_max[i] = (boundary - origin[i]) / direction[i]
                t_delta[i] = self.resolution / direction[i]
            elif direction[i] < -1e-12:
                boundary = key[i] * self.resolution
                t_max[i] = (boundary - origin[i]) / direction[i]
                t_delta[i] = -self.resolution / direction[i]
            else:
                t_max[i] = np.inf
                t_delta[i] = np.inf
        keys: List[VoxelKey] = []
        current: VoxelKey = (int(key[0]), int(key[1]), int(key[2]))
        guard = int(3 * length / self.resolution) + 6
        for _ in range(guard):
            if current == end_key:
                break
            keys.append(current)
            axis = int(np.argmin(t_max))
            if t_max[axis] > length:
                break
            key[axis] += step[axis]
            t_max[axis] += t_delta[axis]
            current = (int(key[0]), int(key[1]), int(key[2]))
        return keys

    def insert_ray(
        self, origin: np.ndarray, endpoint: np.ndarray, hit: bool = True
    ) -> None:
        """Insert one beam: free space along the ray, occupied endpoint."""
        for key in self.ray_keys(origin, endpoint):
            center = self.center_of(key)
            if self._in_bounds(center):
                self.update_cell(key, self.miss_update)
        p = np.asarray(endpoint, dtype=float)
        if hit and self._in_bounds(p):
            self.update_cell(self.key_for(p), self.hit_update)
        self.rays_inserted += 1

    def insert_point_cloud(
        self,
        cloud: PointCloud,
        max_rays: Optional[int] = None,
        endpoint_only: bool = False,
    ) -> int:
        """Insert a point cloud scan; returns the number of rays processed.

        Parameters
        ----------
        cloud:
            Scan to integrate.
        max_rays:
            Optional cap on rays processed (uniform subsample).
        endpoint_only:
            Skip free-space carving and only mark endpoints (the cheap
            approximate mode used as an ablation in DESIGN.md).
        """
        hits = cloud.hits
        misses = cloud.misses
        if max_rays is not None and hits.shape[0] + misses.shape[0] > max_rays:
            frac = max_rays / (hits.shape[0] + misses.shape[0])
            hstride = max(int(round(1.0 / frac)), 1)
            hits = hits[::hstride]
            misses = misses[::hstride]
        count = 0
        for point in hits:
            if endpoint_only:
                self.mark_occupied(point)
            else:
                self.insert_ray(cloud.origin, point, hit=True)
            count += 1
        for point in misses:
            if not endpoint_only:
                self.insert_ray(cloud.origin, point, hit=False)
            count += 1
        self.insertions += 1
        return count

    def insert_scan(self, cloud: PointCloud, carve_rays: int = 40) -> int:
        """Insert a full scan: every hit endpoint marked occupied (dense
        surfaces — cheap, one hash update per point) plus free-space
        carving along an evenly strided subset of ``carve_rays`` beams.

        As in the original OctoMap, updates are de-duplicated per scan and
        occupied endpoints take precedence: a voxel hit by any endpoint in
        this scan is never carved free by a grazing beam of the same scan.
        Without this rule, thin obstacles (tree trunks, poles) get outvoted
        by the many near-miss rays passing through their voxel and vanish
        from the map.  Returns the number of endpoint updates performed.
        """
        hit_keys = set()
        count = 0
        for point in cloud.hits:
            p = np.asarray(point, dtype=float)
            if self._in_bounds(p):
                hit_keys.add(self.key_for(p))
            count += 1
        for key in hit_keys:
            self.update_cell(key, self.hit_update)
        endpoints = (
            np.vstack([cloud.hits, cloud.misses])
            if cloud.misses.size
            else cloud.hits
        )
        n = endpoints.shape[0]
        if n and carve_rays > 0:
            stride = max(n // carve_rays, 1)
            carved = set()
            for point in endpoints[::stride]:
                for key in self.ray_keys(cloud.origin, point):
                    if key in hit_keys or key in carved:
                        continue
                    # Guard confidently occupied voxels against grazing
                    # beams: with a subsampled carve set, repeated edge-on
                    # views of a thin wall would otherwise erode it to
                    # free one miss-update per scan while contributing no
                    # endpoint hits, and the drone flies through a wall it
                    # once mapped correctly.
                    existing = self._cells.get(key)
                    if existing is not None and existing > 2.0:
                        continue
                    center = self.center_of(key)
                    if self._in_bounds(center):
                        self.update_cell(key, self.miss_update)
                        carved.add(key)
                self.rays_inserted += 1
        self.insertions += 1
        return count

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Number of observed (non-unknown) voxels."""
        return len(self._cells)

    def log_odds_at(self, point: Sequence[float]) -> Optional[float]:
        """Raw log-odds at ``point``; None when unknown."""
        return self._cells.get(self.key_for(point))

    def occupancy_at(self, point: Sequence[float]) -> Optional[float]:
        """Occupancy probability at ``point``; None when unknown."""
        value = self.log_odds_at(point)
        return None if value is None else probability(value)

    def is_occupied(self, point: Sequence[float]) -> bool:
        value = self.log_odds_at(point)
        return value is not None and value > OCCUPANCY_THRESHOLD

    def is_free(self, point: Sequence[float]) -> bool:
        value = self.log_odds_at(point)
        return value is not None and value <= OCCUPANCY_THRESHOLD

    def is_unknown(self, point: Sequence[float]) -> bool:
        return self.log_odds_at(point) is None

    def occupied_keys(self) -> Iterator[VoxelKey]:
        for key, value in self._cells.items():
            if value > OCCUPANCY_THRESHOLD:
                yield key

    def free_keys(self) -> Iterator[VoxelKey]:
        for key, value in self._cells.items():
            if value <= OCCUPANCY_THRESHOLD:
                yield key

    def occupied_centers(self) -> np.ndarray:
        """World centers of all occupied voxels, shape (N, 3)."""
        keys = list(self.occupied_keys())
        if not keys:
            return np.zeros((0, 3))
        return (np.asarray(keys, dtype=float) + 0.5) * self.resolution

    def region_occupied(self, box: AABB, margin: float = 0.0) -> bool:
        """True if any occupied voxel intersects ``box`` (inflated).

        This is the collision-check primitive the planners use: the box is
        typically the drone's body at a candidate position, inflated by a
        safety margin.  Unknown space is treated as free here; planners that
        must avoid unknown space use :meth:`region_unknown_fraction`.
        """
        check = box.inflate(margin) if margin > 0 else box
        lo_key = self.key_for(check.lo)
        hi_key = self.key_for(check.hi)
        for i in range(lo_key[0], hi_key[0] + 1):
            for j in range(lo_key[1], hi_key[1] + 1):
                for k in range(lo_key[2], hi_key[2] + 1):
                    value = self._cells.get((i, j, k))
                    if value is not None and value > OCCUPANCY_THRESHOLD:
                        return True
        return False

    def region_unknown_fraction(self, box: AABB) -> float:
        """Fraction of voxels inside ``box`` that are unobserved."""
        lo_key = self.key_for(box.lo)
        hi_key = self.key_for(box.hi)
        total = 0
        unknown = 0
        for i in range(lo_key[0], hi_key[0] + 1):
            for j in range(lo_key[1], hi_key[1] + 1):
                for k in range(lo_key[2], hi_key[2] + 1):
                    total += 1
                    if (i, j, k) not in self._cells:
                        unknown += 1
        return unknown / total if total else 1.0

    def known_volume(self) -> float:
        """Total volume (m^3) of observed voxels."""
        return len(self._cells) * self.resolution**3

    def coverage_fraction(self, region: Optional[AABB] = None) -> float:
        """Observed fraction of ``region`` (or of ``self.bounds``).

        The 3D Mapping workload's completion metric.
        """
        box = region or self.bounds
        if box is None:
            raise ValueError("coverage needs an explicit region or map bounds")
        if box.volume <= 0:
            return 1.0
        return min(self.known_volume() / box.volume, 1.0)

    # ------------------------------------------------------------------
    # Resolution management (the energy case-study knob)
    # ------------------------------------------------------------------
    def rebuilt_at_resolution(self, resolution: float) -> "OctoMap":
        """A new map at a different resolution carrying over this map's
        knowledge.

        Coarsening max-pools occupancy: any occupied fine voxel makes the
        coarse voxel occupied — the obstacle inflation of Fig. 17.
        Refining expands each occupied coarse voxel into all contained
        fine voxels (conservative: the surface is somewhere inside), and
        carries free space over at a subsampled stride (fresh scans re-
        carve it quickly; losing free-space detail is harmless, losing
        obstacles is not).

        Carried log-odds are capped to +-0.35 in both directions: evidence
        accumulated at a different resolution is weak evidence about the
        re-gridded cells, and fresh observations must be able to overturn
        it within a few scans (a doorway that a coarse map declared
        blocked must re-open quickly once the fine map actually sees it).
        """
        other = OctoMap(
            resolution=resolution,
            bounds=self.bounds,
            hit_update=self.hit_update,
            miss_update=self.miss_update,
        )
        refining = resolution < self.resolution

        def carried(value: float) -> float:
            # Weak-evidence cap: one fresh observation (hit +0.85 or miss
            # -0.4 with the 0.35 floor below it) can overturn any carried
            # cell, so re-gridded knowledge never outvotes current sensing.
            return min(max(value, -0.35), 0.35)

        if not refining:
            for key, value in self._cells.items():
                value = carried(value)
                if value > OCCUPANCY_THRESHOLD:
                    # Occupied fine voxels may straddle coarse boundaries
                    # (resolutions need not nest): mark every overlapping
                    # coarse voxel so no obstacle evidence is dropped.
                    box = self.voxel_box(key)
                    eps = 1e-9
                    targets = {
                        other.key_for(np.clip(corner, box.lo + eps, box.hi - eps))
                        for corner in box.corners()
                    }
                else:
                    targets = {other.key_for(self.center_of(key))}
                for new_key in targets:
                    existing = other._cells.get(new_key)
                    if existing is None or value > existing:
                        other._cells[new_key] = value
            return other
        n_sub = max(int(math.ceil(self.resolution / resolution)), 1)
        free_stride = max(n_sub // 2, 1)
        for key, value in self._cells.items():
            lo = np.asarray(key, dtype=float) * self.resolution
            occupied = value > OCCUPANCY_THRESHOLD
            stride = 1 if occupied else free_stride
            value = carried(value)
            for i in range(0, n_sub, stride):
                for j in range(0, n_sub, stride):
                    for k in range(0, n_sub, stride):
                        center = lo + (np.array([i, j, k]) + 0.5) * resolution
                        if not self._in_bounds(center):
                            continue
                        new_key = other.key_for(center)
                        existing = other._cells.get(new_key)
                        if existing is None or value > existing:
                            other._cells[new_key] = value
        return other

    def memory_cells(self) -> int:
        """Stored leaf count (memory footprint proxy)."""
        return len(self._cells)
