"""Map-quality metrics: belief map vs ground truth.

The paper lists "the discrepancy between a collected and ground truth
map" as the 3D Mapping workload's specialized QoF metric.  This module
scores an OctoMap against the true world by sampling probe points and
comparing the belief's label (occupied / free / unknown) with reality.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..world.environment import World
from ..world.geometry import AABB
from .octomap import OctoMap


@dataclass
class MapQuality:
    """Confusion summary of a belief map against ground truth.

    All rates are fractions of the sampled probe points.
    """

    true_occupied: float  # believed occupied, actually occupied
    false_occupied: float  # believed occupied, actually free (inflation)
    true_free: float
    false_free: float  # believed free, actually occupied (DANGEROUS)
    unknown: float
    samples: int

    @property
    def accuracy(self) -> float:
        """Correctly labeled fraction among *observed* probes."""
        observed = 1.0 - self.unknown
        if observed <= 0:
            return 0.0
        return (self.true_occupied + self.true_free) / observed

    @property
    def safety_violation_rate(self) -> float:
        """Believed-free-but-occupied rate — the error mode that causes
        collisions (thin obstacles vanishing, Fig. 17's inverse)."""
        return self.false_free

    @property
    def inflation_rate(self) -> float:
        """Believed-occupied-but-free rate — the error mode that closes
        doorways at coarse resolutions (Fig. 17)."""
        return self.false_occupied


def evaluate_map(
    octomap: OctoMap,
    world: World,
    region: Optional[AABB] = None,
    samples: int = 4000,
    seed: int = 0,
    time: float = 0.0,
) -> MapQuality:
    """Score ``octomap`` against ``world`` over ``region``.

    Probes are uniform in the region; dynamic obstacles are evaluated at
    ``time``.
    """
    if samples < 1:
        raise ValueError("need at least one sample")
    box = region or octomap.bounds or world.bounds
    rng = np.random.default_rng(seed)
    points = rng.uniform(box.lo, box.hi, size=(samples, 3))
    counts = {"to": 0, "fo": 0, "tf": 0, "ff": 0, "unk": 0}
    for p in points:
        truly_occupied = world.is_occupied(p, time=time)
        value = octomap.log_odds_at(p)
        if value is None:
            counts["unk"] += 1
        elif value > 0:
            counts["to" if truly_occupied else "fo"] += 1
        else:
            counts["ff" if truly_occupied else "tf"] += 1
    n = float(samples)
    return MapQuality(
        true_occupied=counts["to"] / n,
        false_occupied=counts["fo"] / n,
        true_free=counts["tf"] / n,
        false_free=counts["ff"] / n,
        unknown=counts["unk"] / n,
        samples=samples,
    )


def resolution_quality_sweep(
    world: World,
    scans,
    resolutions=(0.15, 0.3, 0.5, 0.8),
    region: Optional[AABB] = None,
    seed: int = 0,
):
    """Build maps of the same scans at several resolutions and score each.

    Returns ``[(resolution, MapQuality), ...]`` — the quantitative
    backbone of the Fig. 17 visualization: inflation grows with voxel
    size while safety violations stay near zero.
    """
    results = []
    for resolution in resolutions:
        om = OctoMap(resolution=resolution, bounds=world.bounds)
        for cloud in scans:
            om.insert_scan(cloud, carve_rays=60)
        results.append(
            (resolution, evaluate_map(om, world, region=region, seed=seed))
        )
    return results
