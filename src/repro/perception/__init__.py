"""Perception kernels: point cloud, OctoMap, SLAM, detection, tracking.

From-scratch implementations of the perception stage of the MAVBench
pipeline (Fig. 5).
"""

from .point_cloud import PointCloud, depth_to_point_cloud
from .octomap import (
    LOG_ODDS_HIT,
    LOG_ODDS_MAX,
    LOG_ODDS_MIN,
    LOG_ODDS_MISS,
    OCCUPANCY_THRESHOLD,
    OctoMap,
    log_odds,
    probability,
)
from .slam import SlamStatus, VisualSlam, generate_landmarks, max_velocity_for_fps
from .detection import (
    DETECTORS,
    HAAR,
    HOG,
    YOLO,
    BoundingBox,
    DetectorModel,
    ObjectDetector,
)
from .tracking import CorrelationTracker, TrackerState
from .map_quality import MapQuality, evaluate_map, resolution_quality_sweep
from .localization import (
    GpsLocalizer,
    GroundTruthLocalizer,
    Localizer,
    SlamLocalizer,
)

__all__ = [
    "BoundingBox",
    "CorrelationTracker",
    "DETECTORS",
    "DetectorModel",
    "GpsLocalizer",
    "GroundTruthLocalizer",
    "HAAR",
    "HOG",
    "LOG_ODDS_HIT",
    "LOG_ODDS_MAX",
    "LOG_ODDS_MIN",
    "LOG_ODDS_MISS",
    "Localizer",
    "OCCUPANCY_THRESHOLD",
    "ObjectDetector",
    "OctoMap",
    "PointCloud",
    "SlamLocalizer",
    "SlamStatus",
    "TrackerState",
    "VisualSlam",
    "YOLO",
    "depth_to_point_cloud",
    "generate_landmarks",
    "log_odds",
    "MapQuality",
    "evaluate_map",
    "max_velocity_for_fps",
    "resolution_quality_sweep",
    "probability",
]
