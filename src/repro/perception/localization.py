"""Pluggable localization sources.

MAVBench "comes pre-packaged with multiple localization solutions that can
be used interchangeably": simulated GPS, visual SLAM (ORB-SLAM2 /
VINS-Mono), and ground truth.  This module provides the common interface
plus the GPS- and ground-truth-backed implementations; the SLAM-backed one
wraps :class:`~repro.perception.slam.VisualSlam`.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..dynamics.state import VehicleState
from ..sensors.imu_gps import Gps
from .slam import VisualSlam


class Localizer(abc.ABC):
    """Interface: produce a position estimate from the true state.

    ``kernel_name`` names the compute kernel whose latency the scheduler
    charges per localization update.
    """

    kernel_name: str = "localization_gps"

    @abc.abstractmethod
    def update(self, state: VehicleState) -> Optional[np.ndarray]:
        """New position estimate, or None if localization failed."""

    @property
    def healthy(self) -> bool:
        """Whether the source is currently producing estimates."""
        return True


@dataclass
class GroundTruthLocalizer(Localizer):
    """Perfect localization (the paper's ground-truth option)."""

    kernel_name = "localization_gps"

    def update(self, state: VehicleState) -> Optional[np.ndarray]:
        return state.position.copy()


class GpsLocalizer(Localizer):
    """GPS-backed localization."""

    kernel_name = "localization_gps"

    def __init__(self, gps: Optional[Gps] = None) -> None:
        self.gps = gps or Gps()
        self._last_fix: Optional[np.ndarray] = None

    def update(self, state: VehicleState) -> Optional[np.ndarray]:
        fix = self.gps.read(state)
        if not fix.valid:
            return self._last_fix
        self._last_fix = fix.position
        return fix.position

    @property
    def healthy(self) -> bool:
        return self._last_fix is not None


class SlamLocalizer(Localizer):
    """Visual-SLAM-backed localization (ORB-SLAM2 stand-in)."""

    kernel_name = "slam"

    def __init__(self, slam: VisualSlam) -> None:
        self.slam = slam
        self._tracked = True

    def update(self, state: VehicleState) -> Optional[np.ndarray]:
        status = self.slam.process_frame(
            state.position, state.yaw, timestamp=state.time
        )
        self._tracked = status.tracked
        return status.pose_estimate

    @property
    def healthy(self) -> bool:
        return self._tracked

    @property
    def failure_rate(self) -> float:
        return self.slam.failure_rate
