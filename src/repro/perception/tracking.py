"""KCF-style object tracking for the Aerial Photography workload.

Substitute for the kernelized-correlation-filter tracker MAVBench ships.
A correlation tracker holds a template of the target's appearance and
searches a window around the previous location each frame; it drifts when
the target moves farther than the search window between processed frames
and must be re-initialized by the (slower) detector.

Our simulated tracker reproduces those dynamics in image space: it tracks
the target's bounding-box center with a bounded per-frame search radius.
High tracker FPS (more compute) keeps the inter-frame motion inside the
window; low FPS loses the target, forcing detector re-initialization —
the interplay that gives the paper's 10X tracking speedup its value.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from .detection import BoundingBox


@dataclass
class TrackerState:
    """Public view of the tracker after one update."""

    tracking: bool
    center_px: Optional[Tuple[float, float]]
    frames_tracked: int
    lost_count: int


@dataclass
class CorrelationTracker:
    """A KCF-like single-object tracker in bounding-box space.

    Attributes
    ----------
    search_radius_px:
        Maximum apparent motion (pixels/frame) the tracker can follow.
    jitter_px:
        Measurement noise of the tracked center.
    mode:
        "realtime" processes the newest frame only (cheap kernel);
        "buffered" processes every frame in order (the more expensive
        kernel of Table I, 80 ms vs 18 ms).
    """

    search_radius_px: float = 12.0
    jitter_px: float = 0.6
    mode: str = "realtime"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.mode not in ("realtime", "buffered"):
            raise ValueError("mode must be 'realtime' or 'buffered'")
        self._rng = np.random.default_rng(self.seed)
        self._center: Optional[Tuple[float, float]] = None
        self.frames_tracked = 0
        self.lost_count = 0

    @property
    def kernel_name(self) -> str:
        """The compute-model kernel this tracker mode corresponds to."""
        return (
            "tracking_buffered" if self.mode == "buffered" else "tracking_realtime"
        )

    @property
    def tracking(self) -> bool:
        return self._center is not None

    def initialize(self, box: BoundingBox) -> None:
        """(Re-)initialize from a detector output."""
        self._center = box.center_px
        self.frames_tracked = 0

    def update(self, true_center_px: Optional[Tuple[float, float]]) -> TrackerState:
        """Advance one processed frame.

        Parameters
        ----------
        true_center_px:
            The target's actual pixel position this frame, or None if the
            target has left the frame.
        """
        if self._center is None:
            return TrackerState(False, None, self.frames_tracked, self.lost_count)
        if true_center_px is None:
            self._lose()
            return TrackerState(False, None, self.frames_tracked, self.lost_count)
        dx = true_center_px[0] - self._center[0]
        dy = true_center_px[1] - self._center[1]
        motion = math.hypot(dx, dy)
        if motion > self.search_radius_px:
            self._lose()
            return TrackerState(False, None, self.frames_tracked, self.lost_count)
        noise = self._rng.normal(0.0, self.jitter_px, size=2)
        self._center = (
            true_center_px[0] + float(noise[0]),
            true_center_px[1] + float(noise[1]),
        )
        self.frames_tracked += 1
        return TrackerState(True, self._center, self.frames_tracked, self.lost_count)

    def _lose(self) -> None:
        self._center = None
        self.lost_count += 1

    @property
    def center_px(self) -> Optional[Tuple[float, float]]:
        return self._center
