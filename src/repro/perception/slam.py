"""Visual-SLAM localization with compute-dependent tracking failure.

Substitute for ORB-SLAM2 / VINS-Mono.  The paper's microbenchmark
(Fig. 8b) shows the effect we must reproduce: SLAM tracks features across
successive frames, and "the faster the speed of the drone, the higher the
likelihood of its localization failure because the environment changes
rapidly around a fast drone" — more frames per second (more compute)
permits higher velocity at a bounded failure rate.

Model: the world carries a field of visual landmarks.  Each processed
frame observes the landmarks inside the camera frustum; tracking succeeds
when enough landmarks overlap with the previous frame's set.  Between
consecutive frames the camera moves ``v / fps`` meters, so the overlap —
and with it the tracking success probability — falls as velocity rises or
FPS drops.  The pose estimate integrates noisy odometry; a tracking loss
causes a relocalization stall and an error spike, exactly the
"backtracking / extra time for re-localization" cost the paper describes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Set, Tuple

import numpy as np

from ..world.environment import World
from ..world.geometry import norm, wrap_angle


def generate_landmarks(
    world: World, count: int = 400, seed: int = 0
) -> np.ndarray:
    """Scatter visual landmarks through the world (on obstacle faces where
    possible, free space otherwise)."""
    rng = np.random.default_rng(seed)
    lo, hi = world.bounds.lo, world.bounds.hi
    points = rng.uniform(lo, hi, size=(count, 3))
    # Snap a fraction of the landmarks onto obstacle surfaces: textured
    # structure is where real features live.
    statics = world.static_obstacles
    if statics:
        for i in range(0, count, 3):
            obs = statics[int(rng.integers(len(statics)))]
            face_point = obs.box.closest_point(points[i])
            points[i] = face_point
    return points


@dataclass
class SlamStatus:
    """Result of processing one frame."""

    tracked: bool
    matched_landmarks: int
    pose_estimate: np.ndarray
    error_m: float
    timestamp: float


@dataclass
class VisualSlam:
    """Landmark-tracking SLAM front end.

    Attributes
    ----------
    landmarks:
        World-frame landmark positions, shape (N, 3).
    fov_deg:
        Camera horizontal field of view.
    max_range:
        Landmark visibility range (m).
    min_matches:
        Matched-landmark count below which tracking is lost.
    odometry_noise_std:
        Per-frame integration noise (m) when tracking holds.
    relocalization_s:
        Stall time after a tracking loss before tracking can resume.
    """

    landmarks: np.ndarray
    fov_deg: float = 90.0
    max_range: float = 18.0
    min_matches: int = 12
    odometry_noise_std: float = 0.02
    relocalization_s: float = 1.5
    seed: int = 0

    def __post_init__(self) -> None:
        self.landmarks = np.asarray(self.landmarks, dtype=float)
        self._rng = np.random.default_rng(self.seed)
        self._prev_visible: Optional[np.ndarray] = None
        self._prev_position: Optional[np.ndarray] = None
        self._estimate: Optional[np.ndarray] = None
        self._reloc_until = -math.inf
        self.failures = 0
        self.frames = 0

    # ------------------------------------------------------------------
    def visible_landmark_mask(
        self, position: np.ndarray, yaw: float
    ) -> np.ndarray:
        """Boolean mask over landmarks inside the camera frustum right now.

        The batch form the tracker consumes: frame-to-frame overlap is one
        vectorized AND over these masks, no per-landmark set churn.
        """
        position = np.asarray(position, dtype=float)
        delta = self.landmarks - position[None, :]
        dist = np.linalg.norm(delta, axis=1)
        in_range = (dist > 0.2) & (dist <= self.max_range)
        bearing = np.arctan2(delta[:, 1], delta[:, 0])
        half_fov = math.radians(self.fov_deg) / 2.0
        ang = np.abs(((bearing - yaw + np.pi) % (2 * np.pi)) - np.pi)
        return in_range & (ang <= half_fov)

    def visible_landmark_ids(
        self, position: np.ndarray, yaw: float
    ) -> Set[int]:
        """Indices of landmarks inside the camera frustum right now."""
        mask = self.visible_landmark_mask(position, yaw)
        return set(np.nonzero(mask)[0].tolist())

    def process_frame(
        self,
        true_position: np.ndarray,
        yaw: float,
        timestamp: float,
    ) -> SlamStatus:
        """Process one camera frame at simulated time ``timestamp``.

        The caller controls the frame rate — calling this more often (i.e.
        more compute / higher FPS) means less camera motion between frames
        and therefore higher landmark overlap.
        """
        true_position = np.asarray(true_position, dtype=float)
        self.frames += 1
        visible = self.visible_landmark_mask(true_position, yaw)
        if self._estimate is None:
            self._estimate = true_position.copy()
        in_relocalization = timestamp < self._reloc_until

        if self._prev_visible is None:
            matches = int(np.count_nonzero(visible))
            tracked = matches >= self.min_matches
        else:
            matches = int(np.count_nonzero(visible & self._prev_visible))
            tracked = matches >= self.min_matches and not in_relocalization

        if tracked and self._prev_position is not None:
            # Integrate noisy odometry from the previous processed frame.
            motion = true_position - self._prev_position
            noise = self._rng.normal(
                0.0, self.odometry_noise_std, size=3
            ) * max(norm(motion), 0.05)
            self._estimate = self._estimate + motion + noise
        elif not tracked:
            self.failures += 1
            self._reloc_until = timestamp + self.relocalization_s
            # Relocalization snaps back to truth with a residual error,
            # modeling a successful (but costly) global relocalization.
            self._estimate = true_position + self._rng.normal(0.0, 0.3, size=3)

        self._prev_visible = visible
        self._prev_position = true_position.copy()
        error = norm(self._estimate - true_position)
        return SlamStatus(
            tracked=tracked,
            matched_landmarks=matches,
            pose_estimate=self._estimate.copy(),
            error_m=error,
            timestamp=timestamp,
        )

    @property
    def failure_rate(self) -> float:
        """Fraction of processed frames that lost tracking."""
        if self.frames == 0:
            return 0.0
        return self.failures / self.frames

    def reset(self) -> None:
        self._prev_visible = None
        self._prev_position = None
        self._estimate = None
        self._reloc_until = -math.inf
        self.failures = 0
        self.frames = 0


def max_velocity_for_fps(
    fps: float,
    landmark_visibility_m: float = 18.0,
    fov_deg: float = 90.0,
    max_failure_rate: float = 0.2,
    overlap_needed: float = 0.55,
) -> float:
    """Closed-form estimate of the SLAM-bounded max velocity (Fig. 8b).

    Between frames the camera translates ``v / fps``; the fraction of the
    frustum still shared with the previous frame shrinks roughly linearly
    in that motion relative to the visibility range.  Requiring the shared
    fraction to stay above ``overlap_needed`` (with headroom shrinking as
    the allowed failure rate drops) bounds velocity:

        v_max ~= fps * visibility * (1 - overlap_needed) * (1 + margin)

    The shape is what matters: v_max grows linearly with FPS and saturates
    at the airframe's mechanical limit in the closed loop.
    """
    if fps <= 0:
        return 0.0
    margin = max_failure_rate  # more tolerated failures -> more speed
    return fps * landmark_visibility_m * (1.0 - overlap_needed) * (1.0 + margin)
