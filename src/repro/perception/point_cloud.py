"""Point-cloud generation from depth images.

The first perception kernel of the Package Delivery / Mapping / SAR
pipelines (Fig. 7): reproject a depth image into a world-frame point
cloud that the OctoMap generator consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..sensors.camera import DepthImage


@dataclass
class PointCloud:
    """A set of world-frame points plus the sensor origin that saw them.

    ``hits`` are returns from real surfaces; ``misses`` are the endpoints
    of max-range rays (known-free space along the whole ray).  OctoMap
    needs both: hits add occupied voxels, misses only clear free space.
    """

    origin: np.ndarray
    hits: np.ndarray  # (N, 3)
    misses: np.ndarray  # (M, 3) endpoints of max-range rays
    timestamp: float = 0.0

    @property
    def size(self) -> int:
        return int(self.hits.shape[0])

    @property
    def all_endpoints(self) -> np.ndarray:
        """Hits and misses stacked as one (N+M, 3) ray-endpoint batch.

        The batched OctoMap insertion kernels consume this directly, so a
        scan flows origin-to-octree as arrays with no per-point calls.
        """
        if self.misses.size:
            return np.vstack([self.hits, self.misses])
        return np.asarray(self.hits)

    def subsample(self, max_points: int, seed: int = 0) -> "PointCloud":
        """Randomly keep at most ``max_points`` hits (and misses).

        The closed-loop simulator subsamples clouds before octree insertion
        to bound per-frame insertion cost, mirroring the voxel-filter ROS
        preprocessing MAVBench applies before OctoMap.
        """
        rng = np.random.default_rng(seed)

        def pick(arr: np.ndarray) -> np.ndarray:
            if arr.shape[0] <= max_points:
                return arr
            idx = rng.choice(arr.shape[0], size=max_points, replace=False)
            return arr[idx]

        return PointCloud(
            origin=self.origin,
            hits=pick(self.hits),
            misses=pick(self.misses),
            timestamp=self.timestamp,
        )


def depth_to_point_cloud(
    image: DepthImage, stride: int = 1, min_depth: float = 0.05
) -> PointCloud:
    """Reproject a :class:`DepthImage` into a world-frame point cloud.

    Parameters
    ----------
    image:
        The depth frame (carries its own ray geometry).
    stride:
        Keep every ``stride``-th pixel (1 = all pixels).
    min_depth:
        Returns closer than this are discarded as self-hits.
    """
    if stride < 1:
        raise ValueError("stride must be >= 1")
    depth = image.depth.reshape(-1)
    dirs = image.directions
    if stride > 1:
        depth = depth[::stride]
        dirs = dirs[::stride]
    valid = depth >= min_depth
    depth = depth[valid]
    dirs = dirs[valid]
    points = image.origin[None, :] + dirs * depth[:, None]
    hit_mask = depth < image.max_range - 1e-6
    return PointCloud(
        origin=image.origin.copy(),
        hits=points[hit_mask],
        misses=points[~hit_mask],
        timestamp=image.timestamp,
    )
