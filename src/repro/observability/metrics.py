"""Counters, gauges, and histograms for mission-loop observability.

The registry complements spans: spans say *where time went*, metrics say
*how often and how big* — replans per mission, collision-query batch
sizes, scenario-cache hits, campaign queue waits, fleet gate waits.
Everything reduces to a deterministic JSON-shaped snapshot so campaign
records and the ``repro profile`` CLI can persist them.

Histograms keep count/sum/min/max plus power-of-two buckets (a value
``v`` lands in bucket ``ceil(log2(v))``), which is enough to answer
"what batch sizes does the collision checker actually see?" without
storing every observation.

Thread safety: fleet execution increments metrics from N mission
threads concurrently, so every mutation runs under a lock shared across
the registry (standalone instruments own a private lock).  The GIL
makes single-bytecode updates atomic, but ``inc``/``observe`` are
read-modify-write sequences — without the lock a preemption between the
read and the write silently drops updates (pinned by the hammer test in
``tests/test_observability.py``).  Only enabled-path traffic pays: the
disabled fast path in :mod:`repro.observability.trace` never reaches a
registry.
"""

from __future__ import annotations

import math
import threading
from typing import Any, Dict, Optional

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value", "_lock")

    def __init__(self, lock: Optional[threading.Lock] = None) -> None:
        self.value = 0
        self._lock = lock if lock is not None else threading.Lock()

    def inc(self, n: int = 1) -> None:
        with self._lock:
            self.value += n


class Gauge:
    """A last-value-wins measurement."""

    __slots__ = ("value", "_lock")

    def __init__(self, lock: Optional[threading.Lock] = None) -> None:
        self.value: Optional[float] = None
        self._lock = lock if lock is not None else threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value


class Histogram:
    """Streaming distribution summary with power-of-two buckets."""

    __slots__ = ("count", "sum", "min", "max", "buckets", "_lock")

    def __init__(self, lock: Optional[threading.Lock] = None) -> None:
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        #: bucket exponent -> observation count; bucket ``e`` holds
        #: values in (2**(e-1), 2**e] (and e=0 holds (0, 1]; values
        #: <= 0 land in a dedicated "le0" bucket).
        self.buckets: Dict[str, int] = {}
        self._lock = lock if lock is not None else threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        if value <= 0.0:
            key = "le0"
        else:
            key = str(max(math.ceil(math.log2(value)), 0))
        with self._lock:
            self.count += 1
            self.sum += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value
            self.buckets[key] = self.buckets.get(key, 0) + 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            if not self.count:
                return {"count": 0}
            return {
                "count": self.count,
                "sum": self.sum,
                "min": self.min,
                "max": self.max,
                "mean": self.mean,
                "buckets": {k: self.buckets[k] for k in sorted(self.buckets)},
            }


class MetricsRegistry:
    """Name-keyed counters/gauges/histograms with a JSON snapshot.

    Metric kinds live in separate namespaces; asking for a ``counter``
    under a name previously used as a ``histogram`` raises, so a typo'd
    call site cannot silently split a metric across kinds.

    One registry-wide lock covers both registration (get-or-create races
    from concurrent fleet threads must not mint two instruments for one
    name) and every instrument's mutations (the instruments share it).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def _check_unique(self, name: str, kind: Dict) -> None:
        for other in (self._counters, self._gauges, self._histograms):
            if other is not kind and name in other:
                raise ValueError(
                    f"metric '{name}' already registered with another kind"
                )

    def counter(self, name: str) -> Counter:
        with self._lock:
            c = self._counters.get(name)
            if c is None:
                self._check_unique(name, self._counters)
                c = self._counters[name] = Counter(self._lock)
            return c

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            g = self._gauges.get(name)
            if g is None:
                self._check_unique(name, self._gauges)
                g = self._gauges[name] = Gauge(self._lock)
            return g

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            h = self._histograms.get(name)
            if h is None:
                self._check_unique(name, self._histograms)
                h = self._histograms[name] = Histogram(self._lock)
            return h

    def snapshot(self) -> Dict[str, Any]:
        """Deterministic JSON-shaped dump of every registered metric."""
        with self._lock:
            counters = {
                k: self._counters[k].value for k in sorted(self._counters)
            }
            gauges = {
                k: self._gauges[k].value for k in sorted(self._gauges)
            }
            histograms = list(
                (k, self._histograms[k]) for k in sorted(self._histograms)
            )
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": {k: h.snapshot() for k, h in histograms},
        }
