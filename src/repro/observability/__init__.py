"""Mission-loop observability: span tracing, metrics, and exporters.

The measure-first layer behind ``repro profile``, ``repro run --trace``,
and ``repro campaign --profile``: nested host+sim-time spans over the
simulator's tick phases, the perception inserts, every planner call, and
the campaign runner, plus a counters/gauges/histograms registry and
exporters to Chrome trace-event JSON / CSV / self-total phase trees.

Tracing is **off by default** and the disabled fast path is a single
global check (overhead gated in ``benchmarks/test_ablation_tracing.py``),
so the instrumentation lives permanently in the hot paths without taxing
benches or tests.  See ``docs/observability.md`` for the span taxonomy.
"""

from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .trace import (
    Span,
    Tracer,
    capture,
    count,
    enabled,
    get_tracer,
    install,
    observe,
    set_sim_clock,
    span,
    uninstall,
)
from .export import (
    PhaseNode,
    TRACE_SCHEMA,
    aggregate_phases,
    chrome_trace,
    format_phase_summary,
    format_phase_tree,
    merge_phase_summaries,
    phase_summary,
    spans_to_csv,
    validate_chrome_trace,
    write_chrome_trace,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PhaseNode",
    "Span",
    "TRACE_SCHEMA",
    "Tracer",
    "aggregate_phases",
    "capture",
    "chrome_trace",
    "count",
    "enabled",
    "format_phase_summary",
    "format_phase_tree",
    "get_tracer",
    "install",
    "merge_phase_summaries",
    "observe",
    "phase_summary",
    "set_sim_clock",
    "span",
    "spans_to_csv",
    "uninstall",
    "validate_chrome_trace",
    "write_chrome_trace",
]
