"""Mission-loop observability: span tracing, metrics, and exporters.

The measure-first layer behind ``repro profile``, ``repro run --trace``,
and ``repro campaign --profile``: nested host+sim-time spans over the
simulator's tick phases, the perception inserts, every planner call, and
the campaign runner, plus a counters/gauges/histograms registry and
exporters to Chrome trace-event JSON / CSV / self-total phase trees.
Fleet execution traces too: per-mission span streams keep N concurrent
mission threads from interleaving, and the Chrome exporter renders a
fleet as parallel swimlanes (one per mission, plus the tick-gate lane).

Tracing is **off by default** and the disabled fast path is a single
global check (overhead gated in ``benchmarks/test_ablation_tracing.py``,
including from inside a fleet thread), so the instrumentation lives
permanently in the hot paths without taxing benches or tests.  See
``docs/observability.md`` for the span taxonomy and the fleet
attribution model.
"""

from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .trace import (
    Span,
    Tracer,
    capture,
    count,
    enabled,
    get_tracer,
    install,
    mission_scope,
    observe,
    set_sim_clock,
    span,
    uninstall,
)
from .export import (
    PhaseNode,
    READABLE_TRACE_SCHEMAS,
    TRACE_SCHEMA,
    aggregate_phases,
    chrome_trace,
    format_phase_summary,
    format_phase_tree,
    merge_phase_summaries,
    phase_summary,
    spans_by_mission,
    spans_to_csv,
    summarize_spans,
    validate_chrome_trace,
    write_chrome_trace,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PhaseNode",
    "READABLE_TRACE_SCHEMAS",
    "Span",
    "TRACE_SCHEMA",
    "Tracer",
    "aggregate_phases",
    "capture",
    "chrome_trace",
    "count",
    "enabled",
    "format_phase_summary",
    "format_phase_tree",
    "get_tracer",
    "install",
    "merge_phase_summaries",
    "mission_scope",
    "observe",
    "phase_summary",
    "set_sim_clock",
    "span",
    "spans_by_mission",
    "spans_to_csv",
    "summarize_spans",
    "uninstall",
    "validate_chrome_trace",
    "write_chrome_trace",
]
