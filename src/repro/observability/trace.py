"""Span tracing for the mission loop: where *host* time goes.

MAVBench's kernel profile (Table 1, Fig. 15) answers "where does the
closed loop spend its time?" for the modeled companion computer.  This
module answers the same question for *our* reproduction's host process:
nested spans wrap the simulator's tick phases, the perception inserts,
every planner invocation, and the campaign runner, carrying both host
wall time (``perf_counter``) and simulated mission time, so one trace
explains both clocks.

Design constraints, in order:

1. **Zero behavioral impact.**  Tracing touches only ``perf_counter``
   and the tracer's own buffers — never the simulation RNG, the sim
   clock, or any mission state.  Golden traces are bit-identical with
   tracing on (pinned by ``tests/test_observability.py`` and the traced
   fleet golden suite).
2. **A disabled fast path.**  Instrumentation sites call
   :func:`span`/:func:`count`/:func:`observe`, which reduce to a single
   global ``is None`` check plus a shared no-op context manager when no
   tracer is installed.  The per-call overhead is gated in CI
   (``benchmarks/test_ablation_tracing.py`` — including from inside a
   fleet thread), so always-on instrumentation of per-tick phases stays
   free for every existing bench and test.
3. **One process, one tracer; many streams.**  The tracer installs per
   process (``install``/``capture``) but collects spans into
   *per-stream* stacks: every thread gets its own anonymous stream, and
   a **mission-labeled** stream can be entered from any thread via
   :func:`mission_scope` (fleet threads) or
   :meth:`Tracer.use_stream` (the fleet tick gate re-attributing a
   member's compute phase).  N fleet threads therefore trace
   concurrently without interleaving one another's span nesting, and
   every span carries the mission it belongs to.

Usage::

    from repro.observability import trace

    with trace.capture() as tracer:
        run_workload("package_delivery")
    print(format_phase_tree(aggregate_phases(tracer.spans)))

Instrumentation sites use the module-level helpers::

    with trace.span("plan.rrt", "planning") as sp:
        result = self._plan(start, goal)
        sp.set(iterations=result.iterations)

Fleet attribution model (see ``docs/observability.md``)::

    with trace.mission_scope("m0:scanning", group="fleet"):
        run_workload("scanning")   # spans tagged mission="m0:scanning"
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from .metrics import MetricsRegistry

__all__ = [
    "Span",
    "Tracer",
    "capture",
    "count",
    "enabled",
    "get_tracer",
    "install",
    "mission_scope",
    "observe",
    "set_sim_clock",
    "span",
    "uninstall",
]


class Span:
    """One completed (or open) traced region.

    Attributes
    ----------
    name / category:
        Span identity ("plan.rrt_star") and Perfetto track category
        ("planning").
    path:
        Tuple of ancestor names root→self; the phase-aggregation key.
    mission:
        The mission (stream) label this span belongs to, or ``None``
        for the anonymous per-thread stream (sequential missions, the
        main thread).  Exporters map missions to Perfetto swimlanes.
    t0 / t1:
        Host ``perf_counter`` timestamps (absolute; exporters subtract
        the tracer origin).
    sim_t0 / sim_t1:
        Simulated mission time at entry/exit when a sim clock is
        registered on the span's stream, else ``None``.
    attrs:
        Free-form JSON-shaped annotations (iteration counts, batch
        sizes, ...).
    """

    __slots__ = (
        "name", "category", "path", "mission",
        "t0", "t1", "sim_t0", "sim_t1", "attrs",
    )

    def __init__(
        self,
        name: str,
        category: str,
        path: Tuple[str, ...],
        mission: Optional[str] = None,
    ) -> None:
        self.name = name
        self.category = category
        self.path = path
        self.mission = mission
        self.t0 = 0.0
        self.t1 = 0.0
        self.sim_t0: Optional[float] = None
        self.sim_t1: Optional[float] = None
        self.attrs: Optional[Dict[str, Any]] = None

    @property
    def duration_s(self) -> float:
        return self.t1 - self.t0

    @property
    def sim_duration_s(self) -> Optional[float]:
        if self.sim_t0 is None or self.sim_t1 is None:
            return None
        return self.sim_t1 - self.sim_t0

    def set(self, **attrs: Any) -> None:
        """Attach annotations to the span (exported as Perfetto args)."""
        if self.attrs is None:
            self.attrs = {}
        self.attrs.update(attrs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({'/'.join(self.path)}, {self.duration_s * 1e3:.3f} ms)"
        )


class _NoopSpan:
    """Shared do-nothing span handle for the disabled fast path."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: Any) -> None:
        return None

    def set(self, **attrs: Any) -> None:
        return None


_NOOP = _NoopSpan()


class _SpanContext:
    """Context manager that opens a span on enter, closes it on exit."""

    __slots__ = ("_tracer", "_name", "_category", "_span")

    def __init__(self, tracer: "Tracer", name: str, category: str) -> None:
        self._tracer = tracer
        self._name = name
        self._category = category
        self._span: Optional[Span] = None

    def __enter__(self) -> Span:
        self._span = self._tracer.start(self._name, self._category)
        return self._span

    def __exit__(self, *exc: Any) -> None:
        self._tracer.finish(self._span)


class _Stream:
    """One span stream: an open-span stack plus its attribution.

    Streams come in two flavors sharing this class: *anonymous*
    per-thread streams (``label is None`` — the classic sequential
    path) and *named* mission streams shared by label (a fleet member's
    mission, or a fleet gate lane).  A named stream may be driven from
    more than one thread — the member's own thread, and the gate-runner
    thread re-attributing that member's compute phase — but never
    concurrently: the fleet tick gate serializes those accesses under
    its condition lock, which also provides the happens-before ordering
    for the stack.
    """

    __slots__ = ("label", "group", "stack", "sim_clock")

    def __init__(self, label: Optional[str], group: Optional[str] = None) -> None:
        self.label = label
        self.group = group
        self.stack: List[Span] = []
        self.sim_clock: Optional[Callable[[], float]] = None


class _StreamScope:
    """Context manager swapping the calling thread's current stream."""

    __slots__ = ("_tracer", "_stream", "_prev")

    def __init__(self, tracer: "Tracer", stream: _Stream) -> None:
        self._tracer = tracer
        self._stream = stream
        self._prev: Optional[_Stream] = None

    def __enter__(self) -> _Stream:
        tls = self._tracer._tls
        self._prev = getattr(tls, "stream", None)
        tls.stream = self._stream
        return self._stream

    def __exit__(self, *exc: Any) -> None:
        self._tracer._tls.stream = self._prev


class Tracer:
    """Collects spans and metrics for one process-local trace.

    Parameters
    ----------
    sim_clock:
        Optional zero-argument callable returning the current simulated
        time — the *default* clock for streams that never registered
        their own.  Each :class:`Simulation` registers its clock on its
        current stream on construction (see :func:`set_sim_clock`), so
        spans carry mission time alongside host time, per mission.
    """

    def __init__(self, sim_clock: Optional[Callable[[], float]] = None) -> None:
        self.spans: List[Span] = []
        self.metrics = MetricsRegistry()
        self.sim_clock = sim_clock
        self.origin = time.perf_counter()
        self._tls = threading.local()
        self._lock = threading.Lock()
        #: mission label -> named stream (fleet members, gate lanes).
        self._named: Dict[str, _Stream] = {}
        #: every stream ever created, for the balance check.
        self._streams: List[_Stream] = []

    # ------------------------------------------------------------------
    # Streams
    # ------------------------------------------------------------------
    def _current_stream(self) -> _Stream:
        stream = getattr(self._tls, "stream", None)
        if stream is None:
            stream = _Stream(None)
            with self._lock:
                self._streams.append(stream)
            self._tls.stream = stream
        return stream

    def stream_for(self, label: str, group: Optional[str] = None) -> _Stream:
        """The named stream for ``label``, created on first use."""
        with self._lock:
            stream = self._named.get(label)
            if stream is None:
                stream = _Stream(label, group)
                self._named[label] = stream
                self._streams.append(stream)
            elif group is not None and stream.group is None:
                stream.group = group
        return stream

    def use_stream(
        self, label: str, group: Optional[str] = None
    ) -> _StreamScope:
        """Context manager: run the block attributed to mission ``label``.

        Spans opened inside nest on that mission's stream (under
        whatever spans it already has open), carry its sim clock, and
        are tagged ``mission=label``.  Entering a stream another thread
        is *parked* on is legal — the fleet gate does exactly that to
        attribute a member's compute phase — as long as accesses are
        externally serialized (the gate's condition lock).
        """
        return _StreamScope(self, self.stream_for(label, group))

    @property
    def mission_groups(self) -> Dict[str, Optional[str]]:
        """Mission label -> fleet/worker group (for exporter lanes)."""
        with self._lock:
            return {label: s.group for label, s in self._named.items()}

    # ------------------------------------------------------------------
    def start(self, name: str, category: str = "mission") -> Span:
        """Open a span nested under the stream's innermost open span."""
        stream = self._current_stream()
        stack = stream.stack
        parent_path = stack[-1].path if stack else ()
        sp = Span(name, category, parent_path + (name,), stream.label)
        clock = stream.sim_clock or self.sim_clock
        if clock is not None:
            sp.sim_t0 = clock()
        sp.t0 = time.perf_counter()
        stack.append(sp)
        return sp

    def finish(self, sp: Optional[Span]) -> None:
        """Close ``sp`` (and, defensively, anything opened under it)."""
        if sp is None:
            return
        sp.t1 = time.perf_counter()
        stream = self._current_stream()
        clock = stream.sim_clock or self.sim_clock
        if clock is not None:
            sp.sim_t1 = clock()
        stack = stream.stack
        # Normal case: sp is the innermost open span.  An instrumentation
        # bug (finish out of order) drops the orphans rather than
        # corrupting nesting for the rest of the trace.
        while stack:
            top = stack.pop()
            if top is sp:
                break
        with self._lock:
            self.spans.append(sp)

    def span(self, name: str, category: str = "mission") -> _SpanContext:
        """Context manager opening/closing one span."""
        return _SpanContext(self, name, category)

    @property
    def open_depth(self) -> int:
        """How many spans are open across *all* streams (0 = balanced)."""
        with self._lock:
            return sum(len(s.stack) for s in self._streams)

    def wall_s(self) -> float:
        """Host seconds since the tracer was created."""
        return time.perf_counter() - self.origin

    def set_stream_clock(self, clock: Callable[[], float]) -> None:
        """Register a simulated-time source on the current stream."""
        self._current_stream().sim_clock = clock


# ----------------------------------------------------------------------
# Module-level installation + the disabled fast path
# ----------------------------------------------------------------------
_TRACER: Optional[Tracer] = None


def get_tracer() -> Optional[Tracer]:
    """The installed tracer, or ``None`` when tracing is disabled."""
    return _TRACER


def enabled() -> bool:
    return _TRACER is not None


def install(tracer: Optional[Tracer] = None) -> Tracer:
    """Install (and return) the process-wide tracer."""
    global _TRACER
    _TRACER = tracer if tracer is not None else Tracer()
    return _TRACER


def uninstall() -> Optional[Tracer]:
    """Disable tracing; returns the tracer that was installed."""
    global _TRACER
    tracer, _TRACER = _TRACER, None
    return tracer


@contextmanager
def capture(
    sim_clock: Optional[Callable[[], float]] = None
) -> Iterator[Tracer]:
    """Install a fresh tracer for the duration of the block.

    The previously installed tracer (usually none) is restored on exit,
    so captures can nest and test isolation is automatic.
    """
    global _TRACER
    previous = _TRACER
    tracer = Tracer(sim_clock)
    _TRACER = tracer
    try:
        yield tracer
    finally:
        _TRACER = previous


def span(name: str, category: str = "mission"):
    """Open a span on the installed tracer — or a shared no-op handle.

    This is THE instrumentation entry point; when tracing is disabled it
    costs one global load, one ``is None`` test, and a no-op context
    manager protocol — cheap enough for per-tick call sites (gated in
    ``benchmarks/test_ablation_tracing.py``).
    """
    t = _TRACER
    if t is None:
        return _NOOP
    return _SpanContext(t, name, category)


@contextmanager
def mission_scope(label: str, group: Optional[str] = None) -> Iterator[None]:
    """Attribute every span in the block to mission ``label``.

    The fleet runner wraps each member's ``run_workload`` in one of
    these (and the campaign timeline wraps each sequential run), so a
    trace of N concurrent missions splits cleanly into N streams.  A
    shared no-op when tracing is disabled.
    """
    t = _TRACER
    if t is None:
        yield
        return
    with t.use_stream(label, group):
        yield


def count(name: str, n: int = 1) -> None:
    """Bump a counter on the installed tracer's metrics registry."""
    t = _TRACER
    if t is not None:
        t.metrics.counter(name).inc(n)


def observe(name: str, value: float) -> None:
    """Record a histogram observation on the installed tracer."""
    t = _TRACER
    if t is not None:
        t.metrics.histogram(name).observe(value)


def set_sim_clock(clock: Callable[[], float]) -> None:
    """Register the simulated-time source with the installed tracer.

    Called by :class:`~repro.core.simulator.Simulation` on construction;
    the clock attaches to the *current stream* (the constructing
    mission's), so fleet members each stamp their own mission time.  A
    no-op when tracing is disabled (the overwhelmingly common case).
    """
    t = _TRACER
    if t is not None:
        t.set_stream_clock(clock)
