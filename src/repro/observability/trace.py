"""Span tracing for the mission loop: where *host* time goes.

MAVBench's kernel profile (Table 1, Fig. 15) answers "where does the
closed loop spend its time?" for the modeled companion computer.  This
module answers the same question for *our* reproduction's host process:
nested spans wrap the simulator's tick phases, the perception inserts,
every planner invocation, and the campaign runner, carrying both host
wall time (``perf_counter``) and simulated mission time, so one trace
explains both clocks.

Design constraints, in order:

1. **Zero behavioral impact.**  Tracing touches only ``perf_counter``
   and the tracer's own buffers — never the simulation RNG, the sim
   clock, or any mission state.  Golden traces are bit-identical with
   tracing on (pinned by ``tests/test_observability.py``).
2. **A disabled fast path.**  Instrumentation sites call
   :func:`span`/:func:`count`/:func:`observe`, which reduce to a single
   global ``is None`` check plus a shared no-op context manager when no
   tracer is installed.  The per-call overhead is gated in CI
   (``benchmarks/test_ablation_tracing.py``), so always-on
   instrumentation of per-tick phases stays free for every existing
   bench and test.
3. **One process, one tracer.**  The tracer is installed per process
   (missions are single-threaded); campaign pool workers install a
   fresh tracer around each profiled run via :func:`capture`.

Usage::

    from repro.observability import trace

    with trace.capture() as tracer:
        run_workload("package_delivery")
    print(format_phase_tree(aggregate_phases(tracer.spans)))

Instrumentation sites use the module-level helpers::

    with trace.span("plan.rrt", "planning") as sp:
        result = self._plan(start, goal)
        sp.set(iterations=result.iterations)
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from .metrics import MetricsRegistry

__all__ = [
    "Span",
    "Tracer",
    "capture",
    "count",
    "enabled",
    "get_tracer",
    "install",
    "observe",
    "set_sim_clock",
    "span",
    "uninstall",
]


class Span:
    """One completed (or open) traced region.

    Attributes
    ----------
    name / category:
        Span identity ("plan.rrt_star") and Perfetto track category
        ("planning").
    path:
        Tuple of ancestor names root→self; the phase-aggregation key.
    t0 / t1:
        Host ``perf_counter`` timestamps (absolute; exporters subtract
        the tracer origin).
    sim_t0 / sim_t1:
        Simulated mission time at entry/exit when a sim clock is
        registered, else ``None``.
    attrs:
        Free-form JSON-shaped annotations (iteration counts, batch
        sizes, ...).
    """

    __slots__ = (
        "name", "category", "path", "t0", "t1", "sim_t0", "sim_t1", "attrs"
    )

    def __init__(self, name: str, category: str, path: Tuple[str, ...]) -> None:
        self.name = name
        self.category = category
        self.path = path
        self.t0 = 0.0
        self.t1 = 0.0
        self.sim_t0: Optional[float] = None
        self.sim_t1: Optional[float] = None
        self.attrs: Optional[Dict[str, Any]] = None

    @property
    def duration_s(self) -> float:
        return self.t1 - self.t0

    @property
    def sim_duration_s(self) -> Optional[float]:
        if self.sim_t0 is None or self.sim_t1 is None:
            return None
        return self.sim_t1 - self.sim_t0

    def set(self, **attrs: Any) -> None:
        """Attach annotations to the span (exported as Perfetto args)."""
        if self.attrs is None:
            self.attrs = {}
        self.attrs.update(attrs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({'/'.join(self.path)}, {self.duration_s * 1e3:.3f} ms)"
        )


class _NoopSpan:
    """Shared do-nothing span handle for the disabled fast path."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: Any) -> None:
        return None

    def set(self, **attrs: Any) -> None:
        return None


_NOOP = _NoopSpan()


class _SpanContext:
    """Context manager that opens a span on enter, closes it on exit."""

    __slots__ = ("_tracer", "_name", "_category", "_span")

    def __init__(self, tracer: "Tracer", name: str, category: str) -> None:
        self._tracer = tracer
        self._name = name
        self._category = category
        self._span: Optional[Span] = None

    def __enter__(self) -> Span:
        self._span = self._tracer.start(self._name, self._category)
        return self._span

    def __exit__(self, *exc: Any) -> None:
        self._tracer.finish(self._span)


class Tracer:
    """Collects spans and metrics for one process-local trace.

    Parameters
    ----------
    sim_clock:
        Optional zero-argument callable returning the current simulated
        time; each :class:`Simulation` registers its clock on
        construction (see :func:`set_sim_clock`), so spans carry mission
        time alongside host time.
    """

    def __init__(self, sim_clock: Optional[Callable[[], float]] = None) -> None:
        self.spans: List[Span] = []
        self.metrics = MetricsRegistry()
        self.sim_clock = sim_clock
        self.origin = time.perf_counter()
        self._stack: List[Span] = []

    # ------------------------------------------------------------------
    def start(self, name: str, category: str = "mission") -> Span:
        """Open a span nested under the innermost open span."""
        stack = self._stack
        parent_path = stack[-1].path if stack else ()
        sp = Span(name, category, parent_path + (name,))
        if self.sim_clock is not None:
            sp.sim_t0 = self.sim_clock()
        sp.t0 = time.perf_counter()
        stack.append(sp)
        return sp

    def finish(self, sp: Optional[Span]) -> None:
        """Close ``sp`` (and, defensively, anything opened under it)."""
        if sp is None:
            return
        sp.t1 = time.perf_counter()
        if self.sim_clock is not None:
            sp.sim_t1 = self.sim_clock()
        stack = self._stack
        # Normal case: sp is the innermost open span.  An instrumentation
        # bug (finish out of order) drops the orphans rather than
        # corrupting nesting for the rest of the trace.
        while stack:
            top = stack.pop()
            if top is sp:
                break
        self.spans.append(sp)

    def span(self, name: str, category: str = "mission") -> _SpanContext:
        """Context manager opening/closing one span."""
        return _SpanContext(self, name, category)

    @property
    def open_depth(self) -> int:
        """How many spans are currently open (0 = balanced trace)."""
        return len(self._stack)

    def wall_s(self) -> float:
        """Host seconds since the tracer was created."""
        return time.perf_counter() - self.origin


# ----------------------------------------------------------------------
# Module-level installation + the disabled fast path
# ----------------------------------------------------------------------
_TRACER: Optional[Tracer] = None


def get_tracer() -> Optional[Tracer]:
    """The installed tracer, or ``None`` when tracing is disabled."""
    return _TRACER


def enabled() -> bool:
    return _TRACER is not None


def install(tracer: Optional[Tracer] = None) -> Tracer:
    """Install (and return) the process-wide tracer."""
    global _TRACER
    _TRACER = tracer if tracer is not None else Tracer()
    return _TRACER


def uninstall() -> Optional[Tracer]:
    """Disable tracing; returns the tracer that was installed."""
    global _TRACER
    tracer, _TRACER = _TRACER, None
    return tracer


@contextmanager
def capture(
    sim_clock: Optional[Callable[[], float]] = None
) -> Iterator[Tracer]:
    """Install a fresh tracer for the duration of the block.

    The previously installed tracer (usually none) is restored on exit,
    so captures can nest and test isolation is automatic.
    """
    global _TRACER
    previous = _TRACER
    tracer = Tracer(sim_clock)
    _TRACER = tracer
    try:
        yield tracer
    finally:
        _TRACER = previous


def span(name: str, category: str = "mission"):
    """Open a span on the installed tracer — or a shared no-op handle.

    This is THE instrumentation entry point; when tracing is disabled it
    costs one global load, one ``is None`` test, and a no-op context
    manager protocol — cheap enough for per-tick call sites (gated in
    ``benchmarks/test_ablation_tracing.py``).
    """
    t = _TRACER
    if t is None:
        return _NOOP
    return _SpanContext(t, name, category)


def count(name: str, n: int = 1) -> None:
    """Bump a counter on the installed tracer's metrics registry."""
    t = _TRACER
    if t is not None:
        t.metrics.counter(name).inc(n)


def observe(name: str, value: float) -> None:
    """Record a histogram observation on the installed tracer."""
    t = _TRACER
    if t is not None:
        t.metrics.histogram(name).observe(value)


def set_sim_clock(clock: Callable[[], float]) -> None:
    """Register the simulated-time source with the installed tracer.

    Called by :class:`~repro.core.simulator.Simulation` on construction;
    a no-op when tracing is disabled (the overwhelmingly common case).
    """
    t = _TRACER
    if t is not None:
        t.sim_clock = clock
