"""Trace exporters: Chrome trace-event JSON, flat CSV, and phase trees.

Three consumers, three shapes:

* **Perfetto / chrome://tracing** — :func:`chrome_trace` emits the
  Trace Event Format (``"X"`` complete events, microsecond timestamps
  relative to the tracer origin) so a mission trace drops straight into
  the standard timeline UI.  Simulated time rides along in each event's
  ``args``.  Mission-attributed spans (fleet members, campaign runs)
  map to Perfetto **swimlanes**: each fleet/worker group becomes a
  process lane and each mission a thread lane within it, so a traced
  fleet renders as N parallel mission tracks plus a gate track.
* **Flat CSV** — :func:`spans_to_csv` for spreadsheet/pandas digestion.
* **Phase tree** — :func:`aggregate_phases` folds spans into a
  self/total-time tree keyed by span path; :func:`format_phase_tree`
  renders the ``repro profile`` output and :func:`phase_summary`
  flattens it into the JSON dict campaign records attach.
  :func:`spans_by_mission` splits a concurrent trace back into
  per-mission span lists so each mission gets its own tree.

The Chrome export carries a schema tag (``otherData.schema``,
currently ``repro-trace/2`` — ``/1`` documents, which predate mission
lanes, still validate) and :func:`validate_chrome_trace` pins the
invariants CI's traced-mission smoke checks, so the format cannot
drift silently.
"""

from __future__ import annotations

import csv
import io
import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from .trace import Span, Tracer

__all__ = [
    "PhaseNode",
    "TRACE_SCHEMA",
    "READABLE_TRACE_SCHEMAS",
    "aggregate_phases",
    "chrome_trace",
    "format_phase_summary",
    "format_phase_tree",
    "merge_phase_summaries",
    "phase_summary",
    "spans_by_mission",
    "spans_to_csv",
    "summarize_spans",
    "validate_chrome_trace",
    "write_chrome_trace",
]

#: Schema tag stamped into every exported Chrome trace document.
#: ``/2`` added mission→pid/tid swimlane mapping and the
#: ``otherData.lanes`` index; ``/1`` single-lane documents remain valid.
TRACE_SCHEMA = "repro-trace/2"

#: Schema tags :func:`validate_chrome_trace` accepts.
READABLE_TRACE_SCHEMAS = ("repro-trace/1", "repro-trace/2")

#: CSV column order for :func:`spans_to_csv`.
CSV_FIELDS = [
    "path",
    "name",
    "category",
    "mission",
    "start_s",
    "duration_s",
    "sim_start_s",
    "sim_duration_s",
    "attrs",
]


# ----------------------------------------------------------------------
# Chrome trace-event JSON
# ----------------------------------------------------------------------
def _lane_map(
    tracer: Tracer, process_name: str
) -> Tuple[Dict[Optional[str], Tuple[int, int]], List[Dict[str, Any]]]:
    """Assign every mission stream a (pid, tid) lane + metadata events.

    Lane model: the anonymous stream (sequential missions, the main
    thread) is ``(os.getpid(), 0)`` named after ``process_name``; each
    distinct mission *group* (a fleet, a campaign worker) gets its own
    process lane, and each mission within it a thread lane, numbered in
    first-appearance order over ``tracer.spans`` so lane ids are
    deterministic for a given trace.
    """
    base_pid = os.getpid()
    groups = tracer.mission_groups  # label -> group (None = ungrouped)
    group_pids: Dict[Optional[str], int] = {None: base_pid}
    lanes: Dict[Optional[str], Tuple[int, int]] = {None: (base_pid, 0)}
    next_tid: Dict[int, int] = {base_pid: 1}
    for sp in tracer.spans:
        label = sp.mission
        if label in lanes:
            continue
        group = groups.get(label)
        pid = group_pids.get(group)
        if pid is None:
            pid = base_pid + len(group_pids)
            group_pids[group] = pid
            next_tid[pid] = 0
        tid = next_tid[pid]
        next_tid[pid] = tid + 1
        lanes[label] = (pid, tid)

    meta: List[Dict[str, Any]] = []
    for group, pid in group_pids.items():
        meta.append(
            {
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "name": "process_name",
                "args": {"name": process_name if group is None else group},
            }
        )
    for label, (pid, tid) in lanes.items():
        if label is None:
            continue
        meta.append(
            {
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "name": "thread_name",
                "args": {"name": label},
            }
        )
    return lanes, meta


def chrome_trace(
    tracer: Tracer, process_name: str = "repro-mission"
) -> Dict[str, Any]:
    """The tracer's spans as a Trace Event Format document.

    Events are ``ph="X"`` (complete) with microsecond ``ts``/``dur``
    relative to the tracer's origin; simulated time (when the span
    carried it) lands in ``args.sim_t0_s``/``args.sim_dur_s`` so the
    Perfetto UI shows both clocks.  Mission-attributed spans land on
    their mission's (pid, tid) swimlane; ``otherData.lanes`` indexes
    the mapping (mission label -> pid/tid/group).
    """
    lanes, events = _lane_map(tracer, process_name)
    groups = tracer.mission_groups
    for sp in tracer.spans:
        pid, tid = lanes.get(sp.mission, lanes[None])
        args: Dict[str, Any] = {"depth": len(sp.path)}
        if sp.sim_t0 is not None and sp.sim_t1 is not None:
            args["sim_t0_s"] = sp.sim_t0
            args["sim_dur_s"] = sp.sim_t1 - sp.sim_t0
        if sp.attrs:
            args.update(sp.attrs)
        events.append(
            {
                "ph": "X",
                "pid": pid,
                "tid": tid,
                "name": sp.name,
                "cat": sp.category,
                "ts": (sp.t0 - tracer.origin) * 1e6,
                "dur": (sp.t1 - sp.t0) * 1e6,
                "args": args,
            }
        )
    lane_index = {
        label: {"pid": pid, "tid": tid, "group": groups.get(label)}
        for label, (pid, tid) in lanes.items()
        if label is not None
    }
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "schema": TRACE_SCHEMA,
            "spans": len(tracer.spans),
            "wall_s": tracer.wall_s(),
            "lanes": lane_index,
            "metrics": tracer.metrics.snapshot(),
        },
    }


def write_chrome_trace(
    destination: Union[str, "os.PathLike[str]"],
    tracer: Tracer,
    process_name: str = "repro-mission",
) -> Dict[str, Any]:
    """Serialize :func:`chrome_trace` to ``destination``; returns the doc."""
    doc = chrome_trace(tracer, process_name=process_name)
    with open(destination, "w") as fh:
        json.dump(doc, fh)
    return doc


def validate_chrome_trace(doc: Any) -> List[str]:
    """Structural problems with a Chrome trace document (empty = valid).

    Pins the invariants the exporters promise: a known schema tag
    (``repro-trace/1`` or ``/2``), the event-list shape, and for every
    ``"X"`` event a name plus non-negative numeric ``ts``/``dur``.
    CI's traced-mission smoke and the schema tests both run through
    here, so producer and checker cannot drift apart.
    """
    problems: List[str] = []
    if not isinstance(doc, dict):
        return [f"trace document must be a dict, got {type(doc).__name__}"]
    other = doc.get("otherData")
    if (
        not isinstance(other, dict)
        or other.get("schema") not in READABLE_TRACE_SCHEMAS
    ):
        problems.append(
            f"otherData.schema must be one of {READABLE_TRACE_SCHEMAS} "
            f"(got {other.get('schema') if isinstance(other, dict) else other!r})"
        )
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return problems + ["traceEvents must be a list"]
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event[{i}]: not a dict")
            continue
        ph = event.get("ph")
        if ph not in ("X", "M"):
            problems.append(f"event[{i}]: unknown ph {ph!r}")
            continue
        if not isinstance(event.get("name"), str) or not event["name"]:
            problems.append(f"event[{i}]: missing name")
        if "pid" not in event or "tid" not in event:
            problems.append(f"event[{i}]: missing pid/tid")
        if ph == "X":
            for key in ("ts", "dur"):
                value = event.get(key)
                if not isinstance(value, (int, float)) or value < -1e-6:
                    problems.append(
                        f"event[{i}] ({event.get('name')}): bad {key}={value!r}"
                    )
    return problems


# ----------------------------------------------------------------------
# Flat CSV
# ----------------------------------------------------------------------
def spans_to_csv(tracer: Tracer) -> str:
    """All finished spans as CSV text (one row per span, origin-relative
    start times, attrs JSON-encoded in the last column)."""
    buf = io.StringIO()
    writer = csv.DictWriter(buf, fieldnames=CSV_FIELDS)
    writer.writeheader()
    for sp in tracer.spans:
        writer.writerow(
            {
                "path": "/".join(sp.path),
                "name": sp.name,
                "category": sp.category,
                "mission": sp.mission or "",
                "start_s": f"{sp.t0 - tracer.origin:.9f}",
                "duration_s": f"{sp.duration_s:.9f}",
                "sim_start_s": "" if sp.sim_t0 is None else f"{sp.sim_t0:.6f}",
                "sim_duration_s": (
                    "" if sp.sim_duration_s is None
                    else f"{sp.sim_duration_s:.6f}"
                ),
                "attrs": json.dumps(sp.attrs) if sp.attrs else "",
            }
        )
    return buf.getvalue()


# ----------------------------------------------------------------------
# Phase aggregation (self/total tree)
# ----------------------------------------------------------------------
@dataclass
class PhaseNode:
    """Aggregated statistics for one span path in the phase tree."""

    name: str
    path: Tuple[str, ...]
    count: int = 0
    total_s: float = 0.0
    sim_total_s: float = 0.0
    children: Dict[str, "PhaseNode"] = field(default_factory=dict)

    @property
    def child_total_s(self) -> float:
        return sum(c.total_s for c in self.children.values())

    @property
    def self_s(self) -> float:
        """Time spent in this phase but not in any child phase."""
        return max(self.total_s - self.child_total_s, 0.0)

    def walk(self) -> List["PhaseNode"]:
        """This node and every descendant, depth-first in name order."""
        out = [self]
        for name in sorted(self.children):
            out.extend(self.children[name].walk())
        return out


def aggregate_phases(spans: Sequence[Span]) -> PhaseNode:
    """Fold spans into a self/total phase tree keyed by span path.

    Returns a synthetic root whose children are the top-level phases;
    the root's ``total_s`` is the sum of its children (so
    ``root.self_s == 0`` and the tree's self-times sum to exactly the
    traced wall time).

    Works on any span list — a whole trace, or one mission's slice from
    :func:`spans_by_mission`.  Note that aggregating a *concurrent*
    trace sums host time across lanes: a fleet-of-3's tree totals ~3
    mission-lanes' worth of (GIL-interleaved) wall, plus the gate lane
    that overlaps them.
    """
    root = PhaseNode(name="", path=())
    for sp in spans:
        node = root
        for name in sp.path:
            child = node.children.get(name)
            if child is None:
                child = PhaseNode(name=name, path=node.path + (name,))
                node.children[name] = child
            node = child
        node.count += 1
        node.total_s += sp.duration_s
        sim = sp.sim_duration_s
        if sim is not None:
            node.sim_total_s += sim
    root.total_s = root.child_total_s
    return root


def spans_by_mission(
    spans: Sequence[Span],
) -> Dict[Optional[str], List[Span]]:
    """Split a span list by mission label, first-appearance ordered.

    The ``None`` key collects unattributed spans (the anonymous
    per-thread streams — e.g. campaign bookkeeping on the main thread).
    Each value feeds :func:`aggregate_phases`/:func:`summarize_spans`
    directly, which is how fleet profiles get one phase tree per
    mission out of one concurrent trace.
    """
    out: Dict[Optional[str], List[Span]] = {}
    for sp in spans:
        out.setdefault(sp.mission, []).append(sp)
    return out


def summarize_spans(spans: Sequence[Span]) -> Dict[str, Dict[str, float]]:
    """Flat JSON-shaped phase aggregation of a span list."""
    root = aggregate_phases(spans)
    out: Dict[str, Dict[str, float]] = {}
    for node in root.walk()[1:]:  # skip the synthetic root
        out["/".join(node.path)] = {
            "count": node.count,
            "total_s": node.total_s,
            "self_s": node.self_s,
            "sim_total_s": node.sim_total_s,
        }
    return out


def phase_summary(tracer: Tracer) -> Dict[str, Dict[str, float]]:
    """Flat JSON-shaped phase aggregation: ``"a/b" -> stats``.

    The per-run profile dict campaign records attach (and flight logs
    export): slash-joined span path to count/total/self/sim totals,
    deterministically ordered.
    """
    return summarize_spans(tracer.spans)


def merge_phase_summaries(
    summaries: Sequence[Dict[str, Dict[str, float]]],
) -> Dict[str, Dict[str, float]]:
    """Sum flat :func:`phase_summary` dicts across runs, key by key.

    ``repro campaign --profile`` folds every profiled record's phases
    through here to print one campaign-wide table.
    """
    merged: Dict[str, Dict[str, float]] = {}
    for summary in summaries:
        for path, row in summary.items():
            agg = merged.setdefault(
                path,
                {"count": 0, "total_s": 0.0, "self_s": 0.0, "sim_total_s": 0.0},
            )
            for key in agg:
                agg[key] += row.get(key, 0)
    return {path: merged[path] for path in sorted(merged)}


def format_phase_summary(summary: Dict[str, Dict[str, float]]) -> str:
    """Render a flat phase summary as an aligned table (by total time)."""
    header = ("phase", "count", "total (s)", "self (s)")
    rows = [
        (
            path,
            str(int(row["count"])),
            f"{row['total_s']:.3f}",
            f"{row['self_s']:.3f}",
        )
        for path, row in sorted(
            summary.items(), key=lambda item: -item[1]["total_s"]
        )
    ]
    widths = [
        max(len(header[i]), *(len(r[i]) for r in rows)) if rows else len(header[i])
        for i in range(4)
    ]

    def _fmt(row: Tuple[str, ...]) -> str:
        cells = [row[0].ljust(widths[0])]
        cells += [row[i].rjust(widths[i]) for i in range(1, 4)]
        return "  ".join(cells)

    lines = [_fmt(header), _fmt(tuple("-" * w for w in widths))]
    lines += [_fmt(r) for r in rows]
    return "\n".join(lines)


def format_phase_tree(
    root: PhaseNode, wall_s: Optional[float] = None
) -> str:
    """Render the phase tree as the ``repro profile`` table.

    Columns: indented phase name, call count, total time, self time,
    and self time as a share of ``wall_s`` (defaulting to the tree's
    own total).  A trailing line reports coverage — how much of the
    measured wall time the tree's self-times explain.  For concurrent
    (fleet) trees pass ``wall_s=None``: lanes overlap in host time, so
    shares are only meaningful relative to the tree's summed total.
    """
    wall = wall_s if wall_s and wall_s > 0 else max(root.total_s, 1e-12)
    rows: List[Tuple[str, str, str, str, str]] = []

    def _visit(node: PhaseNode, depth: int) -> None:
        label = "  " * depth + node.name
        rows.append(
            (
                label,
                str(node.count),
                f"{node.total_s:.3f}",
                f"{node.self_s:.3f}",
                f"{100.0 * node.self_s / wall:.1f}%",
            )
        )
        for name in sorted(
            node.children, key=lambda n: -node.children[n].total_s
        ):
            _visit(node.children[name], depth + 1)

    for name in sorted(root.children, key=lambda n: -root.children[n].total_s):
        _visit(root.children[name], 0)

    header = ("phase", "count", "total (s)", "self (s)", "% wall")
    widths = [
        max(len(header[i]), *(len(r[i]) for r in rows)) if rows else len(header[i])
        for i in range(5)
    ]

    def _fmt(row: Tuple[str, ...]) -> str:
        cells = [row[0].ljust(widths[0])]
        cells += [row[i].rjust(widths[i]) for i in range(1, 5)]
        return "  ".join(cells)

    lines = [_fmt(header), _fmt(tuple("-" * w for w in widths))]
    lines += [_fmt(r) for r in rows]
    self_total = sum(n.self_s for n in root.walk())
    lines.append(
        f"traced {self_total:.3f}s of {wall:.3f}s wall "
        f"({100.0 * self_total / wall:.1f}% coverage)"
    )
    return "\n".join(lines)
