"""IMU and GPS sensor models.

Substitutes for AirSim's inertial and GPS sensor simulation.  Both sensors
read the ground-truth vehicle state and corrupt it with configurable noise;
GPS additionally supports degradation (reduced availability / higher noise)
to model the "degradation of GPS signal due to obstacles" the paper lists
as a fidelity knob.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..dynamics.state import VehicleState
from .noise import GaussianNoise


@dataclass
class ImuReading:
    """One IMU sample: body acceleration and yaw rate (plus yaw for
    convenience, as AirSim's IMU message carries orientation)."""

    acceleration: np.ndarray
    yaw: float
    yaw_rate: float
    timestamp: float


@dataclass
class Imu:
    """An IMU with additive Gaussian noise on acceleration and yaw."""

    accel_noise: GaussianNoise = field(
        default_factory=lambda: GaussianNoise(std=0.05, seed=11)
    )
    yaw_noise: GaussianNoise = field(
        default_factory=lambda: GaussianNoise(std=0.005, seed=12)
    )
    rate_hz: float = 100.0

    def __post_init__(self) -> None:
        self._last_yaw: Optional[float] = None
        self._last_time: Optional[float] = None

    def read(self, state: VehicleState) -> ImuReading:
        accel = self.accel_noise.apply(state.acceleration)
        yaw = float(self.yaw_noise.apply(np.array([state.yaw]))[0])
        if self._last_time is not None and state.time > self._last_time:
            yaw_rate = (yaw - (self._last_yaw or 0.0)) / (
                state.time - self._last_time
            )
        else:
            yaw_rate = 0.0
        self._last_yaw = yaw
        self._last_time = state.time
        return ImuReading(
            acceleration=accel,
            yaw=yaw,
            yaw_rate=float(yaw_rate),
            timestamp=state.time,
        )


@dataclass
class GpsFix:
    """One GPS sample. ``valid`` is False when the signal is degraded out."""

    position: np.ndarray
    valid: bool
    timestamp: float


@dataclass
class Gps:
    """A GPS receiver with position noise and availability degradation.

    Attributes
    ----------
    noise:
        Horizontal position noise (consumer GPS: ~1-2 m std).
    availability:
        Probability a fix is produced at all (1.0 = open sky).
    """

    noise: GaussianNoise = field(
        default_factory=lambda: GaussianNoise(std=1.0, seed=21)
    )
    availability: float = 1.0
    rate_hz: float = 10.0
    seed: int = 22

    def __post_init__(self) -> None:
        if not 0.0 <= self.availability <= 1.0:
            raise ValueError("availability must be in [0, 1]")
        self._rng = np.random.default_rng(self.seed)

    def read(self, state: VehicleState) -> GpsFix:
        valid = bool(self._rng.random() < self.availability)
        if not valid:
            return GpsFix(
                position=np.full(3, np.nan), valid=False, timestamp=state.time
            )
        pos = self.noise.apply(state.position)
        return GpsFix(position=pos, valid=True, timestamp=state.time)

    def degrade(self, availability: float, noise_std: float) -> None:
        """Degrade the signal (e.g. urban canyon / indoors)."""
        self.availability = availability
        self.noise = GaussianNoise(std=noise_std, seed=self.seed + 1)
