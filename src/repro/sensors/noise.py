"""Sensor noise models.

The reliability case study (Table II) injects Gaussian noise with standard
deviations from 0 to 1.5 m into the depth readings of the RGB-D camera.
This module provides that noise model plus the IMU/GPS noise models the
simulator uses, all seeded for reproducible runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass
class GaussianNoise:
    """Additive zero-mean Gaussian noise with a fixed standard deviation."""

    std: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.std < 0:
            raise ValueError("noise standard deviation must be non-negative")
        self._rng = np.random.default_rng(self.seed)

    def apply(self, values: np.ndarray) -> np.ndarray:
        """Return ``values`` plus noise (input unchanged)."""
        values = np.asarray(values, dtype=float)
        if self.std == 0.0:
            return values.copy()
        return values + self._rng.normal(0.0, self.std, size=values.shape)

    def sample(self, shape=()) -> np.ndarray:
        return self._rng.normal(0.0, self.std, size=shape)

    def reseed(self, seed: int) -> None:
        self._rng = np.random.default_rng(seed)


@dataclass
class DepthNoise(GaussianNoise):
    """Depth-image noise: Gaussian error clipped to physical validity.

    Noisy depth can never be negative, and readings at max range stay at
    max range (no return).  The paper found that depth noise effectively
    *inflates obstacles* — a symmetric error on a surface makes some rays
    report the obstacle nearer, and conservative mapping treats near
    returns as occupancy — so missions re-plan more and take longer.
    """

    def apply_depth(self, depth: np.ndarray, max_range: float) -> np.ndarray:
        depth = np.asarray(depth, dtype=float)
        if self.std == 0.0:
            return depth.copy()
        noisy = depth + self._rng.normal(0.0, self.std, size=depth.shape)
        noisy = np.clip(noisy, 0.0, max_range)
        # No-return pixels stay no-return.
        noisy[depth >= max_range] = max_range
        return noisy


@dataclass
class BiasedNoise(GaussianNoise):
    """Gaussian noise with a constant bias (miscalibrated sensor model)."""

    bias: float = 0.0

    def apply(self, values: np.ndarray) -> np.ndarray:
        return super().apply(values) + self.bias
