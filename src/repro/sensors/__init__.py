"""Sensor substrate: RGB-D camera, IMU, GPS, and noise models.

Substitutes for AirSim's sensor simulation.
"""

from .camera import (
    CameraIntrinsics,
    DepthImage,
    Detection2D,
    RgbdCamera,
)
from .imu_gps import Gps, GpsFix, Imu, ImuReading
from .noise import BiasedNoise, DepthNoise, GaussianNoise

__all__ = [
    "BiasedNoise",
    "CameraIntrinsics",
    "DepthImage",
    "DepthNoise",
    "Detection2D",
    "GaussianNoise",
    "Gps",
    "GpsFix",
    "Imu",
    "ImuReading",
    "RgbdCamera",
]
