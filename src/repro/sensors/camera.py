"""RGB-D camera model: ray-cast depth images and frustum visibility.

Substitute for AirSim's simulated camera.  The depth channel is produced
by casting a pinhole-projected ray bundle into the AABB world (fully
vectorized); the "RGB" channel is abstracted to frustum visibility queries
that the simulated object detectors consume (a detector needs to know which
objects are in view, how large they appear, and whether they are occluded —
not actual pixels).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ..world.environment import World
from ..world.geometry import AABB, norm, rotation_matrix, unit, vec
from ..world.obstacles import Obstacle
from .noise import DepthNoise


def _median3(depth: np.ndarray) -> np.ndarray:
    """3x3 median filter with edge padding (depth-image preprocessing)."""
    padded = np.pad(depth, 1, mode="edge")
    windows = np.lib.stride_tricks.sliding_window_view(padded, (3, 3))
    return np.median(windows, axis=(2, 3))


@dataclass(frozen=True)
class CameraIntrinsics:
    """Pinhole camera parameters.

    The default 64x48 @ 90-degree horizontal FOV is a downsampled Kinect-
    class RGB-D sensor: dense enough for occupancy mapping, small enough
    to ray-cast quickly in pure Python/numpy.
    """

    width: int = 64
    height: int = 48
    horizontal_fov_deg: float = 90.0
    max_range_m: float = 20.0

    def __post_init__(self) -> None:
        if self.width < 1 or self.height < 1:
            raise ValueError("image dimensions must be positive")
        if not 0 < self.horizontal_fov_deg < 180:
            raise ValueError("horizontal FOV must be in (0, 180) degrees")
        if self.max_range_m <= 0:
            raise ValueError("max range must be positive")

    @property
    def focal_px(self) -> float:
        """Focal length in pixels."""
        return (self.width / 2.0) / math.tan(
            math.radians(self.horizontal_fov_deg) / 2.0
        )

    @property
    def vertical_fov_deg(self) -> float:
        return math.degrees(
            2.0 * math.atan((self.height / 2.0) / self.focal_px)
        )


@dataclass
class DepthImage:
    """A depth frame plus the geometry needed to reproject it."""

    depth: np.ndarray  # (H, W) meters
    directions: np.ndarray  # (H*W, 3) unit rays in world frame
    origin: np.ndarray  # camera center in world frame
    max_range: float
    timestamp: float = 0.0

    @property
    def valid_mask(self) -> np.ndarray:
        """Pixels that returned a surface (not max-range no-returns)."""
        return self.depth < self.max_range - 1e-6

    def min_depth(self) -> float:
        """Nearest obstacle in view (max range if nothing in view)."""
        return float(self.depth.min())


@dataclass(frozen=True)
class Detection2D:
    """A ground-truth object observation in the camera frame.

    Used by the simulated detectors: ``center_px`` is where the object's
    bounding-box center lands on the image, ``extent_px`` its apparent
    size, ``distance_m`` its range, ``occluded`` whether a nearer obstacle
    blocks the line of sight to its center.
    """

    obstacle: Obstacle
    center_px: Tuple[float, float]
    extent_px: Tuple[float, float]
    distance_m: float
    occluded: bool


@dataclass
class RgbdCamera:
    """A body-mounted RGB-D camera (optionally on a pitch gimbal).

    Attributes
    ----------
    intrinsics:
        Pinhole model parameters.
    pitch_rad:
        Gimbal pitch of the optical axis; 0 = level, positive tilts the
        camera down toward the ground.
    depth_noise:
        Noise injected into depth readings (the Table II knob).
    """

    intrinsics: CameraIntrinsics = field(default_factory=CameraIntrinsics)
    pitch_rad: float = 0.0
    depth_noise: Optional[DepthNoise] = None

    def __post_init__(self) -> None:
        # The ray grid is only needed for depth capture; frustum/projection
        # queries (the detection path) never touch it, so build it lazily —
        # a high-resolution detection camera would otherwise waste memory.
        self._ray_grid_cache: Optional[np.ndarray] = None

    @property
    def _ray_grid(self) -> np.ndarray:
        if self._ray_grid_cache is None:
            self._ray_grid_cache = self._build_ray_grid()
        return self._ray_grid_cache

    def _build_ray_grid(self) -> np.ndarray:
        """Camera-frame unit ray directions, shape (H*W, 3).

        Camera frame: +x optical axis (forward), +y image-left, +z image-up,
        so it aligns with the vehicle body frame at zero pitch.
        """
        intr = self.intrinsics
        f = intr.focal_px
        us = (np.arange(intr.width) + 0.5) - intr.width / 2.0
        vs = (np.arange(intr.height) + 0.5) - intr.height / 2.0
        uu, vv = np.meshgrid(us, vs)
        dirs = np.stack(
            [np.ones_like(uu) * f, -uu, -vv], axis=-1
        ).reshape(-1, 3)
        return dirs / np.linalg.norm(dirs, axis=1, keepdims=True)

    def world_directions(self, yaw: float) -> np.ndarray:
        """Ray directions rotated into the world frame for a vehicle yaw."""
        rot = rotation_matrix(yaw=yaw, pitch=self.pitch_rad)
        return self._ray_grid @ rot.T

    # ------------------------------------------------------------------
    # Depth channel
    # ------------------------------------------------------------------
    def capture_depth(
        self,
        world: World,
        position: np.ndarray,
        yaw: float,
        time: float = 0.0,
    ) -> DepthImage:
        """Ray-cast a depth image from ``position`` looking along ``yaw``."""
        intr = self.intrinsics
        dirs = self.world_directions(yaw)
        dists = world.ray_cast_many(
            np.asarray(position, dtype=float),
            dirs,
            max_range=intr.max_range_m,
            time=time,
        )
        depth = dists.reshape(intr.height, intr.width)
        if self.depth_noise is not None and self.depth_noise.std > 0:
            depth = self.depth_noise.apply_depth(depth, intr.max_range_m)
            # RGB-D driver preprocessing: a 3x3 median filter, as real
            # depth pipelines apply.  It suppresses per-pixel speckle
            # (median of 9 Gaussian samples has ~1/2.7 the std) without
            # which uncorrelated noise paints phantom obstacles across
            # the whole map and every mission fails — far beyond the
            # degradation Table II reports.
            depth = _median3(depth)
        return DepthImage(
            depth=depth,
            directions=dirs,
            origin=np.asarray(position, dtype=float).copy(),
            max_range=intr.max_range_m,
            timestamp=time,
        )

    # ------------------------------------------------------------------
    # "RGB" channel: frustum visibility for simulated detection
    # ------------------------------------------------------------------
    def project(
        self, point: np.ndarray, position: np.ndarray, yaw: float
    ) -> Optional[Tuple[float, float, float]]:
        """Project a world point to pixel coordinates.

        Returns ``(u, v, depth)`` with the image center at
        ``(width/2, height/2)``, or ``None`` if the point is behind the
        camera or outside the frame.
        """
        rot = rotation_matrix(yaw=yaw, pitch=self.pitch_rad)
        cam = rot.T @ (np.asarray(point, dtype=float) - position)
        x, y, z = cam  # x forward, y left, z up
        if x <= 1e-6:
            return None
        intr = self.intrinsics
        u = intr.width / 2.0 - intr.focal_px * (y / x)
        v = intr.height / 2.0 - intr.focal_px * (z / x)
        if not (0 <= u <= intr.width and 0 <= v <= intr.height):
            return None
        return (float(u), float(v), float(x))

    def visible_objects(
        self,
        world: World,
        position: np.ndarray,
        yaw: float,
        kinds: Optional[List[str]] = None,
        time: float = 0.0,
    ) -> List[Detection2D]:
        """Objects of the given kinds currently inside the camera frustum.

        Occlusion is tested with a line-of-sight ray to the object center
        against all *other* obstacles.
        """
        position = np.asarray(position, dtype=float)
        results: List[Detection2D] = []
        for obs in world.obstacles:
            if kinds is not None and obs.kind not in kinds:
                continue
            box = obs.box_at(time)
            center = box.center
            proj = self.project(center, position, yaw)
            if proj is None:
                continue
            u, v, depth = proj
            if depth > self.intrinsics.max_range_m:
                continue
            extent = box.size
            apparent_w = self.intrinsics.focal_px * float(extent[1]) / depth
            apparent_h = self.intrinsics.focal_px * float(extent[2]) / depth
            occluded = self._is_occluded(world, position, center, obs, time)
            results.append(
                Detection2D(
                    obstacle=obs,
                    center_px=(u, v),
                    extent_px=(apparent_w, apparent_h),
                    distance_m=depth,
                    occluded=occluded,
                )
            )
        return results

    def _is_occluded(
        self,
        world: World,
        position: np.ndarray,
        target: np.ndarray,
        target_obs: Obstacle,
        time: float,
    ) -> bool:
        direction = target - position
        dist = norm(direction)
        if dist < 1e-6:
            return False
        for obs in world.obstacles:
            if obs is target_obs:
                continue
            from ..world.geometry import segment_intersects_aabb

            if segment_intersects_aabb(position, target, obs.box_at(time)):
                return True
        return False
