"""Dynamics substrate: quadrotor model and flight controller.

Substitutes for AirSim's physics engine and the PX4 flight stack.
"""

from .state import DJI_MATRICE_100, SOLO_3DR, VehicleParams, VehicleState
from .quadrotor import Quadrotor
from .flight_controller import FlightController, FlightMode

__all__ = [
    "DJI_MATRICE_100",
    "SOLO_3DR",
    "FlightController",
    "FlightMode",
    "Quadrotor",
    "VehicleParams",
    "VehicleState",
]
