"""Software flight controller: high-level commands lowered to velocity setpoints.

Substitute for the PX4 flight stack / AirSim's software-simulated flight
controller.  The workloads issue the same high-level commands the paper's
companion computer sends over MAVLink — take off, land, fly to a waypoint,
follow a velocity — and the flight controller lowers them to velocity
setpoints for the :class:`~repro.dynamics.quadrotor.Quadrotor`.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..world.geometry import norm, unit, vec
from .quadrotor import Quadrotor
from .state import VehicleState


class FlightMode(enum.Enum):
    """Current flight-controller mode."""

    IDLE = "idle"
    ARMING = "arming"
    TAKEOFF = "takeoff"
    HOVER = "hover"
    FLYING = "flying"
    LANDING = "landing"
    LANDED = "landed"


@dataclass
class FlightController:
    """Lowers high-level flight commands to velocity setpoints.

    Attributes
    ----------
    vehicle:
        The quadrotor being controlled.
    takeoff_altitude:
        Target altitude (m) for :meth:`takeoff`.
    waypoint_tolerance:
        Distance (m) at which a waypoint counts as reached.
    cruise_speed:
        Default speed used when flying to waypoints.
    """

    vehicle: Quadrotor
    takeoff_altitude: float = 2.5
    waypoint_tolerance: float = 0.75
    cruise_speed: float = 5.0

    def __post_init__(self) -> None:
        self.mode = FlightMode.IDLE
        self._target: Optional[np.ndarray] = None
        self._target_speed: float = self.cruise_speed
        self._arm_time_remaining = 0.0

    # ------------------------------------------------------------------
    # High-level command interface (the MAVLink-equivalent surface)
    # ------------------------------------------------------------------
    def arm(self, arm_duration: float = 1.0) -> None:
        """Begin motor arming; the vehicle stays put for ``arm_duration``."""
        self.mode = FlightMode.ARMING
        self._arm_time_remaining = max(float(arm_duration), 0.0)

    def takeoff(self, altitude: Optional[float] = None) -> None:
        """Climb vertically to the takeoff altitude."""
        if altitude is not None:
            self.takeoff_altitude = float(altitude)
        if self.mode == FlightMode.IDLE:
            self.arm(0.0)
        self.mode = FlightMode.TAKEOFF

    def hover(self) -> None:
        """Hold position."""
        self.mode = FlightMode.HOVER
        self._target = None
        self.vehicle.command_hover()

    def fly_to(self, target: np.ndarray, speed: Optional[float] = None) -> None:
        """Fly in a straight line toward ``target`` at ``speed``."""
        self._target = np.asarray(target, dtype=float).copy()
        self._target_speed = float(speed) if speed is not None else self.cruise_speed
        self.mode = FlightMode.FLYING

    def fly_velocity(
        self, velocity: np.ndarray, yaw: Optional[float] = None
    ) -> None:
        """Directly command a velocity vector (used by path tracking)."""
        self.mode = FlightMode.FLYING
        self._target = None
        self.vehicle.command_velocity(np.asarray(velocity, dtype=float), yaw=yaw)

    def land(self) -> None:
        """Descend to ground level and disarm."""
        self.mode = FlightMode.LANDING

    # ------------------------------------------------------------------
    # Per-tick update
    # ------------------------------------------------------------------
    def update(self, dt: float) -> None:
        """Refresh the velocity setpoint for the current mode.

        Called once per simulation tick *before* the quadrotor integrates.
        """
        state = self.vehicle.state
        if self.mode == FlightMode.ARMING:
            self._arm_time_remaining -= dt
            self.vehicle.command_hover()
            if self._arm_time_remaining <= 0:
                self.mode = FlightMode.HOVER
        elif self.mode == FlightMode.TAKEOFF:
            if state.position[2] >= self.takeoff_altitude - 0.1:
                self.hover()
            else:
                climb = min(
                    self.vehicle.params.max_vertical_speed_ms,
                    2.0 * (self.takeoff_altitude - state.position[2]),
                )
                self.vehicle.command_velocity(vec(0.0, 0.0, climb))
        elif self.mode == FlightMode.FLYING and self._target is not None:
            delta = self._target - state.position
            dist = norm(delta)
            if dist <= self.waypoint_tolerance:
                self.hover()
            else:
                # Slow down on approach so the waypoint is not overshot.
                speed = min(self._target_speed, max(0.8, 1.5 * dist))
                self.vehicle.command_velocity(unit(delta) * speed)
        elif self.mode == FlightMode.LANDING:
            if state.position[2] <= 0.05:
                self.mode = FlightMode.LANDED
                self.vehicle.command_hover()
                self.vehicle.state.velocity[:] = 0.0
                self.vehicle.state.position[2] = 0.0
            else:
                descend = -min(1.5, max(0.3, state.position[2]))
                self.vehicle.command_velocity(vec(0.0, 0.0, descend))
        elif self.mode in (FlightMode.HOVER, FlightMode.IDLE, FlightMode.LANDED):
            self.vehicle.command_hover()

    # ------------------------------------------------------------------
    # Status
    # ------------------------------------------------------------------
    @property
    def airborne(self) -> bool:
        return self.mode in (
            FlightMode.TAKEOFF,
            FlightMode.HOVER,
            FlightMode.FLYING,
            FlightMode.LANDING,
        )

    def at_target(self) -> bool:
        """True if the last fly_to target has been reached (now hovering)."""
        return self.mode == FlightMode.HOVER and self._target is None
