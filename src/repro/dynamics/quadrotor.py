"""Point-mass quadrotor dynamics.

Substitute for AirSim's 1 kHz physics engine.  The paper's architecture
results depend on kinematics — velocity, acceleration, stopping distance,
hover — not rotor-level aerodynamics, so a velocity-command point-mass model
with acceleration limits and linear drag reproduces the relevant behaviour.

The model integrates:

    a = clamp(K * (v_cmd - v), a_max) - c_d * v
    v' = clamp(v + a * dt, v_max)
    p' = p + v * dt

which gives first-order velocity response with bounded acceleration, the
same abstraction AirSim's "simple flight" velocity controller exposes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..world.geometry import norm, vec, wrap_angle
from .state import VehicleParams, VehicleState


@dataclass
class Quadrotor:
    """A velocity-commanded point-mass quadrotor.

    Attributes
    ----------
    params:
        Physical limits of the airframe.
    state:
        Current kinematic state; mutated by :meth:`step`.
    velocity_gain:
        Proportional gain mapping velocity error to commanded acceleration.
    """

    params: VehicleParams = field(default_factory=VehicleParams)
    state: VehicleState = field(default_factory=VehicleState)
    velocity_gain: float = 3.0

    def __post_init__(self) -> None:
        self._velocity_command = np.zeros(3)
        self._yaw_command: Optional[float] = None

    # ------------------------------------------------------------------
    # Commands
    # ------------------------------------------------------------------
    def command_velocity(
        self, velocity: np.ndarray, yaw: Optional[float] = None
    ) -> None:
        """Set the velocity setpoint (clamped to the airframe max speed)."""
        v = np.asarray(velocity, dtype=float)
        speed = norm(v)
        if speed > self.params.max_speed_ms:
            v = v * (self.params.max_speed_ms / speed)
        self._velocity_command = v
        self._yaw_command = None if yaw is None else wrap_angle(float(yaw))

    def command_hover(self) -> None:
        """Zero the velocity setpoint (hover in place)."""
        self.command_velocity(np.zeros(3))

    @property
    def velocity_command(self) -> np.ndarray:
        return self._velocity_command.copy()

    # ------------------------------------------------------------------
    # Integration
    # ------------------------------------------------------------------
    def step(self, dt: float, wind: Optional[np.ndarray] = None) -> VehicleState:
        """Advance the dynamics by ``dt`` seconds and return the new state.

        Parameters
        ----------
        dt:
            Integration step (s); must be positive.
        wind:
            Optional world-frame wind velocity (m/s) adding a drag-coupled
            disturbance.
        """
        if dt <= 0:
            raise ValueError("dt must be positive")
        s = self.state
        v_err = self._velocity_command - s.velocity
        accel = self.velocity_gain * v_err
        # Linear drag relative to the air mass.
        airspeed = s.velocity - (wind if wind is not None else 0.0)
        accel = accel - self.params.drag_coefficient * airspeed
        a_mag = norm(accel)
        if a_mag > self.params.max_acceleration_ms2:
            accel = accel * (self.params.max_acceleration_ms2 / a_mag)
        new_velocity = s.velocity + accel * dt
        speed = norm(new_velocity)
        if speed > self.params.max_speed_ms:
            new_velocity = new_velocity * (self.params.max_speed_ms / speed)
        # Vertical speed limit is separate (climb rate is rotor-bound).
        vz_max = self.params.max_vertical_speed_ms
        new_velocity[2] = float(np.clip(new_velocity[2], -vz_max, vz_max))
        new_position = s.position + new_velocity * dt
        new_yaw = self._integrate_yaw(dt, new_velocity)
        self.state = VehicleState(
            position=new_position,
            velocity=new_velocity,
            acceleration=(new_velocity - s.velocity) / dt,
            yaw=new_yaw,
            time=s.time + dt,
        )
        return self.state

    def _integrate_yaw(self, dt: float, velocity: np.ndarray) -> float:
        """Slew yaw toward the command (or the direction of travel)."""
        s = self.state
        if self._yaw_command is not None:
            target = self._yaw_command
        elif float(np.hypot(velocity[0], velocity[1])) > 0.2:
            target = float(np.arctan2(velocity[1], velocity[0]))
        else:
            return s.yaw
        err = wrap_angle(target - s.yaw)
        max_step = self.params.max_yaw_rate_rads * dt
        step = float(np.clip(err, -max_step, max_step))
        return wrap_angle(s.yaw + step)

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    def stopping_distance(self, speed: Optional[float] = None) -> float:
        """Distance to brake from ``speed`` at the max deceleration.

        d = v^2 / (2 a_max) — the quantity Eq. (2) of the paper uses to
        bound collision-safe velocity.
        """
        v = self.state.speed if speed is None else float(speed)
        return v * v / (2.0 * self.params.max_acceleration_ms2)
