"""Vehicle state containers shared across the dynamics and control stack."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..world.geometry import Pose, norm, vec, wrap_angle


@dataclass
class VehicleState:
    """Full kinematic state of the MAV at an instant.

    Attributes
    ----------
    position:
        World-frame position (m).
    velocity:
        World-frame velocity (m/s).
    acceleration:
        World-frame acceleration (m/s^2) over the last integration step.
    yaw:
        Heading (rad), wrapped to (-pi, pi].
    time:
        Simulation time (s) this state was captured at.
    """

    position: np.ndarray = field(default_factory=lambda: np.zeros(3))
    velocity: np.ndarray = field(default_factory=lambda: np.zeros(3))
    acceleration: np.ndarray = field(default_factory=lambda: np.zeros(3))
    yaw: float = 0.0
    time: float = 0.0

    def __post_init__(self) -> None:
        self.position = np.asarray(self.position, dtype=float).copy()
        self.velocity = np.asarray(self.velocity, dtype=float).copy()
        self.acceleration = np.asarray(self.acceleration, dtype=float).copy()
        self.yaw = wrap_angle(float(self.yaw))

    @property
    def speed(self) -> float:
        """Magnitude of the velocity vector (m/s)."""
        return norm(self.velocity)

    @property
    def horizontal_speed(self) -> float:
        return float(np.hypot(self.velocity[0], self.velocity[1]))

    @property
    def pose(self) -> Pose:
        return Pose(self.position.copy(), self.yaw)

    def copy(self) -> "VehicleState":
        return VehicleState(
            position=self.position,
            velocity=self.velocity,
            acceleration=self.acceleration,
            yaw=self.yaw,
            time=self.time,
        )


@dataclass(frozen=True)
class VehicleParams:
    """Physical limits and properties of the simulated MAV.

    Defaults model a DJI Matrice 100-class quadrotor, the vehicle the
    paper's heatmap studies simulate (mass ~2.4 kg with battery, max speed
    ~17 m/s mechanical, but compute-bounded well below that).
    """

    mass_kg: float = 2.4
    max_speed_ms: float = 17.0
    max_acceleration_ms2: float = 5.0
    max_vertical_speed_ms: float = 4.0
    max_yaw_rate_rads: float = 2.0
    radius_m: float = 0.325  # half the 0.65 m diagonal width cited in the paper
    drag_coefficient: float = 0.10

    def __post_init__(self) -> None:
        if self.mass_kg <= 0:
            raise ValueError("mass must be positive")
        if self.max_speed_ms <= 0 or self.max_acceleration_ms2 <= 0:
            raise ValueError("speed and acceleration limits must be positive")


DJI_MATRICE_100 = VehicleParams()

SOLO_3DR = VehicleParams(
    mass_kg=1.8,
    max_speed_ms=24.0,
    max_acceleration_ms2=6.0,
    radius_m=0.25,
)
