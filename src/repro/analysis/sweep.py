"""Operating-point sweep harness — the engine behind Figs. 10-14.

Runs a workload over the TX2's {2,3,4} cores x {0.8,1.5,2.2} GHz grid
(optionally averaged over seeds) and reduces the results to the heatmap
tables the paper presents: average velocity, mission time, and energy per
operating point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.api import WorkloadResult, run_workload

OperatingPoint = Tuple[int, float]  # (cores, frequency_ghz)

DEFAULT_GRID: List[OperatingPoint] = [
    (c, f) for c in (2, 3, 4) for f in (0.8, 1.5, 2.2)
]


@dataclass
class SweepCell:
    """Aggregated results for one operating point."""

    cores: int
    frequency_ghz: float
    velocity_ms: float
    mission_time_s: float
    energy_kj: float
    success_rate: float
    extra: Dict[str, float] = field(default_factory=dict)


@dataclass
class SweepResult:
    """A full heatmap grid for one workload."""

    workload: str
    cells: List[SweepCell]

    def cell(self, cores: int, frequency_ghz: float) -> SweepCell:
        for c in self.cells:
            if c.cores == cores and abs(c.frequency_ghz - frequency_ghz) < 1e-9:
                return c
        raise KeyError(f"no cell for ({cores}, {frequency_ghz})")

    def metric_grid(self, metric: str) -> Dict[OperatingPoint, float]:
        return {
            (c.cores, c.frequency_ghz): getattr(c, metric) for c in self.cells
        }

    def best_over_worst(self, metric: str, lower_is_better: bool = True) -> float:
        """Improvement factor between the worst and best grid corner."""
        values = [getattr(c, metric) for c in self.cells]
        values = [v for v in values if np.isfinite(v) and v > 0]
        if not values:
            return float("nan")
        if lower_is_better:
            return max(values) / min(values)
        return max(values) / min(values)

    def corner_ratio(self, metric: str) -> float:
        """slow-corner (2c, 0.8 GHz) value / fast-corner (4c, 2.2 GHz)."""
        slow = getattr(self.cell(2, 0.8), metric)
        fast = getattr(self.cell(4, 2.2), metric)
        if fast == 0:
            return float("nan")
        return slow / fast


def sweep_operating_points(
    workload: str,
    grid: Optional[Sequence[OperatingPoint]] = None,
    seeds: Sequence[int] = (1,),
    workload_kwargs: Optional[Dict] = None,
    **run_kwargs,
) -> SweepResult:
    """Run ``workload`` across the operating-point grid.

    Multiple seeds are averaged per cell (mission outcomes of the
    randomized planners vary run to run, as the paper also observed).
    """
    cells: List[SweepCell] = []
    for cores, freq in grid or DEFAULT_GRID:
        velocities, times, energies, successes = [], [], [], []
        extras: Dict[str, List[float]] = {}
        for seed in seeds:
            result = run_workload(
                workload,
                cores=cores,
                frequency_ghz=freq,
                seed=seed,
                workload_kwargs=dict(workload_kwargs or {}),
                **run_kwargs,
            )
            report = result.report
            velocities.append(report.average_velocity_ms)
            times.append(report.mission_time_s)
            energies.append(report.total_energy_j / 1000.0)
            successes.append(1.0 if report.success else 0.0)
            for key, value in report.extra.items():
                extras.setdefault(key, []).append(value)
        cells.append(
            SweepCell(
                cores=cores,
                frequency_ghz=freq,
                velocity_ms=float(np.mean(velocities)),
                mission_time_s=float(np.mean(times)),
                energy_kj=float(np.mean(energies)),
                success_rate=float(np.mean(successes)),
                extra={k: float(np.mean(v)) for k, v in extras.items()},
            )
        )
    return SweepResult(workload=workload, cells=cells)


def format_heatmap(
    result: SweepResult,
    metric: str = "mission_time_s",
    extra_key: Optional[str] = None,
    fmt: str = "{:.1f}",
) -> str:
    """Render a sweep grid in the paper's heatmap layout.

    Rows: core counts (4 at the top, as in Figs. 10-14); columns: clock
    frequencies ascending.
    """
    cores_levels = sorted({c.cores for c in result.cells}, reverse=True)
    freq_levels = sorted({c.frequency_ghz for c in result.cells})
    header = "cores\\GHz | " + " | ".join(f"{f:>7.1f}" for f in freq_levels)
    lines = [header, "-" * len(header)]
    for cores in cores_levels:
        row = [f"{cores:>9d}"]
        for freq in freq_levels:
            cell = result.cell(cores, freq)
            value = (
                cell.extra.get(extra_key, float("nan"))
                if extra_key
                else getattr(cell, metric)
            )
            row.append(f"{fmt.format(value):>7}")
        lines.append(" | ".join(row))
    return "\n".join(lines)
