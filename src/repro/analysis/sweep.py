"""Operating-point sweep harness — the engine behind Figs. 10-14.

Runs a workload over the TX2's {2,3,4} cores x {0.8,1.5,2.2} GHz grid
(optionally averaged over seeds) and reduces the results to the heatmap
tables the paper presents: average velocity, mission time, and energy per
operating point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

OperatingPoint = Tuple[int, float]  # (cores, frequency_ghz)

DEFAULT_GRID: List[OperatingPoint] = [
    (c, f) for c in (2, 3, 4) for f in (0.8, 1.5, 2.2)
]


@dataclass
class SweepCell:
    """Aggregated results for one operating point."""

    cores: int
    frequency_ghz: float
    velocity_ms: float
    mission_time_s: float
    energy_kj: float
    success_rate: float
    extra: Dict[str, float] = field(default_factory=dict)


@dataclass
class SweepResult:
    """A full heatmap grid for one workload."""

    workload: str
    cells: List[SweepCell]

    def cell(self, cores: int, frequency_ghz: float) -> SweepCell:
        for c in self.cells:
            if c.cores == cores and abs(c.frequency_ghz - frequency_ghz) < 1e-9:
                return c
        raise KeyError(f"no cell for ({cores}, {frequency_ghz})")

    def metric_grid(self, metric: str) -> Dict[OperatingPoint, float]:
        return {
            (c.cores, c.frequency_ghz): getattr(c, metric) for c in self.cells
        }

    def best_over_worst(self, metric: str, lower_is_better: bool = True) -> float:
        """Ratio of the best grid cell's value to the worst's.

        For a lower-is-better metric (mission time, energy) the best cell
        is the minimum, so the ratio is < 1; for a higher-is-better metric
        (velocity, success rate) the best cell is the maximum and the
        ratio is > 1.
        """
        values = [getattr(c, metric) for c in self.cells]
        values = [v for v in values if np.isfinite(v) and v > 0]
        if not values:
            return float("nan")
        if lower_is_better:
            return min(values) / max(values)
        return max(values) / min(values)

    def corner_ratio(self, metric: str) -> float:
        """slow-corner (2c, 0.8 GHz) value / fast-corner (4c, 2.2 GHz)."""
        slow = getattr(self.cell(2, 0.8), metric)
        fast = getattr(self.cell(4, 2.2), metric)
        if fast == 0:
            return float("nan")
        return slow / fast


def sweep_operating_points(
    workload: str,
    grid: Optional[Sequence[OperatingPoint]] = None,
    seeds: Sequence[int] = (1,),
    workload_kwargs: Optional[Dict] = None,
    jobs: int = 1,
    store=None,
    **run_kwargs,
) -> SweepResult:
    """Run ``workload`` across the operating-point grid.

    Multiple seeds are averaged per cell (mission outcomes of the
    randomized planners vary run to run, as the paper also observed).

    A thin wrapper over the campaign engine
    (:func:`repro.campaign.run_campaign`): ``jobs>1`` fans missions out
    across worker processes, and an optional
    :class:`~repro.campaign.CampaignStore` makes the sweep resumable and
    turns repeated grid points into cache hits.  Results are identical
    floats to the historical sequential loop.
    """
    # Imported lazily: campaign.aggregate imports SweepCell/SweepResult
    # from this module, so a module-level import would be circular.
    from ..campaign.runner import run_campaign
    from ..campaign.spec import CampaignSpec

    depth_noise_std = float(run_kwargs.pop("depth_noise_std", 0.0))
    workload_kwargs = dict(workload_kwargs or {})
    # The campaign engine rejects duplicate runs; the legacy sweep loop
    # tolerated repeated seeds/grid points, and (missions being
    # deterministic per seed) averaging a duplicate never changed a
    # cell's value — so deduplicating preserves the historical floats.
    grid = [(int(c), float(f)) for c, f in (grid or DEFAULT_GRID)]
    spec = CampaignSpec(
        workloads=[workload],
        grid=list(dict.fromkeys(grid)),
        seeds=list(dict.fromkeys(seeds)),
        depth_noise_levels=[depth_noise_std],
        workload_kwargs={workload: workload_kwargs} if workload_kwargs else {},
        sim_kwargs=dict(run_kwargs),
    )
    report = run_campaign(spec, jobs=jobs, store=store)

    from ..campaign.aggregate import aggregate_sweep

    return aggregate_sweep(report.records, workload=workload)


def format_heatmap(
    result: SweepResult,
    metric: str = "mission_time_s",
    extra_key: Optional[str] = None,
    fmt: str = "{:.1f}",
) -> str:
    """Render a sweep grid in the paper's heatmap layout.

    Rows: core counts (4 at the top, as in Figs. 10-14); columns: clock
    frequencies ascending.  Operating points absent from the sweep (a
    sparse campaign grid) render as ``-``.
    """
    cores_levels = sorted({c.cores for c in result.cells}, reverse=True)
    freq_levels = sorted({c.frequency_ghz for c in result.cells})
    header = "cores\\GHz | " + " | ".join(f"{f:>7.1f}" for f in freq_levels)
    lines = [header, "-" * len(header)]
    for cores in cores_levels:
        row = [f"{cores:>9d}"]
        for freq in freq_levels:
            try:
                cell = result.cell(cores, freq)
            except KeyError:
                row.append(f"{'-':>7}")
                continue
            value = (
                cell.extra.get(extra_key, float("nan"))
                if extra_key
                else getattr(cell, metric)
            )
            row.append(f"{fmt.format(value):>7}")
        lines.append(" | ".join(row))
    return "\n".join(lines)
