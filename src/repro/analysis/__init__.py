"""Analysis harness: sweeps, microbenchmarks, datasets, and reporting."""

from .datasets import (
    COMMERCIAL_MAVS,
    FAA_FORECAST_2021,
    FAA_REGISTRATIONS,
    CommercialMav,
    endurance_vs_capacity,
    registration_growth_factor,
    size_vs_capacity,
)
from .sweep import (
    DEFAULT_GRID,
    SweepCell,
    SweepResult,
    format_heatmap,
    sweep_operating_points,
)
from .microbench import (
    PowerPhase,
    SlamSweepPoint,
    max_velocity_at_fps,
    mission_power_trace,
    run_slam_circle,
    slam_fps_sweep,
    solo_power_breakdown,
)
from .reporting import comparison_row, format_table
from .flight_log import (
    load_mission,
    mission_document,
    phase_rows,
    samples_to_rows,
    write_csv,
    write_json,
    write_phase_csv,
)

__all__ = [
    "COMMERCIAL_MAVS",
    "CommercialMav",
    "DEFAULT_GRID",
    "FAA_FORECAST_2021",
    "FAA_REGISTRATIONS",
    "PowerPhase",
    "SlamSweepPoint",
    "SweepCell",
    "SweepResult",
    "comparison_row",
    "endurance_vs_capacity",
    "format_heatmap",
    "format_table",
    "max_velocity_at_fps",
    "mission_power_trace",
    "registration_growth_factor",
    "run_slam_circle",
    "size_vs_capacity",
    "slam_fps_sweep",
    "solo_power_breakdown",
    "sweep_operating_points",
    "load_mission",
    "mission_document",
    "phase_rows",
    "samples_to_rows",
    "write_csv",
    "write_json",
    "write_phase_csv",
]
