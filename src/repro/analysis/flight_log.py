"""Flight-log export: QoF sample traces to CSV/JSON.

MAVBench "reports a variety of quality-of-flight (QoF) metrics, such as
the performance, power consumption, and trajectory statistics of the
drone."  This module turns a mission's recorded samples into portable
flight logs (CSV rows or a JSON document) so traces can be plotted or
diffed outside the library — the artifact an open-source release's users
actually ask for first.

When the mission ran under the span tracer (``observability.trace``),
per-phase host-time columns ride along: pass the tracer to
:func:`mission_document`/:func:`write_json` for a ``"phases"`` section,
or dump the flat table with :func:`write_phase_csv`.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass
from typing import Dict, List, Optional, TextIO, Union

from ..core.qof import QofRecorder, QofReport
from ..observability.export import phase_summary
from ..observability.trace import Tracer

CSV_FIELDS = [
    "time_s",
    "x_m",
    "y_m",
    "z_m",
    "speed_ms",
    "rotor_power_w",
    "compute_power_w",
    "total_power_w",
    "hovering",
]


def samples_to_rows(recorder: QofRecorder) -> List[Dict[str, float]]:
    """Flatten the recorder's samples into CSV-ready dict rows."""
    rows = []
    for s in recorder.samples:
        rows.append(
            {
                "time_s": s.time,
                "x_m": float(s.position[0]),
                "y_m": float(s.position[1]),
                "z_m": float(s.position[2]),
                "speed_ms": s.speed,
                "rotor_power_w": s.rotor_power_w,
                "compute_power_w": s.compute_power_w,
                "total_power_w": s.rotor_power_w + s.compute_power_w,
                "hovering": int(s.hovering),
            }
        )
    return rows


def write_csv(
    recorder: QofRecorder,
    destination: Union[str, TextIO],
    decimate: int = 1,
) -> int:
    """Write the flight trace as CSV; returns the number of rows written.

    Parameters
    ----------
    destination:
        File path or open text stream.
    decimate:
        Keep every n-th sample (long missions at 20 Hz get large).
    """
    if decimate < 1:
        raise ValueError("decimate must be >= 1")
    rows = samples_to_rows(recorder)[::decimate]

    def _write(stream: TextIO) -> None:
        writer = csv.DictWriter(stream, fieldnames=CSV_FIELDS)
        writer.writeheader()
        writer.writerows(rows)

    if isinstance(destination, str):
        with open(destination, "w", newline="") as f:
            _write(f)
    else:
        _write(destination)
    return len(rows)


#: Column order for :func:`phase_rows` / :func:`write_phase_csv`.
PHASE_CSV_FIELDS = ["phase", "count", "total_s", "self_s", "sim_total_s"]


def phase_rows(tracer: Tracer) -> List[Dict[str, float]]:
    """The tracer's phase aggregation as CSV-ready dict rows.

    One row per span path (slash-joined), sorted by descending total
    time: where the mission's host time went, in spreadsheet shape.
    """
    rows = []
    for path, stats in sorted(
        phase_summary(tracer).items(), key=lambda item: -item[1]["total_s"]
    ):
        rows.append(
            {
                "phase": path,
                "count": int(stats["count"]),
                "total_s": stats["total_s"],
                "self_s": stats["self_s"],
                "sim_total_s": stats["sim_total_s"],
            }
        )
    return rows


def write_phase_csv(
    tracer: Tracer, destination: Union[str, TextIO]
) -> int:
    """Write the per-phase timing table as CSV; returns rows written."""
    rows = phase_rows(tracer)

    def _write(stream: TextIO) -> None:
        writer = csv.DictWriter(stream, fieldnames=PHASE_CSV_FIELDS)
        writer.writeheader()
        writer.writerows(rows)

    if isinstance(destination, str):
        with open(destination, "w", newline="") as f:
            _write(f)
    else:
        _write(destination)
    return len(rows)


def mission_document(
    report: QofReport,
    recorder: Optional[QofRecorder] = None,
    decimate: int = 10,
    metadata: Optional[Dict] = None,
    tracer: Optional[Tracer] = None,
) -> Dict:
    """A JSON-serializable mission document: report + optional trace.

    With ``tracer`` the document gains a ``"phases"`` section — the
    span tracer's per-phase host-time aggregation — so one artifact
    carries both the flight trajectory and where the host spent its
    time flying it.  Documents without a tracer are unchanged.
    """
    doc = {
        "success": report.success,
        "failure_reason": report.failure_reason,
        "mission_time_s": report.mission_time_s,
        "flight_distance_m": report.flight_distance_m,
        "average_velocity_ms": report.average_velocity_ms,
        "max_velocity_ms": report.max_velocity_ms,
        "hover_time_s": report.hover_time_s,
        "total_energy_j": report.total_energy_j,
        "rotor_energy_j": report.rotor_energy_j,
        "compute_energy_j": report.compute_energy_j,
        "battery_remaining_percent": report.battery_remaining_percent,
        "extra": dict(report.extra),
        "metadata": dict(metadata or {}),
    }
    if recorder is not None:
        doc["trace"] = samples_to_rows(recorder)[::decimate]
    if tracer is not None:
        doc["phases"] = phase_summary(tracer)
    return doc


def write_json(
    report: QofReport,
    destination: Union[str, TextIO],
    recorder: Optional[QofRecorder] = None,
    decimate: int = 10,
    metadata: Optional[Dict] = None,
    tracer: Optional[Tracer] = None,
) -> None:
    """Serialize a mission document to JSON."""
    doc = mission_document(
        report,
        recorder=recorder,
        decimate=decimate,
        metadata=metadata,
        tracer=tracer,
    )
    if isinstance(destination, str):
        with open(destination, "w") as f:
            json.dump(doc, f, indent=2)
    else:
        json.dump(doc, destination, indent=2)


def load_mission(path_or_stream: Union[str, TextIO]) -> Dict:
    """Load a mission document written by :func:`write_json`."""
    if isinstance(path_or_stream, str):
        with open(path_or_stream) as f:
            return json.load(f)
    return json.load(path_or_stream)
