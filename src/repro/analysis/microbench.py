"""Microbenchmarks from Section V: Fig. 8a/8b and the Fig. 9 power traces.

* Fig. 8a — Eq. (2) theoretical max velocity vs processing time (pure
  closed form, in :mod:`repro.core.velocity`).
* Fig. 8b — the SLAM circular-path microbenchmark: "the drone was tasked
  to follow a predetermined circular path of the radius 25 meters ...
  we inserted a sleep in the kernel [to emulate different compute powers]
  ... swept different velocities and sleep times and bounded the failure
  rate to 20%".  We reproduce it literally: fly the circle at velocity v,
  process SLAM frames at the emulated FPS, measure tracking-failure rate,
  and report the highest velocity whose failure rate stays under the
  bound — plus the total system energy of that mission.
* Fig. 9 — hover/flight power traces over a mission profile.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..energy.battery import Battery
from ..energy.power_model import RotorPowerModel, SOLO_COEFFICIENTS
from ..perception.slam import VisualSlam, generate_landmarks
from ..world.environment import World, empty_world
from ..world.generator import forest_world
from ..world.geometry import vec


@dataclass
class SlamSweepPoint:
    """One (FPS, velocity) microbenchmark outcome."""

    fps: float
    velocity_ms: float
    failure_rate: float
    mission_time_s: float
    energy_kj: float


def _circle_world(seed: int = 0) -> World:
    """A landmark-rich arena around the 25 m circular path."""
    world = empty_world((120.0, 120.0, 12.0), name="slam-circle")
    rng = np.random.default_rng(seed)
    # Scatter visual structure outside and inside the circle.
    from ..world.obstacles import make_box_obstacle

    for _ in range(40):
        r = float(rng.uniform(30, 55))
        theta = float(rng.uniform(0, 2 * math.pi))
        h = float(rng.uniform(3, 12))
        world.add(
            make_box_obstacle(
                (r * math.cos(theta), r * math.sin(theta), h / 2),
                (2.0, 2.0, h),
                kind="pillar",
            )
        )
    return world


def run_slam_circle(
    velocity_ms: float,
    fps: float,
    radius_m: float = 25.0,
    laps: float = 1.0,
    seed: int = 0,
    rotor_power: Optional[RotorPowerModel] = None,
) -> SlamSweepPoint:
    """Fly the 25 m circle at constant speed, processing SLAM at ``fps``.

    The camera looks along the direction of travel (tangent), so the
    visible landmark set rotates with the drone; larger per-frame arc
    means less overlap and more tracking failures.
    """
    if velocity_ms <= 0 or fps <= 0:
        raise ValueError("velocity and fps must be positive")
    world = _circle_world(seed)
    # Feature-dense environment: visual SLAM tracks hundreds of ORB
    # features per frame; the landmark field is sized so a frustum holds
    # a few dozen, well above the tracking threshold at rest.
    landmarks = generate_landmarks(world, count=6000, seed=seed)
    slam = VisualSlam(landmarks=landmarks, seed=seed)
    power = rotor_power or RotorPowerModel(mass_kg=2.4)

    circumference = 2 * math.pi * radius_m * laps
    mission_time = circumference / velocity_ms
    frame_dt = 1.0 / fps
    omega = velocity_ms / radius_m
    t = 0.0
    while t <= mission_time:
        theta = omega * t
        position = vec(
            radius_m * math.cos(theta), radius_m * math.sin(theta), 2.0
        )
        yaw = theta + math.pi / 2  # tangent direction
        slam.process_frame(position, yaw, timestamp=t)
        t += frame_dt

    # Energy: steady circular flight (centripetal acceleration a = v^2/r).
    centripetal = velocity_ms**2 / radius_m
    rotor_w = power.power(
        np.array([velocity_ms, 0.0, 0.0]),
        np.array([0.0, centripetal, 0.0]),
    )
    energy_kj = rotor_w * mission_time / 1000.0
    return SlamSweepPoint(
        fps=fps,
        velocity_ms=velocity_ms,
        failure_rate=slam.failure_rate,
        mission_time_s=mission_time,
        energy_kj=energy_kj,
    )


def max_velocity_at_fps(
    fps: float,
    velocities: Sequence[float] = (1, 2, 3, 4, 5, 6, 8, 10, 12),
    max_failure_rate: float = 0.2,
    seed: int = 0,
) -> SlamSweepPoint:
    """Highest tested velocity whose failure rate stays within the bound.

    This is exactly the paper's sweep protocol for Fig. 8b.
    """
    best: Optional[SlamSweepPoint] = None
    for v in velocities:
        point = run_slam_circle(v, fps, seed=seed)
        if point.failure_rate <= max_failure_rate:
            if best is None or point.velocity_ms > best.velocity_ms:
                best = point
    if best is None:
        # Even the slowest tested velocity fails: report it with its rate.
        best = run_slam_circle(min(velocities), fps, seed=seed)
    return best


def slam_fps_sweep(
    fps_values: Sequence[float] = (0.25, 0.5, 1, 2, 4),
    seed: int = 0,
) -> List[SlamSweepPoint]:
    """The Fig. 8b series: max velocity and energy across SLAM FPS."""
    return [max_velocity_at_fps(fps, seed=seed) for fps in fps_values]


# ---------------------------------------------------------------------------
# Fig. 9: power breakdown and mission power trace
# ---------------------------------------------------------------------------
@dataclass
class PowerPhase:
    """One phase of the Fig. 9b mission profile."""

    name: str
    duration_s: float
    power_w: float


def solo_power_breakdown(compute_power_w: float = 13.0) -> Dict[str, float]:
    """Fig. 9a: measured 3DR Solo breakdown (rotors ~287 W, compute ~13 W,
    flight controller ~2 W) reproduced from our Eq.-1 model + TX2 model."""
    rotor = RotorPowerModel(coefficients=SOLO_COEFFICIENTS, mass_kg=1.8)
    return {
        "rotors_w": rotor.hover_power(),
        "compute_w": compute_power_w,
        "flight_controller_w": 2.0,
    }


def mission_power_trace(
    cruise_speed: float, mass_kg: float = 1.8
) -> List[PowerPhase]:
    """Fig. 9b: arming -> hover -> flying -> landing phase powers."""
    rotor = RotorPowerModel(coefficients=SOLO_COEFFICIENTS, mass_kg=mass_kg)
    accel = np.zeros(3)
    phases = [
        PowerPhase("arming", 5.0, 30.0),
        PowerPhase("hover", 10.0, rotor.hover_power()),
        PowerPhase(
            "flying",
            30.0,
            rotor.power(np.array([cruise_speed, 0.0, 0.0]), accel),
        ),
        PowerPhase(
            "landing",
            5.0,
            rotor.power(np.array([0.0, 0.0, -1.0]), accel),
        ),
    ]
    return phases
