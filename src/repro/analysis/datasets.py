"""Static datasets transcribed from the paper's motivation figures.

Fig. 1 is mined from FAA registration counts; Fig. 2 compares commercial
MAVs' battery capacity against endurance and size.  These are data
artifacts, not simulation outputs, so we carry them as checked-in tables
and regenerate the figures from them (plus our battery model for the
Fig. 2a endurance curve cross-check).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

#: Fig. 1 — FAA-registered UAV units per period (cumulative counts shown
#: in the paper: pre-2015 ~0, then 466,933 / 711,680 / 943,536).
FAA_REGISTRATIONS: List[Tuple[str, int]] = [
    ("Pre 2015", 0),
    ("2015-2016", 466_933),
    ("2016-2017", 711_680),
    ("2017-Present", 943_536),
]

#: FAA forecast cited in the paper: >4M units by 2021.
FAA_FORECAST_2021 = 4_000_000


@dataclass(frozen=True)
class CommercialMav:
    """One commercial MAV data point for Fig. 2."""

    name: str
    wing_type: str  # "fixed" or "rotor"
    battery_mah: float
    battery_cells: int
    endurance_min: float  # manufacturer-rated flight time
    size_mm: float  # characteristic dimension (diagonal/wingspan)
    hover_power_w: float  # approximate electrical draw in level flight


#: Fig. 2 — popular MAVs on the market (manufacturer specifications).
COMMERCIAL_MAVS: List[CommercialMav] = [
    CommercialMav("Disco FPV", "fixed", 2700, 3, 45.0, 1150, 80.0),
    CommercialMav("Bebop 2 Power", "rotor", 3350, 3, 30.0, 380, 90.0),
    CommercialMav("DJI Matrice 100", "rotor", 5700, 6, 22.0, 650, 330.0),
    CommercialMav("3DR Solo", "rotor", 5200, 4, 20.0, 460, 300.0),
    CommercialMav("DJI Spark", "rotor", 1480, 3, 16.0, 170, 60.0),
    CommercialMav("DJI Mavic Pro", "rotor", 3830, 3, 27.0, 335, 100.0),
    CommercialMav("Racing drone (5in)", "rotor", 1300, 4, 5.0, 220, 250.0),
    CommercialMav("Yuneec Typhoon H", "rotor", 5400, 4, 25.0, 520, 280.0),
]


def registration_growth_factor() -> float:
    """The 'over 200%' two-year growth the paper highlights."""
    start = FAA_REGISTRATIONS[1][1]
    end = FAA_REGISTRATIONS[3][1]
    return end / start


def endurance_vs_capacity() -> List[Tuple[str, str, float, float]]:
    """(name, wing_type, battery_mah, endurance_hours) rows for Fig. 2a."""
    return [
        (m.name, m.wing_type, m.battery_mah, m.endurance_min / 60.0)
        for m in COMMERCIAL_MAVS
    ]


def size_vs_capacity() -> List[Tuple[str, float, float]]:
    """(name, battery_mah, size_mm) rows for Fig. 2b."""
    return [(m.name, m.battery_mah, m.size_mm) for m in COMMERCIAL_MAVS]
