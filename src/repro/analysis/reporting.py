"""Result formatting: paper-style tables for the benchmark harness."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render a fixed-width text table (the harness prints these to match
    the paper's tables row for row)."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = " | ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 100:
            return f"{cell:.0f}"
        if abs(cell) >= 1:
            return f"{cell:.2f}"
        return f"{cell:.3f}"
    return str(cell)


def comparison_row(
    label: str, paper_value: float, measured: float, unit: str = ""
) -> List[object]:
    """A paper-vs-measured row with the ratio, for EXPERIMENTS.md."""
    ratio = measured / paper_value if paper_value else float("nan")
    return [label, f"{paper_value}{unit}", f"{measured:.2f}{unit}", f"{ratio:.2f}x"]
