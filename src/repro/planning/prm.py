"""Probabilistic roadmap (PRM) planner paired with A*.

Kavraki et al.'s multi-query roadmap: sample collision-free vertices,
connect k-nearest neighbors with collision-free edges, then answer
queries by connecting start/goal to the roadmap and running A* over it —
exactly the "generating a set of possible paths ... then choosing an
optimal one among them using a path-planning algorithm, such as A*"
pipeline the paper describes.

Batched kernels: vertex sampling draws the whole candidate pool and
answers it with one map query (rewinding the RNG to exactly what the
sequential sampler would have consumed), neighbor edges are validated in
batched windows, and queries run array-based A* over a CSR view of the
roadmap.  ``build_scalar`` / ``plan_scalar`` keep the original per-sample
loops over the scalar map queries as the equivalence reference.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..observability import trace as _trace
from ..world.geometry import AABB, norm
from .astar import astar, astar_arrays
from .collision import CollisionChecker, _dist, _row_dists
from .rrt import PlanResult
from .spatial_index import GridIndex


class PrmPlanner:
    """A PRM over the current occupancy belief.

    Parameters
    ----------
    checker:
        Collision oracle.
    bounds:
        Sampling region.
    n_samples:
        Roadmap vertex budget.
    k_neighbors:
        Connection attempts per vertex.
    """

    name = "prm"

    #: Edge-validation window: candidate edges checked per batched query
    #: while hunting for k collision-free connections.
    EDGE_WINDOW = 16

    def __init__(
        self,
        checker: CollisionChecker,
        bounds: AABB,
        n_samples: int = 300,
        k_neighbors: int = 8,
        seed: int = 0,
    ) -> None:
        if n_samples < 2:
            raise ValueError("roadmap needs at least 2 samples")
        self.checker = checker
        self.bounds = bounds
        self.n_samples = n_samples
        self.k_neighbors = k_neighbors
        self.rng = np.random.default_rng(seed)
        self._vertices: List[np.ndarray] = []
        self._edges: Dict[int, List[Tuple[int, float]]] = {}
        self._built = False
        # Grid-bucket index over the vertices, so build-time neighbor
        # scans touch a handful of cells instead of every vertex.  Only
        # the batched path maintains it; scalar builds leave it None and
        # the candidate stream falls back to the full stable argsort.
        self._grid: Optional[GridIndex] = None

    # ------------------------------------------------------------------
    # Roadmap construction
    # ------------------------------------------------------------------
    def _sample_vertices(self) -> None:
        """Draw the whole candidate pool at once and keep the first
        ``n_samples`` collision-free points — the same vertices, in the
        same order, as the one-draw-at-a-time loop.  The RNG is rewound
        and re-advanced by exactly the draws that loop would have made.
        """
        max_tries = self.n_samples * 20
        state = self.rng.bit_generator.state
        candidates = self.rng.uniform(
            self.bounds.lo, self.bounds.hi, size=(max_tries, 3)
        )
        free_idx = np.nonzero(self.checker.points_free(candidates))[0]
        take = free_idx[: self.n_samples]
        tries_used = (
            int(take[-1]) + 1 if take.size == self.n_samples else max_tries
        )
        if tries_used < max_tries:
            self.rng.bit_generator.state = state
            self.rng.uniform(
                self.bounds.lo, self.bounds.hi, size=(tries_used, 3)
            )
        self._vertices = [candidates[int(i)].copy() for i in take]

    def _grid_cell_size(self) -> float:
        """Cell edge sized so one initial query ball holds a few windows'
        worth of candidates at the roadmap's expected vertex density."""
        extent = self.bounds.hi - self.bounds.lo
        volume = float(np.prod(np.maximum(extent, 1e-6)))
        return max((8.0 * volume / max(self.n_samples, 1)) ** (1.0 / 3.0), 0.25)

    def _rebuild_grid(self) -> None:
        self._grid = GridIndex(self._grid_cell_size())
        for v in self._vertices:
            self._grid.insert(v)

    def _candidate_stream(
        self, arr: np.ndarray, p: np.ndarray
    ) -> Iterator[Tuple[int, float]]:
        """Yield ``(vertex_id, d2)`` over all vertices of ``arr`` in
        (distance², id)-lexicographic order — exactly the order a stable
        argsort of the full distance scan produces.

        When the grid index covers the vertex set, candidates stream from
        expanding-radius :meth:`GridIndex.near_ids` queries: each round's
        fresh ids all lie strictly beyond the previous radius (near_ids
        is exact and inclusive), so sorting every round by (d2, id) makes
        the concatenated stream globally (d2, id)-sorted.  Distances are
        computed with the brute-scan row arithmetic, so values (and the
        edge weights derived from them) are bit-identical to the full
        scan.  Without a usable grid, the stream *is* the full scan.
        """
        n = arr.shape[0]
        grid = self._grid
        if grid is None or len(grid) != n or n <= GridIndex.BRUTE_THRESHOLD:
            d2_all = np.sum((arr - p[None, :]) ** 2, axis=1)
            order = np.argsort(d2_all, kind="stable")
            for j in order:
                yield int(j), float(d2_all[j])
            return
        emitted = np.zeros(n, dtype=bool)
        remaining = n
        radius = grid.cell_size
        max_radius = float(np.max(self.bounds.hi - self.bounds.lo)) * 4.0
        while remaining:
            if radius > max_radius:
                # Outliers beyond any sane ball: flush the leftovers with
                # one full-scan round (same (d2, id) order).
                ids = np.nonzero(~emitted)[0]
            else:
                ids = grid.near_ids(arr, p, radius)
                ids = ids[~emitted[ids]]
            if ids.size:
                emitted[ids] = True
                remaining -= int(ids.size)
                d = arr[ids] - p[None, :]
                d2 = np.sum(d * d, axis=1)
                for pos in np.lexsort((ids, d2)):
                    yield int(ids[pos]), float(d2[pos])
            radius *= 2.0

    def _connect_vertex(self, i: int, arr: np.ndarray) -> None:
        """Find up to ``k_neighbors`` collision-free edges for vertex ``i``,
        validating candidate edges in batched windows (one map query per
        window instead of one per candidate).  Candidates come from the
        grid-index stream in near-to-far order."""
        p = self._vertices[i]
        stream = self._candidate_stream(arr, p)
        next(stream, None)  # nearest candidate is the vertex itself
        connected = 0
        while connected < self.k_neighbors:
            window = list(itertools.islice(stream, self.EDGE_WINDOW))
            if not window:
                break
            to_check = [
                j for j, _ in window
                if not any(n == j for n, _ in self._edges[i])
            ]
            if to_check:
                verdicts = self.checker.segments_free(
                    p, arr[to_check]
                )
                free = dict(zip(to_check, verdicts.tolist()))
            else:
                free = {}
            for j, d2j in window:
                if connected >= self.k_neighbors:
                    break
                if any(n == j for n, _ in self._edges[i]):
                    connected += 1
                    continue
                if free[j]:
                    w = float(np.sqrt(d2j))
                    self._edges[i].append((j, w))
                    self._edges[j].append((i, w))
                    connected += 1

    def build(self) -> None:
        """(Re-)sample the roadmap against the current belief map."""
        self._edges = {}
        self._sample_vertices()
        self._rebuild_grid()
        for i in range(len(self._vertices)):
            self._edges[i] = []
        if len(self._vertices) >= 2:
            arr = np.stack(self._vertices)
            for i in range(len(self._vertices)):
                self._connect_vertex(i, arr)
        self._built = True

    def build_scalar(self) -> None:
        """Reference scalar roadmap construction (one draw / one scalar
        map query at a time); kept for the equivalence suite."""
        self._vertices = []
        self._edges = {}
        self._grid = None  # scalar builds don't maintain the grid index
        tries = 0
        while (
            len(self._vertices) < self.n_samples
            and tries < self.n_samples * 20
        ):
            tries += 1
            p = self.rng.uniform(self.bounds.lo, self.bounds.hi)
            if self.checker.point_free_scalar(p):
                self._vertices.append(p)
        for i in range(len(self._vertices)):
            self._edges[i] = []
        if len(self._vertices) >= 2:
            arr = np.stack(self._vertices)
            for i in range(len(self._vertices)):
                self._connect_vertex_scalar(i, arr)
        self._built = True

    def _connect_vertex_scalar(self, i: int, arr: np.ndarray) -> None:
        """Reference scalar implementation of :meth:`_connect_vertex`
        (one scalar map query per candidate edge, same order).  Stable
        argsort pins the candidate order to (d2, id)-lexicographic — the
        order the grid-index stream reproduces."""
        p = self._vertices[i]
        d2 = np.sum((arr - p[None, :]) ** 2, axis=1)
        order = np.argsort(d2, kind="stable")
        connected = 0
        for j in order[1:]:
            if connected >= self.k_neighbors:
                break
            j = int(j)
            if any(n == j for n, _ in self._edges[i]):
                connected += 1
                continue
            if self.checker.segment_free_scalar(p, self._vertices[j]):
                w = float(np.sqrt(d2[j]))
                self._edges[i].append((j, w))
                self._edges[j].append((i, w))
                connected += 1

    # ------------------------------------------------------------------
    # Multi-query reuse: lazy revalidation and goal-biased densification
    # ------------------------------------------------------------------
    def revalidate(self) -> int:
        """Lazily re-check the roadmap against the *current* belief map.

        The paper's missions replan ~15 times as the OctoMap absorbs new
        sensing; rebuilding the roadmap each time re-pays sampling and
        connection.  Instead, one batched collision query re-validates
        every unique edge and drops the newly blocked ones (a vertex
        whose body volume became occupied loses all incident edges
        automatically — every edge's sample set includes its endpoints).
        Surviving edges keep their insertion order, so a revalidated
        roadmap is bit-identical to the scalar twin's.

        Returns the number of undirected edges dropped.
        """
        with _trace.span("plan.prm_revalidate", "planning") as sp:
            pairs = self._unique_edges()
            if not pairs:
                return 0
            arr = np.stack(self._vertices)
            free = self.checker.segments_free(
                arr[[i for i, _, _ in pairs]], arr[[j for _, j, _ in pairs]]
            )
            dropped = self._apply_edge_verdicts(pairs, free.tolist())
            sp.set(edges=len(pairs), dropped=dropped)
            return dropped

    def revalidate_scalar(self) -> int:
        """Reference scalar implementation of :meth:`revalidate` (one
        scalar segment query per unique edge, same traversal order)."""
        pairs = self._unique_edges()
        if not pairs:
            return 0
        verdicts = [
            self.checker.segment_free_scalar(
                self._vertices[i], self._vertices[j]
            )
            for i, j, _ in pairs
        ]
        return self._apply_edge_verdicts(pairs, verdicts)

    def _unique_edges(self) -> List[Tuple[int, int, float]]:
        """Each undirected edge once, in row-major insertion order."""
        if not self._built or not self._vertices:
            return []
        return [
            (i, j, w)
            for i in range(len(self._vertices))
            for j, w in self._edges.get(i, [])
            if i < j
        ]

    def _apply_edge_verdicts(
        self,
        pairs: List[Tuple[int, int, float]],
        verdicts: List[bool],
    ) -> int:
        """Drop blocked edges, preserving surviving insertion order."""
        blocked = {
            (i, j) for (i, j, _), ok in zip(pairs, verdicts) if not ok
        }
        if not blocked:
            return 0
        for i, row in self._edges.items():
            self._edges[i] = [
                (j, w)
                for j, w in row
                if (min(i, j), max(i, j)) not in blocked
            ]
        return len(blocked)

    def ensure_vertex(self, point: np.ndarray) -> int:
        """Goal-biased densification: guarantee a roadmap vertex at
        ``point`` and connect it like any sampled vertex.

        Mission goals recur across every replan of a leg; pinning them
        into the cached roadmap means each replan's query only has to
        link the (moving) start.  Returns the vertex id; an existing
        exact-match vertex is reused without drawing RNG or touching
        the map."""
        point = np.asarray(point, dtype=float)
        if not self._built:
            self.build()
        for i, v in enumerate(self._vertices):
            if np.array_equal(v, point):
                return i
        idx = len(self._vertices)
        self._vertices.append(point.copy())
        self._edges[idx] = []
        if self._grid is not None and len(self._grid) == idx:
            self._grid.insert(point)
        if len(self._vertices) >= 2:
            self._connect_vertex(idx, np.stack(self._vertices))
        return idx

    def ensure_vertex_scalar(self, point: np.ndarray) -> int:
        """Reference scalar implementation of :meth:`ensure_vertex`."""
        point = np.asarray(point, dtype=float)
        if not self._built:
            self.build_scalar()
        for i, v in enumerate(self._vertices):
            if np.array_equal(v, point):
                return i
        idx = len(self._vertices)
        self._vertices.append(point.copy())
        self._edges[idx] = []
        if len(self._vertices) >= 2:
            self._connect_vertex_scalar(idx, np.stack(self._vertices))
        return idx

    @property
    def num_vertices(self) -> int:
        return len(self._vertices)

    @property
    def num_edges(self) -> int:
        return sum(len(v) for v in self._edges.values()) // 2

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def plan(self, start: np.ndarray, goal: np.ndarray) -> PlanResult:
        """Connect start/goal to the roadmap and search with array A*."""
        with _trace.span("plan.prm", "planning") as sp:
            result = self._plan_traced(start, goal)
            sp.set(success=result.success, vertices=self.num_vertices)
            _trace.count("planner.prm.plans")
            return result

    def _plan_traced(self, start: np.ndarray, goal: np.ndarray) -> PlanResult:
        if not self._built:
            with _trace.span("plan.prm_build", "planning"):
                self.build()
        start = np.asarray(start, dtype=float)
        goal = np.asarray(goal, dtype=float)
        # Direct connection shortcut.
        if self.checker.segment_free(start, goal):
            return PlanResult(
                waypoints=[start, goal],
                cost=norm(goal - start),
                iterations=0,
                success=True,
            )
        if not self._vertices:
            return PlanResult([], float("inf"), 0, False)
        start_links = self._connect_point(start)
        goal_links = self._connect_point(goal)
        if not start_links or not goal_links:
            return PlanResult([], float("inf"), 0, False)
        return self._search(start, goal, start_links, goal_links)

    def plan_scalar(self, start: np.ndarray, goal: np.ndarray) -> PlanResult:
        """Reference query path: scalar map queries + the generic
        closure-based A*; kept for the equivalence suite."""
        if not self._built:
            self.build_scalar()
        start = np.asarray(start, dtype=float)
        goal = np.asarray(goal, dtype=float)
        if self.checker.segment_free_scalar(start, goal):
            return PlanResult(
                waypoints=[start, goal],
                cost=norm(goal - start),
                iterations=0,
                success=True,
            )
        if not self._vertices:
            return PlanResult([], float("inf"), 0, False)
        start_links = self._connect_point_scalar(start)
        goal_links = self._connect_point_scalar(goal)
        if not start_links or not goal_links:
            return PlanResult([], float("inf"), 0, False)
        goal_link_map = dict(goal_links)

        def neighbors(node):
            if node == "start":
                return [(i, w) for i, w in start_links]
            out: List[Tuple[object, float]] = list(self._edges.get(node, []))
            if node in goal_link_map:
                out.append(("goal", goal_link_map[node]))
            return out

        def heuristic(node) -> float:
            if node == "start":
                return _dist(goal, start)
            if node == "goal":
                return 0.0
            return _dist(goal, self._vertices[node])

        result = astar("start", "goal", neighbors, heuristic)
        if not result.found:
            return PlanResult([], float("inf"), result.expanded, False)
        waypoints = [start]
        for node in result.path[1:-1]:
            waypoints.append(self._vertices[node])
        waypoints.append(goal)
        return PlanResult(
            waypoints=waypoints,
            cost=result.cost,
            iterations=result.expanded,
            success=True,
        )

    def _search(
        self,
        start: np.ndarray,
        goal: np.ndarray,
        start_links: List[Tuple[int, float]],
        goal_links: List[Tuple[int, float]],
    ) -> PlanResult:
        """Array A* over the roadmap CSR plus virtual start/goal nodes.

        Node ids: roadmap vertices ``0..n-1``, start ``n``, goal ``n+1``.
        Adjacency rows keep exactly the neighbor order the closure-based
        search iterates (roadmap edges in insertion order, then the goal
        link), so expansions, tie-breaks, and the returned path match the
        generic A* bit-for-bit.
        """
        n = len(self._vertices)
        start_id, goal_id = n, n + 1
        goal_link_map = dict(goal_links)
        indices: List[int] = []
        weights: List[float] = []
        indptr = np.zeros(n + 3, dtype=np.int64)
        for i in range(n):
            row = list(self._edges.get(i, []))
            if i in goal_link_map:
                row.append((goal_id, goal_link_map[i]))
            indices.extend(j for j, _ in row)
            weights.extend(w for _, w in row)
            indptr[i + 1] = len(indices)
        indices.extend(j for j, _ in start_links)
        weights.extend(w for _, w in start_links)
        indptr[start_id + 1] = len(indices)
        indptr[goal_id + 1] = len(indices)  # goal has no outgoing edges
        verts = np.stack(self._vertices)
        heuristic = np.concatenate(
            [_row_dists(verts, goal), [_dist(goal, start), 0.0]]
        )
        result = astar_arrays(
            n_nodes=n + 2,
            indptr=indptr,
            indices=np.asarray(indices, dtype=np.int64),
            weights=np.asarray(weights, dtype=float),
            start=start_id,
            goal=goal_id,
            heuristic=heuristic,
        )
        if not result.found:
            return PlanResult([], float("inf"), result.expanded, False)
        waypoints = [start]
        for node in result.path[1:-1]:
            waypoints.append(self._vertices[node])
        waypoints.append(goal)
        return PlanResult(
            waypoints=waypoints,
            cost=result.cost,
            iterations=result.expanded,
            success=True,
        )

    def _connect_point(
        self, point: np.ndarray, k: Optional[int] = None
    ) -> List[Tuple[int, float]]:
        """Collision-free connections from a free point to roadmap
        vertices, validated in batched windows.  Candidates come from the
        grid-index stream in near-to-far order."""
        k = k or self.k_neighbors
        arr = np.stack(self._vertices)
        stream = self._candidate_stream(arr, point)
        links: List[Tuple[int, float]] = []
        while len(links) < k:
            window = list(itertools.islice(stream, self.EDGE_WINDOW))
            if not window:
                break
            verdicts = self.checker.segments_free(
                point, arr[[j for j, _ in window]]
            )
            for (j, d2j), ok in zip(window, verdicts.tolist()):
                if len(links) >= k:
                    break
                if ok:
                    links.append((j, float(np.sqrt(d2j))))
        return links

    def _connect_point_scalar(
        self, point: np.ndarray, k: Optional[int] = None
    ) -> List[Tuple[int, float]]:
        """Reference scalar implementation of :meth:`_connect_point`."""
        k = k or self.k_neighbors
        arr = np.stack(self._vertices)
        d2 = np.sum((arr - point[None, :]) ** 2, axis=1)
        order = np.argsort(d2, kind="stable")
        links: List[Tuple[int, float]] = []
        for j in order:
            if len(links) >= k:
                break
            j = int(j)
            if self.checker.segment_free_scalar(point, self._vertices[j]):
                links.append((j, float(np.sqrt(d2[j]))))
        return links
