"""Probabilistic roadmap (PRM) planner paired with A*.

Kavraki et al.'s multi-query roadmap: sample collision-free vertices,
connect k-nearest neighbors with collision-free edges, then answer
queries by connecting start/goal to the roadmap and running A* over it —
exactly the "generating a set of possible paths ... then choosing an
optimal one among them using a path-planning algorithm, such as A*"
pipeline the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..world.geometry import AABB, norm
from .astar import astar
from .collision import CollisionChecker
from .rrt import PlanResult


class PrmPlanner:
    """A PRM over the current occupancy belief.

    Parameters
    ----------
    checker:
        Collision oracle.
    bounds:
        Sampling region.
    n_samples:
        Roadmap vertex budget.
    k_neighbors:
        Connection attempts per vertex.
    """

    name = "prm"

    def __init__(
        self,
        checker: CollisionChecker,
        bounds: AABB,
        n_samples: int = 300,
        k_neighbors: int = 8,
        seed: int = 0,
    ) -> None:
        if n_samples < 2:
            raise ValueError("roadmap needs at least 2 samples")
        self.checker = checker
        self.bounds = bounds
        self.n_samples = n_samples
        self.k_neighbors = k_neighbors
        self.rng = np.random.default_rng(seed)
        self._vertices: List[np.ndarray] = []
        self._edges: Dict[int, List[Tuple[int, float]]] = {}
        self._built = False

    # ------------------------------------------------------------------
    # Roadmap construction
    # ------------------------------------------------------------------
    def build(self) -> None:
        """(Re-)sample the roadmap against the current belief map."""
        self._vertices = []
        self._edges = {}
        tries = 0
        while len(self._vertices) < self.n_samples and tries < self.n_samples * 20:
            tries += 1
            p = self.rng.uniform(self.bounds.lo, self.bounds.hi)
            if self.checker.point_free(p):
                self._vertices.append(p)
        for i in range(len(self._vertices)):
            self._edges[i] = []
        if len(self._vertices) >= 2:
            arr = np.stack(self._vertices)
            for i, p in enumerate(self._vertices):
                d2 = np.sum((arr - p[None, :]) ** 2, axis=1)
                order = np.argsort(d2)
                connected = 0
                for j in order[1:]:
                    if connected >= self.k_neighbors:
                        break
                    j = int(j)
                    if any(n == j for n, _ in self._edges[i]):
                        connected += 1
                        continue
                    if self.checker.segment_free(p, self._vertices[j]):
                        w = float(np.sqrt(d2[j]))
                        self._edges[i].append((j, w))
                        self._edges[j].append((i, w))
                        connected += 1
        self._built = True

    @property
    def num_vertices(self) -> int:
        return len(self._vertices)

    @property
    def num_edges(self) -> int:
        return sum(len(v) for v in self._edges.values()) // 2

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def plan(self, start: np.ndarray, goal: np.ndarray) -> PlanResult:
        """Connect start/goal to the roadmap and search with A*."""
        if not self._built:
            self.build()
        start = np.asarray(start, dtype=float)
        goal = np.asarray(goal, dtype=float)
        # Direct connection shortcut.
        if self.checker.segment_free(start, goal):
            return PlanResult(
                waypoints=[start, goal],
                cost=norm(goal - start),
                iterations=0,
                success=True,
            )
        if not self._vertices:
            return PlanResult([], float("inf"), 0, False)
        start_links = self._connect_point(start)
        goal_links = self._connect_point(goal)
        if not start_links or not goal_links:
            return PlanResult([], float("inf"), 0, False)
        goal_link_map = dict(goal_links)

        def neighbors(node):
            if node == "start":
                return [(i, w) for i, w in start_links]
            out: List[Tuple[object, float]] = list(self._edges.get(node, []))
            if node in goal_link_map:
                out.append(("goal", goal_link_map[node]))
            return out

        def heuristic(node) -> float:
            if node == "start":
                return float(norm(goal - start))
            if node == "goal":
                return 0.0
            return float(norm(goal - self._vertices[node]))

        result = astar("start", "goal", neighbors, heuristic)
        if not result.found:
            return PlanResult([], float("inf"), result.expanded, False)
        waypoints = [start]
        for node in result.path[1:-1]:
            waypoints.append(self._vertices[node])
        waypoints.append(goal)
        return PlanResult(
            waypoints=waypoints,
            cost=result.cost,
            iterations=result.expanded,
            success=True,
        )

    def _connect_point(
        self, point: np.ndarray, k: Optional[int] = None
    ) -> List[Tuple[int, float]]:
        """Collision-free connections from a free point to roadmap vertices."""
        k = k or self.k_neighbors
        arr = np.stack(self._vertices)
        d2 = np.sum((arr - point[None, :]) ** 2, axis=1)
        order = np.argsort(d2)
        links: List[Tuple[int, float]] = []
        for j in order:
            if len(links) >= k:
                break
            j = int(j)
            if self.checker.segment_free(point, self._vertices[j]):
                links.append((j, float(np.sqrt(d2[j]))))
        return links
