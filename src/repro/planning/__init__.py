"""Planning kernels: collision checking, sampling planners, graph
search, coverage, frontier exploration, and path smoothing.

From-scratch implementations of the planning stage of the MAVBench
pipeline (substituting for OMPL and the next-best-view planner).

The workload-facing planner registry (:data:`PLANNERS`) exposes the
plug-and-play shortest-path kernels:

- ``rrt`` — :class:`RrtPlanner`, goal-biased RRT over the grid-indexed
  point buffers; first feasible path, cheapest per plan.
- ``rrt_star`` — :class:`RrtStarPlanner`, asymptotically optimal RRT*
  with informed (ellipsoid) sampling after the first solution, rewire
  cost propagation, and provably-near-optimal early termination.
- ``prm`` — :class:`PrmPlanner`, Kavraki-style probabilistic roadmap
  answered with array A*; built for multi-query reuse across a
  mission's replans (lazy edge revalidation + goal pinning).

Every batched/index-accelerated code path in this package keeps a
``*_scalar`` reference twin pinned bit-identical by the differential
suites (``tests/test_planning_batched.py``, ``tests/test_spatial_index.py``).
"""

from .collision import (
    CollisionChecker,
    GroundTruthChecker,
    escape_point,
    escape_point_scalar,
)
from .astar import SearchResult, astar, astar_arrays, dijkstra_all
from .rrt import PlanResult, RrtPlanner, RrtStarPlanner
from .prm import PrmPlanner
from .lawnmower import (
    CoverageArea,
    coverage_length,
    lanes_required,
    lawnmower_path,
)
from .frontier import FrontierExplorer, Viewpoint
from .smoothing import (
    Trajectory,
    TrajectoryPoint,
    round_corners,
    shortcut_path,
    shortcut_path_scalar,
    smooth_trajectory,
    time_parameterize,
)

PLANNERS = {
    "rrt": RrtPlanner,
    "rrt_star": RrtStarPlanner,
    "prm": PrmPlanner,
}

__all__ = [
    "CollisionChecker",
    "CoverageArea",
    "FrontierExplorer",
    "GroundTruthChecker",
    "PLANNERS",
    "PlanResult",
    "PrmPlanner",
    "RrtPlanner",
    "RrtStarPlanner",
    "SearchResult",
    "Trajectory",
    "TrajectoryPoint",
    "Viewpoint",
    "astar",
    "astar_arrays",
    "coverage_length",
    "dijkstra_all",
    "escape_point",
    "escape_point_scalar",
    "lanes_required",
    "lawnmower_path",
    "round_corners",
    "shortcut_path",
    "shortcut_path_scalar",
    "smooth_trajectory",
    "time_parameterize",
]
