"""Planning kernels: collision checking, RRT/RRT*, PRM+A*, lawnmower,
frontier exploration, and path smoothing.

From-scratch implementations of the planning stage of the MAVBench
pipeline (substituting for OMPL and the next-best-view planner).
"""

from .collision import (
    CollisionChecker,
    GroundTruthChecker,
    escape_point,
    escape_point_scalar,
)
from .astar import SearchResult, astar, astar_arrays, dijkstra_all
from .rrt import PlanResult, RrtPlanner, RrtStarPlanner
from .prm import PrmPlanner
from .lawnmower import (
    CoverageArea,
    coverage_length,
    lanes_required,
    lawnmower_path,
)
from .frontier import FrontierExplorer, Viewpoint
from .smoothing import (
    Trajectory,
    TrajectoryPoint,
    round_corners,
    shortcut_path,
    shortcut_path_scalar,
    smooth_trajectory,
    time_parameterize,
)

PLANNERS = {
    "rrt": RrtPlanner,
    "rrt_star": RrtStarPlanner,
    "prm": PrmPlanner,
}

__all__ = [
    "CollisionChecker",
    "CoverageArea",
    "FrontierExplorer",
    "GroundTruthChecker",
    "PLANNERS",
    "PlanResult",
    "PrmPlanner",
    "RrtPlanner",
    "RrtStarPlanner",
    "SearchResult",
    "Trajectory",
    "TrajectoryPoint",
    "Viewpoint",
    "astar",
    "astar_arrays",
    "coverage_length",
    "dijkstra_all",
    "escape_point",
    "escape_point_scalar",
    "lanes_required",
    "lawnmower_path",
    "round_corners",
    "shortcut_path",
    "shortcut_path_scalar",
    "smooth_trajectory",
    "time_parameterize",
]
