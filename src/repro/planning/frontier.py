"""Frontier-based exploration planning ("next best view").

Substitute for Bircher et al.'s receding-horizon next-best-view planner
used by the 3D Mapping and Search-and-Rescue workloads.  The paper
describes the heuristic directly: "the map is sampled and a heuristic is
used to select an energy efficient (i.e. short) path with a high
exploratory promise (i.e. with many unknown areas along the edges)".

Implementation: candidate viewpoints are sampled in known-free space near
the frontier (free voxels adjacent to unknown space); each candidate is
scored by

    gain(v) = unknown_volume_visible(v) * exp(-lambda * travel_distance(v))

and the best candidate wins — Bircher's exact gain formulation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ..perception.octomap import OCCUPANCY_THRESHOLD, OctoMap
from ..world.geometry import AABB, EPS, norm
from .collision import CollisionChecker
from .rrt import PlanResult, RrtPlanner

#: The 6-connected neighborhood used for frontier detection.
_NEIGHBOR_OFFSETS = np.array(
    [
        (1, 0, 0), (-1, 0, 0), (0, 1, 0),
        (0, -1, 0), (0, 0, 1), (0, 0, -1),
    ],
    dtype=np.int64,
)


@dataclass
class Viewpoint:
    """A candidate next view with its exploration score."""

    position: np.ndarray
    gain: float
    travel_cost: float
    score: float


class FrontierExplorer:
    """Selects next-best-view targets to map unknown space.

    Parameters
    ----------
    octomap:
        Current belief map (must have ``bounds`` set — coverage target).
    checker:
        Collision oracle over the same map.
    sensor_range:
        Range within which a viewpoint converts unknown to known space.
    distance_lambda:
        Travel-cost discount rate in the gain exponent.
    """

    def __init__(
        self,
        octomap: OctoMap,
        checker: CollisionChecker,
        sensor_range: float = 10.0,
        n_candidates: int = 30,
        distance_lambda: float = 0.15,
        seed: int = 0,
    ) -> None:
        if octomap.bounds is None:
            raise ValueError("frontier exploration needs bounded map region")
        self.octomap = octomap
        self.checker = checker
        self.sensor_range = sensor_range
        self.n_candidates = n_candidates
        self.distance_lambda = distance_lambda
        self.rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    def frontier_keys(self, max_keys: int = 2000) -> List[Tuple[int, int, int]]:
        """Free voxels with at least one unknown 6-neighbor.

        Runs as one batched kernel: all free cells, all six neighbors, one
        vectorized membership test against the map index — no per-voxel
        Python.  Results keep map insertion order (as the scalar walk did),
        truncated to ``max_keys``.
        """
        keys, values = self.octomap.cells_arrays()
        if keys.shape[0] == 0:
            return []
        free = keys[values <= OCCUPANCY_THRESHOLD]
        if free.shape[0] == 0:
            return []
        neighbors = (free[:, None, :] + _NEIGHBOR_OFFSETS[None, :, :]).reshape(
            -1, 3
        )
        known = self.octomap.known_mask_for_keys(neighbors)
        centers = self.octomap.centers_of_keys(neighbors)
        b = self.octomap.bounds
        inside = np.all(
            (centers >= b.lo - EPS) & (centers <= b.hi + EPS), axis=1
        )
        is_frontier = np.any(
            (~known & inside).reshape(-1, 6), axis=1
        )
        selected = free[is_frontier][:max_keys]
        return [tuple(k) for k in selected.tolist()]

    def sample_viewpoints(self, current: np.ndarray) -> List[Viewpoint]:
        """Score candidate viewpoints near the frontier.

        The free-space screen over all sampled candidates is one batched
        point query; only the survivors pay for a gain estimate (in draw
        order, so the RNG stream matches the per-candidate loop).
        """
        frontier = self.frontier_keys()
        candidates: List[Viewpoint] = []
        if not frontier:
            return candidates
        idx = self.rng.choice(
            len(frontier), size=min(self.n_candidates, len(frontier)), replace=False
        )
        keys = np.asarray([frontier[int(i)] for i in np.atleast_1d(idx)])
        positions = self.octomap.centers_of_keys(keys)
        free = self.checker.points_free(positions)
        for pos, ok in zip(positions, free):
            if not ok:
                continue
            gain = self._information_gain(pos)
            travel = float(norm(pos - current))
            score = gain * math.exp(-self.distance_lambda * travel)
            candidates.append(
                Viewpoint(position=pos, gain=gain, travel_cost=travel, score=score)
            )
        return candidates

    #: Monte-Carlo sample count for the information-gain estimate.  Exact
    #: voxel iteration over a sensor-range box is O((2r/res)^3) ~ 10^5
    #: lookups per candidate; 256 samples estimate the unknown fraction to
    #: a few percent, which is plenty for candidate ranking.
    GAIN_SAMPLES = 256

    def _information_gain(self, viewpoint: np.ndarray) -> float:
        """Unknown volume within sensor range of ``viewpoint`` (sampled)."""
        box = AABB.from_center(viewpoint, (self.sensor_range * 2,) * 3)
        bounds = self.octomap.bounds
        lo = np.maximum(box.lo, bounds.lo)
        hi = np.minimum(box.hi, bounds.hi)
        if np.any(lo >= hi):
            return 0.0
        samples = self.rng.uniform(lo, hi, size=(self.GAIN_SAMPLES, 3))
        unknown = int(
            np.count_nonzero(np.isnan(self.octomap.log_odds_many(samples)))
        )
        volume = float(np.prod(hi - lo))
        return (unknown / self.GAIN_SAMPLES) * volume

    # ------------------------------------------------------------------
    def next_best_view(self, current: np.ndarray) -> Optional[Viewpoint]:
        """The highest-scoring candidate, or None when exploration is done."""
        candidates = self.sample_viewpoints(np.asarray(current, dtype=float))
        if not candidates:
            return None
        return max(candidates, key=lambda v: v.score)

    def plan_to_view(
        self,
        current: np.ndarray,
        planner: Optional[RrtPlanner] = None,
    ) -> Optional[PlanResult]:
        """Pick the next best view and plan a collision-free path to it."""
        view = self.next_best_view(current)
        if view is None:
            return None
        current = np.asarray(current, dtype=float)
        if self.checker.segment_free(current, view.position):
            return PlanResult(
                waypoints=[current, view.position],
                cost=view.travel_cost,
                iterations=0,
                success=True,
            )
        if planner is None:
            planner = RrtPlanner(
                self.checker,
                self.octomap.bounds,
                seed=int(self.rng.integers(1 << 31)),
            )
        return planner.plan(current, view.position)

    def exploration_complete(self, threshold: float = 0.95) -> bool:
        """True when the map covers ``threshold`` of its bounded region."""
        return self.octomap.coverage_fraction() >= threshold
