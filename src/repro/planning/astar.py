"""A* graph search.

The paper pairs sampling-based roadmaps (PRM) with "a path-planning
algorithm, such as A*" (Hart, Nilsson, Raphael 1968).  This is a generic
implementation over an adjacency-list graph with arbitrary node ids,
used by the PRM planner and the frontier-exploration planner.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, List, Optional, Tuple

import numpy as np

NodeId = Hashable


@dataclass
class SearchResult:
    """Outcome of an A* query."""

    path: List[NodeId]
    cost: float
    expanded: int

    @property
    def found(self) -> bool:
        return bool(self.path)


def astar(
    start: NodeId,
    goal: NodeId,
    neighbors: Callable[[NodeId], List[Tuple[NodeId, float]]],
    heuristic: Callable[[NodeId], float],
) -> SearchResult:
    """A* from ``start`` to ``goal``.

    Parameters
    ----------
    start, goal:
        Node identifiers (any hashable).
    neighbors:
        ``f(node) -> [(neighbor, edge_cost), ...]``.
    heuristic:
        Admissible estimate of cost-to-goal, ``h(node)``.

    Returns
    -------
    A :class:`SearchResult`; ``path`` is empty when the goal is unreachable.
    """
    counter = itertools.count()  # tie-breaker for heap stability
    open_heap: List[Tuple[float, int, NodeId]] = [
        (heuristic(start), next(counter), start)
    ]
    g_score: Dict[NodeId, float] = {start: 0.0}
    came_from: Dict[NodeId, NodeId] = {}
    closed: set = set()
    expanded = 0
    while open_heap:
        _f, _tie, current = heapq.heappop(open_heap)
        if current in closed:
            continue
        if current == goal:
            return SearchResult(
                path=_reconstruct(came_from, current),
                cost=g_score[current],
                expanded=expanded,
            )
        closed.add(current)
        expanded += 1
        for nbr, cost in neighbors(current):
            if cost < 0:
                raise ValueError("A* requires non-negative edge costs")
            tentative = g_score[current] + cost
            if tentative < g_score.get(nbr, float("inf")):
                g_score[nbr] = tentative
                came_from[nbr] = current
                heapq.heappush(
                    open_heap, (tentative + heuristic(nbr), next(counter), nbr)
                )
    return SearchResult(path=[], cost=float("inf"), expanded=expanded)


def astar_arrays(
    n_nodes: int,
    indptr: "np.ndarray",
    indices: "np.ndarray",
    weights: "np.ndarray",
    start: int,
    goal: int,
    heuristic: "np.ndarray",
) -> SearchResult:
    """A* over an integer-indexed CSR graph with vectorized expansion.

    The hot-path twin of :func:`astar` for graphs that already live in
    arrays (the PRM roadmap): each expansion relaxes the whole neighbor
    row with array ops — one add, one compare — instead of a Python loop
    with per-neighbor dict probes.  Heap discipline (f then insertion
    counter), relaxation order, and therefore the returned path and
    expansion count are identical to the generic implementation.

    Parameters
    ----------
    n_nodes:
        Total node count; node ids are ``0..n_nodes-1``.
    indptr, indices, weights:
        CSR adjacency: node ``u``'s neighbors are
        ``indices[indptr[u]:indptr[u+1]]`` with matching edge ``weights``.
    start, goal:
        Node ids.
    heuristic:
        Per-node admissible cost-to-goal estimates, shape (n_nodes,).
    """
    if weights.size and float(np.min(weights)) < 0:
        raise ValueError("A* requires non-negative edge costs")
    counter = itertools.count()
    g = np.full(n_nodes, np.inf)
    g[start] = 0.0
    came_from = np.full(n_nodes, -1, dtype=np.int64)
    closed = np.zeros(n_nodes, dtype=bool)
    open_heap: List[Tuple[float, int, int]] = [
        (float(heuristic[start]), next(counter), start)
    ]
    expanded = 0
    while open_heap:
        _f, _tie, current = heapq.heappop(open_heap)
        if closed[current]:
            continue
        if current == goal:
            path: List[NodeId] = [current]
            node = current
            while came_from[node] >= 0:
                node = int(came_from[node])
                path.append(node)
            path.reverse()
            return SearchResult(
                path=path, cost=float(g[current]), expanded=expanded
            )
        closed[current] = True
        expanded += 1
        row = slice(int(indptr[current]), int(indptr[current + 1]))
        nbrs = indices[row]
        if nbrs.size == 0:
            continue
        tentative = g[current] + weights[row]
        improved = np.nonzero(tentative < g[nbrs])[0]
        for k in improved:
            nbr = int(nbrs[k])
            t = float(tentative[k])
            if t >= g[nbr]:
                continue  # an earlier duplicate edge already relaxed it
            g[nbr] = t
            came_from[nbr] = current
            heapq.heappush(
                open_heap,
                (t + float(heuristic[nbr]), next(counter), nbr),
            )
    return SearchResult(path=[], cost=float("inf"), expanded=expanded)


def _reconstruct(came_from: Dict[NodeId, NodeId], node: NodeId) -> List[NodeId]:
    path = [node]
    while node in came_from:
        node = came_from[node]
        path.append(node)
    path.reverse()
    return path


def dijkstra_all(
    start: NodeId,
    neighbors: Callable[[NodeId], List[Tuple[NodeId, float]]],
    max_cost: float = float("inf"),
) -> Dict[NodeId, float]:
    """Single-source shortest-path costs (A* with h=0, all targets).

    Used by frontier exploration to cost candidate viewpoints.
    """
    dist: Dict[NodeId, float] = {start: 0.0}
    counter = itertools.count()
    heap: List[Tuple[float, int, NodeId]] = [(0.0, next(counter), start)]
    done: set = set()
    while heap:
        d, _tie, node = heapq.heappop(heap)
        if node in done:
            continue
        done.add(node)
        for nbr, cost in neighbors(node):
            nd = d + cost
            if nd <= max_cost and nd < dist.get(nbr, float("inf")):
                dist[nbr] = nd
                heapq.heappush(heap, (nd, next(counter), nbr))
    return dist
