"""Path smoothing: piecewise-linear paths to dynamically feasible trajectories.

The motion planners "return piecewise trajectories that are composed of
straight lines with sharp turns.  However, sharp turns require high
accelerations from a MAV, consuming high amounts of energy.  Thus, we use
this kernel to convert these piecewise paths to smooth, polynomial
trajectories" (Section IV-C).

Two stages, matching practice:

1. **Shortcutting** — random segment shortcuts remove zig-zags left by the
   sampling-based planner (collision-checked).
2. **Corner rounding + time parameterization** — corners are replaced by
   quadratic Bezier blends, then the waypoint sequence is time-stamped
   with a trapezoidal velocity profile honoring speed and acceleration
   limits, slowing into curvature.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..observability import trace as _trace
from ..world.geometry import norm, path_length, unit
from .collision import CollisionChecker


@dataclass
class TrajectoryPoint:
    """One sample of a time-parameterized trajectory."""

    position: np.ndarray
    velocity: np.ndarray
    time: float


@dataclass
class Trajectory:
    """A smooth, time-stamped trajectory (the MultiDOFTrajectory of Fig. 7)."""

    points: List[TrajectoryPoint]

    @property
    def duration(self) -> float:
        if not self.points:
            return 0.0
        return self.points[-1].time - self.points[0].time

    @property
    def length(self) -> float:
        return path_length([p.position for p in self.points])

    def _timeline(self):
        """Cached array view (times, positions, velocities) of the points.

        Trajectories are built once and then sampled every control tick;
        the cache turns each lookup into one binary search.  Rebuilt when
        the points list is replaced or resized; mutating an existing
        TrajectoryPoint in place is not supported (treat trajectories as
        immutable once built).
        """
        key = (id(self.points), len(self.points))
        cache = getattr(self, "_timeline_cache", None)
        if cache is None or cache[0] != key:
            times = np.asarray([p.time for p in self.points])
            positions = np.stack([p.position for p in self.points])
            velocities = np.stack([p.velocity for p in self.points])
            self._timeline_cache = (key, times, positions, velocities)
            cache = self._timeline_cache
        return cache[1], cache[2], cache[3]

    def sample(self, t: float) -> TrajectoryPoint:
        """Linear interpolation of the trajectory at time ``t`` (clamped).

        One binary search over the cached timeline — the scalar walk this
        replaces scanned every segment per call, twice per control tick.
        """
        if not self.points:
            raise ValueError("cannot sample an empty trajectory")
        pts = self.points
        if t <= pts[0].time:
            return pts[0]
        if t >= pts[-1].time:
            return pts[-1]
        times, positions, velocities = self._timeline()
        # First segment whose end time reaches t — exactly the segment the
        # sequential scan would settle on.
        k = int(np.searchsorted(times, t, side="left"))
        span = times[k] - times[k - 1]
        alpha = 0.0 if span <= 0 else (t - times[k - 1]) / span
        pos = positions[k - 1] + alpha * (positions[k] - positions[k - 1])
        vel = velocities[k - 1] + alpha * (velocities[k] - velocities[k - 1])
        return TrajectoryPoint(position=pos, velocity=vel, time=t)

    def positions_at(self, times) -> np.ndarray:
        """Positions at a whole batch of timestamps, shape (N, 3).

        The array twin of :meth:`sample` for position lookups: one
        searchsorted over the timeline answers every query (the path
        re-validation horizon in the workloads), matching :meth:`sample`
        value-for-value including the clamped ends.
        """
        if not self.points:
            raise ValueError("cannot sample an empty trajectory")
        t = np.asarray(times, dtype=float).reshape(-1)
        stamps, positions, _ = self._timeline()
        if stamps.size == 1:
            return np.repeat(positions, t.size, axis=0)
        k = np.clip(
            np.searchsorted(stamps, t, side="left"), 1, stamps.size - 1
        )
        span = stamps[k] - stamps[k - 1]
        safe = np.where(span > 0, span, 1.0)
        alpha = np.where(span > 0, (t - stamps[k - 1]) / safe, 0.0)
        out = positions[k - 1] + alpha[:, None] * (
            positions[k] - positions[k - 1]
        )
        out[t <= stamps[0]] = positions[0]
        out[t >= stamps[-1]] = positions[-1]
        return out

    def max_speed(self) -> float:
        """Largest commanded speed along the trajectory (0.0 if empty)."""
        return max((norm(p.velocity) for p in self.points), default=0.0)


#: Shortcut attempts validated per batched collision query.
_SHORTCUT_BATCH = 16


def _draw_shortcut(rng: np.random.Generator, n: int) -> tuple:
    i = int(rng.integers(0, n - 2))
    j = int(rng.integers(i + 2, n))
    return i, j


def shortcut_path(
    waypoints: Sequence[np.ndarray],
    checker: Optional[CollisionChecker],
    attempts: int = 50,
    seed: int = 0,
) -> List[np.ndarray]:
    """Randomized shortcutting: try to replace subpaths with straight lines.

    Failed attempts don't change the path, so their draws are a
    deterministic sequence: candidate (i, j) pairs are drawn
    speculatively in batches and validated with *one* collision query per
    batch.  When a shortcut lands mid-batch, the RNG is rewound to the
    pre-batch state and re-advanced through exactly the winning attempt,
    so the result (and the downstream stream) is bit-identical to the
    one-attempt-at-a-time reference (:func:`shortcut_path_scalar`).
    """
    pts = [np.asarray(p, dtype=float) for p in waypoints]
    if len(pts) <= 2 or checker is None:
        # Without a collision oracle, shortcutting would cut corners the
        # planner put there deliberately (e.g. lawnmower turns) — skip.
        return pts
    rng = np.random.default_rng(seed)
    remaining = attempts
    while remaining > 0 and len(pts) > 2:
        batch = min(_SHORTCUT_BATCH, remaining)
        state = rng.bit_generator.state
        pairs = [_draw_shortcut(rng, len(pts)) for _ in range(batch)]
        starts = np.stack([pts[i] for i, _ in pairs])
        ends = np.stack([pts[j] for _, j in pairs])
        verdicts = checker.segments_free(starts, ends)
        hit = np.nonzero(verdicts)[0]
        if hit.size == 0:
            remaining -= batch
            continue
        s = int(hit[0])
        rng.bit_generator.state = state
        for _ in range(s + 1):
            i, j = _draw_shortcut(rng, len(pts))
        pts = pts[: i + 1] + pts[j:]
        remaining -= s + 1
    return pts


def shortcut_path_scalar(
    waypoints: Sequence[np.ndarray],
    checker: Optional[CollisionChecker],
    attempts: int = 50,
    seed: int = 0,
) -> List[np.ndarray]:
    """Reference scalar implementation of :func:`shortcut_path` (one draw
    and one scalar segment query per attempt)."""
    pts = [np.asarray(p, dtype=float) for p in waypoints]
    if len(pts) <= 2 or checker is None:
        return pts
    rng = np.random.default_rng(seed)
    for _ in range(attempts):
        if len(pts) <= 2:
            break
        i, j = _draw_shortcut(rng, len(pts))
        if checker.segment_free_scalar(pts[i], pts[j]):
            pts = pts[: i + 1] + pts[j:]
    return pts


def round_corners(
    waypoints: Sequence[np.ndarray],
    blend_radius: float = 1.0,
    samples_per_corner: int = 4,
) -> List[np.ndarray]:
    """Replace sharp corners with quadratic Bezier blends."""
    pts = [np.asarray(p, dtype=float) for p in waypoints]
    if len(pts) <= 2 or blend_radius <= 0:
        return pts
    out: List[np.ndarray] = [pts[0]]
    for prev, corner, nxt in zip(pts[:-2], pts[1:-1], pts[2:]):
        d_in = norm(corner - prev)
        d_out = norm(nxt - corner)
        r = min(blend_radius, d_in / 2.0, d_out / 2.0)
        if r < 1e-6 or d_in < 1e-9 or d_out < 1e-9:
            out.append(corner)
            continue
        entry = corner - unit(corner - prev) * r
        exit_ = corner + unit(nxt - corner) * r
        out.append(entry)
        for s in range(1, samples_per_corner + 1):
            t = s / (samples_per_corner + 1)
            # Quadratic Bezier: entry -> corner (control) -> exit.
            p = (
                (1 - t) ** 2 * entry
                + 2 * (1 - t) * t * corner
                + t**2 * exit_
            )
            out.append(p)
        out.append(exit_)
    out.append(pts[-1])
    return out


def _segment_time(
    s: float, v_in: float, v_out: float, v_max: float, a: float
) -> float:
    """Minimum time to traverse a straight segment of length ``s`` entering
    at ``v_in`` and exiting at ``v_out`` under speed/acceleration limits
    (triangular or trapezoidal velocity profile)."""
    if s <= 1e-12:
        return 0.0
    v_peak_sq = a * s + (v_in * v_in + v_out * v_out) / 2.0
    v_peak = math.sqrt(max(v_peak_sq, 0.0))
    if v_peak <= v_max:
        return max((2.0 * v_peak - v_in - v_out) / a, s / max(v_max, 1e-9))
    t_acc = (v_max - v_in) / a
    t_dec = (v_max - v_out) / a
    d_acc = (v_max * v_max - v_in * v_in) / (2.0 * a)
    d_dec = (v_max * v_max - v_out * v_out) / (2.0 * a)
    cruise = max(s - d_acc - d_dec, 0.0)
    return t_acc + t_dec + cruise / v_max


def _densify(pts: List[np.ndarray], max_segment: float) -> List[np.ndarray]:
    """Insert intermediate points so no segment exceeds ``max_segment``."""
    out: List[np.ndarray] = [pts[0]]
    for a, b in zip(pts[:-1], pts[1:]):
        length = norm(b - a)
        n = max(int(math.ceil(length / max_segment)), 1)
        for i in range(1, n + 1):
            out.append(a + (b - a) * (i / n))
    return out


def _turn_angles(pts: List[np.ndarray]) -> List[float]:
    """Interior turn angle (rad) at each waypoint (0 at the endpoints)."""
    angles = [0.0]
    for prev, cur, nxt in zip(pts[:-2], pts[1:-1], pts[2:]):
        v1 = cur - prev
        v2 = nxt - cur
        n1, n2 = norm(v1), norm(v2)
        if n1 < 1e-9 or n2 < 1e-9:
            angles.append(0.0)
            continue
        cosang = float(np.clip(np.dot(v1, v2) / (n1 * n2), -1.0, 1.0))
        angles.append(math.acos(cosang))
    angles.append(0.0)
    return angles


def time_parameterize(
    waypoints: Sequence[np.ndarray],
    max_speed: float,
    max_acceleration: float,
    start_time: float = 0.0,
) -> Trajectory:
    """Assign times/velocities with a trapezoidal profile.

    Speed at each waypoint is limited by the local turn angle (full speed
    on straights, slow through sharp corners), and between waypoints by
    the acceleration limit (forward/backward pass, like TOPP-RA's bound
    propagation on a polyline).
    """
    if max_speed <= 0 or max_acceleration <= 0:
        raise ValueError("speed and acceleration limits must be positive")
    pts = [np.asarray(p, dtype=float) for p in waypoints]
    if len(pts) == 0:
        return Trajectory(points=[])
    if len(pts) == 1:
        return Trajectory(
            points=[TrajectoryPoint(pts[0], np.zeros(3), start_time)]
        )
    # Densify long segments so the trapezoidal profile can accelerate to
    # full speed mid-segment instead of being pinned by endpoint limits.
    chunk = max(max_speed**2 / (2.0 * max_acceleration) / 2.0, 0.5)
    pts = _densify(pts, chunk)
    angles = _turn_angles(pts)
    # Corner speed limit: full speed for straight, ~0 for a U-turn.
    v_limit = [
        max_speed * max(0.1, math.cos(min(a, math.pi / 2)))
        for a in angles
    ]
    v_limit[0] = 0.0 if len(pts) > 1 else max_speed
    v_limit[-1] = 0.0
    v = list(v_limit)
    seg = [norm(b - a) for a, b in zip(pts[:-1], pts[1:])]
    # Forward pass: acceleration limit.
    for i in range(1, len(pts)):
        v_reach = math.sqrt(v[i - 1] ** 2 + 2 * max_acceleration * seg[i - 1])
        v[i] = min(v[i], v_reach)
    # Backward pass: deceleration limit.
    for i in range(len(pts) - 2, -1, -1):
        v_reach = math.sqrt(v[i + 1] ** 2 + 2 * max_acceleration * seg[i])
        v[i] = min(v[i], v_reach)
    # Timestamps from the kinematic profile within each segment: the
    # vehicle may accelerate past the endpoint speeds mid-segment (up to
    # max_speed), so segment time is the accelerate-(cruise-)decelerate
    # time, never the degenerate endpoint average (which would be zero
    # for a short hop starting and ending at rest).
    times = [start_time]
    for i, s in enumerate(seg):
        times.append(
            times[-1]
            + _segment_time(s, v[i], v[i + 1], max_speed, max_acceleration)
        )
    points = []
    for i, p in enumerate(pts):
        if i < len(pts) - 1 and seg[i] > 1e-9:
            direction = (pts[i + 1] - p) / seg[i]
        elif i > 0 and seg[i - 1] > 1e-9:
            direction = (p - pts[i - 1]) / seg[i - 1]
        else:
            direction = np.zeros(3)
        points.append(
            TrajectoryPoint(position=p, velocity=direction * v[i], time=times[i])
        )
    return Trajectory(points=points)


def smooth_trajectory(
    waypoints: Sequence[np.ndarray],
    max_speed: float,
    max_acceleration: float,
    checker: Optional[CollisionChecker] = None,
    blend_radius: float = 1.0,
    shortcut_attempts: int = 50,
    start_time: float = 0.0,
    seed: int = 0,
) -> Trajectory:
    """The full smoothing kernel: shortcut, round corners, time-parameterize."""
    with _trace.span("plan.smooth", "planning") as sp:
        pts = shortcut_path(
            waypoints, checker, attempts=shortcut_attempts, seed=seed
        )
        pts = round_corners(pts, blend_radius=blend_radius)
        sp.set(waypoints_in=len(waypoints), waypoints_out=len(pts))
        return time_parameterize(pts, max_speed, max_acceleration, start_time)
