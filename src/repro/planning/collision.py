"""Collision checking against an OctoMap (and against ground truth).

The planners never touch the ground-truth world — like the paper's stack,
they query the drone's *belief* (the OctoMap), so map resolution and
sensor noise shape planning behaviour exactly as in the case studies.
Ground-truth checking is provided separately for validation/metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..perception.octomap import OctoMap
from ..world.environment import World
from ..world.geometry import AABB, norm


@dataclass
class CollisionChecker:
    """Point/segment collision queries against an occupancy map.

    Attributes
    ----------
    octomap:
        The belief map to query.
    drone_radius:
        Half-extent of the drone; obstacle clearance required.
    treat_unknown_as_occupied:
        Conservative mode: unexplored space blocks flight.  The mapping /
        exploration workloads fly into unknown space, so they disable it;
        package delivery keeps it on for safety along the final path.
    """

    octomap: OctoMap
    drone_radius: float = 0.325
    treat_unknown_as_occupied: bool = False

    def points_free(self, points: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`point_free` over an (N, 3) batch.

        One batched occupied-box query (plus one unknown-fraction query in
        conservative mode) answers every candidate at once — this is the
        kernel the segment and path checks are built on.
        """
        pts = np.asarray(points, dtype=float).reshape(-1, 3)
        r = self.drone_radius
        los = pts - r
        his = pts + r
        free = ~self.octomap.boxes_occupied(los, his)
        if self.treat_unknown_as_occupied and np.any(free):
            free &= ~(self.octomap.boxes_unknown_fraction(los, his) > 0.5)
        return free

    def point_free(self, point: np.ndarray) -> bool:
        """True if the drone centered at ``point`` collides with nothing."""
        return bool(self.points_free(np.asarray(point, dtype=float))[0])

    def _segment_samples(
        self, a: np.ndarray, b: np.ndarray, step: Optional[float]
    ) -> np.ndarray:
        if step is None:
            step = self.octomap.resolution / 2.0
        length = norm(b - a)
        n = max(int(np.ceil(length / step)), 1)
        t = np.arange(n + 1) / n
        return a[None, :] + (b - a)[None, :] * t[:, None]

    def segment_free(
        self,
        a: np.ndarray,
        b: np.ndarray,
        step: Optional[float] = None,
    ) -> bool:
        """True if the straight segment a->b is collision-free.

        Samples the segment at ``step`` spacing (default: half a voxel)
        and checks all samples with one batched map query.
        """
        a = np.asarray(a, dtype=float)
        b = np.asarray(b, dtype=float)
        return bool(np.all(self.points_free(self._segment_samples(a, b, step))))

    def path_free(self, waypoints) -> bool:
        """True if every leg of the polyline is collision-free."""
        pts = [np.asarray(p, dtype=float) for p in waypoints]
        if len(pts) < 2:
            return True
        samples = np.vstack(
            [
                self._segment_samples(p, q, None)
                for p, q in zip(pts[:-1], pts[1:])
            ]
        )
        return bool(np.all(self.points_free(samples)))

    def first_blocked_index(self, waypoints) -> Optional[int]:
        """Index of the first waypoint whose incoming leg is blocked.

        Package delivery uses this to decide *where* a newly observed
        obstacle obstructs the planned trajectory, triggering a re-plan.
        """
        pts = [np.asarray(p, dtype=float) for p in waypoints]
        for i, (p, q) in enumerate(zip(pts[:-1], pts[1:])):
            if not self.segment_free(p, q):
                return i + 1
        return None


def escape_point(
    checker: CollisionChecker,
    start: np.ndarray,
    rng: np.random.Generator,
    max_radius: float = 3.0,
    tries: int = 60,
) -> Optional[np.ndarray]:
    """A free point near ``start`` for planners whose start is in collision.

    A drone braked right at an (inflated) obstacle boundary sits inside
    occupied belief space; planners need a nearby free point to plan from.
    Samples at growing radii; returns None if everything nearby is blocked.
    """
    start = np.asarray(start, dtype=float)
    for i in range(tries):
        radius = max_radius * (i + 1) / tries
        offset = rng.normal(0.0, 1.0, size=3)
        offset[2] *= 0.3  # prefer lateral escapes over vertical ones
        n = norm(offset)
        if n < 1e-9:
            continue
        candidate = start + offset / n * radius
        if checker.point_free(candidate):
            return candidate
    return None


@dataclass
class GroundTruthChecker:
    """Collision queries against the true world (validation only)."""

    world: World
    drone_radius: float = 0.325

    def point_free(self, point: np.ndarray, time: float = 0.0) -> bool:
        return self.world.is_free(
            np.asarray(point, dtype=float), time=time, margin=self.drone_radius
        )

    def segment_free(
        self, a: np.ndarray, b: np.ndarray, time: float = 0.0
    ) -> bool:
        return not self.world.segment_collides(
            np.asarray(a, dtype=float),
            np.asarray(b, dtype=float),
            time=time,
            margin=self.drone_radius,
        )

    def path_free(self, waypoints, time: float = 0.0) -> bool:
        pts = [np.asarray(p, dtype=float) for p in waypoints]
        return all(
            self.segment_free(p, q, time) for p, q in zip(pts[:-1], pts[1:])
        )
