"""Collision checking against an OctoMap (and against ground truth).

The planners never touch the ground-truth world — like the paper's stack,
they query the drone's *belief* (the OctoMap), so map resolution and
sensor noise shape planning behaviour exactly as in the case studies.
Ground-truth checking is provided separately for validation/metrics.

This module is the planning hot path.  Every query is phrased over
*batches*: an (N, 3) point batch answers with one vectorized box query
against the packed-key sorted OctoMap index, and whole polylines (all
segments, all samples) collapse into a single such call via
:meth:`CollisionChecker.segments_free`.  Scalar reference twins
(``*_scalar``) walk the same logic point-by-point through the OctoMap's
scalar dict queries; ``tests/test_planning_batched.py`` pins batched ==
scalar on seeded worlds, exactly like the OctoMap insertion kernels.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..observability import trace as _trace
from ..perception.octomap import OctoMap
from ..world.environment import World
from ..world.geometry import AABB


def _dist(a: np.ndarray, b: np.ndarray) -> float:
    """Euclidean distance computed exactly like the batched row kernels
    (sequential add-reduce + correctly rounded sqrt), so scalar twins and
    array code agree bit-for-bit."""
    d = np.asarray(a, dtype=float) - np.asarray(b, dtype=float)
    return math.sqrt(float(np.sum(d * d)))


def _row_dists(points: np.ndarray, target: np.ndarray) -> np.ndarray:
    """Row-wise Euclidean distances from an (N, 3) batch to one point."""
    d = points - target[None, :]
    return np.sqrt(np.sum(d * d, axis=1))


@dataclass
class CollisionChecker:
    """Point/segment collision queries against an occupancy map.

    Attributes
    ----------
    octomap:
        The belief map to query.
    drone_radius:
        Half-extent of the drone; obstacle clearance required.
    treat_unknown_as_occupied:
        Conservative mode: unexplored space blocks flight.  The mapping /
        exploration workloads fly into unknown space, so they disable it;
        package delivery keeps it on for safety along the final path.
    """

    octomap: OctoMap
    drone_radius: float = 0.325
    treat_unknown_as_occupied: bool = False

    #: Fleet-side free-space cache (repro.fleet.pipeline.FreeSpaceCache),
    #: or None on the classic sequential path.  Installed per-instance by
    #: the fleet coordinator; answers identically, just cheaper.
    _fleet_free = None

    #: Shared-world peer test (repro.fleet.shared_world._PeerBlock), or
    #: None outside shared-airspace fleets.  Maps an (N, 3) point batch
    #: to a blocked-mask (points inside another drone's exclusion
    #: bubble), or None when no peers are airborne.  Applied by the one
    #: shared tail both point paths call, so batched and scalar twins
    #: keep agreeing with peers present.
    _peer_block = None

    # ------------------------------------------------------------------
    # Point queries
    # ------------------------------------------------------------------
    def points_free(self, points: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`point_free` over an (N, 3) batch.

        One batched occupied-box query (plus one unknown-fraction query in
        conservative mode) answers every candidate at once — this is the
        kernel the segment and path checks are built on.
        """
        pts = np.asarray(points, dtype=float).reshape(-1, 3)
        _trace.observe("collision.batch_points", pts.shape[0])
        r = self.drone_radius
        free_cache = self._fleet_free
        if (
            free_cache is not None
            and pts.shape[0]
            and not self.treat_unknown_as_occupied
        ):
            # The enclosing box of every inflated point box: proving it
            # free of occupied voxels proves each point free (conservative
            # unknown-mode also needs unknown fractions, so it opts out).
            if free_cache.prove_free(pts.min(axis=0) - r, pts.max(axis=0) + r):
                return self._apply_peer_block(
                    pts, np.ones(pts.shape[0], dtype=bool)
                )
        los = pts - r
        his = pts + r
        free = ~self.octomap.boxes_occupied(los, his)
        if self.treat_unknown_as_occupied and np.any(free):
            free &= ~(self.octomap.boxes_unknown_fraction(los, his) > 0.5)
        return self._apply_peer_block(pts, free)

    def points_free_scalar(self, points: np.ndarray) -> np.ndarray:
        """Reference scalar implementation of :meth:`points_free`: one
        Python per-voxel dict walk per point (no sorted index)."""
        pts = np.asarray(points, dtype=float).reshape(-1, 3)
        r = self.drone_radius
        out = np.empty(pts.shape[0], dtype=bool)
        for i, p in enumerate(pts):
            box = AABB(p - r, p + r)
            free = not self.octomap.region_occupied_scalar(box)
            if free and self.treat_unknown_as_occupied:
                free = not (
                    self.octomap.region_unknown_fraction_scalar(box) > 0.5
                )
            out[i] = free
        return self._apply_peer_block(pts, out)

    def _apply_peer_block(
        self, pts: np.ndarray, free: np.ndarray
    ) -> np.ndarray:
        """Mask out points inside a fleet peer's exclusion bubble.

        The identity tail of every point query — batched and scalar
        alike — so shared-world fleets block on other drones through the
        exact same test on both paths.  A no-op outside shared worlds
        (``_peer_block`` is None) or with an empty sky.
        """
        if self._peer_block is not None:
            blocked = self._peer_block(pts)
            if blocked is not None:
                free = free & ~blocked
        return free

    def point_free(self, point: np.ndarray) -> bool:
        """True if the drone centered at ``point`` collides with nothing."""
        return bool(self.points_free(np.asarray(point, dtype=float))[0])

    def point_free_scalar(self, point: np.ndarray) -> bool:
        """Reference scalar twin of a one-point :meth:`points_free`
        query (same inflated-box test via the scalar map path)."""
        return bool(self.points_free_scalar(np.asarray(point, dtype=float))[0])

    # ------------------------------------------------------------------
    # Segment sampling
    # ------------------------------------------------------------------
    def _segment_samples(
        self, a: np.ndarray, b: np.ndarray, step: Optional[float]
    ) -> np.ndarray:
        """Sample points along one segment (scalar-twin sampling rule)."""
        if step is None:
            step = self.octomap.resolution / 2.0
        length = _dist(b, a)
        n = max(int(np.ceil(length / step)), 1)
        t = np.arange(n + 1) / n
        return a[None, :] + (b - a)[None, :] * t[:, None]

    def _batch_segment_samples(
        self,
        starts: np.ndarray,
        ends: np.ndarray,
        step: Optional[float],
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Sample every segment of a batch at once.

        Returns ``(samples, seg_index, seg_start)`` where ``samples``
        stacks each segment's samples in order (including both endpoints,
        exactly the rows :meth:`_segment_samples` emits per segment),
        ``seg_index[m]`` names the segment that produced ``samples[m]``,
        and ``seg_start[s]`` is the row where segment ``s`` begins.
        """
        if step is None:
            step = self.octomap.resolution / 2.0
        a = np.asarray(starts, dtype=float).reshape(-1, 3)
        b = np.asarray(ends, dtype=float).reshape(-1, 3)
        d = b - a
        lengths = np.sqrt(np.sum(d * d, axis=1))
        n = np.maximum(np.ceil(lengths / step).astype(np.int64), 1)
        counts = n + 1
        total = int(counts.sum())
        seg = np.repeat(np.arange(a.shape[0]), counts)
        seg_start = np.concatenate(([0], np.cumsum(counts)[:-1]))
        local = np.arange(total) - np.repeat(seg_start, counts)
        t = local / n[seg]
        samples = a[seg] + d[seg] * t[:, None]
        return samples, seg, seg_start

    # ------------------------------------------------------------------
    # Segment / path queries
    # ------------------------------------------------------------------
    def segments_free(
        self,
        starts: np.ndarray,
        ends: np.ndarray,
        step: Optional[float] = None,
    ) -> np.ndarray:
        """Vectorized :meth:`segment_free` over an (S, 3) segment batch.

        All samples of all segments go to the map in one batched point
        query; one boolean per segment comes back.  ``starts`` may be a
        single (3,) point shared by every segment (RRT* edge fans).
        """
        ends_arr = np.asarray(ends, dtype=float).reshape(-1, 3)
        starts_arr = np.asarray(starts, dtype=float)
        if starts_arr.ndim == 1:
            starts_arr = np.broadcast_to(starts_arr, ends_arr.shape)
        if ends_arr.shape[0] == 0:
            return np.zeros(0, dtype=bool)
        _trace.observe("collision.batch_segments", ends_arr.shape[0])
        samples, _seg, seg_start = self._batch_segment_samples(
            starts_arr, ends_arr, step
        )
        free = self.points_free(samples)
        # Segmented blocked-sample counts via reduceat (every segment has
        # >= 2 samples, so seg_start is strictly increasing); a segment is
        # free when its count is zero.
        return np.add.reduceat(~free, seg_start) == 0

    def segment_free(
        self,
        a: np.ndarray,
        b: np.ndarray,
        step: Optional[float] = None,
    ) -> bool:
        """True if the straight segment a->b is collision-free.

        Samples the segment at ``step`` spacing (default: half a voxel)
        and checks all samples with one batched map query.  (Single-
        segment fast path; :meth:`_segment_samples` emits exactly the
        row :meth:`segments_free` would build for this segment.)
        """
        a = np.asarray(a, dtype=float)
        b = np.asarray(b, dtype=float)
        return bool(np.all(self.points_free(self._segment_samples(a, b, step))))

    def segment_free_scalar(
        self,
        a: np.ndarray,
        b: np.ndarray,
        step: Optional[float] = None,
    ) -> bool:
        """Reference scalar implementation of :meth:`segment_free`."""
        a = np.asarray(a, dtype=float)
        b = np.asarray(b, dtype=float)
        samples = self._segment_samples(a, b, step)
        return bool(np.all(self.points_free_scalar(samples)))

    def path_free(self, waypoints) -> bool:
        """True if every leg of the polyline is collision-free (one
        batched query over every sample of every leg)."""
        pts = [np.asarray(p, dtype=float) for p in waypoints]
        if len(pts) < 2:
            return True
        arr = np.stack(pts)
        return bool(np.all(self.segments_free(arr[:-1], arr[1:])))

    def path_free_scalar(self, waypoints) -> bool:
        """Reference scalar implementation of :meth:`path_free`."""
        pts = [np.asarray(p, dtype=float) for p in waypoints]
        return all(
            self.segment_free_scalar(p, q)
            for p, q in zip(pts[:-1], pts[1:])
        )

    def first_blocked_index(self, waypoints) -> Optional[int]:
        """Index of the first waypoint whose incoming leg is blocked.

        Package delivery uses this to decide *where* a newly observed
        obstacle obstructs the planned trajectory, triggering a re-plan.
        Runs the same batched sample set as :meth:`path_free`, so the two
        can never disagree on boundary voxels at segment joints.
        """
        pts = [np.asarray(p, dtype=float) for p in waypoints]
        if len(pts) < 2:
            return None
        arr = np.stack(pts)
        verdicts = self.segments_free(arr[:-1], arr[1:])
        blocked = np.nonzero(~verdicts)[0]
        if blocked.size:
            return int(blocked[0]) + 1
        return None

    def first_blocked_index_scalar(self, waypoints) -> Optional[int]:
        """Reference scalar implementation of :meth:`first_blocked_index`."""
        pts = [np.asarray(p, dtype=float) for p in waypoints]
        for i, (p, q) in enumerate(zip(pts[:-1], pts[1:])):
            if not self.segment_free_scalar(p, q):
                return i + 1
        return None


def escape_point(
    checker: CollisionChecker,
    start: np.ndarray,
    rng: np.random.Generator,
    max_radius: float = 3.0,
    tries: int = 60,
) -> Optional[np.ndarray]:
    """A free point near ``start`` for planners whose start is in collision.

    A drone braked right at an (inflated) obstacle boundary sits inside
    occupied belief space; planners need a nearby free point to plan from.
    Samples at growing radii; returns None if everything nearby is blocked.

    All candidate offsets are drawn and checked as one batch (a single
    :meth:`CollisionChecker.points_free` call).  On success the generator
    is rewound and re-advanced by exactly the draws the sequential sampler
    would have consumed, so downstream RNG use (the planner's sampling
    loop) sees an identical stream.
    """
    start = np.asarray(start, dtype=float)
    state = rng.bit_generator.state
    offsets = rng.normal(0.0, 1.0, size=(tries, 3))
    offsets[:, 2] *= 0.3  # prefer lateral escapes over vertical ones
    norms = np.sqrt(np.sum(offsets * offsets, axis=1))
    valid = norms >= 1e-9
    if np.any(valid):
        radii = max_radius * (np.arange(1, tries + 1) / tries)
        candidates = (
            start[None, :]
            + offsets[valid] / norms[valid, None] * radii[valid, None]
        )
        free = checker.points_free(candidates)
        hits = np.nonzero(free)[0]
        if hits.size:
            row = int(np.nonzero(valid)[0][int(hits[0])])
            rng.bit_generator.state = state
            rng.normal(0.0, 1.0, size=(row + 1, 3))
            return candidates[int(hits[0])]
    return None


def escape_point_scalar(
    checker: CollisionChecker,
    start: np.ndarray,
    rng: np.random.Generator,
    max_radius: float = 3.0,
    tries: int = 60,
) -> Optional[np.ndarray]:
    """Reference scalar implementation of :func:`escape_point` (one draw
    and one scalar map query per try)."""
    start = np.asarray(start, dtype=float)
    for i in range(tries):
        radius = max_radius * ((i + 1) / tries)
        offset = rng.normal(0.0, 1.0, size=3)
        offset[2] *= 0.3
        n = math.sqrt(float(np.sum(offset * offset)))
        if n < 1e-9:
            continue
        candidate = start + offset / n * radius
        if checker.point_free_scalar(candidate):
            return candidate
    return None


@dataclass
class GroundTruthChecker:
    """Collision queries against the true world (validation only)."""

    world: World
    drone_radius: float = 0.325

    def point_free(self, point: np.ndarray, time: float = 0.0) -> bool:
        """True if the margin-inflated point is free in the *true* world."""
        return self.world.is_free(
            np.asarray(point, dtype=float), time=time, margin=self.drone_radius
        )

    def point_collides(self, point: np.ndarray, time: float = 0.0) -> bool:
        """Margin-inflated obstacle hit test (pure obstacle proximity —
        leaving the world bounds is not a collision).  The simulator's
        per-tick crash check."""
        return self.world.is_occupied(
            np.asarray(point, dtype=float), time=time, margin=self.drone_radius
        )

    def segment_free(
        self, a: np.ndarray, b: np.ndarray, time: float = 0.0
    ) -> bool:
        """True if the swept segment ``a``–``b`` clears every true-world
        obstacle by the drone radius."""
        return not self.world.segment_collides(
            np.asarray(a, dtype=float),
            np.asarray(b, dtype=float),
            time=time,
            margin=self.drone_radius,
        )

    def path_free(self, waypoints, time: float = 0.0) -> bool:
        """True if every consecutive waypoint pair is segment-free."""
        pts = [np.asarray(p, dtype=float) for p in waypoints]
        return all(
            self.segment_free(p, q, time) for p, q in zip(pts[:-1], pts[1:])
        )


__all__ = [
    "CollisionChecker",
    "GroundTruthChecker",
    "escape_point",
    "escape_point_scalar",
]
