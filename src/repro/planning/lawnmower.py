"""Lawnmower coverage planning for the Scanning workload.

"Agricultural MAVs are frequently tasked with flying over farms in a
simple, lawnmower pattern, where the high-altitude of the MAV means that
obstacles can be assumed to be nonexistent."  The planner computes the
boustrophedon sweep over a rectangle: parallel passes spaced by the sensor
footprint, alternating direction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..world.geometry import path_length, vec


@dataclass(frozen=True)
class CoverageArea:
    """Rectangle to scan, axis-aligned, specified by center and size."""

    center_x: float
    center_y: float
    width: float  # extent along x
    length: float  # extent along y

    def __post_init__(self) -> None:
        if self.width <= 0 or self.length <= 0:
            raise ValueError("coverage area must have positive extent")


def lawnmower_path(
    area: CoverageArea,
    altitude: float,
    lane_spacing: float,
    start_corner: str = "southwest",
) -> List[np.ndarray]:
    """Waypoints of a boustrophedon sweep over ``area``.

    Parameters
    ----------
    area:
        Rectangle to cover.
    altitude:
        Flight altitude (m) — constant over the sweep.
    lane_spacing:
        Distance between adjacent passes; set it to the sensor ground
        footprint for gap-free coverage.
    start_corner:
        One of "southwest", "southeast", "northwest", "northeast".

    Returns
    -------
    Waypoints tracing passes parallel to the x axis, stepping along y.
    """
    if lane_spacing <= 0:
        raise ValueError("lane spacing must be positive")
    if altitude <= 0:
        raise ValueError("altitude must be positive")
    corners = {"southwest", "southeast", "northwest", "northeast"}
    if start_corner not in corners:
        raise ValueError(f"start_corner must be one of {sorted(corners)}")

    n_lanes = max(int(math.ceil(area.length / lane_spacing)) + 1, 2)
    actual_spacing = area.length / (n_lanes - 1)
    x_west = area.center_x - area.width / 2
    x_east = area.center_x + area.width / 2
    y_south = area.center_y - area.length / 2

    west_first = start_corner in ("southwest", "northwest")
    south_first = start_corner in ("southwest", "southeast")

    waypoints: List[np.ndarray] = []
    for lane in range(n_lanes):
        y_off = lane * actual_spacing
        y = y_south + (y_off if south_first else area.length - y_off)
        left_to_right = (lane % 2 == 0) == west_first
        xs = (x_west, x_east) if left_to_right else (x_east, x_west)
        waypoints.append(vec(xs[0], y, altitude))
        waypoints.append(vec(xs[1], y, altitude))
    return waypoints


def coverage_length(area: CoverageArea, lane_spacing: float) -> float:
    """Total path length of the sweep (excluding transit to the area)."""
    path = lawnmower_path(area, altitude=10.0, lane_spacing=lane_spacing)
    return path_length(path)


def lanes_required(area: CoverageArea, lane_spacing: float) -> int:
    """Number of passes needed for gap-free coverage."""
    return max(int(math.ceil(area.length / lane_spacing)) + 1, 2)
