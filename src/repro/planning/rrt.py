"""Rapidly-exploring Random Trees: RRT and RRT*.

Substitute for OMPL's sampling-based shortest-path planners (LaValle 1998;
Karaman & Frazzoli's RRT* rewiring).  These are the "shortest path"
planners of the Package Delivery workload, plug-and-play interchangeable
with the PRM+A* planner.

The planners run on arrays: the tree's points and costs live in growing
NumPy buffers (nearest-neighbor and radius queries are one vectorized
distance computation instead of re-stacking a Python list every
iteration), and RRT*'s choose-parent / rewire edge fans are validated
with one batched collision query per fan.  ``plan_scalar`` twins keep the
original per-node loops over the scalar map queries as the equivalence
reference — same seed, bit-identical tree and waypoints — pinned by
``tests/test_planning_batched.py``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..world.geometry import AABB, norm
from .collision import (
    CollisionChecker,
    _dist,
    _row_dists,
    escape_point,
    escape_point_scalar,
)


@dataclass
class PlanResult:
    """Output of a motion-planning query."""

    waypoints: List[np.ndarray]
    cost: float
    iterations: int
    success: bool

    @property
    def length(self) -> float:
        if len(self.waypoints) < 2:
            return 0.0
        return float(
            sum(
                norm(b - a)
                for a, b in zip(self.waypoints[:-1], self.waypoints[1:])
            )
        )


@dataclass
class _TreeNode:
    point: np.ndarray
    parent: Optional[int]
    cost: float


class _Tree:
    """Growing array store for a sampling tree (points, parents, costs).

    Append-mostly; nearest/near queries read a contiguous (n, 3) view, so
    the per-iteration cost is one vectorized distance computation instead
    of ``np.stack`` over an ever-growing Python list.
    """

    def __init__(self, root: np.ndarray, capacity: int = 256) -> None:
        self._pts = np.empty((capacity, 3), dtype=float)
        self._costs = np.empty(capacity, dtype=float)
        self.parents: List[Optional[int]] = []
        self._n = 0
        self.append(root, None, 0.0)

    def __len__(self) -> int:
        return self._n

    @property
    def points(self) -> np.ndarray:
        return self._pts[: self._n]

    @property
    def costs(self) -> np.ndarray:
        return self._costs[: self._n]

    def point(self, idx: int) -> np.ndarray:
        return self._pts[idx].copy()

    def append(
        self, point: np.ndarray, parent: Optional[int], cost: float
    ) -> int:
        if self._n == self._pts.shape[0]:
            self._pts = np.concatenate([self._pts, np.empty_like(self._pts)])
            self._costs = np.concatenate(
                [self._costs, np.empty_like(self._costs)]
            )
        self._pts[self._n] = point
        self._costs[self._n] = cost
        self.parents.append(parent)
        self._n += 1
        return self._n - 1

    def rewire(self, idx: int, parent: int, cost: float) -> None:
        self.parents[idx] = parent
        self._costs[idx] = cost

    def nearest(self, target: np.ndarray) -> int:
        d = self.points - target[None, :]
        return int(np.argmin(np.sum(d * d, axis=1)))

    def near_ids(self, target: np.ndarray, radius: float) -> np.ndarray:
        d = self.points - target[None, :]
        d2 = np.sum(d * d, axis=1)
        return np.nonzero(d2 <= radius * radius)[0]

    def extract(self, idx: int) -> List[np.ndarray]:
        path: List[np.ndarray] = []
        cursor: Optional[int] = idx
        while cursor is not None:
            path.append(self.point(cursor))
            cursor = self.parents[cursor]
        path.reverse()
        return path


class RrtPlanner:
    """Single-query RRT with goal biasing.

    Parameters
    ----------
    checker:
        Collision oracle (queries the OctoMap belief).
    bounds:
        Sampling region.
    step_size:
        Maximum edge extension length (m).
    goal_bias:
        Probability of sampling the goal instead of a random point.
    max_iterations:
        Sample budget before declaring failure.
    """

    name = "rrt"

    def __init__(
        self,
        checker: CollisionChecker,
        bounds: AABB,
        step_size: float = 2.0,
        goal_bias: float = 0.1,
        max_iterations: int = 2000,
        goal_tolerance: float = 1.0,
        seed: int = 0,
    ) -> None:
        if step_size <= 0:
            raise ValueError("step size must be positive")
        if not 0.0 <= goal_bias <= 1.0:
            raise ValueError("goal bias must be in [0, 1]")
        self.checker = checker
        self.bounds = bounds
        self.step_size = step_size
        self.goal_bias = goal_bias
        self.max_iterations = max_iterations
        self.goal_tolerance = goal_tolerance
        self.rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    def _escaped_start(
        self, start: np.ndarray, scalar: bool
    ) -> Optional[np.ndarray]:
        escape = escape_point_scalar if scalar else escape_point
        return escape(self.checker, start, self.rng)

    def plan(self, start: np.ndarray, goal: np.ndarray) -> PlanResult:
        return self._plan(start, goal, scalar=False)

    def plan_scalar(self, start: np.ndarray, goal: np.ndarray) -> PlanResult:
        """Reference implementation over the scalar map queries; kept for
        the batched-vs-scalar equivalence suite."""
        return self._plan(start, goal, scalar=True)

    def _plan(
        self, start: np.ndarray, goal: np.ndarray, scalar: bool
    ) -> PlanResult:
        point_free = (
            self.checker.point_free_scalar if scalar
            else self.checker.point_free
        )
        segment_free = (
            self.checker.segment_free_scalar if scalar
            else self.checker.segment_free
        )
        start = np.asarray(start, dtype=float)
        goal = np.asarray(goal, dtype=float)
        prefix: List[np.ndarray] = []
        if not point_free(start):
            escaped = self._escaped_start(start, scalar)
            if escaped is None:
                return PlanResult([], float("inf"), 0, False)
            prefix = [start]
            start = escaped
        tree = _Tree(start)
        for it in range(1, self.max_iterations + 1):
            target = self._sample(goal)
            near_idx = tree.nearest(target)
            near_point = tree.point(near_idx)
            new_point = self._steer(near_point, target)
            if not segment_free(near_point, new_point):
                continue
            cost = tree.costs[near_idx] + _dist(new_point, near_point)
            new_idx = tree.append(new_point, near_idx, cost)
            if norm(new_point - goal) <= self.goal_tolerance:
                if segment_free(new_point, goal):
                    goal_idx = tree.append(
                        goal, new_idx, cost + _dist(goal, new_point)
                    )
                    return PlanResult(
                        waypoints=prefix + tree.extract(goal_idx),
                        cost=float(tree.costs[goal_idx]),
                        iterations=it,
                        success=True,
                    )
        return PlanResult([], float("inf"), self.max_iterations, False)

    # ------------------------------------------------------------------
    def _sample(self, goal: np.ndarray) -> np.ndarray:
        if self.rng.random() < self.goal_bias:
            return goal.copy()
        return self.rng.uniform(self.bounds.lo, self.bounds.hi)

    def _steer(self, from_point: np.ndarray, to_point: np.ndarray) -> np.ndarray:
        delta = to_point - from_point
        dist = norm(delta)
        if dist <= self.step_size or dist == 0:
            return to_point.copy()
        return from_point + delta * (self.step_size / dist)


class RrtStarPlanner(RrtPlanner):
    """RRT* — asymptotically optimal variant with neighborhood rewiring.

    After extending toward a sample, the new node is connected to the
    lowest-cost parent within a shrinking neighborhood radius, and nearby
    nodes are rewired through it when that shortens their path.  The
    choose-parent candidate fan and the rewire fan are each validated
    with one batched collision query (the scalar loop checks lazily but —
    because the final parent is provably the min-cost collision-free
    candidate either way — both orders select the same edge).
    """

    name = "rrt_star"

    def __init__(self, *args, rewire_radius: float = 4.0, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.rewire_radius = rewire_radius

    def _plan(
        self, start: np.ndarray, goal: np.ndarray, scalar: bool
    ) -> PlanResult:
        point_free = (
            self.checker.point_free_scalar if scalar
            else self.checker.point_free
        )
        segment_free = (
            self.checker.segment_free_scalar if scalar
            else self.checker.segment_free
        )
        start = np.asarray(start, dtype=float)
        goal = np.asarray(goal, dtype=float)
        prefix: List[np.ndarray] = []
        if not point_free(start):
            escaped = self._escaped_start(start, scalar)
            if escaped is None:
                return PlanResult([], float("inf"), 0, False)
            prefix = [start]
            start = escaped
        tree = _Tree(start)
        best_goal_idx: Optional[int] = None
        best_goal_cost = float("inf")
        for _it in range(1, self.max_iterations + 1):
            target = self._sample(goal)
            near_idx = tree.nearest(target)
            near_point = tree.point(near_idx)
            new_point = self._steer(near_point, target)
            if not segment_free(near_point, new_point):
                continue
            radius = self._radius(len(tree))
            neighbor_ids = tree.near_ids(new_point, radius)
            init_cost = tree.costs[near_idx] + _dist(new_point, near_point)
            if scalar:
                parent, best_cost = self._choose_parent_scalar(
                    tree, neighbor_ids, new_point, near_idx, init_cost
                )
            else:
                parent, best_cost = self._choose_parent_batched(
                    tree, neighbor_ids, new_point, near_idx, init_cost
                )
            new_idx = tree.append(new_point, parent, best_cost)
            if scalar:
                self._rewire_scalar(tree, neighbor_ids, new_idx, best_cost)
            else:
                self._rewire_batched(tree, neighbor_ids, new_idx, best_cost)
            # Track goal connections.
            if norm(new_point - goal) <= self.goal_tolerance:
                if segment_free(new_point, goal):
                    goal_cost = best_cost + _dist(goal, new_point)
                    if goal_cost < best_goal_cost:
                        best_goal_cost = goal_cost
                        best_goal_idx = new_idx
        if best_goal_idx is None:
            return PlanResult([], float("inf"), self.max_iterations, False)
        path = prefix + tree.extract(best_goal_idx)
        path.append(goal.copy())
        return PlanResult(
            waypoints=path,
            cost=best_goal_cost,
            iterations=self.max_iterations,
            success=True,
        )

    # ------------------------------------------------------------------
    # Choose-parent / rewire: batched kernels and their scalar twins
    # ------------------------------------------------------------------
    def _choose_parent_batched(
        self,
        tree: _Tree,
        neighbor_ids: np.ndarray,
        new_point: np.ndarray,
        near_idx: int,
        init_cost: float,
    ):
        parent, best_cost = near_idx, init_cost
        if neighbor_ids.size == 0:
            return parent, best_cost
        cand = tree.costs[neighbor_ids] + _row_dists(
            tree.points[neighbor_ids], new_point
        )
        viable = np.nonzero(cand < init_cost)[0]
        if viable.size == 0:
            return parent, best_cost
        # One batched query validates every viable candidate edge.  The
        # lazy scalar loop ends at the min-cost collision-free candidate
        # (its running bound only ever skips candidates that could not
        # win), so picking that minimum directly is result-identical.
        free = self.checker.segments_free(
            tree.points[neighbor_ids[viable]], new_point[None, :].repeat(
                viable.size, axis=0
            )
        )
        ok = viable[free]
        if ok.size:
            best = int(ok[np.argmin(cand[ok])])
            # np.argmin takes the first minimum, matching the scalar
            # loop's strict-improvement tie-break.
            parent = int(neighbor_ids[best])
            best_cost = float(cand[best])
        return parent, best_cost

    def _choose_parent_scalar(
        self,
        tree: _Tree,
        neighbor_ids: np.ndarray,
        new_point: np.ndarray,
        near_idx: int,
        init_cost: float,
    ):
        parent, best_cost = near_idx, init_cost
        for nid in neighbor_ids:
            nid = int(nid)
            cand = tree.costs[nid] + _dist(new_point, tree.points[nid])
            if cand < best_cost and self.checker.segment_free_scalar(
                tree.points[nid], new_point
            ):
                parent = nid
                best_cost = cand
        return parent, best_cost

    def _rewire_batched(
        self,
        tree: _Tree,
        neighbor_ids: np.ndarray,
        new_idx: int,
        best_cost: float,
    ) -> None:
        if neighbor_ids.size == 0:
            return
        new_point = tree.points[new_idx]
        through = best_cost + _row_dists(tree.points[neighbor_ids], new_point)
        viable = np.nonzero(through < tree.costs[neighbor_ids])[0]
        if viable.size == 0:
            return
        free = self.checker.segments_free(
            new_point[None, :].repeat(viable.size, axis=0),
            tree.points[neighbor_ids[viable]],
        )
        for k in np.nonzero(free)[0]:
            nid = int(neighbor_ids[viable[int(k)]])
            tree.rewire(nid, new_idx, float(through[viable[int(k)]]))

    def _rewire_scalar(
        self,
        tree: _Tree,
        neighbor_ids: np.ndarray,
        new_idx: int,
        best_cost: float,
    ) -> None:
        new_point = tree.point(new_idx)
        for nid in neighbor_ids:
            nid = int(nid)
            through = best_cost + _dist(tree.points[nid], new_point)
            if through < tree.costs[nid] and self.checker.segment_free_scalar(
                new_point, tree.points[nid]
            ):
                tree.rewire(nid, new_idx, through)

    def _radius(self, n: int) -> float:
        """Shrinking neighborhood radius ~ (log n / n)^(1/3) in 3D."""
        if n < 2:
            return self.rewire_radius
        return min(
            self.rewire_radius,
            self.rewire_radius * (math.log(n) / n) ** (1.0 / 3.0) * 4.0,
        )
