"""Rapidly-exploring Random Trees: RRT and RRT*.

Substitute for OMPL's sampling-based shortest-path planners (LaValle 1998;
Karaman & Frazzoli's RRT* rewiring).  These are the "shortest path"
planners of the Package Delivery workload, plug-and-play interchangeable
with the PRM+A* planner.

The planners run on arrays: the tree's points and costs live in growing
NumPy buffers (nearest-neighbor and radius queries are one vectorized
distance computation instead of re-stacking a Python list every
iteration), and RRT*'s choose-parent / rewire edge fans are validated
with one batched collision query per fan.  ``plan_scalar`` twins keep the
original per-node loops over the scalar map queries as the equivalence
reference — same seed, bit-identical tree and waypoints — pinned by
``tests/test_planning_batched.py``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..observability import trace as _trace
from ..world.geometry import AABB, norm
from .collision import (
    CollisionChecker,
    _dist,
    _row_dists,
    escape_point,
    escape_point_scalar,
)
from .spatial_index import (
    GridIndex,
    near_ids_bruteforce,
    nearest_bruteforce,
)


@dataclass
class PlanResult:
    """Output of a motion-planning query."""

    waypoints: List[np.ndarray]
    cost: float
    iterations: int
    success: bool

    @property
    def length(self) -> float:
        if len(self.waypoints) < 2:
            return 0.0
        return float(
            sum(
                norm(b - a)
                for a, b in zip(self.waypoints[:-1], self.waypoints[1:])
            )
        )


@dataclass
class _TreeNode:
    point: np.ndarray
    parent: Optional[int]
    cost: float


class _Tree:
    """Growing array store for a sampling tree (points, parents, costs).

    Append-mostly; nearest/near queries read a contiguous (n, 3) view, so
    the per-iteration cost is one vectorized distance computation instead
    of ``np.stack`` over an ever-growing Python list.  With a
    ``cell_size``, a :class:`GridIndex` is maintained incrementally on
    append and answers :meth:`nearest` / :meth:`near_ids` from candidate
    buckets instead of full scans — bit-identical answers (pinned by
    ``tests/test_spatial_index.py``), ~O(1) per query on dense trees.
    The ``*_bruteforce`` methods keep the full-scan reference path for
    the scalar planner twins and the equivalence suite.
    """

    def __init__(
        self,
        root: np.ndarray,
        capacity: int = 256,
        cell_size: Optional[float] = None,
    ) -> None:
        self._pts = np.empty((capacity, 3), dtype=float)
        self._costs = np.empty(capacity, dtype=float)
        self.parents: List[Optional[int]] = []
        self.children: List[List[int]] = []
        self._n = 0
        self._index = None if cell_size is None else GridIndex(cell_size)
        self.append(root, None, 0.0)

    def __len__(self) -> int:
        return self._n

    @property
    def points(self) -> np.ndarray:
        return self._pts[: self._n]

    @property
    def costs(self) -> np.ndarray:
        return self._costs[: self._n]

    def point(self, idx: int) -> np.ndarray:
        return self._pts[idx].copy()

    def append(
        self, point: np.ndarray, parent: Optional[int], cost: float
    ) -> int:
        if self._n == self._pts.shape[0]:
            self._pts = np.concatenate([self._pts, np.empty_like(self._pts)])
            self._costs = np.concatenate(
                [self._costs, np.empty_like(self._costs)]
            )
        self._pts[self._n] = point
        self._costs[self._n] = cost
        self.parents.append(parent)
        self.children.append([])
        if parent is not None:
            self.children[parent].append(self._n)
        self._n += 1
        if self._index is not None:
            self._index.insert(point)
        return self._n - 1

    def rewire(self, idx: int, parent: int, cost: float) -> None:
        """Re-parent node ``idx`` and propagate the cost change to its
        whole subtree (costs are root-to-node sums, so a cheaper parent
        lowers every descendant by the same delta).  Points never move,
        so the spatial index needs no update."""
        old_parent = self.parents[idx]
        if old_parent is not None:
            self.children[old_parent].remove(idx)
        self.parents[idx] = parent
        self.children[parent].append(idx)
        delta = cost - self._costs[idx]
        self._costs[idx] = cost
        stack = list(self.children[idx])
        while stack:
            node = stack.pop()
            self._costs[node] += delta
            stack.extend(self.children[node])

    def nearest(self, target: np.ndarray) -> int:
        """Id of the tree point nearest ``target`` (grid-bucket index
        when built with a ``cell_size``, full scan otherwise)."""
        if self._index is not None:
            return self._index.nearest(self.points, target)
        return nearest_bruteforce(self.points, target)

    def near_ids(self, target: np.ndarray, radius: float) -> np.ndarray:
        """Ascending ids of tree points within ``radius`` of ``target``."""
        if self._index is not None:
            return self._index.near_ids(self.points, target, radius)
        return near_ids_bruteforce(self.points, target, radius)

    def nearest_bruteforce(self, target: np.ndarray) -> int:
        """Full-scan reference twin of :meth:`nearest`."""
        return nearest_bruteforce(self.points, target)

    def near_ids_bruteforce(
        self, target: np.ndarray, radius: float
    ) -> np.ndarray:
        """Full-scan reference twin of :meth:`near_ids`."""
        return near_ids_bruteforce(self.points, target, radius)

    def extract(self, idx: int) -> List[np.ndarray]:
        path: List[np.ndarray] = []
        cursor: Optional[int] = idx
        while cursor is not None:
            path.append(self.point(cursor))
            cursor = self.parents[cursor]
        path.reverse()
        return path


class RrtPlanner:
    """Single-query RRT with goal biasing.

    Parameters
    ----------
    checker:
        Collision oracle (queries the OctoMap belief).
    bounds:
        Sampling region.
    step_size:
        Maximum edge extension length (m).
    goal_bias:
        Probability of sampling the goal instead of a random point.
    max_iterations:
        Sample budget before declaring failure.
    """

    name = "rrt"

    def __init__(
        self,
        checker: CollisionChecker,
        bounds: AABB,
        step_size: float = 2.0,
        goal_bias: float = 0.1,
        max_iterations: int = 2000,
        goal_tolerance: float = 1.0,
        seed: int = 0,
    ) -> None:
        if step_size <= 0:
            raise ValueError("step size must be positive")
        if not 0.0 <= goal_bias <= 1.0:
            raise ValueError("goal bias must be in [0, 1]")
        self.checker = checker
        self.bounds = bounds
        self.step_size = step_size
        self.goal_bias = goal_bias
        self.max_iterations = max_iterations
        self.goal_tolerance = goal_tolerance
        self.rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    def _escaped_start(
        self, start: np.ndarray, scalar: bool
    ) -> Optional[np.ndarray]:
        escape = escape_point_scalar if scalar else escape_point
        return escape(self.checker, start, self.rng)

    def plan(self, start: np.ndarray, goal: np.ndarray) -> PlanResult:
        """Plan a collision-free path from ``start`` to ``goal``.

        Fast path: batched map queries + the grid-bucket spatial index
        over the tree buffers.  Returns a :class:`PlanResult` (empty
        waypoints, infinite cost on failure).
        """
        with _trace.span(f"plan.{self.name}", "planning") as sp:
            result = self._plan(start, goal, scalar=False)
            sp.set(iterations=result.iterations, success=result.success)
            _trace.count(f"planner.{self.name}.plans")
            _trace.observe(
                f"planner.{self.name}.iterations", result.iterations
            )
            return result

    def plan_scalar(self, start: np.ndarray, goal: np.ndarray) -> PlanResult:
        """Reference implementation over the scalar map queries and the
        full-scan tree queries; kept for the batched-vs-scalar
        equivalence suite (bit-identical to :meth:`plan`)."""
        return self._plan(start, goal, scalar=True)

    def _index_cell_size(self) -> float:
        """Grid cell edge for the tree's spatial index: half a step, so
        edges span at most two cells and nearest queries usually settle
        within the first gathered box."""
        return self.step_size / 2.0

    def _plan(
        self, start: np.ndarray, goal: np.ndarray, scalar: bool
    ) -> PlanResult:
        point_free = (
            self.checker.point_free_scalar if scalar
            else self.checker.point_free
        )
        segment_free = (
            self.checker.segment_free_scalar if scalar
            else self.checker.segment_free
        )
        start = np.asarray(start, dtype=float)
        goal = np.asarray(goal, dtype=float)
        prefix: List[np.ndarray] = []
        if not point_free(start):
            escaped = self._escaped_start(start, scalar)
            if escaped is None:
                return PlanResult([], float("inf"), 0, False)
            prefix = [start]
            start = escaped
        tree = _Tree(
            start, cell_size=None if scalar else self._index_cell_size()
        )
        tree_nearest = tree.nearest_bruteforce if scalar else tree.nearest
        for it in range(1, self.max_iterations + 1):
            target = self._sample(goal)
            near_idx = tree_nearest(target)
            near_point = tree.point(near_idx)
            new_point = self._steer(near_point, target)
            if not segment_free(near_point, new_point):
                continue
            cost = tree.costs[near_idx] + _dist(new_point, near_point)
            new_idx = tree.append(new_point, near_idx, cost)
            if norm(new_point - goal) <= self.goal_tolerance:
                if segment_free(new_point, goal):
                    goal_idx = tree.append(
                        goal, new_idx, cost + _dist(goal, new_point)
                    )
                    return PlanResult(
                        waypoints=prefix + tree.extract(goal_idx),
                        cost=float(tree.costs[goal_idx]),
                        iterations=it,
                        success=True,
                    )
        return PlanResult([], float("inf"), self.max_iterations, False)

    # ------------------------------------------------------------------
    def _sample(self, goal: np.ndarray) -> np.ndarray:
        if self.rng.random() < self.goal_bias:
            return goal.copy()
        return self.rng.uniform(self.bounds.lo, self.bounds.hi)

    def _steer(self, from_point: np.ndarray, to_point: np.ndarray) -> np.ndarray:
        delta = to_point - from_point
        dist = norm(delta)
        if dist <= self.step_size or dist == 0:
            return to_point.copy()
        return from_point + delta * (self.step_size / dist)


class RrtStarPlanner(RrtPlanner):
    """RRT* — asymptotically optimal variant with neighborhood rewiring.

    After extending toward a sample, the new node is connected to the
    lowest-cost parent within a shrinking neighborhood radius, and nearby
    nodes are rewired through it when that shortens their path.  The
    choose-parent candidate fan is validated lazily in cost-sorted
    batched windows (the first collision-free window hit *is* the
    min-cost collision-free candidate, so this matches the scalar loop's
    lazy strict-improvement walk edge-for-edge); the rewire fan is one
    batched collision query.

    With ``informed=True`` (the default), once a first solution exists
    sampling is restricted to the prolate spheroid with foci at start
    and goal whose transverse diameter is the best cost so far (Gammell
    et al.'s Informed RRT*): samples that cannot improve the solution
    are never drawn, so the tree densifies along the corridor that
    matters and edge fans stay short.  The informed sampler runs
    identically in the fast and scalar paths, so batched-vs-scalar
    equivalence still pins both bit-for-bit; set ``informed=False`` for
    the PR-3 uniform-sampling behaviour.

    The solution cost can never drop below the straight-line distance
    between start and goal, so once the best cost is within
    ``convergence_rtol`` of that lower bound the plan is provably
    optimal (to tolerance) and the loop stops early instead of burning
    the remaining sample budget; ``PlanResult.iterations`` reports the
    actual iteration count.

    Parameters (beyond :class:`RrtPlanner`'s)
    ----------
    rewire_radius:
        Upper bound on the shrinking neighborhood radius (m).
    informed:
        Enable ellipsoid sampling after the first solution.
    convergence_rtol:
        Relative tolerance on the straight-line lower bound for the
        provably-near-optimal early stop; ``None`` disables it.  The
        default (1e-4) concedes at most 0.01% of path length — well
        under a voxel, let alone MAV actuation noise — and typically
        cuts the sample budget by 3-10x on corridor queries.
    """

    name = "rrt_star"

    #: Choose-parent laziness: only this many of the cheapest viable
    #: parent candidates ride in the fused per-iteration collision call.
    PARENT_WINDOW = 8

    def __init__(
        self,
        *args,
        rewire_radius: float = 4.0,
        informed: bool = True,
        convergence_rtol: Optional[float] = 1e-4,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        self.rewire_radius = rewire_radius
        self.informed = informed
        self.convergence_rtol = convergence_rtol

    def _plan(
        self, start: np.ndarray, goal: np.ndarray, scalar: bool
    ) -> PlanResult:
        point_free = (
            self.checker.point_free_scalar if scalar
            else self.checker.point_free
        )
        segment_free = (
            self.checker.segment_free_scalar if scalar
            else self.checker.segment_free
        )
        start = np.asarray(start, dtype=float)
        goal = np.asarray(goal, dtype=float)
        prefix: List[np.ndarray] = []
        if not point_free(start):
            escaped = self._escaped_start(start, scalar)
            if escaped is None:
                return PlanResult([], float("inf"), 0, False)
            prefix = [start]
            start = escaped
        tree = _Tree(
            start, cell_size=None if scalar else self._index_cell_size()
        )
        tree_nearest = tree.nearest_bruteforce if scalar else tree.nearest
        ellipsoid = _InformedEllipsoid(start, goal) if self.informed else None
        best_goal_idx: Optional[int] = None
        best_goal_cost = float("inf")
        link_ids: List[int] = []
        link_hops: List[float] = []
        link_ids_arr = np.zeros(0, dtype=np.int64)
        link_hops_arr = np.zeros(0)
        # Provably-optimal early stop: tree costs are sums of Euclidean
        # hops from the root, so no solution can ever beat the straight
        # root-to-goal distance.  Once the best cost is within rtol of
        # that bound, further samples cannot improve anything.
        c_min = _dist(goal, start)
        c_stop = (
            float("-inf")
            if self.convergence_rtol is None
            else c_min * (1.0 + self.convergence_rtol)
        )
        iterations = self.max_iterations
        for _it in range(1, self.max_iterations + 1):
            informed_now = ellipsoid is not None and best_goal_idx is not None
            if informed_now:
                target = self._sample_informed(goal, ellipsoid, best_goal_cost)
            else:
                target = self._sample(goal)
            near_idx = tree_nearest(target)
            near_point = tree.point(near_idx)
            new_point = self._steer(near_point, target)
            if scalar:
                if not segment_free(near_point, new_point):
                    continue
                radius = self._radius(len(tree))
                neighbor_ids = tree.near_ids_bruteforce(new_point, radius)
                init_cost = tree.costs[near_idx] + _dist(
                    new_point, near_point
                )
                parent, best_cost = self._choose_parent_scalar(
                    tree, neighbor_ids, new_point, near_idx, init_cost
                )
                new_idx = tree.append(new_point, parent, best_cost)
                self._rewire_scalar(tree, neighbor_ids, new_idx, best_cost)
            else:
                stepped = self._step_batched(
                    tree, near_idx, near_point, new_point
                )
                if stepped is None:
                    continue
                new_idx, best_cost = stepped
            # Track goal connections.  The final hop is validated once
            # (the map is frozen during a plan); rewiring then keeps
            # improving the tree cost of linked nodes via propagation,
            # so the incumbent is re-derived from live costs each
            # iteration rather than frozen at connection time.
            if norm(new_point - goal) <= self.goal_tolerance:
                if segment_free(new_point, goal):
                    link_ids.append(new_idx)
                    link_hops.append(_dist(goal, new_point))
                    link_ids_arr = np.asarray(link_ids, dtype=np.int64)
                    link_hops_arr = np.asarray(link_hops)
            if link_ids:
                totals = tree.costs[link_ids_arr] + link_hops_arr
                k = int(np.argmin(totals))
                best_goal_idx = link_ids[k]
                best_goal_cost = float(totals[k])
                if best_goal_cost <= c_stop:
                    iterations = _it
                    break
        if best_goal_idx is None:
            return PlanResult([], float("inf"), self.max_iterations, False)
        path = prefix + tree.extract(best_goal_idx)
        path.append(goal.copy())
        return PlanResult(
            waypoints=path,
            cost=best_goal_cost,
            iterations=iterations,
            success=True,
        )

    # ------------------------------------------------------------------
    # Informed (ellipsoid) sampling
    # ------------------------------------------------------------------
    def _sample_informed(
        self,
        goal: np.ndarray,
        ellipsoid: "_InformedEllipsoid",
        c_best: float,
    ) -> np.ndarray:
        """Draw a sample that could still improve the current solution.

        Goal biasing applies unchanged; otherwise the sample is uniform
        over the informed spheroid (rejection-resampled into ``bounds``,
        falling back to a plain uniform draw if the intersection is thin
        or the spheroid is degenerate).  Runs identically in the fast
        and scalar planner paths — one shared RNG consumption order.
        """
        if self.rng.random() < self.goal_bias:
            return goal.copy()
        if not ellipsoid.can_sample(c_best):
            return self.rng.uniform(self.bounds.lo, self.bounds.hi)
        for _ in range(16):
            p = ellipsoid.sample(self.rng, c_best)
            if np.all(p >= self.bounds.lo) and np.all(p <= self.bounds.hi):
                return p
        return self.rng.uniform(self.bounds.lo, self.bounds.hi)

    # ------------------------------------------------------------------
    # Choose-parent / rewire: the fused batched step and its scalar twins
    # ------------------------------------------------------------------
    def _step_batched(
        self,
        tree: _Tree,
        near_idx: int,
        near_point: np.ndarray,
        new_point: np.ndarray,
    ) -> Optional[tuple]:
        """One RRT* extension with a *single* batched collision call.

        The call stacks three edge groups: the extension edge
        (``near -> new``), the :attr:`PARENT_WINDOW` *cheapest* viable
        choose-parent edges (``neighbor -> new``), and a provable
        superset of the rewire fan (``new -> neighbor``).  Segment
        verdicts are row-independent, so validating them together cannot
        change any answer.

        Choose-parent is lazy: the first collision-free candidate in
        ascending cost order *is* the min-cost collision-free candidate
        (the stable sort keeps equal costs in neighbor order, matching
        the scalar loop's strict-improvement tie-break), so candidates
        beyond the window — typically all of them — are only validated
        by a rare fallback call when the whole window is blocked.  The
        rewire superset uses a lower bound on the eventual best cost
        (costs and float addition are monotone), so every edge the
        scalar loop would collision-check is validated here; surviving
        rewires are applied in ascending neighbor order with fresh cost
        reads — result-identical to the scalar twin's sequential walk.

        Returns ``(new_idx, best_cost)``, or None when the extension
        edge is blocked (nothing is mutated in that case, matching the
        scalar path's early ``continue``).
        """
        radius = self._radius(len(tree))
        neighbor_ids = tree.near_ids(new_point, radius)
        init_cost = tree.costs[near_idx] + _dist(new_point, near_point)
        if neighbor_ids.size:
            npts = tree.points[neighbor_ids]
            ncosts = tree.costs[neighbor_ids]
            dists = _row_dists(npts, new_point)
            cand = ncosts + dists
            viable = np.nonzero(cand < init_cost)[0]
            order = viable[np.argsort(cand[viable], kind="stable")]
            lb = float(init_cost)
            if viable.size:
                lb = min(lb, float(cand[viable].min()))
            rew = np.nonzero(lb + dists < ncosts)[0]
        else:
            npts = np.zeros((0, 3))
            dists = cand = np.zeros(0)
            order = rew = np.zeros(0, dtype=np.int64)
        head = order[: self.PARENT_WINDOW]
        free = self.checker.segments_free(
            np.concatenate(
                [
                    near_point[None, :],
                    npts[head],
                    np.broadcast_to(new_point, (rew.size, 3)),
                ]
            ),
            np.concatenate(
                [
                    new_point[None, :],
                    np.broadcast_to(new_point, (head.size, 3)),
                    npts[rew],
                ]
            ),
        )
        if not free[0]:
            return None
        parent, best_cost = int(near_idx), init_cost
        hits = np.nonzero(free[1: 1 + head.size])[0]
        if hits.size:
            best = int(head[int(hits[0])])
            parent, best_cost = int(neighbor_ids[best]), float(cand[best])
        elif order.size > head.size:
            tail = order[head.size:]
            tail_free = self.checker.segments_free(
                npts[tail], np.broadcast_to(new_point, (tail.size, 3))
            )
            hits = np.nonzero(tail_free)[0]
            if hits.size:
                best = int(tail[int(hits[0])])
                parent, best_cost = int(neighbor_ids[best]), float(cand[best])
        new_idx = tree.append(new_point, parent, best_cost)
        # Apply rewires with a *fresh* cost read: cost propagation means
        # an earlier rewire in this fan can lower a later neighbor's
        # cost (it may sit in the rewired subtree), so the improvement
        # test must re-read exactly like the scalar loop does.
        for k in np.nonzero(free[1 + head.size:])[0]:
            j = int(rew[int(k)])
            nid = int(neighbor_ids[j])
            through = best_cost + float(dists[j])
            if through < tree.costs[nid]:
                tree.rewire(nid, new_idx, through)
        return new_idx, best_cost

    def _choose_parent_scalar(
        self,
        tree: _Tree,
        neighbor_ids: np.ndarray,
        new_point: np.ndarray,
        near_idx: int,
        init_cost: float,
    ):
        parent, best_cost = near_idx, init_cost
        for nid in neighbor_ids:
            nid = int(nid)
            cand = tree.costs[nid] + _dist(new_point, tree.points[nid])
            if cand < best_cost and self.checker.segment_free_scalar(
                tree.points[nid], new_point
            ):
                parent = nid
                best_cost = cand
        return parent, best_cost

    def _rewire_scalar(
        self,
        tree: _Tree,
        neighbor_ids: np.ndarray,
        new_idx: int,
        best_cost: float,
    ) -> None:
        new_point = tree.point(new_idx)
        for nid in neighbor_ids:
            nid = int(nid)
            through = best_cost + _dist(tree.points[nid], new_point)
            if through < tree.costs[nid] and self.checker.segment_free_scalar(
                new_point, tree.points[nid]
            ):
                tree.rewire(nid, new_idx, through)

    def _radius(self, n: int) -> float:
        """Shrinking neighborhood radius ~ (log n / n)^(1/3) in 3D."""
        if n < 2:
            return self.rewire_radius
        return min(
            self.rewire_radius,
            self.rewire_radius * (math.log(n) / n) ** (1.0 / 3.0) * 4.0,
        )


class _InformedEllipsoid:
    """The informed sampling domain: a prolate spheroid with foci at
    start and goal (Gammell et al., Informed RRT*).

    Any path through a point outside the spheroid whose transverse
    diameter is the best cost so far is provably longer than that best
    cost, so uniform sampling over the spheroid covers exactly the set
    of points that could still improve the solution.  The rotation from
    the spheroid frame (transverse axis first) to the world frame is
    fixed per query and computed once.
    """

    def __init__(self, start: np.ndarray, goal: np.ndarray) -> None:
        self.center = (start + goal) / 2.0
        self.c_min = _dist(goal, start)
        if self.c_min < 1e-9:
            self.rotation = np.eye(3)
            return
        e1 = (goal - start) / self.c_min
        # Reference axis: the world axis least aligned with the
        # transverse axis keeps the cross products well-conditioned.
        ref = np.zeros(3)
        ref[int(np.argmin(np.abs(e1)))] = 1.0
        e2 = np.cross(e1, ref)
        e2 /= math.sqrt(float(np.sum(e2 * e2)))
        e3 = np.cross(e1, e2)
        self.rotation = np.column_stack([e1, e2, e3])

    def can_sample(self, c_best: float) -> bool:
        """False when the spheroid is degenerate (no interior): infinite
        or start==goal queries, or a best cost at the straight-line
        minimum where nothing could improve it."""
        return (
            math.isfinite(c_best)
            and self.c_min >= 1e-9
            and c_best > self.c_min
        )

    def sample(
        self, rng: np.random.Generator, c_best: float
    ) -> np.ndarray:
        """One uniform draw from the spheroid with transverse diameter
        ``c_best`` (direction-normalized Gaussian times a cube-root
        radius, stretched by the semi-axes and rotated into the world)."""
        while True:
            v = rng.normal(0.0, 1.0, size=3)
            n = math.sqrt(float(np.sum(v * v)))
            if n >= 1e-12:
                break
        r = rng.random() ** (1.0 / 3.0)
        ball = v * (r / n)
        a = c_best / 2.0
        b = math.sqrt(c_best * c_best - self.c_min * self.c_min) / 2.0
        return self.center + self.rotation @ (ball * np.array([a, b, b]))
