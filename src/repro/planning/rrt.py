"""Rapidly-exploring Random Trees: RRT and RRT*.

Substitute for OMPL's sampling-based shortest-path planners (LaValle 1998;
Karaman & Frazzoli's RRT* rewiring).  These are the "shortest path"
planners of the Package Delivery workload, plug-and-play interchangeable
with the PRM+A* planner.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from ..world.geometry import AABB, norm
from .collision import CollisionChecker


@dataclass
class PlanResult:
    """Output of a motion-planning query."""

    waypoints: List[np.ndarray]
    cost: float
    iterations: int
    success: bool

    @property
    def length(self) -> float:
        if len(self.waypoints) < 2:
            return 0.0
        return float(
            sum(
                norm(b - a)
                for a, b in zip(self.waypoints[:-1], self.waypoints[1:])
            )
        )


@dataclass
class _TreeNode:
    point: np.ndarray
    parent: Optional[int]
    cost: float


class RrtPlanner:
    """Single-query RRT with goal biasing.

    Parameters
    ----------
    checker:
        Collision oracle (queries the OctoMap belief).
    bounds:
        Sampling region.
    step_size:
        Maximum edge extension length (m).
    goal_bias:
        Probability of sampling the goal instead of a random point.
    max_iterations:
        Sample budget before declaring failure.
    """

    name = "rrt"

    def __init__(
        self,
        checker: CollisionChecker,
        bounds: AABB,
        step_size: float = 2.0,
        goal_bias: float = 0.1,
        max_iterations: int = 2000,
        goal_tolerance: float = 1.0,
        seed: int = 0,
    ) -> None:
        if step_size <= 0:
            raise ValueError("step size must be positive")
        if not 0.0 <= goal_bias <= 1.0:
            raise ValueError("goal bias must be in [0, 1]")
        self.checker = checker
        self.bounds = bounds
        self.step_size = step_size
        self.goal_bias = goal_bias
        self.max_iterations = max_iterations
        self.goal_tolerance = goal_tolerance
        self.rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    def plan(self, start: np.ndarray, goal: np.ndarray) -> PlanResult:
        start = np.asarray(start, dtype=float)
        goal = np.asarray(goal, dtype=float)
        prefix: List[np.ndarray] = []
        if not self.checker.point_free(start):
            from .collision import escape_point

            escaped = escape_point(self.checker, start, self.rng)
            if escaped is None:
                return PlanResult([], float("inf"), 0, False)
            prefix = [start]
            start = escaped
        nodes: List[_TreeNode] = [_TreeNode(start, None, 0.0)]
        points = [start]
        for it in range(1, self.max_iterations + 1):
            target = self._sample(goal)
            near_idx = self._nearest(points, target)
            new_point = self._steer(points[near_idx], target)
            if not self.checker.segment_free(points[near_idx], new_point):
                continue
            cost = nodes[near_idx].cost + norm(new_point - points[near_idx])
            nodes.append(_TreeNode(new_point, near_idx, cost))
            points.append(new_point)
            if norm(new_point - goal) <= self.goal_tolerance:
                if self.checker.segment_free(new_point, goal):
                    nodes.append(
                        _TreeNode(goal, len(nodes) - 1, cost + norm(goal - new_point))
                    )
                    return PlanResult(
                        waypoints=prefix + self._extract(nodes, len(nodes) - 1),
                        cost=nodes[-1].cost,
                        iterations=it,
                        success=True,
                    )
        return PlanResult([], float("inf"), self.max_iterations, False)

    # ------------------------------------------------------------------
    def _sample(self, goal: np.ndarray) -> np.ndarray:
        if self.rng.random() < self.goal_bias:
            return goal.copy()
        return self.rng.uniform(self.bounds.lo, self.bounds.hi)

    @staticmethod
    def _nearest(points: List[np.ndarray], target: np.ndarray) -> int:
        arr = np.stack(points)
        d2 = np.sum((arr - target[None, :]) ** 2, axis=1)
        return int(np.argmin(d2))

    def _steer(self, from_point: np.ndarray, to_point: np.ndarray) -> np.ndarray:
        delta = to_point - from_point
        dist = norm(delta)
        if dist <= self.step_size or dist == 0:
            return to_point.copy()
        return from_point + delta * (self.step_size / dist)

    @staticmethod
    def _extract(nodes: List[_TreeNode], idx: int) -> List[np.ndarray]:
        path = []
        cursor: Optional[int] = idx
        while cursor is not None:
            path.append(nodes[cursor].point)
            cursor = nodes[cursor].parent
        path.reverse()
        return path


class RrtStarPlanner(RrtPlanner):
    """RRT* — asymptotically optimal variant with neighborhood rewiring.

    After extending toward a sample, the new node is connected to the
    lowest-cost parent within a shrinking neighborhood radius, and nearby
    nodes are rewired through it when that shortens their path.
    """

    name = "rrt_star"

    def __init__(self, *args, rewire_radius: float = 4.0, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.rewire_radius = rewire_radius

    def plan(self, start: np.ndarray, goal: np.ndarray) -> PlanResult:
        start = np.asarray(start, dtype=float)
        goal = np.asarray(goal, dtype=float)
        prefix: List[np.ndarray] = []
        if not self.checker.point_free(start):
            from .collision import escape_point

            escaped = escape_point(self.checker, start, self.rng)
            if escaped is None:
                return PlanResult([], float("inf"), 0, False)
            prefix = [start]
            start = escaped
        nodes: List[_TreeNode] = [_TreeNode(start, None, 0.0)]
        points = [start]
        best_goal_idx: Optional[int] = None
        best_goal_cost = float("inf")
        for it in range(1, self.max_iterations + 1):
            target = self._sample(goal)
            near_idx = self._nearest(points, target)
            new_point = self._steer(points[near_idx], target)
            if not self.checker.segment_free(points[near_idx], new_point):
                continue
            # Choose best parent within the rewire radius.
            radius = self._radius(len(nodes))
            neighbor_ids = self._near_ids(points, new_point, radius)
            parent = near_idx
            best_cost = nodes[near_idx].cost + norm(new_point - points[near_idx])
            for nid in neighbor_ids:
                cand = nodes[nid].cost + norm(new_point - points[nid])
                if cand < best_cost and self.checker.segment_free(
                    points[nid], new_point
                ):
                    parent = nid
                    best_cost = cand
            new_idx = len(nodes)
            nodes.append(_TreeNode(new_point, parent, best_cost))
            points.append(new_point)
            # Rewire neighbors through the new node.
            for nid in neighbor_ids:
                through = best_cost + norm(points[nid] - new_point)
                if through < nodes[nid].cost and self.checker.segment_free(
                    new_point, points[nid]
                ):
                    nodes[nid] = _TreeNode(points[nid], new_idx, through)
            # Track goal connections.
            if norm(new_point - goal) <= self.goal_tolerance:
                if self.checker.segment_free(new_point, goal):
                    goal_cost = best_cost + norm(goal - new_point)
                    if goal_cost < best_goal_cost:
                        best_goal_cost = goal_cost
                        best_goal_idx = new_idx
        if best_goal_idx is None:
            return PlanResult([], float("inf"), self.max_iterations, False)
        path = prefix + self._extract(nodes, best_goal_idx)
        path.append(goal.copy())
        return PlanResult(
            waypoints=path,
            cost=best_goal_cost,
            iterations=self.max_iterations,
            success=True,
        )

    def _radius(self, n: int) -> float:
        """Shrinking neighborhood radius ~ (log n / n)^(1/3) in 3D."""
        if n < 2:
            return self.rewire_radius
        return min(
            self.rewire_radius,
            self.rewire_radius * (math.log(n) / n) ** (1.0 / 3.0) * 4.0,
        )

    @staticmethod
    def _near_ids(
        points: List[np.ndarray], target: np.ndarray, radius: float
    ) -> List[int]:
        arr = np.stack(points)
        d2 = np.sum((arr - target[None, :]) ** 2, axis=1)
        return np.nonzero(d2 <= radius * radius)[0].tolist()
