"""Uniform grid-bucket spatial index for nearest/near queries.

The sampling planners ask two questions of their growing point sets
thousands of times per plan: "which stored point is nearest to this
target?" (RRT extension) and "which stored points lie within radius r?"
(RRT* choose-parent / rewire fans).  The PR-3 buffers answered both with
a full vectorized scan — O(n) per query, O(n^2) per plan — which
``BENCH_planners.json`` pinned as the dominant planner cost once the
collision kernels were batched.

:class:`GridIndex` buckets point ids by their containing cell of a
uniform grid (cell edge = ``cell_size``).  Queries gather candidate ids
from only the cells that could contain an answer — an expanding cubic
ring search for :meth:`nearest`, the cell range overlapping the query
ball for :meth:`near_ids` — then run the *same* arithmetic as the brute
scan over that candidate subset.  Because NumPy's elementwise kernels
and 3-term row reductions are deterministic per row, distances computed
over a subset are bit-identical to the same rows of a full scan, so the
index returns **exactly** the brute-force answer (including the
first-minimum tie-break) while touching a handful of buckets.

``nearest_bruteforce`` / ``near_ids_bruteforce`` are the reference
twins, in the repo-wide batched-vs-scalar convention;
``tests/test_spatial_index.py`` pins index == brute bit-for-bit with
hypothesis property tests over random point sets, radii, and
incremental appends.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

import numpy as np


def nearest_bruteforce(points: np.ndarray, target: np.ndarray) -> int:
    """Index of the point nearest to ``target`` by a full vectorized scan.

    Ties resolve to the lowest index (``np.argmin`` takes the first
    minimum).  ``points`` must be a non-empty (n, 3) array.
    """
    d = points - target[None, :]
    return int(np.argmin(np.sum(d * d, axis=1)))


def near_ids_bruteforce(
    points: np.ndarray, target: np.ndarray, radius: float
) -> np.ndarray:
    """Ids (ascending) of all points within ``radius`` of ``target`` by a
    full vectorized scan.  The comparison is inclusive (``d2 <= r*r``),
    matching the PR-3 ``_Tree.near_ids`` contract."""
    d = points - target[None, :]
    d2 = np.sum(d * d, axis=1)
    return np.nonzero(d2 <= radius * radius)[0]


class GridIndex:
    """Incrementally maintained grid-bucket index over appended points.

    Parameters
    ----------
    cell_size:
        Edge length of the (implicit, unbounded) grid cells.  A good
        choice is the planner's step size: tree edges then span at most
        one cell, so nearest queries usually terminate within one ring.

    The index never stores coordinates — only point *ids* per bucket.
    Queries take the caller's contiguous ``(n, 3)`` view (the tree's
    live buffer) so distance arithmetic runs on exactly the rows a brute
    scan would read.  Ids must be appended densely (0, 1, 2, ...) via
    :meth:`insert`, mirroring the buffer's append order.
    """

    #: Below this point count a straight vectorized scan beats any
    #: bucket walk; queries fall back to the brute twins (same answer).
    BRUTE_THRESHOLD = 64

    #: Ring-walk cap for :meth:`nearest`: a target this many empty rings
    #: from the nearest populated cell scans brute instead (same answer).
    MAX_RING = 4

    def __init__(self, cell_size: float) -> None:
        if cell_size <= 0:
            raise ValueError("cell size must be positive")
        self.cell_size = float(cell_size)
        self._buckets: Dict[Tuple[int, int, int], List[int]] = {}
        self._n = 0

    def __len__(self) -> int:
        return self._n

    # ------------------------------------------------------------------
    def _cell_of(self, point: np.ndarray) -> Tuple[int, int, int]:
        cs = self.cell_size
        return (
            math.floor(float(point[0]) / cs),
            math.floor(float(point[1]) / cs),
            math.floor(float(point[2]) / cs),
        )

    def insert(self, point: np.ndarray) -> int:
        """Register the next point id (append order) under its cell."""
        cell = self._cell_of(point)
        self._buckets.setdefault(cell, []).append(self._n)
        self._n += 1
        return self._n - 1

    # ------------------------------------------------------------------
    def nearest(self, points: np.ndarray, target: np.ndarray) -> Optional[int]:
        """Exact nearest-point id, or None on an empty index.

        Progressive box search.  A gathered box of half-width ``r``
        provably contains every point within distance ``r`` of the
        target, so once the best candidate's distance is ``<= r`` the
        global minimum (and its whole tie-break pool) is already in the
        candidate set — with a dense tree that is one gather and one
        numpy round.  Otherwise the box grows to the (ulp-inflated) best
        distance for one final exact gather.  Candidates are filtered
        with the brute-scan arithmetic over ascending ids, so distances
        and the first-minimum tie-break are bit-identical to
        :func:`nearest_bruteforce`.
        """
        if self._n == 0:
            return None
        if self._n <= self.BRUTE_THRESHOLD:
            return nearest_bruteforce(points, target)
        target = np.asarray(target, dtype=float)
        r_box = self.cell_size
        grows = 0
        while True:
            cand = self._gather_box(target, r_box)
            if cand.size:
                break
            r_box *= 2.0
            grows += 1
            if grows > self.MAX_RING:
                # Target far outside the populated region: the box walk
                # would touch more cells than a straight scan reads.
                return nearest_bruteforce(points, target)
        d = points[cand] - target[None, :]
        d2 = np.sum(d * d, axis=1)
        k = int(np.argmin(d2))
        best_d2 = float(d2[k])
        if best_d2 <= r_box * r_box:
            return int(cand[k])
        # One ulp of head-room over the correctly rounded sqrt keeps the
        # final box a strict superset of the closed ball even when sqrt
        # rounds down — every point at exactly the best distance (the
        # brute scan's tie-break pool) stays inside the gathered range.
        radius = math.nextafter(math.sqrt(best_d2), math.inf)
        cand = self._gather_box(target, radius)
        d = points[cand] - target[None, :]
        d2 = np.sum(d * d, axis=1)
        return int(cand[int(np.argmin(d2))])

    # ------------------------------------------------------------------
    def near_ids(
        self, points: np.ndarray, target: np.ndarray, radius: float
    ) -> np.ndarray:
        """Exact ids (ascending) within ``radius`` of ``target``.

        Gathers the cell range overlapping the ball's bounding box, then
        filters with the brute-scan distance arithmetic — bit-identical
        to :func:`near_ids_bruteforce` including boundary points (the
        candidate superset always contains every point the brute scan
        accepts, and the subset filter computes the same ``d2`` rows).
        """
        if self._n == 0 or radius < 0:
            return np.zeros(0, dtype=np.int64)
        if self._n <= self.BRUTE_THRESHOLD:
            return near_ids_bruteforce(points, target, radius)
        cand = self._gather_box(np.asarray(target, dtype=float), radius)
        if not cand.size:
            return cand
        d = points[cand] - target[None, :]
        d2 = np.sum(d * d, axis=1)
        return cand[d2 <= radius * radius]

    def _gather_box(self, target: np.ndarray, radius: float) -> np.ndarray:
        """All ids (ascending) whose cell overlaps the axis-aligned box
        ``[target - radius, target + radius]`` — a superset of any ball
        of that radius."""
        cs = self.cell_size
        x, y, z = float(target[0]), float(target[1]), float(target[2])
        i0 = math.floor((x - radius) / cs)
        i1 = math.floor((x + radius) / cs)
        j0 = math.floor((y - radius) / cs)
        j1 = math.floor((y + radius) / cs)
        k0 = math.floor((z - radius) / cs)
        k1 = math.floor((z + radius) / cs)
        buckets = self._buckets
        candidates: List[int] = []
        if (i1 - i0 + 1) * (j1 - j0 + 1) * (k1 - k0 + 1) > len(buckets):
            # Query box covers more cells than exist: walking the
            # occupied buckets is cheaper than enumerating the range.
            for (i, j, k), ids in buckets.items():
                if i0 <= i <= i1 and j0 <= j <= j1 and k0 <= k <= k1:
                    candidates.extend(ids)
        else:
            get = buckets.get
            for i in range(i0, i1 + 1):
                for j in range(j0, j1 + 1):
                    for k in range(k0, k1 + 1):
                        ids = get((i, j, k))
                        if ids:
                            candidates.extend(ids)
        if not candidates:
            return np.zeros(0, dtype=np.int64)
        out = np.asarray(candidates, dtype=np.int64)
        out.sort()
        return out


__all__ = ["GridIndex", "near_ids_bruteforce", "nearest_bruteforce"]
