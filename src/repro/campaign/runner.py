"""Campaign execution: serial or process-parallel, fault-isolated, resumable.

``run_campaign`` expands a :class:`~repro.campaign.spec.CampaignSpec`,
skips every run already present in the (optional) store, executes the
rest — in-process for ``jobs=1`` (bit-exact determinism checks, no pool
overhead) or through a ``ProcessPoolExecutor`` for ``jobs>1`` — and
returns the records in expansion order regardless of completion order.

A mission that raises records an ``"error"`` row instead of killing the
campaign: the other 44 cells of a 45-mission heatmap still land in the
store, and a later ``--resume`` retries only the failures.

Two scale knobs layer on top: ``shard=(i, n)`` executes only the runs
:meth:`CampaignSpec.shard` assigns to shard ``i`` (so hosts split a
study with no coordination beyond the spec), and ``batch=True`` (the
default) groups pool tasks by scenario content hash so runs flying the
same world amortize its instantiation through the per-process scenario
cache.
"""

from __future__ import annotations

import math
import time
import traceback
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import asdict, dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..core.api import run_workload
from ..observability import trace as _trace
from ..observability.export import phase_summary, spans_by_mission, summarize_spans
from ..scenarios import ScenarioSpec, supports_member_routes
from ..scenarios.cache import cache_stats
from .spec import CampaignSpec, RunSpec
from .store import RECORD_SCHEMA, CampaignStore

#: Schema tag of the opt-in per-run profile dict (``profile=True``).
PROFILE_SCHEMA = "campaign-profile/1"


class CampaignRunError(RuntimeError):
    """Raised when an aggregation needs runs that ended in error."""


def execute_run(
    run: RunSpec,
    profile: bool = False,
    queue_wait_s: Optional[float] = None,
) -> Dict[str, Any]:
    """Execute one mission and reduce it to a JSON-shaped record.

    Top-level (picklable) so it can cross a process-pool boundary; never
    raises — failures become ``status="error"`` records.

    With ``profile=True`` the mission runs under a fresh span tracer and
    the record gains a ``"profile"`` dict (phase self/total times,
    metrics snapshot, scenario-cache delta, queue wait).  The key is
    attached *only* in profile mode, so existing stores, goldens, and
    record hashes stay byte-identical when profiling is off.
    """
    if profile:
        cache_before = cache_stats()
        with _trace.capture() as tracer:
            record = _execute_run_record(run)
        cache_after = cache_stats()
        record["profile"] = {
            "schema": PROFILE_SCHEMA,
            "phases": phase_summary(tracer),
            "metrics": tracer.metrics.snapshot(),
            "scenario_cache": {
                "hits": cache_after["hits"] - cache_before["hits"],
                "misses": cache_after["misses"] - cache_before["misses"],
                "size": cache_after["size"],
            },
        }
        if queue_wait_s is not None:
            record["profile"]["queue_wait_s"] = queue_wait_s
        return record
    return _execute_run_record(run)


def _base_record(run: RunSpec) -> Dict[str, Any]:
    """The record shell shared by every execution path."""
    return {
        "schema": RECORD_SCHEMA,
        "run_key": run.run_key,
        "spec": run.payload(),
    }


def _spec_workload_kwargs(run: RunSpec) -> Dict[str, Any]:
    """Workload kwargs as ``run_workload`` receives them.

    The scenario axis rides into the workload constructor as a plain
    payload dict (Workload coerces it back to a spec).
    """
    workload_kwargs = dict(run.workload_kwargs)
    if run.scenario is not None:
        workload_kwargs["scenario"] = dict(run.scenario)
    return workload_kwargs


def _fill_success(record: Dict[str, Any], run: RunSpec, result) -> None:
    """Reduce a finished mission into ``record`` (sequential and fleet
    paths share this verbatim, which is what makes their stored records
    byte-identical)."""
    record["status"] = "ok"
    record["report"] = asdict(result.report)
    # config.workload_kwargs mirrors spec.workload_kwargs: the axis
    # entry injected above is stripped back out, while a scenario the
    # caller put into workload_kwargs directly stays.  config.scenario
    # always names the environment actually flown, whichever route it
    # arrived by.
    echoed_kwargs = dict(result.workload_kwargs)
    flown_scenario = None
    if run.scenario is not None:
        echoed_kwargs.pop("scenario", None)
        flown_scenario = run.scenario
    elif "scenario" in echoed_kwargs:
        flown_scenario = echoed_kwargs["scenario"]
    if flown_scenario is not None:
        # Resolve inherit-mode seeds so the record names the world the
        # mission actually flew (the workload inherits run.seed).
        flown_scenario = (
            ScenarioSpec.coerce(flown_scenario).resolved(run.seed).payload()
        )
    record["config"] = {
        "workload": result.workload,
        "platform": result.platform.spec.name,
        "cores": result.platform.cores,
        "frequency_ghz": result.platform.frequency_ghz,
        "seed": result.seed,
        "depth_noise_std": result.depth_noise_std,
        "workload_kwargs": echoed_kwargs,
        "scenario": flown_scenario,
    }
    record["error"] = None


def _fill_error(record: Dict[str, Any], exc: BaseException) -> None:
    record["status"] = "error"
    record["error"] = f"{type(exc).__name__}: {exc}"
    record["traceback"] = "".join(
        traceback.format_exception(type(exc), exc, exc.__traceback__)
    )


def _execute_run_record(run: RunSpec) -> Dict[str, Any]:
    started = time.perf_counter()
    record = _base_record(run)
    try:
        result = run_workload(
            run.workload,
            cores=run.cores,
            frequency_ghz=run.frequency_ghz,
            seed=run.seed,
            depth_noise_std=run.depth_noise_std,
            workload_kwargs=_spec_workload_kwargs(run),
            **dict(run.sim_kwargs),
        )
        _fill_success(record, run, result)
    except Exception as exc:  # noqa: BLE001 — per-run fault isolation
        _fill_error(record, exc)
    record["wall_time_s"] = time.perf_counter() - started
    return record


def execute_runs(
    runs: List[RunSpec],
    profile: bool = False,
    submitted_at: Optional[float] = None,
) -> List[Dict[str, Any]]:
    """Execute a batch of runs sequentially in this process.

    Top-level (picklable) so a whole batch can cross a process-pool
    boundary as *one* task: every run in the batch shares the worker's
    per-process scenario cache (``scenarios.cache``), so a batch of runs
    flying the same content-hashed world instantiates it once instead of
    once per worker the pool happened to scatter them across.

    ``submitted_at`` is a ``time.monotonic()`` stamp taken when the batch
    was handed to the pool (monotonic clocks share an epoch across
    processes on Linux): in profile mode each run's ``queue_wait_s`` is
    the gap between submission and that run actually starting, which for
    later runs in a batch includes their predecessors' execution.
    """
    records = []
    for run in runs:
        queue_wait_s = None
        if profile and submitted_at is not None:
            queue_wait_s = max(time.monotonic() - submitted_at, 0.0)
        records.append(execute_run(run, profile=profile, queue_wait_s=queue_wait_s))
    return records


def _fleet_labels(runs: List[RunSpec]) -> List[str]:
    """Human-readable, unique-per-batch mission labels for a fleet.

    ``RunSpec.label()`` is what humans grep for in Perfetto; two runs
    differing only in kwargs the label omits would share a stream (and
    interleave), so colliding labels gain a run-key suffix.
    """
    labels = [run.label() for run in runs]
    if len(set(labels)) != len(labels):
        labels = [
            f"{label} [{run.run_key[:6]}]"
            for label, run in zip(labels, runs)
        ]
    return labels


def execute_runs_fleet(
    runs: List[RunSpec],
    profile: bool = False,
    group: str = "fleet",
) -> List[Dict[str, Any]]:
    """Execute a batch of runs as one fleet (see :mod:`repro.fleet`).

    Produces records byte-identical to :func:`execute_runs` — same
    reports, configs, and run keys, built by the same record-filling
    helpers — except for ``wall_time_s``: fleet members advance in
    lockstep, so per-mission wall time is meaningless and every record
    in the batch reports the batch's shared wall clock instead.

    Falls back to plain sequential execution when the batch is too small
    to amortize anything (``len < 2``).  Under an installed tracer the
    fleet traces normally: each mission's spans land on a stream named
    after its :meth:`RunSpec.label` in process lane ``group``.

    A batch whose (shared) scenario family supports per-member routes
    (e.g. ``shared_city`` — see :func:`repro.scenarios.member_route`)
    flies as a *shared-world* fleet: each run gets ``member`` injected
    as its rank in the batch (unless the spec already pins one), the
    members sense each other and resolve airspace conflicts
    (:mod:`repro.fleet.shared_world`), reports gain the airspace extras,
    and each record's config carries a ``fleet_member`` provenance key.
    Pin the scenario seed (``shared_city:0.4:7``) so runs differing only
    by mission seed resolve to one scenario key and group together.

    With ``profile=True`` the whole fleet flies under one fresh tracer
    and every record gains a ``"profile"`` dict: that *mission's* phase
    tree (split out of the shared trace by mission label), plus
    group-shared blocks — the metrics snapshot, the scenario-cache
    delta, and a ``"fleet"`` block (group name, member count, and
    per-member gate wait/wake stats from
    :func:`repro.fleet.fleet_gate_stats`).  The group-shared blocks are
    identical across the batch's records; campaign reducers de-duplicate
    them by group.
    """
    if len(runs) < 2:
        return execute_runs(runs, profile=profile)
    from ..fleet import FleetMission, fleet_gate_stats, run_workloads_fleet

    shared = False
    if runs[0].scenario is not None:
        family = ScenarioSpec.coerce(runs[0].scenario).family
        shared = supports_member_routes(family)
    labels = _fleet_labels(runs)
    missions = []
    members: List[int] = []
    injected: List[bool] = []
    for rank, run in enumerate(runs):
        workload_kwargs = _spec_workload_kwargs(run)
        inject = shared and "member" not in workload_kwargs
        if inject:
            workload_kwargs["member"] = rank
        injected.append(inject)
        members.append(int(workload_kwargs.get("member", rank)))
        missions.append(
            FleetMission(
                workload=run.workload,
                seed=run.seed,
                cores=run.cores,
                frequency_ghz=run.frequency_ghz,
                depth_noise_std=run.depth_noise_std,
                workload_kwargs=workload_kwargs,
                sim_kwargs=dict(run.sim_kwargs),
            )
        )
    tracer = None
    cache_before = cache_stats() if profile else None
    started = time.perf_counter()
    if profile:
        with _trace.capture() as tracer:
            results, errors = run_workloads_fleet(
                missions, labels=labels, group=group, shared_world=shared
            )
    else:
        results, errors = run_workloads_fleet(
            missions, labels=labels, group=group, shared_world=shared
        )
    wall_time_s = time.perf_counter() - started
    if profile:
        by_mission = spans_by_mission(tracer.spans)
        metrics = tracer.metrics.snapshot()
        cache_after = cache_stats()
        shared_cache = {
            "hits": cache_after["hits"] - cache_before["hits"],
            "misses": cache_after["misses"] - cache_before["misses"],
            "size": cache_after["size"],
        }
        fleet_block = {
            "group": group,
            "members": len(runs),
            "shared_world": shared,
            "gate": fleet_gate_stats(metrics),
        }
    records = []
    for i, (run, result, error) in enumerate(zip(runs, results, errors)):
        record = _base_record(run)
        if result is not None:
            _fill_success(record, run, result)
            if shared:
                # Mirror the scenario-injection contract: a rank we
                # injected is stripped back out of the echoed kwargs
                # (config.workload_kwargs mirrors the spec), while the
                # member actually flown lands as explicit provenance.
                if injected[i]:
                    record["config"]["workload_kwargs"].pop("member", None)
                record["config"]["fleet_member"] = members[i]
        else:
            _fill_error(
                record,
                error
                if error is not None
                else RuntimeError("fleet mission produced no result"),
            )
        record["wall_time_s"] = wall_time_s
        if profile:
            record["profile"] = {
                "schema": PROFILE_SCHEMA,
                "phases": summarize_spans(by_mission.get(labels[i], [])),
                "metrics": metrics,
                "scenario_cache": shared_cache,
                "queue_wait_s": 0.0,
                "fleet": fleet_block,
            }
        records.append(record)
    return records


def _scenario_batch_key(run: RunSpec) -> Optional[str]:
    """The content hash of the world ``run`` will fly, or ``None``.

    Runs flying the same resolved scenario (seed inheritance applied)
    share a cached world and batch together; canonical-world runs
    (``None``) build a fresh per-workload world each time, so batching
    them buys nothing and they stay singleton tasks.
    """
    if run.scenario is None:
        return None
    return ScenarioSpec.coerce(run.scenario).resolved(run.seed).scenario_key


#: Upper bound on runs per pool task.  Results flush to the store per
#: *task*, so this caps how many finished missions an interrupted or
#: crashed chunk can lose to re-execution on ``--resume`` — while still
#: amortizing each cached world over up to this many runs.
MAX_BATCH_RUNS = 8


def _batch_pending(
    pending: List[RunSpec], jobs: int, batch: bool
) -> List[List[RunSpec]]:
    """Partition pending runs into pool tasks.

    With ``batch=True``, runs sharing a scenario hash become contiguous
    chunks (amortizing world instantiation), capped at an even
    ``len(pending)/jobs`` split — so one giant scenario group cannot
    serialize the whole pool — and at :data:`MAX_BATCH_RUNS` — so a
    killed campaign re-executes at most that many missions per in-flight
    chunk.  Scenario-less runs — and everything when ``batch=False`` —
    submit as singleton tasks, the pre-batching behavior.
    """
    if not batch:
        return [[run] for run in pending]
    cap = max(1, min(math.ceil(len(pending) / max(jobs, 1)), MAX_BATCH_RUNS))
    groups: Dict[str, List[RunSpec]] = {}
    order: List[List[RunSpec]] = []
    for run in pending:
        key = _scenario_batch_key(run)
        if key is None:
            order.append([run])
            continue
        group = groups.get(key)
        if group is None or len(group) >= cap:
            group = []
            groups[key] = group
            order.append(group)
        group.append(run)
    return order


def _fleet_groups(pending: List[RunSpec], cap: int) -> List[List[RunSpec]]:
    """Partition pending runs into fleets of at most ``cap`` members.

    Runs sharing a resolved scenario key fly together (they tick in
    near-lockstep over the same world, so the batched kernels amortize
    best); canonical-world runs group per workload, whose missions share
    a per-tick rhythm even though each builds its own world.  Expansion
    order is preserved within and across groups so the store commits in
    a deterministic order.
    """
    groups: Dict[str, List[RunSpec]] = {}
    order: List[List[RunSpec]] = []
    for run in pending:
        key = _scenario_batch_key(run) or f"canonical:{run.workload}"
        group = groups.get(key)
        if group is None or len(group) >= cap:
            group = []
            groups[key] = group
            order.append(group)
        group.append(run)
    return order


def _worker_failure_record(
    run: RunSpec, exc: BaseException, elapsed_s: float = 0.0
) -> Dict[str, Any]:
    """Record for a run whose *worker process* died (e.g. pool breakage).

    ``elapsed_s`` is the wall time since the run's chunk was submitted to
    the pool — the best honest bound on what the dead worker spent, and
    what ``wall_time_s`` reports (historically this was a ``0.0``
    placeholder, which made failed cells look free in aggregations).
    """
    return {
        "schema": RECORD_SCHEMA,
        "run_key": run.run_key,
        "spec": run.payload(),
        "status": "error",
        "error": f"worker failed: {type(exc).__name__}: {exc}",
        "wall_time_s": max(elapsed_s, 0.0),
    }


@dataclass
class CampaignReport:
    """Everything ``run_campaign`` learned, in spec-expansion order."""

    spec: CampaignSpec
    runs: List[RunSpec]
    records: List[Dict[str, Any]]
    executed: int = 0
    cached: int = 0
    failed: int = 0
    store_path: Optional[str] = None
    errors: List[Dict[str, Any]] = field(default_factory=list)
    #: ``(index, count)`` when this report covers one shard of the spec.
    shard: Optional[Tuple[int, int]] = None

    def record_for(self, run_key: str) -> Dict[str, Any]:
        for record in self.records:
            if record["run_key"] == run_key:
                return record
        raise KeyError(f"no record for run key '{run_key}'")

    def summary(self) -> str:
        status = "OK" if not self.failed else f"{self.failed} FAILED"
        scope = (
            f"shard {self.shard[0]}/{self.shard[1]}: "
            if self.shard is not None
            else ""
        )
        return (
            f"campaign [{status}]: {scope}{len(self.runs)} runs "
            f"({self.executed} executed, {self.cached} cached)"
        )


ProgressFn = Callable[[Dict[str, Any]], None]


def run_campaign(
    spec: CampaignSpec,
    jobs: int = 1,
    store: Optional[CampaignStore] = None,
    progress: Optional[ProgressFn] = None,
    shard: Optional[Tuple[int, int]] = None,
    batch: bool = True,
    profile: bool = False,
    fleet_batch: Optional[int] = None,
) -> CampaignReport:
    """Run (or finish) a campaign — or one shard of it.

    Parameters
    ----------
    spec:
        The declarative study matrix.
    jobs:
        Worker processes.  ``1`` runs every mission in-process — the
        reference mode for determinism checks; ``N>1`` fans missions out
        over a ``ProcessPoolExecutor``.
    store:
        Optional :class:`CampaignStore`.  Runs with a *successful* record
        already in the store are not re-executed (resume / cache hits);
        stored error rows are retried and overwritten.  New results are
        flushed to the store as they complete.
    progress:
        Called with each freshly executed record (completion order).
    shard:
        Optional 1-based ``(index, count)``: execute only the runs
        :meth:`CampaignSpec.shard` assigns to this shard.  The report
        (and the store) then covers exactly that subset; merge the
        per-shard stores with :func:`~repro.campaign.store.merge_stores`.
    batch:
        Group pool tasks by scenario content hash so runs flying the
        same world amortize its instantiation (one cache miss per batch
        instead of one per worker).  Record content is unaffected —
        cached worlds are snapshot-isolated — so this is on by default;
        ``False`` restores one-task-per-run submission.
    profile:
        Attach an opt-in ``"profile"`` dict to every freshly executed
        record: per-phase span times, a metrics snapshot, the run's
        scenario-cache delta, and its pool queue wait.  Off by default —
        records (and therefore run hashes, stores, and goldens) are
        byte-identical to the unprofiled ones when disabled.
    fleet_batch:
        Fly pending runs as fleets of up to this many missions through
        :func:`execute_runs_fleet` (grouped by resolved scenario key, or
        per workload for canonical-world runs).  Stored records are
        byte-identical to sequential execution except ``wall_time_s``,
        which becomes the fleet's shared wall clock.  Groups flying a
        member-routed scenario family (``shared_city``) automatically
        fly as *shared-world* fleets with cross-member sensing and
        conflict resolution — see :func:`execute_runs_fleet`.
        In-process only — combining with ``jobs>1`` is an error.  Composes with
        ``profile=True`` (per-mission phase trees split from one shared
        fleet trace, plus per-group gate stats) and with an installed
        tracer (``repro campaign timeline``: every fleet group becomes
        a process lane in the campaign-wide trace).
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    if fleet_batch is not None and fleet_batch < 1:
        raise ValueError("fleet_batch must be >= 1")
    if fleet_batch is not None and fleet_batch > 1 and jobs > 1:
        raise ValueError(
            "fleet_batch batches missions in-process; use jobs=1 "
            "(process parallelism and fleet batching don't compose)"
        )
    runs = spec.expand() if shard is None else spec.shard(*shard)

    def _cached_ok(run: RunSpec) -> bool:
        # Only successful rows count as cache hits: error rows re-execute
        # on resume (and their rewrite supersedes the old line, since the
        # store is last-write-wins).
        if store is None:
            return False
        record = store.get(run.run_key)
        return record is not None and record.get("status") == "ok"

    pending = [r for r in runs if not _cached_ok(r)]
    fresh: Dict[str, Dict[str, Any]] = {}

    def _commit(run: RunSpec, record: Dict[str, Any]) -> None:
        fresh[run.run_key] = record
        if store is not None:
            with _trace.span("campaign.store_append", "campaign"):
                store.add(record)
        if progress is not None:
            progress(record)

    use_fleet = fleet_batch is not None and fleet_batch > 1
    if jobs == 1 or len(pending) <= 1:
        if use_fleet:
            # Fleet mode: chunks fly as lockstep batches; records commit
            # per run, in chunk order, exactly as sequential mode would.
            # Each group gets its own trace process lane (timeline mode)
            # and its own gate-stats block (profile mode).
            for gi, chunk in enumerate(_fleet_groups(pending, fleet_batch)):
                chunk_records = execute_runs_fleet(
                    chunk, profile=profile, group=f"fleet-{gi}"
                )
                for run, record in zip(chunk, chunk_records):
                    _commit(run, record)
        else:
            # In-process execution shares this process's scenario cache
            # already — no batching needed for amortization.  Queue wait
            # is zero by construction: each run starts the moment it is
            # due.  Under an outer tracer (`repro campaign timeline`)
            # each run's spans collect on a mission stream named after
            # its label, so even a sequential campaign renders one
            # swimlane per run.
            for run in pending:
                with _trace.mission_scope(run.label(), group="campaign"):
                    with _trace.span("campaign.execute", "campaign") as _sp:
                        _sp.set(run_key=run.run_key)
                        record = execute_run(
                            run,
                            profile=profile,
                            queue_wait_s=0.0 if profile else None,
                        )
                _commit(run, record)
    else:
        batches = _batch_pending(pending, jobs, batch)
        with ProcessPoolExecutor(max_workers=min(jobs, len(batches))) as pool:
            submitted: Dict[Any, float] = {}
            futures = {}
            for chunk in batches:
                stamp = time.monotonic()
                future = pool.submit(execute_runs, chunk, profile, stamp)
                futures[future] = chunk
                submitted[future] = stamp
            for future in as_completed(futures):
                chunk = futures[future]
                try:
                    chunk_records = future.result()
                except Exception as exc:  # worker process died
                    elapsed_s = time.monotonic() - submitted[future]
                    chunk_records = [
                        _worker_failure_record(run, exc, elapsed_s)
                        for run in chunk
                    ]
                for run, record in zip(chunk, chunk_records):
                    _commit(run, record)

    records: List[Dict[str, Any]] = []
    for run in runs:
        record = fresh.get(run.run_key)
        if record is None and store is not None:
            record = store.get(run.run_key)
        if record is None:  # unreachable unless the store was mutated
            record = _worker_failure_record(run, RuntimeError("record lost"))
        records.append(record)
    errors = [r for r in records if r.get("status") != "ok"]
    return CampaignReport(
        spec=spec,
        runs=runs,
        records=records,
        executed=len(fresh),
        cached=len(runs) - len(pending),
        failed=len(errors),
        store_path=str(store.path) if store is not None else None,
        errors=errors,
        shard=shard,
    )
