"""Reduce stored campaign runs to the shapes the figures consume.

``aggregate_sweep`` turns campaign records back into the
``SweepResult``/``SweepCell`` heatmap grid of Figs. 10-14, with the same
per-cell seed averaging (and the same arithmetic, in the same order) as
the historical sequential ``sweep_operating_points`` loop — so a
campaign run with ``jobs=8`` and a resumed store reduces to the exact
floats the old code produced.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..analysis.sweep import SweepCell, SweepResult
from .runner import CampaignRunError
from .spec import CampaignSpec, RunSpec


#: Sentinel for "any scenario" (``None`` means the canonical world).
ANY_SCENARIO = object()


def _record_scenario(spec: Dict[str, Any]) -> Optional[Dict[str, Any]]:
    """The scenario a recorded run flew, whichever route it arrived by:
    the first-class axis (``spec['scenario']``) or a caller-supplied
    ``workload_kwargs['scenario']`` — so canonical-baseline filters can
    never accidentally absorb scenario runs."""
    scenario = spec.get("scenario")
    if scenario is not None:
        return scenario
    kwargs_scenario = spec.get("workload_kwargs", {}).get("scenario")
    if kwargs_scenario is None:
        return None
    from ..scenarios import ScenarioSpec

    return ScenarioSpec.coerce(kwargs_scenario).payload()


def select_records(
    records: Iterable[Dict[str, Any]],
    workload: Optional[str] = None,
    depth_noise_std: Optional[float] = None,
    scenario: Any = ANY_SCENARIO,
) -> List[Dict[str, Any]]:
    """Filter campaign records to one workload / noise level / scenario.

    ``scenario`` matches the run's scenario payload exactly; pass ``None``
    to select only canonical-world (no-scenario) runs, and leave the
    default to select every run regardless of scenario.
    """
    selected = []
    for record in records:
        spec = record.get("spec", {})
        if workload is not None and spec.get("workload") != workload:
            continue
        if depth_noise_std is not None and not np.isclose(
            spec.get("depth_noise_std", 0.0), depth_noise_std
        ):
            continue
        if scenario is not ANY_SCENARIO and _record_scenario(spec) != scenario:
            continue
        selected.append(record)
    return selected


def missing_runs(
    spec: CampaignSpec, records: Iterable[Dict[str, Any]]
) -> List[RunSpec]:
    """Expansion entries without a successful record — the coverage gap.

    The completeness check behind sharded studies: after merging shard
    stores, an empty return means the merged store covers the whole
    matrix; a non-empty one names exactly the runs (e.g. whole missing
    shards) still to execute.
    """
    done = {
        r["run_key"] for r in records if r.get("status") == "ok" and "run_key" in r
    }
    return [run for run in spec.expand() if run.run_key not in done]


def records_in_spec_order(
    spec: CampaignSpec, records: Iterable[Dict[str, Any]]
) -> List[Dict[str, Any]]:
    """Reorder ``records`` into ``spec``'s expansion order.

    Merged shard stores are sorted by run hash; reductions, however,
    promise the *legacy sequential loop's* arithmetic, which averages
    seeds in expansion order.  This restores that order (last record
    wins per key, matching store semantics) and raises ``KeyError``
    naming the first gap if any expansion entry has no record at all —
    an unmerged shard must not silently reduce to a thinner heatmap.
    """
    by_key = {r["run_key"]: r for r in records if "run_key" in r}
    ordered = []
    for run in spec.expand():
        record = by_key.get(run.run_key)
        if record is None:
            raise KeyError(
                f"no record for {run.label()} (key {run.run_key}) — "
                "did every shard run and merge?"
            )
        ordered.append(record)
    return ordered


def aggregate_sweep(
    records: Iterable[Dict[str, Any]],
    workload: str,
    depth_noise_std: Optional[float] = None,
) -> SweepResult:
    """Reduce run records to the per-operating-point heatmap grid.

    Records must all be ``status="ok"``; failed runs raise
    :class:`CampaignRunError` naming the broken rows (re-run the
    campaign with ``--resume`` to retry exactly those).  Cell order
    follows first appearance in ``records`` (i.e. spec grid order), and
    seeds average in record order, matching the legacy sweep loop.
    """
    selected = select_records(
        records, workload=workload, depth_noise_std=depth_noise_std
    )
    if not selected:
        raise ValueError(
            f"no campaign records for workload '{workload}'"
            + (
                f" at depth_noise_std={depth_noise_std}"
                if depth_noise_std is not None
                else ""
            )
        )
    broken = [r for r in selected if r.get("status") != "ok"]
    if broken:
        details = "; ".join(
            f"{RunSpec.from_payload(r['spec']).label()}: "
            f"{r.get('error', 'unknown error')}"
            for r in broken[:5]
        )
        raise CampaignRunError(
            f"{len(broken)} of {len(selected)} runs failed for "
            f"'{workload}' — {details}"
        )

    by_op: Dict[Tuple[int, float], List[Dict[str, Any]]] = {}
    op_order: List[Tuple[int, float]] = []
    for record in selected:
        spec = record["spec"]
        op = (int(spec["cores"]), float(spec["frequency_ghz"]))
        if op not in by_op:
            by_op[op] = []
            op_order.append(op)
        by_op[op].append(record)

    cells: List[SweepCell] = []
    for cores, freq in op_order:
        velocities, times, energies, successes = [], [], [], []
        extras: Dict[str, List[float]] = {}
        for record in by_op[(cores, freq)]:
            report = record["report"]
            velocities.append(report["average_velocity_ms"])
            times.append(report["mission_time_s"])
            energies.append(report["total_energy_j"] / 1000.0)
            successes.append(1.0 if report["success"] else 0.0)
            for key, value in report.get("extra", {}).items():
                extras.setdefault(key, []).append(value)
        cells.append(
            SweepCell(
                cores=cores,
                frequency_ghz=freq,
                velocity_ms=float(np.mean(velocities)),
                mission_time_s=float(np.mean(times)),
                energy_kj=float(np.mean(energies)),
                success_rate=float(np.mean(successes)),
                extra={k: float(np.mean(v)) for k, v in extras.items()},
            )
        )
    return SweepResult(workload=workload, cells=cells)


def success_table(records: Iterable[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """One row per run: identity, outcome, and headline metrics.

    The generic flat reduction for studies that are not heatmaps
    (noise-reliability tables, multi-workload comparisons).
    """
    rows = []
    for record in records:
        spec = record.get("spec", {})
        report = record.get("report") or {}
        rows.append(
            {
                "run_key": record.get("run_key"),
                "workload": spec.get("workload"),
                "cores": spec.get("cores"),
                "frequency_ghz": spec.get("frequency_ghz"),
                "seed": spec.get("seed"),
                "depth_noise_std": spec.get("depth_noise_std"),
                "status": record.get("status"),
                "success": report.get("success"),
                "mission_time_s": report.get("mission_time_s"),
                "average_velocity_ms": report.get("average_velocity_ms"),
                "energy_kj": (
                    report["total_energy_j"] / 1000.0
                    if "total_energy_j" in report
                    else None
                ),
                "error": record.get("error"),
            }
        )
    return rows
