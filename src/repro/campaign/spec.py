"""Declarative campaign specifications.

A *campaign* is the unit behind every headline result in the paper
(Figs. 10-14, 16, 19, Table II): a grid of closed-loop missions over
workloads x operating points x seeds x sensor-noise levels.  This module
describes such a study declaratively:

* :class:`RunSpec` — one mission's full configuration, with a
  content-hash ``run_key`` that names the run in result stores;
* :class:`CampaignSpec` — the study matrix, expanding deterministically
  into a stably-ordered, collision-checked list of :class:`RunSpec`\\ s.

Expansion order is ``workload -> scenario -> operating point -> noise
level -> seed`` (outer to inner), which keeps per-cell seed averages
bit-identical to the historical sequential sweep loop (and, with the
default scenario axis of ``[None]``, the whole matrix identical to the
pre-scenario engine).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..analysis.sweep import DEFAULT_GRID, OperatingPoint
from ..core.workloads import WORKLOADS
from ..scenarios import ScenarioSpec
from ..scenarios.spec import canonical_json

__all__ = [
    "CampaignSpec",
    "DEFAULT_GRID",
    "OperatingPoint",
    "RunSpec",
    "parse_grid",
    "parse_scenarios",
    "parse_shard",
    "shard_index",
]


# Content hashing uses the one canonical-JSON recipe shared with
# ScenarioSpec (scenarios/spec.py) so run keys and scenario keys can
# never diverge in format; non-JSON values (e.g. a ``PlatformSpec``
# passed through ``sim_kwargs`` by an in-process caller) degrade to
# their ``repr``.
_canonical = canonical_json


@dataclass
class RunSpec:
    """One mission run: everything ``run_workload`` needs, plus a stable key."""

    workload: str
    cores: int
    frequency_ghz: float
    seed: int
    depth_noise_std: float = 0.0
    workload_kwargs: Dict[str, Any] = field(default_factory=dict)
    sim_kwargs: Dict[str, Any] = field(default_factory=dict)
    scenario: Optional[Dict[str, Any]] = None

    def __post_init__(self) -> None:
        # Normalize the numeric axes so e.g. grid entry (4, 2) and
        # (4, 2.0) name the same run.
        self.cores = int(self.cores)
        self.frequency_ghz = float(self.frequency_ghz)
        self.seed = int(self.seed)
        self.depth_noise_std = float(self.depth_noise_std)
        if self.scenario is not None:
            if "scenario" in self.workload_kwargs:
                # The runner injects the axis entry into workload_kwargs;
                # letting a kwargs-level scenario coexist would hash both
                # but execute only one, mislabeling the stored record.
                raise ValueError(
                    "pass the scenario through the scenario axis OR "
                    "workload_kwargs['scenario'], not both"
                )
            # Normalize tokens/specs to the canonical payload so e.g.
            # "urban:0.7" and {"family": "urban", "difficulty": 0.7}
            # name the same run.
            self.scenario = ScenarioSpec.coerce(self.scenario).payload()

    def payload(self) -> Dict[str, Any]:
        """The JSON-shaped identity of this run (what ``run_key`` hashes).

        The ``scenario`` key appears only when a scenario is injected, so
        every pre-scenario run key (and therefore every existing result
        store) remains valid.
        """
        data = {
            "workload": self.workload,
            "cores": self.cores,
            "frequency_ghz": self.frequency_ghz,
            "seed": self.seed,
            "depth_noise_std": self.depth_noise_std,
            "workload_kwargs": dict(self.workload_kwargs),
            "sim_kwargs": dict(self.sim_kwargs),
        }
        if self.scenario is not None:
            data["scenario"] = dict(self.scenario)
        return data

    @property
    def run_key(self) -> str:
        """16-hex-char content hash naming this run in stores."""
        return hashlib.sha256(_canonical(self.payload()).encode()).hexdigest()[:16]

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "RunSpec":
        return cls(
            workload=payload["workload"],
            cores=payload["cores"],
            frequency_ghz=payload["frequency_ghz"],
            seed=payload["seed"],
            depth_noise_std=payload.get("depth_noise_std", 0.0),
            workload_kwargs=dict(payload.get("workload_kwargs", {})),
            sim_kwargs=dict(payload.get("sim_kwargs", {})),
            scenario=payload.get("scenario"),
        )

    def label(self) -> str:
        """Compact human-readable name for progress lines."""
        parts = [
            self.workload,
            f"{self.cores}c@{self.frequency_ghz:g}GHz",
            f"seed={self.seed}",
        ]
        if self.scenario is not None:
            parts.insert(1, ScenarioSpec.from_payload(self.scenario).label())
        if self.depth_noise_std:
            parts.append(f"noise={self.depth_noise_std:g}")
        return " ".join(parts)


@dataclass
class CampaignSpec:
    """A declarative mission study: workloads x scenarios x grid x noise x seeds.

    Attributes
    ----------
    workloads:
        Workload names (validated against the registry at construction).
    grid:
        Operating points ``(cores, frequency_ghz)``; defaults to the
        paper's full 3x3 TX2 grid.
    seeds:
        Seeds averaged per cell by the sweep aggregator.
    depth_noise_levels:
        RGB-D depth-noise standard deviations (the Table II axis).
    scenarios:
        Scenario axis entries: ``None`` (each workload's canonical
        hard-wired world), a ``"family:difficulty[:seed]"`` token, a
        scenario payload dict, or a :class:`~repro.scenarios.ScenarioSpec`.
        Defaults to ``[None]`` — no scenario axis, identical to the
        pre-scenario engine.
    workload_kwargs:
        Per-workload constructor overrides, keyed by workload name.
    sim_kwargs:
        Extra ``make_simulation`` arguments applied to every run; must be
        JSON-serializable for specs that live in files/stores.
    """

    workloads: List[str]
    grid: List[OperatingPoint] = field(default_factory=lambda: list(DEFAULT_GRID))
    seeds: List[int] = field(default_factory=lambda: [1])
    depth_noise_levels: List[float] = field(default_factory=lambda: [0.0])
    scenarios: List[Optional[Any]] = field(default_factory=lambda: [None])
    workload_kwargs: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    sim_kwargs: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.workloads:
            raise ValueError("campaign needs at least one workload")
        unknown = sorted(set(self.workloads) - set(WORKLOADS))
        if unknown:
            raise KeyError(
                f"unknown workloads {unknown} (choose from {sorted(WORKLOADS)})"
            )
        stray = sorted(set(self.workload_kwargs) - set(self.workloads))
        if stray:
            raise KeyError(
                f"workload_kwargs for workloads not in the campaign: {stray}"
            )
        if not self.grid:
            raise ValueError("campaign needs at least one operating point")
        if not self.seeds:
            raise ValueError("campaign needs at least one seed")
        if not self.depth_noise_levels:
            raise ValueError("campaign needs at least one depth-noise level")
        if not self.scenarios:
            raise ValueError(
                "campaign needs at least one scenario entry (use [None] "
                "for the canonical per-workload worlds)"
            )
        self.grid = [(int(c), float(f)) for c, f in self.grid]
        # Normalize the scenario axis to canonical payloads (validating
        # family names and difficulty bounds eagerly).
        self.scenarios = [
            None if s is None else ScenarioSpec.coerce(s).payload()
            for s in self.scenarios
        ]

    @property
    def campaign_key(self) -> str:
        """16-hex-char content hash naming this campaign.

        Hashes the canonical serialized form (:meth:`to_dict`), so two
        specs that expand to the same matrix under different axis
        *orderings* get different keys — the key names the study as
        declared, and anchors the on-disk sharded store layout
        (``<root>/<campaign_key>/shard-*.jsonl``).
        """
        return hashlib.sha256(_canonical(self.to_dict()).encode()).hexdigest()[:16]

    @property
    def run_count(self) -> int:
        return (
            len(self.workloads)
            * len(self.scenarios)
            * len(self.grid)
            * len(self.depth_noise_levels)
            * len(self.seeds)
        )

    def expand(self) -> List[RunSpec]:
        """The full, stably-ordered run matrix.

        Order: workload (outer) -> scenario -> grid -> noise level ->
        seed (inner), which keeps per-cell seed averages bit-identical to
        the historical sequential sweep loop (and, with the default
        ``scenarios=[None]``, the whole matrix identical to the
        pre-scenario engine).  Raises ``ValueError`` if two entries
        collapse to the same run key (e.g. a duplicated seed), so a store
        can never silently merge two intended runs into one.
        """
        runs: List[RunSpec] = []
        for workload in self.workloads:
            kwargs = dict(self.workload_kwargs.get(workload, {}))
            for scenario in self.scenarios:
                for cores, freq in self.grid:
                    for noise in self.depth_noise_levels:
                        for seed in self.seeds:
                            runs.append(
                                RunSpec(
                                    workload=workload,
                                    cores=cores,
                                    frequency_ghz=freq,
                                    seed=seed,
                                    depth_noise_std=noise,
                                    workload_kwargs=dict(kwargs),
                                    sim_kwargs=dict(self.sim_kwargs),
                                    scenario=(
                                        None if scenario is None
                                        else dict(scenario)
                                    ),
                                )
                            )
        keys = [r.run_key for r in runs]
        if len(set(keys)) != len(keys):
            seen: Dict[str, RunSpec] = {}
            for run in runs:
                if run.run_key in seen:
                    raise ValueError(
                        f"duplicate run in campaign: {run.label()} "
                        f"(key {run.run_key})"
                    )
                seen[run.run_key] = run
        return runs

    def shard(self, index: int, count: int) -> List[RunSpec]:
        """The subset of :meth:`expand` owned by shard ``index`` of ``count``.

        Shards are 1-based (matching the CLI's ``--shard I/N``).  A run's
        shard is a pure function of its content hash (:func:`shard_index`),
        so the partition is

        * **order-independent** — reordering seeds, workloads, or grid
          entries never moves a run between shards;
        * **extension-stable** — adding seeds (or any axis values) to the
          spec assigns the *new* runs to shards without migrating any
          existing run, so per-shard stores stay valid as a study grows;
        * **deterministic across hosts** — every host slicing the same
          spec agrees on the partition with no coordination.

        Hash partitioning balances shards statistically, not exactly: a
        tiny matrix can leave a shard empty (still a valid, mergeable
        no-op shard).
        """
        if count < 1:
            raise ValueError("shard count must be >= 1")
        if not 1 <= index <= count:
            raise ValueError(
                f"shard index must be in 1..{count} (got {index})"
            )
        return [
            run
            for run in self.expand()
            if shard_index(run.run_key, count) == index
        ]

    # ------------------------------------------------------------------
    # (De)serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        data = {
            "schema": "campaign-spec/1",
            "workloads": list(self.workloads),
            "grid": [[c, f] for c, f in self.grid],
            "seeds": list(self.seeds),
            "depth_noise_levels": list(self.depth_noise_levels),
            "workload_kwargs": {k: dict(v) for k, v in self.workload_kwargs.items()},
            "sim_kwargs": dict(self.sim_kwargs),
        }
        # Written only when the axis is in use, so spec files from before
        # the scenario subsystem round-trip byte-for-byte.
        if self.scenarios != [None]:
            data["scenarios"] = [
                None if s is None else dict(s) for s in self.scenarios
            ]
        return data

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CampaignSpec":
        known = {
            "workloads", "grid", "seeds", "depth_noise_levels",
            "scenarios", "workload_kwargs", "sim_kwargs",
        }
        stray = sorted(set(data) - known - {"schema"})
        if stray:
            raise KeyError(f"unknown campaign-spec fields: {stray}")
        spec = cls(workloads=list(data["workloads"]))
        if "grid" in data:
            spec.grid = [(int(c), float(f)) for c, f in data["grid"]]
        if "seeds" in data:
            spec.seeds = [int(s) for s in data["seeds"]]
        if "depth_noise_levels" in data:
            spec.depth_noise_levels = [float(n) for n in data["depth_noise_levels"]]
        if "scenarios" in data:
            spec.scenarios = list(data["scenarios"])
        if "workload_kwargs" in data:
            spec.workload_kwargs = {
                k: dict(v) for k, v in data["workload_kwargs"].items()
            }
        if "sim_kwargs" in data:
            spec.sim_kwargs = dict(data["sim_kwargs"])
        spec.__post_init__()  # re-validate the overridden fields
        return spec

    @classmethod
    def from_json(cls, text: str) -> "CampaignSpec":
        return cls.from_dict(json.loads(text))

    @classmethod
    def from_file(cls, path: Union[str, Path]) -> "CampaignSpec":
        return cls.from_json(Path(path).read_text())


def parse_scenarios(tokens: Sequence[str]) -> List[Optional[Dict[str, Any]]]:
    """Parse CLI scenario tokens like ``["urban:0.3", "urban:0.9", "default"]``.

    The literal token ``default`` (or ``none``) stands for the canonical
    per-workload world, so a sweep can include the pre-scenario baseline
    as one axis value.
    """
    entries: List[Optional[Dict[str, Any]]] = []
    for token in tokens:
        if token.lower() in ("default", "none"):
            entries.append(None)
        else:
            entries.append(ScenarioSpec.coerce(token).payload())
    return entries


def shard_index(run_key: str, count: int) -> int:
    """The 1-based shard owning ``run_key`` in a ``count``-way partition.

    Stable partition by content hash: depends only on the run's identity
    (its 16-hex ``run_key``) and the shard count — never on expansion
    order or on what else is in the campaign.
    """
    if count < 1:
        raise ValueError("shard count must be >= 1")
    return int(run_key, 16) % count + 1


def parse_shard(token: str) -> Tuple[int, int]:
    """Parse a CLI shard token ``"I/N"`` into 1-based ``(index, count)``.

    Rejects malformed tokens, ``0/N``, negative values, and ``I > N``.
    """
    index_s, sep, count_s = token.partition("/")
    if not sep:
        raise ValueError(f"bad shard '{token}' (expected I/N, e.g. 1/4)")
    try:
        index, count = int(index_s), int(count_s)
    except ValueError:
        raise ValueError(
            f"bad shard '{token}' (expected I/N, e.g. 1/4)"
        ) from None
    if count < 1:
        raise ValueError(f"bad shard '{token}': count must be >= 1")
    if not 1 <= index <= count:
        raise ValueError(
            f"bad shard '{token}': index must be in 1..{count}"
        )
    return index, count


def parse_grid(tokens: Sequence[str]) -> List[OperatingPoint]:
    """Parse CLI grid tokens like ``["2x0.8", "4x2.2"]``."""
    grid: List[OperatingPoint] = []
    for token in tokens:
        try:
            cores_s, _, freq_s = token.partition("x")
            grid.append((int(cores_s), float(freq_s)))
        except ValueError:
            raise ValueError(
                f"bad operating point '{token}' (expected CORESxGHZ, e.g. 4x2.2)"
            ) from None
    return grid
