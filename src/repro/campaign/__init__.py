"""Campaign engine: declarative, parallel, resumable mission studies.

The layer that turns "run one mission" into "run a study at scale":

* :mod:`~repro.campaign.spec` — :class:`CampaignSpec` declares a grid of
  workloads x operating points x seeds x noise levels and expands it
  into stably-ordered, content-hashed :class:`RunSpec`\\ s;
* :mod:`~repro.campaign.runner` — :func:`run_campaign` executes the
  matrix serially or across a process pool with per-run fault isolation;
* :mod:`~repro.campaign.store` — :class:`CampaignStore`, a JSONL result
  store keyed by run hash that makes campaigns resumable and re-runs
  cache hits;
* :mod:`~repro.campaign.aggregate` — reductions back into the
  ``SweepResult`` heatmap shapes the paper figures consume.

``analysis.sweep.sweep_operating_points``, the Fig. 10-14 benchmarks,
and ``python -m repro campaign`` all run on top of this engine.
"""

from .aggregate import ANY_SCENARIO, aggregate_sweep, select_records, success_table
from .runner import (
    CampaignReport,
    CampaignRunError,
    execute_run,
    run_campaign,
)
from .spec import DEFAULT_GRID, CampaignSpec, RunSpec, parse_grid, parse_scenarios
from .store import RECORD_SCHEMA, CampaignStore

__all__ = [
    "ANY_SCENARIO",
    "CampaignReport",
    "CampaignRunError",
    "CampaignSpec",
    "CampaignStore",
    "DEFAULT_GRID",
    "RECORD_SCHEMA",
    "RunSpec",
    "aggregate_sweep",
    "execute_run",
    "parse_grid",
    "parse_scenarios",
    "run_campaign",
    "select_records",
    "success_table",
]
