"""Campaign engine: declarative, parallel, resumable mission studies.

The layer that turns "run one mission" into "run a study at scale":

* :mod:`~repro.campaign.spec` — :class:`CampaignSpec` declares a grid of
  workloads x operating points x seeds x noise levels and expands it
  into stably-ordered, content-hashed :class:`RunSpec`\\ s;
* :mod:`~repro.campaign.runner` — :func:`run_campaign` executes the
  matrix serially or across a process pool with per-run fault isolation;
* :mod:`~repro.campaign.store` — :class:`CampaignStore`, a JSONL result
  store keyed by run hash that makes campaigns resumable and re-runs
  cache hits;
* :mod:`~repro.campaign.aggregate` — reductions back into the
  ``SweepResult`` heatmap shapes the paper figures consume.

Campaigns scale out by sharding: :meth:`CampaignSpec.shard` splits the
matrix deterministically by run hash, each shard persists to its own
JSONL under a campaign-hash directory, and :func:`merge_stores` folds
the shards back into one canonical store — ``repro campaign --shard I/N``
and ``repro campaign merge`` are the CLI faces.

``analysis.sweep.sweep_operating_points``, the Fig. 10-14 benchmarks,
and ``python -m repro campaign`` all run on top of this engine.
"""

from .aggregate import (
    ANY_SCENARIO,
    aggregate_sweep,
    missing_runs,
    records_in_spec_order,
    select_records,
    success_table,
)
from .runner import (
    PROFILE_SCHEMA,
    CampaignReport,
    CampaignRunError,
    execute_run,
    execute_runs,
    execute_runs_fleet,
    run_campaign,
)
from .spec import (
    DEFAULT_GRID,
    CampaignSpec,
    RunSpec,
    parse_grid,
    parse_scenarios,
    parse_shard,
    shard_index,
)
from .store import (
    MERGED_STORE_NAME,
    RECORD_SCHEMA,
    CampaignStore,
    MergeReport,
    campaign_dir,
    merge_stores,
    shard_paths,
    shard_store_path,
)

__all__ = [
    "ANY_SCENARIO",
    "CampaignReport",
    "CampaignRunError",
    "CampaignSpec",
    "CampaignStore",
    "DEFAULT_GRID",
    "MERGED_STORE_NAME",
    "MergeReport",
    "PROFILE_SCHEMA",
    "RECORD_SCHEMA",
    "RunSpec",
    "aggregate_sweep",
    "campaign_dir",
    "execute_run",
    "execute_runs",
    "execute_runs_fleet",
    "merge_stores",
    "missing_runs",
    "parse_grid",
    "parse_scenarios",
    "parse_shard",
    "records_in_spec_order",
    "run_campaign",
    "select_records",
    "shard_index",
    "shard_paths",
    "shard_store_path",
    "success_table",
]
