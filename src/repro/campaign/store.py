"""JSONL-on-disk campaign result store.

One line per completed (or failed) mission run, keyed by the run's
content hash.  Append-only with a per-record flush, so a campaign killed
mid-flight loses at most the mission that was being written; on reload,
a truncated trailing line is skipped rather than poisoning the store.
Re-running a spec against the same store turns finished rows into cache
hits — that is the whole resume story.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Union

#: Per-record schema tag written into every line.
RECORD_SCHEMA = "campaign-run/1"


class CampaignStore:
    """Append-only JSONL store of campaign run records.

    Parameters
    ----------
    path:
        The JSONL file; created (with parents) on first write.
    fresh:
        Discard any existing content instead of loading it — the
        "start over" mode of the CLI when ``--resume`` is not given.
    """

    def __init__(self, path: Union[str, Path], fresh: bool = False) -> None:
        self.path = Path(path)
        self._records: Dict[str, Dict[str, Any]] = {}
        self._skipped_lines = 0
        if fresh:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self.path.write_text("")
        elif self.path.exists():
            self._load()

    def _load(self) -> None:
        for line in self.path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                # Crash-truncated tail (or unrelated garbage): skip the
                # line; the missing run simply re-executes on resume.
                self._skipped_lines += 1
                continue
            key = record.get("run_key") if isinstance(record, dict) else None
            if key:
                self._records[key] = record  # last write wins

    # ------------------------------------------------------------------
    # Mapping-style access
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, run_key: str) -> bool:
        return run_key in self._records

    def __iter__(self) -> Iterator[Dict[str, Any]]:
        return iter(self._records.values())

    def get(self, run_key: str) -> Optional[Dict[str, Any]]:
        return self._records.get(run_key)

    def keys(self) -> List[str]:
        return list(self._records)

    @property
    def skipped_lines(self) -> int:
        """Unparsable lines dropped on load (crash-truncated tails)."""
        return self._skipped_lines

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def add(self, record: Dict[str, Any]) -> None:
        """Append one run record and flush it to disk immediately."""
        key = record.get("run_key")
        if not key:
            raise ValueError("campaign record needs a 'run_key'")
        line = json.dumps(record, sort_keys=True, default=repr)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a") as fh:
            fh.write(line + "\n")
            fh.flush()
        self._records[key] = record
