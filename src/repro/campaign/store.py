"""JSONL-on-disk campaign result store, single-file or sharded.

One line per completed (or failed) mission run, keyed by the run's
content hash.  Append-only with a per-record flush, so a campaign killed
mid-flight loses at most the mission that was being written; on reload,
a truncated trailing line is skipped rather than poisoning the store.
Re-running a spec against the same store turns finished rows into cache
hits — that is the whole resume story.

For campaigns split across processes/hosts (``CampaignSpec.shard``),
each shard appends to its own JSONL under a campaign-hash directory
(:func:`shard_store_path`), and :func:`merge_stores` folds the shard
files back into one canonical store: deduped by run hash,
truncated-tail-tolerant, idempotent (merging a merged store is a no-op),
and byte-deterministic (rows sorted by run hash) so two hosts merging
the same shards produce identical files.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Sequence, Union

#: Per-record schema tag written into every line.
RECORD_SCHEMA = "campaign-run/1"


class CampaignStore:
    """Append-only JSONL store of campaign run records.

    Parameters
    ----------
    path:
        The JSONL file; created (with parents) on first write.
    fresh:
        Discard any existing content instead of loading it — the
        "start over" mode of the CLI when ``--resume`` is not given.
    """

    def __init__(self, path: Union[str, Path], fresh: bool = False) -> None:
        self.path = Path(path)
        self._records: Dict[str, Dict[str, Any]] = {}
        self._skipped_lines = 0
        if fresh:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self.path.write_text("")
        elif self.path.exists():
            self._load()

    def _load(self) -> None:
        for line in self.path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                # Crash-truncated tail (or unrelated garbage): skip the
                # line; the missing run simply re-executes on resume.
                self._skipped_lines += 1
                continue
            key = record.get("run_key") if isinstance(record, dict) else None
            if key:
                self._records[key] = record  # last write wins

    # ------------------------------------------------------------------
    # Mapping-style access
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, run_key: str) -> bool:
        return run_key in self._records

    def __iter__(self) -> Iterator[Dict[str, Any]]:
        return iter(self._records.values())

    def get(self, run_key: str) -> Optional[Dict[str, Any]]:
        return self._records.get(run_key)

    def keys(self) -> List[str]:
        return list(self._records)

    @property
    def skipped_lines(self) -> int:
        """Unparsable lines dropped on load (crash-truncated tails)."""
        return self._skipped_lines

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def add(self, record: Dict[str, Any]) -> None:
        """Append one run record and flush it to disk immediately."""
        key = record.get("run_key")
        if not key:
            raise ValueError("campaign record needs a 'run_key'")
        line = json.dumps(record, sort_keys=True, default=repr)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a") as fh:
            fh.write(line + "\n")
            fh.flush()
        self._records[key] = record


# ----------------------------------------------------------------------
# Sharded layout
# ----------------------------------------------------------------------
#: File name of the merged store inside a campaign directory.
MERGED_STORE_NAME = "merged.jsonl"


def shard_filename(index: int, count: int) -> str:
    """Canonical shard file name, e.g. ``shard-02-of-16.jsonl``."""
    width = max(2, len(str(count)))
    return f"shard-{index:0{width}d}-of-{count:0{width}d}.jsonl"


def campaign_dir(root: Union[str, Path], campaign_key: str) -> Path:
    """The campaign-hash directory under ``root`` holding shard stores."""
    return Path(root) / campaign_key


def shard_store_path(
    root: Union[str, Path], campaign_key: str, index: int, count: int
) -> Path:
    """Where shard ``index``/``count`` of a campaign persists its rows."""
    return campaign_dir(root, campaign_key) / shard_filename(index, count)


def shard_paths(root: Union[str, Path], campaign_key: str) -> List[Path]:
    """Every shard file currently present for a campaign, sorted."""
    directory = campaign_dir(root, campaign_key)
    return sorted(directory.glob("shard-*.jsonl"))


@dataclass
class MergeReport:
    """What :func:`merge_stores` did: provenance plus dedup accounting."""

    dest: Path
    sources: List[Path] = field(default_factory=list)
    records: int = 0
    #: Cross-source rows superseded by another row with the same run hash.
    duplicates_dropped: int = 0
    #: Unparsable lines skipped across all sources (truncated tails).
    skipped_lines: int = 0

    def summary(self) -> str:
        return (
            f"merged {len(self.sources)} stores -> {self.dest} "
            f"({self.records} records, {self.duplicates_dropped} duplicates "
            f"dropped, {self.skipped_lines} truncated lines skipped)"
        )


def merge_stores(
    sources: Sequence[Union[str, Path]], dest: Union[str, Path]
) -> MergeReport:
    """Merge shard stores into one canonical store at ``dest``.

    Semantics:

    * **dedup by run hash** — one output row per ``run_key``.  A
      ``status="ok"`` row always beats an error row for the same key;
      between rows of equal standing, the later source wins (and within
      one file, the later line — the store's own last-write-wins rule).
    * **fault-tolerant** — sources may hold crash-truncated tails
      (skipped, counted), be empty, or be missing entirely (ignored, so
      a host can merge whichever shards have arrived).
    * **idempotent** — ``dest``'s existing rows participate as the
      lowest-precedence source, so re-merging after more shards land is
      an incremental update and ``merge(merge(x)) == merge(x)``.
    * **deterministic** — output rows are sorted by run hash and written
      atomically (temp file + rename), so the merged file's bytes depend
      only on the merged *content*, never on shard arrival order.
    """
    dest = Path(dest)
    report = MergeReport(dest=dest)
    merged: Dict[str, Dict[str, Any]] = {}

    def _fold(path: Path) -> None:
        store = CampaignStore(path)
        report.skipped_lines += store.skipped_lines
        for key in store.keys():
            record = store.get(key)
            previous = merged.get(key)
            if previous is None:
                merged[key] = record
                continue
            report.duplicates_dropped += 1
            # ok rows are never displaced by error rows.
            if previous.get("status") != "ok" or record.get("status") == "ok":
                merged[key] = record

    if dest.exists():
        # Folded first (into the empty map, so nothing counts as a
        # duplicate of itself) and therefore at lowest precedence.
        _fold(dest)
    for source in sources:
        source = Path(source)
        if source == dest or not source.exists():
            continue
        report.sources.append(source)
        _fold(source)

    report.records = len(merged)
    lines = [
        json.dumps(merged[key], sort_keys=True, default=repr)
        for key in sorted(merged)
    ]
    dest.parent.mkdir(parents=True, exist_ok=True)
    tmp = dest.with_suffix(dest.suffix + ".tmp")
    tmp.write_text("".join(line + "\n" for line in lines))
    os.replace(tmp, dest)
    return report
