"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``run``       fly one workload at one operating point and print its QoF report
``profile``   fly one workload under the span tracer and print its phase tree
``sweep``     run a workload across TX2 operating points and print heatmaps
``campaign``  run a declarative multi-workload study (parallel, resumable)
``list``      list available workloads, environments, kernels, and detectors

Examples
--------
::

    python -m repro run package_delivery --cores 4 --frequency 2.2
    python -m repro run package_delivery --trace trace.json
    python -m repro profile package_delivery --seed 1
    python -m repro profile mapping --trace trace.json --json profile.json
    python -m repro profile scanning --fleet 3 --trace fleet_trace.json
    python -m repro sweep mapping --seeds 1 2 --jobs 4
    python -m repro campaign --workloads scanning mapping --seeds 1 2 \\
        --jobs 4 --out store.jsonl
    python -m repro campaign --spec study.json --resume --out store.jsonl
    python -m repro campaign --workloads package_delivery \\
        --scenario urban:0.2 urban:0.5 urban:0.8 --grid 4x2.2
    python -m repro campaign --workloads scanning --jobs 2 --profile
    python -m repro campaign --workloads package_delivery --fleet 3 \\
        --out store.jsonl
    python -m repro campaign --workloads package_delivery \\
        --scenario shared_city:0.3:7 --seeds 1 2 3 --fleet 3 --out city.jsonl
    python -m repro campaign --spec study.json --shard 1/2 --out stores/
    python -m repro campaign merge --spec study.json --out stores/
    python -m repro campaign timeline --workloads scanning --seeds 1 2 \\
        --fleet 2 --trace campaign_trace.json
    python -m repro run package_delivery --scenario urban:0.7
    python -m repro list
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import List, Optional

from .analysis import format_heatmap, format_table, sweep_operating_points
from .campaign import (
    MERGED_STORE_NAME,
    CampaignSpec,
    CampaignStore,
    RunSpec,
    aggregate_sweep,
    campaign_dir,
    merge_stores,
    missing_runs,
    parse_grid,
    parse_scenarios,
    parse_shard,
    run_campaign,
    select_records,
    shard_paths,
    shard_store_path,
)
from .compute.kernels import DEFAULT_KERNELS
from .core.api import available_workloads, run_workload
from .observability import trace as _trace
from .observability.export import (
    aggregate_phases,
    format_phase_summary,
    format_phase_tree,
    merge_phase_summaries,
    phase_summary,
    spans_by_mission,
    summarize_spans,
    validate_chrome_trace,
    write_chrome_trace,
)
from .perception.detection import DETECTORS
from .scenarios import FAMILIES, ScenarioSpec, available_families, family_knobs
from .world.generator import ENVIRONMENTS

#: Heatmap metrics and their display precision.
METRIC_FORMATS = {
    "velocity_ms": "{:.2f}",
    "mission_time_s": "{:.1f}",
    "energy_kj": "{:.1f}",
    "success_rate": "{:.2f}",
}


def _shard_token(token: str):
    """argparse type for ``--shard I/N``: 1-based ``(index, count)``.

    Malformed tokens, ``0/N``, and ``I > N`` become argparse errors."""
    try:
        return parse_shard(token)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def _scenario_token(token: str) -> Optional[dict]:
    """argparse type for ``--scenario``: a scenario payload dict, or
    ``None`` for the literal ``default``/``none`` token (the workload's
    canonical world).  Bad families/difficulties become argparse errors
    instead of tracebacks."""
    try:
        return parse_scenarios([token])[0]
    except (KeyError, ValueError) as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MAVBench reproduction: closed-loop MAV benchmarking",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="fly one workload once")
    run_p.add_argument("workload", choices=available_workloads())
    run_p.add_argument("--cores", type=int, default=4)
    run_p.add_argument("--frequency", type=float, default=2.2)
    run_p.add_argument("--seed", type=int, default=1)
    run_p.add_argument(
        "--depth-noise", type=float, default=0.0,
        help="RGB-D depth noise std in meters (Table II knob)",
    )
    run_p.add_argument(
        "--scenario", metavar="FAMILY:DIFF[:SEED]", type=_scenario_token,
        help="fly a scenario-family world instead of the workload's "
             "canonical one, e.g. urban:0.7",
    )
    run_p.add_argument(
        "--kernel-stats", action="store_true",
        help="print per-kernel latency statistics",
    )
    run_p.add_argument(
        "--trace", metavar="OUT.json",
        help="record a span trace of the mission and write it as Chrome "
             "trace-event JSON (open in Perfetto / chrome://tracing)",
    )

    profile_p = sub.add_parser(
        "profile",
        help="fly one workload under the span tracer; print its phase tree",
    )
    profile_p.add_argument("workload", choices=available_workloads())
    profile_p.add_argument("--cores", type=int, default=4)
    profile_p.add_argument("--frequency", type=float, default=2.2)
    profile_p.add_argument("--seed", type=int, default=1)
    profile_p.add_argument(
        "--depth-noise", type=float, default=0.0,
        help="RGB-D depth noise std in meters (Table II knob)",
    )
    profile_p.add_argument(
        "--scenario", metavar="FAMILY:DIFF[:SEED]", type=_scenario_token,
        help="fly a scenario-family world instead of the canonical one",
    )
    profile_p.add_argument(
        "--fleet", type=int, metavar="K", default=None,
        help="profile K copies of the workload (seeds SEED..SEED+K-1) "
             "flown as one traced fleet: the phase tree gains the "
             "fleet.gate subtree and per-member gate wait/wake stats",
    )
    profile_p.add_argument(
        "--trace", metavar="OUT.json",
        help="also write the span trace as Chrome trace-event JSON",
    )
    profile_p.add_argument(
        "--json", metavar="OUT.json", dest="json_out",
        help="also write the phase summary + metrics as JSON (CI artifact)",
    )
    profile_p.add_argument(
        "--metrics", action="store_true",
        help="print the counter/histogram snapshot after the phase tree",
    )

    sweep_p = sub.add_parser(
        "sweep", help="sweep a workload across TX2 operating points"
    )
    sweep_p.add_argument("workload", choices=available_workloads())
    sweep_p.add_argument("--seeds", type=int, nargs="+", default=[1])
    sweep_p.add_argument(
        "--metric",
        choices=sorted(METRIC_FORMATS),
        default="mission_time_s",
        help="metric to print as a heatmap (and for the corner ratio)",
    )
    sweep_p.add_argument(
        "--all", action="store_true",
        help="print every metric's heatmap, not just --metric",
    )
    sweep_p.add_argument(
        "--grid", nargs="+", metavar="CORESxGHZ",
        help="operating points, e.g. 2x0.8 4x2.2 (default: full 3x3 grid)",
    )
    sweep_p.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the mission grid (default 1)",
    )

    campaign_p = sub.add_parser(
        "campaign",
        help="run a declarative mission study (parallel, resumable, shardable)",
    )
    campaign_p.add_argument(
        "action", nargs="?", choices=["run", "merge", "timeline"],
        default="run",
        help="'run' (default) executes the campaign (or one --shard of "
             "it); 'merge' folds the shard stores under --out back into "
             "one canonical store; 'timeline' runs the campaign under "
             "the span tracer and writes one campaign-wide Chrome trace "
             "(--trace OUT.json) with a lane per mission / fleet group",
    )
    campaign_p.add_argument(
        "--spec", help="JSON campaign spec file (flags below override it)"
    )
    campaign_p.add_argument(
        "--workloads", nargs="+", choices=available_workloads(),
        help="workloads to fly (required unless --spec is given)",
    )
    campaign_p.add_argument(
        "--grid", nargs="+", metavar="CORESxGHZ",
        help="operating points, e.g. 2x0.8 4x2.2 (default: full 3x3 grid)",
    )
    campaign_p.add_argument("--seeds", type=int, nargs="+", default=None)
    campaign_p.add_argument(
        "--noise", type=float, nargs="+", default=None,
        help="depth_noise_std levels (Table II axis), in meters",
    )
    campaign_p.add_argument(
        "--scenario", nargs="+", metavar="FAMILY:DIFF[:SEED]",
        type=_scenario_token,
        help="scenario axis entries, e.g. urban:0.3 urban:0.9; the "
             "literal token 'default' is the canonical per-workload world",
    )
    campaign_p.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes (default 1: in-process, deterministic order)",
    )
    campaign_p.add_argument(
        "--fleet", type=int, metavar="K", default=None,
        help="fly pending runs as in-process fleets of up to K missions "
             "(batched per-tick kernels; records byte-identical to "
             "sequential except wall_time_s); a seed-pinned shared_city "
             "scenario flies as one shared world with cross-member "
             "sensing and airspace conflicts; incompatible with --jobs>1",
    )
    campaign_p.add_argument(
        "--shard", metavar="I/N", type=_shard_token,
        help="execute only shard I of an N-way run-hash partition of the "
             "campaign (1-based); requires --out, which then names the "
             "campaign store root directory",
    )
    campaign_p.add_argument(
        "--out",
        help="JSONL result store path (enables resume/caching); with "
             "--shard or 'merge', the campaign store root directory",
    )
    campaign_p.add_argument(
        "--resume", action="store_true",
        help="reuse finished runs already in --out instead of starting fresh",
    )
    campaign_p.add_argument(
        "--metric",
        choices=sorted(METRIC_FORMATS),
        default="mission_time_s",
        help="metric to print per workload heatmap",
    )
    campaign_p.add_argument(
        "--profile", action="store_true",
        help="attach per-run phase/metrics profiles to the records and "
             "print a campaign-wide phase summary (with --fleet: "
             "per-mission phase trees plus per-group gate stats)",
    )
    campaign_p.add_argument(
        "--trace", metavar="OUT.json",
        help="with 'timeline': write the campaign-wide Chrome trace here",
    )

    sub.add_parser("list", help="list workloads, environments, kernels")
    return parser


def _cmd_run(args: argparse.Namespace) -> int:
    workload_kwargs = {}
    if args.scenario is not None:
        workload_kwargs["scenario"] = args.scenario
    if args.trace:
        with _trace.capture() as tracer:
            result = run_workload(
                args.workload,
                cores=args.cores,
                frequency_ghz=args.frequency,
                seed=args.seed,
                depth_noise_std=args.depth_noise,
                workload_kwargs=workload_kwargs,
            )
        doc = write_chrome_trace(args.trace, tracer)
        print(
            f"trace: {args.trace} ({len(doc['traceEvents'])} events, "
            f"{doc['otherData']['wall_s']:.3f}s wall)"
        )
    else:
        result = run_workload(
            args.workload,
            cores=args.cores,
            frequency_ghz=args.frequency,
            seed=args.seed,
            depth_noise_std=args.depth_noise,
            workload_kwargs=workload_kwargs,
        )
    report = result.report
    print(report.summary())
    rows = [
        ("mission time (s)", report.mission_time_s),
        ("flight distance (m)", report.flight_distance_m),
        ("average velocity (m/s)", report.average_velocity_ms),
        ("hover time (s)", report.hover_time_s),
        ("total energy (kJ)", report.total_energy_j / 1000.0),
        ("rotor energy (kJ)", report.rotor_energy_j / 1000.0),
        ("compute energy (kJ)", report.compute_energy_j / 1000.0),
        ("battery remaining (%)", report.battery_remaining_percent),
    ]
    rows += sorted(report.extra.items())
    print(format_table(["metric", "value"], rows))
    if args.kernel_stats:
        print()
        print(
            format_table(
                ["kernel", "count", "mean (ms)", "max (ms)"],
                [
                    (k, int(v["count"]), v["mean_s"] * 1000, v["max_s"] * 1000)
                    for k, v in sorted(result.kernel_stats.items())
                ],
            )
        )
    return 0 if report.success else 1


def _print_metrics_snapshot(snapshot: dict) -> None:
    print("\ncounters:")
    for name, value in sorted(snapshot["counters"].items()):
        print(f"  {name}: {value}")
    print("histograms:")
    for name, stats in sorted(snapshot["histograms"].items()):
        print(
            f"  {name}: count={stats['count']} sum={stats.get('sum', 0):g} "
            f"min={stats.get('min', 0):g} max={stats.get('max', 0):g}"
        )


def _gate_stat_lines(gate: dict, indent: str = "  ") -> List[str]:
    """Render a :func:`repro.fleet.fleet_gate_stats` block for humans."""
    lines = [
        f"{indent}ticks={gate['ticks']} retired={gate['retired']}"
    ]
    for kind, title in (("wait", "gate wait"), ("wake", "wake latency")):
        for member in sorted(gate[kind]):
            hist = gate[kind][member]
            if not hist.get("count"):
                continue
            lines.append(
                f"{indent}{title} {member}: n={hist['count']} "
                f"mean={hist['mean'] * 1e3:.3f}ms "
                f"max={hist['max'] * 1e3:.3f}ms "
                f"total={hist['sum']:.3f}s"
            )
    conflicts = gate.get("conflicts") or {}
    sep_hist = conflicts.get("min_separation")
    if sep_hist and sep_hist.get("count"):
        lines.append(
            f"{indent}airspace: min_sep={sep_hist['min']:.2f}m "
            f"near_misses={conflicts['near_misses']} "
            f"holds={conflicts['holds']} "
            f"drone_collisions={conflicts['drone_collisions']}"
        )
    return lines


def _profile_fleet(args: argparse.Namespace, workload_kwargs: dict) -> int:
    """Fly K copies of the workload as one traced fleet; print the merged
    phase tree (with the ``fleet.gate`` subtree) and per-member gate
    contention stats."""
    from .fleet import FleetMission, fleet_gate_stats, run_workloads_fleet

    if args.fleet < 2:
        print("--fleet needs K >= 2 (use plain 'repro profile' for one)")
        return 2
    missions = [
        FleetMission(
            workload=args.workload,
            seed=args.seed + i,
            cores=args.cores,
            frequency_ghz=args.frequency,
            depth_noise_std=args.depth_noise,
            workload_kwargs=workload_kwargs or None,
        )
        for i in range(args.fleet)
    ]
    wall_t0 = time.perf_counter()
    with _trace.capture() as tracer:
        results, errors = run_workloads_fleet(missions)
    wall_s = time.perf_counter() - wall_t0
    for i, (result, error) in enumerate(zip(results, errors)):
        if result is not None:
            print(f"m{i}:{args.workload} seed={args.seed + i}: "
                  f"{result.report.summary()}")
        else:
            print(f"m{i}:{args.workload} seed={args.seed + i}: "
                  f"FAILED ({error})")
    print(
        f"\nprofiled fleet of {args.fleet} × {args.workload} "
        f"({args.cores}c @ {args.frequency:g}GHz): "
        f"{len(tracer.spans)} spans, {wall_s:.3f}s wall"
    )
    # Mission lanes overlap in host time, so shares are relative to the
    # tree's own summed total, not the shared wall clock.
    print(format_phase_tree(aggregate_phases(tracer.spans)))
    snapshot = tracer.metrics.snapshot()
    gate = fleet_gate_stats(snapshot)
    print("\nfleet gate:")
    for line in _gate_stat_lines(gate):
        print(line)
    if args.metrics:
        _print_metrics_snapshot(snapshot)
    if args.trace:
        doc = write_chrome_trace(args.trace, tracer, process_name="repro-fleet")
        print(
            f"\ntrace: {args.trace} ({len(doc['traceEvents'])} events, "
            f"{len(doc['otherData']['lanes'])} lanes)"
        )
    if args.json_out:
        payload = {
            "schema": "repro-profile/1",
            "workload": args.workload,
            "seed": args.seed,
            "cores": args.cores,
            "frequency_ghz": args.frequency,
            "fleet": args.fleet,
            "wall_s": wall_s,
            "success": all(
                r is not None and r.report.success for r in results
            ),
            "phases": phase_summary(tracer),
            "missions": {
                label: summarize_spans(spans)
                for label, spans in spans_by_mission(tracer.spans).items()
                if label is not None
            },
            "gate": gate,
            "metrics": snapshot,
        }
        Path(args.json_out).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"profile json: {args.json_out}")
    return (
        0
        if all(r is not None and r.report.success for r in results)
        else 1
    )


def _cmd_profile(args: argparse.Namespace) -> int:
    """Fly one mission under the tracer and print where host time went."""
    workload_kwargs = {}
    if args.scenario is not None:
        workload_kwargs["scenario"] = args.scenario
    if args.fleet is not None:
        return _profile_fleet(args, workload_kwargs)
    wall_t0 = time.perf_counter()
    with _trace.capture() as tracer:
        result = run_workload(
            args.workload,
            cores=args.cores,
            frequency_ghz=args.frequency,
            seed=args.seed,
            depth_noise_std=args.depth_noise,
            workload_kwargs=workload_kwargs,
        )
    wall_s = time.perf_counter() - wall_t0
    report = result.report
    print(report.summary())
    print(
        f"profiled {args.workload} (seed {args.seed}, {args.cores}c @ "
        f"{args.frequency:g}GHz): {len(tracer.spans)} spans, "
        f"{wall_s:.3f}s wall\n"
    )
    print(format_phase_tree(aggregate_phases(tracer.spans), wall_s=wall_s))
    if args.metrics:
        _print_metrics_snapshot(tracer.metrics.snapshot())
    if args.trace:
        doc = write_chrome_trace(args.trace, tracer)
        print(f"\ntrace: {args.trace} ({len(doc['traceEvents'])} events)")
    if args.json_out:
        payload = {
            "schema": "repro-profile/1",
            "workload": args.workload,
            "seed": args.seed,
            "cores": args.cores,
            "frequency_ghz": args.frequency,
            "wall_s": wall_s,
            "success": report.success,
            "mission_time_s": report.mission_time_s,
            "phases": phase_summary(tracer),
            "metrics": tracer.metrics.snapshot(),
        }
        Path(args.json_out).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"profile json: {args.json_out}")
    return 0 if report.success else 1


def _cmd_sweep(args: argparse.Namespace) -> int:
    grid = parse_grid(args.grid) if args.grid else None
    result = sweep_operating_points(
        args.workload, grid=grid, seeds=tuple(args.seeds), jobs=args.jobs
    )
    print(f"workload: {args.workload}  (seeds: {args.seeds})\n")
    metrics = sorted(METRIC_FORMATS) if args.all else [args.metric]
    for metric in metrics:
        print(f"--- {metric} ---")
        print(format_heatmap(result, metric, fmt=METRIC_FORMATS[metric]))
        print()
    try:
        print(
            f"corner ratio (2c/0.8GHz over 4c/2.2GHz) on {args.metric}: "
            f"{result.corner_ratio(args.metric):.2f}x"
        )
    except KeyError:
        pass  # a --grid subset without both corners has no corner ratio
    return 0


def _campaign_spec_from_args(
    parser: argparse.ArgumentParser, args: argparse.Namespace
) -> CampaignSpec:
    if args.spec:
        spec = CampaignSpec.from_file(args.spec)
        if args.workloads:
            spec.workloads = list(args.workloads)
            # Narrowing the workload list drops the excluded workloads'
            # kwargs with it (re-validation rejects stray entries).
            spec.workload_kwargs = {
                k: v
                for k, v in spec.workload_kwargs.items()
                if k in spec.workloads
            }
        if args.grid:
            spec.grid = parse_grid(args.grid)
        if args.seeds:
            spec.seeds = list(args.seeds)
        if args.noise:
            spec.depth_noise_levels = list(args.noise)
        if args.scenario:
            spec.scenarios = list(args.scenario)
        spec.__post_init__()  # re-validate after overrides
        return spec
    if not args.workloads:
        parser.error("campaign needs --spec FILE or --workloads ...")
    kwargs = {"workloads": list(args.workloads)}
    if args.grid:
        kwargs["grid"] = parse_grid(args.grid)
    if args.seeds:
        kwargs["seeds"] = list(args.seeds)
    if args.noise:
        kwargs["depth_noise_levels"] = list(args.noise)
    if args.scenario:
        kwargs["scenarios"] = list(args.scenario)
    return CampaignSpec(**kwargs)


def _merge_spec(
    parser: argparse.ArgumentParser, args: argparse.Namespace
) -> CampaignSpec:
    """The spec a ``campaign merge`` is folding.

    Explicit ``--spec``/flags win; otherwise the ``spec.json`` each
    shard run dropped into its campaign directory is the source of
    truth, so the common single-campaign root merges with no flags at
    all: ``repro campaign merge --out stores/``.
    """
    if args.spec or args.workloads:
        return _campaign_spec_from_args(parser, args)
    candidates = sorted(Path(args.out).glob("*/spec.json"))
    if len(candidates) == 1:
        return CampaignSpec.from_file(candidates[0])
    if not candidates:
        parser.error(
            f"campaign merge needs --spec or --workloads "
            f"(no */spec.json found under {args.out})"
        )
    names = ", ".join(p.parent.name for p in candidates)
    parser.error(
        f"multiple campaigns under {args.out} ({names}) — pick one with "
        f"--spec {candidates[0].parent}/spec.json"
    )


def _cmd_campaign_merge(
    parser: argparse.ArgumentParser, args: argparse.Namespace
) -> int:
    """Fold a campaign's shard stores into one canonical store."""
    if not args.out:
        parser.error("campaign merge requires --out DIR (the campaign store root)")
    spec = _merge_spec(parser, args)
    directory = campaign_dir(args.out, spec.campaign_key)
    sources = shard_paths(args.out, spec.campaign_key)
    if not sources:
        parser.error(
            f"no shard stores under {directory} — run "
            f"'repro campaign --shard I/N --out {args.out} ...' first"
        )
    dest = directory / MERGED_STORE_NAME
    report = merge_stores(sources, dest)
    print(report.summary())
    merged = CampaignStore(dest)
    missing = missing_runs(spec, merged)
    if missing:
        # Two distinct gaps hide behind "no successful record": runs a
        # shard executed but that *failed* (their error rows merged —
        # retry them), and runs no present shard file covers at all.
        failed = [
            r for r in missing
            if (merged.get(r.run_key) or {}).get("status") == "error"
        ]
        absent = [
            r for r in missing
            if (merged.get(r.run_key) or {}).get("status") != "error"
        ]

        def _name(runs):
            for run in runs[:5]:
                print(f"  {run.label()} (key {run.run_key})")
            if len(runs) > 5:
                print(f"  ... and {len(runs) - 5} more")

        if failed:
            print(
                f"{len(failed)} of {spec.run_count} runs failed — re-run "
                "the owning shard with --resume to retry them:"
            )
            _name(failed)
        if absent:
            print(
                f"{len(absent)} of {spec.run_count} runs not yet executed "
                "— run the remaining shards and copy their shard-*.jsonl "
                "files here:"
            )
            _name(absent)
        return 1
    print(f"complete: all {spec.run_count} runs merged")
    return 0


def _cmd_campaign(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    if args.action == "merge":
        return _cmd_campaign_merge(parser, args)
    if args.action == "timeline":
        if not args.trace:
            parser.error("campaign timeline requires --trace OUT.json")
        if args.jobs != 1:
            parser.error(
                "campaign timeline traces in-process; drop --jobs "
                "(use --fleet K for in-process batching)"
            )
    spec = _campaign_spec_from_args(parser, args)

    store = None
    if args.shard is not None:
        if not args.out:
            parser.error("--shard requires --out DIR (the campaign store root)")
        directory = campaign_dir(args.out, spec.campaign_key)
        directory.mkdir(parents=True, exist_ok=True)
        # Drop the spec next to the shard stores so any host (and the
        # merge step) can re-derive the campaign from the directory.
        (directory / "spec.json").write_text(spec.to_json() + "\n")
        store = CampaignStore(
            shard_store_path(args.out, spec.campaign_key, *args.shard),
            fresh=not args.resume,
        )
    elif args.out:
        if Path(args.out).is_dir():
            parser.error(
                f"--out {args.out} is a directory; without --shard, --out "
                "names a JSONL store file (use --shard I/N to run into a "
                "store root, 'merge' to fold one, or point --out at "
                f"{args.out.rstrip('/')}/<campaign_key>/merged.jsonl)"
            )
        store = CampaignStore(args.out, fresh=not args.resume)
    if store is not None and args.resume and len(store):
        print(f"resuming from {store.path} ({len(store)} stored runs)")

    total = (
        len(spec.shard(*args.shard)) if args.shard is not None else spec.run_count
    )
    done = {"n": 0}

    def _progress(record) -> None:
        done["n"] += 1
        label = RunSpec.from_payload(record["spec"]).label()
        if record["status"] == "ok":
            report = record["report"]
            outcome = (
                f"t={report['mission_time_s']:.1f}s "
                f"E={report['total_energy_j'] / 1000.0:.1f}kJ "
                f"{'ok' if report['success'] else 'mission-failed'}"
            )
        else:
            outcome = record["error"]
        print(f"[{done['n']}/{total}] {label}: {outcome}")

    if args.fleet is not None and args.fleet < 2:
        # K=1 (or 0, or negative) silently degenerates to sequential
        # execution — reject it like `repro profile --fleet` does.
        parser.error("--fleet needs K >= 2 (drop --fleet for sequential)")
    if args.fleet is not None and args.jobs != 1:
        parser.error("--fleet batches missions in-process; drop --jobs")

    def _execute():
        return run_campaign(
            spec,
            jobs=args.jobs,
            store=store,
            progress=_progress,
            shard=args.shard,
            profile=args.profile,
            fleet_batch=args.fleet,
        )

    timeline_tracer = None
    if args.action == "timeline":
        with _trace.capture() as timeline_tracer:
            campaign = _execute()
    else:
        campaign = _execute()
    print()
    print(campaign.summary())
    if store is not None:
        print(f"store: {store.path}")

    if timeline_tracer is not None:
        doc = write_chrome_trace(
            args.trace, timeline_tracer, process_name="repro-campaign"
        )
        problems = validate_chrome_trace(doc)
        lanes = doc["otherData"]["lanes"]
        print(
            f"timeline: {args.trace} ({len(doc['traceEvents'])} events, "
            f"{len(lanes)} mission lanes, "
            f"{doc['otherData']['wall_s']:.3f}s wall)"
        )
        if problems:
            for problem in problems:
                print(f"  invalid: {problem}")
            return 1

    if args.profile:
        profiles = [
            r["profile"] for r in campaign.records if "profile" in r
        ]
        if profiles:
            merged = merge_phase_summaries([p["phases"] for p in profiles])
            waits = [
                p["queue_wait_s"] for p in profiles if "queue_wait_s" in p
            ]
            # Fleet members share one scenario-cache delta and one gate
            # block per group; count each group once, not per member.
            hits = misses = 0
            gate_by_group = {}
            seen_groups = set()
            for p in profiles:
                fleet = p.get("fleet")
                if fleet is not None:
                    group = fleet["group"]
                    if group in seen_groups:
                        continue
                    seen_groups.add(group)
                    gate_by_group[group] = fleet
                hits += p["scenario_cache"]["hits"]
                misses += p["scenario_cache"]["misses"]
            print(f"\n--- profile ({len(profiles)} runs) ---")
            print(format_phase_summary(merged))
            if waits:
                print(
                    f"queue wait: mean {sum(waits) / len(waits):.3f}s, "
                    f"max {max(waits):.3f}s"
                )
            print(f"scenario cache: {hits} hits, {misses} misses")
            for group in sorted(gate_by_group):
                fleet = gate_by_group[group]
                print(f"{group} ({fleet['members']} missions):")
                for line in _gate_stat_lines(fleet["gate"]):
                    print(line)

    if args.shard is not None:
        # A shard is a partial matrix: heatmaps would silently average
        # over whatever seeds this shard happens to own.  Point at the
        # merge step instead.
        print(
            f"shard {args.shard[0]}/{args.shard[1]} done; after all shards, "
            f"combine with: repro campaign merge --out {args.out} ..."
        )
        return 1 if campaign.failed else 0

    for workload in spec.workloads:
        for scenario in spec.scenarios:
            for noise in spec.depth_noise_levels:
                rows = [
                    r
                    for r in select_records(
                        campaign.records,
                        workload=workload,
                        depth_noise_std=noise,
                        scenario=scenario,
                    )
                    if r["status"] == "ok"
                ]
                if not rows:
                    continue
                suffix = f" (noise={noise:g})" if noise else ""
                if scenario is not None:
                    label = ScenarioSpec.from_payload(scenario).label()
                    suffix = f" [{label}]{suffix}"
                print(f"\n--- {workload}{suffix}: {args.metric} ---")
                print(
                    format_heatmap(
                        aggregate_sweep(rows, workload=workload),
                        args.metric,
                        fmt=METRIC_FORMATS[args.metric],
                    )
                )
    if campaign.errors:
        print(f"\n{len(campaign.errors)} failed runs:")
        for record in campaign.errors:
            print(f"  {record['run_key']}: {record['error']}")
    return 1 if campaign.failed else 0


def _cmd_list() -> int:
    print("workloads   :", ", ".join(available_workloads()))
    print("environments:", ", ".join(sorted(ENVIRONMENTS)))
    print("kernels     :", ", ".join(sorted(DEFAULT_KERNELS)))
    print("detectors   :", ", ".join(sorted(DETECTORS)))
    print("scenarios   :")
    for name in available_families():
        knobs = family_knobs(name, 1.0)
        knob_text = ", ".join(f"{k}={v:g}" for k, v in sorted(knobs.items()))
        overrides = ", ".join(sorted(FAMILIES[name].default_knobs))
        print(f"  {name:9s} {FAMILIES[name].description}")
        print(f"  {'':9s}   at difficulty 1: {knob_text}")
        print(f"  {'':9s}   knob overrides : {overrides}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "profile":
        return _cmd_profile(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "campaign":
        return _cmd_campaign(args, parser)
    return _cmd_list()


if __name__ == "__main__":
    sys.exit(main())
