"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``run``     fly one workload at one operating point and print its QoF report
``sweep``   run a workload across TX2 operating points and print heatmaps
``list``    list available workloads, environments, kernels, and detectors

Examples
--------
::

    python -m repro run package_delivery --cores 4 --frequency 2.2
    python -m repro sweep mapping --seeds 1 2
    python -m repro list
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .analysis import format_heatmap, format_table, sweep_operating_points
from .compute.kernels import DEFAULT_KERNELS
from .core.api import available_workloads, run_workload
from .perception.detection import DETECTORS
from .world.generator import ENVIRONMENTS


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MAVBench reproduction: closed-loop MAV benchmarking",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="fly one workload once")
    run_p.add_argument("workload", choices=available_workloads())
    run_p.add_argument("--cores", type=int, default=4)
    run_p.add_argument("--frequency", type=float, default=2.2)
    run_p.add_argument("--seed", type=int, default=1)
    run_p.add_argument(
        "--depth-noise", type=float, default=0.0,
        help="RGB-D depth noise std in meters (Table II knob)",
    )
    run_p.add_argument(
        "--kernel-stats", action="store_true",
        help="print per-kernel latency statistics",
    )

    sweep_p = sub.add_parser(
        "sweep", help="sweep a workload across TX2 operating points"
    )
    sweep_p.add_argument("workload", choices=available_workloads())
    sweep_p.add_argument("--seeds", type=int, nargs="+", default=[1])
    sweep_p.add_argument(
        "--metric",
        choices=["velocity_ms", "mission_time_s", "energy_kj"],
        default="mission_time_s",
    )

    sub.add_parser("list", help="list workloads, environments, kernels")
    return parser


def _cmd_run(args: argparse.Namespace) -> int:
    result = run_workload(
        args.workload,
        cores=args.cores,
        frequency_ghz=args.frequency,
        seed=args.seed,
        depth_noise_std=args.depth_noise,
    )
    report = result.report
    print(report.summary())
    rows = [
        ("mission time (s)", report.mission_time_s),
        ("flight distance (m)", report.flight_distance_m),
        ("average velocity (m/s)", report.average_velocity_ms),
        ("hover time (s)", report.hover_time_s),
        ("total energy (kJ)", report.total_energy_j / 1000.0),
        ("rotor energy (kJ)", report.rotor_energy_j / 1000.0),
        ("compute energy (kJ)", report.compute_energy_j / 1000.0),
        ("battery remaining (%)", report.battery_remaining_percent),
    ]
    rows += sorted(report.extra.items())
    print(format_table(["metric", "value"], rows))
    if args.kernel_stats:
        print()
        print(
            format_table(
                ["kernel", "count", "mean (ms)", "max (ms)"],
                [
                    (k, int(v["count"]), v["mean_s"] * 1000, v["max_s"] * 1000)
                    for k, v in sorted(result.kernel_stats.items())
                ],
            )
        )
    return 0 if report.success else 1


def _cmd_sweep(args: argparse.Namespace) -> int:
    result = sweep_operating_points(args.workload, seeds=tuple(args.seeds))
    print(f"workload: {args.workload}  (seeds: {args.seeds})\n")
    for metric, fmt in [
        ("velocity_ms", "{:.2f}"),
        ("mission_time_s", "{:.1f}"),
        ("energy_kj", "{:.1f}"),
    ]:
        print(f"--- {metric} ---")
        print(format_heatmap(result, metric, fmt=fmt))
        print()
    print(
        f"corner ratio (2c/0.8GHz over 4c/2.2GHz) on {args.metric}: "
        f"{result.corner_ratio(args.metric):.2f}x"
    )
    return 0


def _cmd_list() -> int:
    print("workloads   :", ", ".join(available_workloads()))
    print("environments:", ", ".join(sorted(ENVIRONMENTS)))
    print("kernels     :", ", ".join(sorted(DEFAULT_KERNELS)))
    print("detectors   :", ", ".join(sorted(DETECTORS)))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    return _cmd_list()


if __name__ == "__main__":
    sys.exit(main())
