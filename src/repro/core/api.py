"""Top-level convenience API.

``run_workload`` assembles the full closed-loop stack (world + vehicle +
sensors + compute + energy) for a named workload at a chosen operating
point and runs the mission — the one-call entry point the examples and
benchmarks use.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Type

from ..compute.kernels import KernelModel
from ..compute.platform import JETSON_TX2, PlatformConfig, PlatformSpec
from ..observability import trace as _trace
from ..sensors.camera import CameraIntrinsics, RgbdCamera
from ..sensors.noise import DepthNoise
from .qof import QofReport
from .simulator import Simulation, SimulationConfig
from .workloads import WORKLOADS, Workload


@dataclass
class WorkloadResult:
    """Everything a study needs from one mission run.

    Echoes the resolved run configuration (``seed``, ``depth_noise_std``,
    ``workload_kwargs``, and the platform operating point) so rows
    derived from this result — campaign store records in particular —
    are self-describing.
    """

    workload: str
    platform: PlatformConfig
    report: QofReport
    kernel_stats: Dict[str, Dict[str, float]]
    seed: int = 0
    depth_noise_std: float = 0.0
    workload_kwargs: Dict = field(default_factory=dict)

    @property
    def mission_time_s(self) -> float:
        return self.report.mission_time_s

    @property
    def average_velocity_ms(self) -> float:
        return self.report.average_velocity_ms

    @property
    def total_energy_kj(self) -> float:
        return self.report.total_energy_j / 1000.0

    @property
    def success(self) -> bool:
        return self.report.success


def available_workloads() -> List[str]:
    """Names accepted by :func:`run_workload`."""
    return sorted(WORKLOADS)


def make_simulation(
    workload: Workload,
    cores: int = 4,
    frequency_ghz: float = 2.2,
    spec: PlatformSpec = JETSON_TX2,
    depth_noise_std: float = 0.0,
    seed: int = 0,
    dt: float = 0.05,
    max_mission_time_s: float = 2400.0,
    camera_max_range_m: float = 20.0,
) -> Simulation:
    """Assemble and bind a :class:`Simulation` for ``workload``."""
    platform = PlatformConfig(spec=spec, cores=cores, frequency_ghz=frequency_ghz)
    kernel_model = KernelModel(workload=workload.name)
    world = workload.build_world()
    camera = RgbdCamera(
        intrinsics=CameraIntrinsics(
            width=32, height=24, max_range_m=camera_max_range_m
        ),
        depth_noise=(
            DepthNoise(std=depth_noise_std, seed=seed + 101)
            if depth_noise_std > 0
            else None
        ),
    )
    sim = Simulation(
        world=world,
        platform=platform,
        kernel_model=kernel_model,
        camera=camera,
        config=SimulationConfig(
            dt=dt, max_mission_time_s=max_mission_time_s, seed=seed
        ),
    )
    sim.vehicle.state.position = workload.start_position(world)
    workload.bind(sim)
    return sim


def _accepted_workload_kwargs(cls: Type[Workload]) -> Set[str]:
    """Constructor keywords ``cls`` genuinely accepts.

    Walks the MRO while constructors forward ``**kwargs`` upward (e.g.
    SearchRescue -> Mapping), collecting named parameters, so a typo'd
    keyword can't vanish into a ``**``-splat.
    """
    accepted: Set[str] = set()
    for klass in cls.__mro__:
        init = klass.__dict__.get("__init__")
        if init is None:
            continue
        params = [
            p
            for name, p in inspect.signature(init).parameters.items()
            if name != "self"
        ]
        accepted.update(
            p.name
            for p in params
            if p.kind
            in (p.POSITIONAL_OR_KEYWORD, p.KEYWORD_ONLY, p.POSITIONAL_ONLY)
        )
        if not any(p.kind == p.VAR_KEYWORD for p in params):
            break
    return accepted


def validate_workload_kwargs(name: str, workload_kwargs: Dict) -> None:
    """Reject unknown (or misrouted) workload constructor keywords.

    Raises ``KeyError`` for an unknown workload name, ``ValueError`` if
    ``seed`` is smuggled in via kwargs (it is routed explicitly), and
    ``TypeError`` for keywords the workload's constructor chain does not
    declare.
    """
    if name not in WORKLOADS:
        raise KeyError(
            f"unknown workload '{name}' (choose from {available_workloads()})"
        )
    if "seed" in workload_kwargs:
        raise ValueError(
            "pass seed=... to run_workload directly, not inside workload_kwargs"
        )
    accepted = _accepted_workload_kwargs(WORKLOADS[name]) - {"seed"}
    unknown = sorted(set(workload_kwargs) - accepted)
    if unknown:
        raise TypeError(
            f"unknown workload_kwargs for '{name}': {unknown} "
            f"(accepted: {sorted(accepted)})"
        )


def run_workload(
    name: str,
    cores: int = 4,
    frequency_ghz: float = 2.2,
    seed: int = 0,
    depth_noise_std: float = 0.0,
    workload_kwargs: Optional[Dict] = None,
    **sim_kwargs,
) -> WorkloadResult:
    """Run one workload end to end at one operating point.

    Parameters
    ----------
    name:
        One of :func:`available_workloads`.
    cores, frequency_ghz:
        TX2 operating point (the heatmap axes).
    depth_noise_std:
        RGB-D depth noise (the Table II knob), in meters.
    workload_kwargs:
        Extra constructor arguments for the workload class.
    sim_kwargs:
        Extra arguments for :func:`make_simulation`.
    """
    workload_kwargs = dict(workload_kwargs or {})
    validate_workload_kwargs(name, workload_kwargs)
    with _trace.span("mission", "mission") as mission_span:
        mission_span.set(workload=name, seed=seed)
        with _trace.span("setup", "mission"):
            workload = WORKLOADS[name](seed=seed, **workload_kwargs)
            sim = make_simulation(
                workload,
                cores=cores,
                frequency_ghz=frequency_ghz,
                depth_noise_std=depth_noise_std,
                seed=seed,
                **sim_kwargs,
            )
        with _trace.span("fly", "mission"):
            report = workload.run()
        mission_span.set(
            success=report.success, mission_time_s=report.mission_time_s
        )
    return WorkloadResult(
        workload=name,
        platform=sim.platform,
        report=report,
        kernel_stats=sim.scheduler.kernel_latency_stats(),
        seed=seed,
        depth_noise_std=depth_noise_std,
        workload_kwargs=workload_kwargs,
    )
