"""Scanning workload — aerial coverage of a rectangular area.

"A MAV scans an area specified by its width and length while collecting
sensory information about conditions on the ground.  It is a common
agricultural use case."  Pipeline mapping (Fig. 7a): GPS localization
(Perception) -> lawnmower motion planning (Planning) -> path tracking
(Control).

Planning runs once up front — which is exactly why the paper finds compute
scaling has a *trivial* effect on this workload ("the overhead of planning
for a 5 minute flight is less than .001%"): the drone flies at its cruise
velocity regardless of the operating point, as Fig. 10 shows (7.5 m/s at
every configuration).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ...control.path_tracking import PathTracker
from ...planning.lawnmower import CoverageArea, lawnmower_path
from ...planning.smoothing import smooth_trajectory
from ...world.environment import World
from ...world.generator import farm_world
from ...world.geometry import vec
from ..qof import QofReport
from .base import Workload


class ScanningWorkload(Workload):
    """Lawnmower coverage of a farm field.

    Parameters
    ----------
    area_width, area_length:
        The scan rectangle (m).
    altitude:
        Flight altitude; high enough that obstacles are irrelevant.
    lane_spacing:
        Sweep spacing (camera ground footprint).
    cruise_speed:
        Mechanically-bound scan velocity (compute does not bound it here).
    """

    name = "scanning"

    def __init__(
        self,
        area_width: float = 100.0,
        area_length: float = 60.0,
        altitude: float = 15.0,
        lane_spacing: float = 12.0,
        cruise_speed: float = 7.5,
        seed: int = 0,
        scenario=None,
        member=None,
    ) -> None:
        super().__init__(seed=seed, scenario=scenario, member=member)
        self.area = CoverageArea(
            center_x=0.0, center_y=0.0, width=area_width, length=area_length
        )
        self.altitude = altitude
        self.lane_spacing = lane_spacing
        self.cruise_speed = cruise_speed
        self._plan_done = False
        self._waypoints: List[np.ndarray] = []
        self.planning_time_s = 0.0

    # ------------------------------------------------------------------
    def build_world(self) -> World:
        world = self.scenario_world()
        if world is not None:
            return world
        return farm_world(
            width=self.area.width * 1.2,
            length=self.area.length * 1.5,
            seed=self.seed,
        )

    # ------------------------------------------------------------------
    def run(self) -> QofReport:
        sim = self._sim
        # Perception: GPS fix before planning.
        sim.submit_kernel("localization_gps")
        # Take off.
        sim.flight_controller.takeoff(self.altitude)
        ok = sim.run_until(
            lambda s: s.flight_controller.at_target(), timeout_s=60.0
        )
        if not ok:
            return sim.report(False, extra=self.extra_metrics())

        # Planning: one lawnmower computation; the drone hovers meanwhile.
        plan_start = sim.now
        self._plan_done = False

        def _lawnmower_done(job) -> None:
            self._waypoints = lawnmower_path(
                self.area, altitude=self.altitude, lane_spacing=self.lane_spacing
            )
            self._plan_done = True

        sim.submit_kernel("lawnmower", on_done=_lawnmower_done)
        ok = sim.run_until(lambda s: self._plan_done, timeout_s=120.0)
        if not ok:
            return sim.report(False, extra=self.extra_metrics())
        self.planning_time_s = sim.now - plan_start

        # Smoothing (cheap) and control: track the sweep at cruise speed.
        trajectory = smooth_trajectory(
            [sim.state.position] + self._waypoints,
            max_speed=self.cruise_speed,
            max_acceleration=sim.vehicle.params.max_acceleration_ms2,
            checker=None,  # no obstacles at altitude
            blend_radius=2.0,
            start_time=sim.now,
            seed=self.seed,
        )
        tracker = PathTracker(max_speed=self.cruise_speed)
        tracker.set_trajectory(trajectory, now=sim.now)
        self._tracker = tracker

        def _track(s) -> None:
            status = tracker.update(s.state.position, s.now)
            s.flight_controller.fly_velocity(status.velocity_command)
            if s.scheduler.pending_jobs == 0:
                s.submit_kernel("path_tracking")

        ok = sim.run_until(
            lambda s: tracker.update(s.state.position, s.now).finished,
            on_tick=_track,
            timeout_s=sim.config.max_mission_time_s,
        )
        if not ok:
            return sim.report(False, extra=self.extra_metrics())

        sim.flight_controller.land()
        sim.run_until(
            lambda s: s.flight_controller.mode.value == "landed", timeout_s=30.0
        )
        return sim.report(True, extra=self.extra_metrics())

    # ------------------------------------------------------------------
    def extra_metrics(self) -> Dict[str, float]:
        metrics = super().extra_metrics()
        metrics["planning_time_s"] = self.planning_time_s
        metrics["area_m2"] = self.area.width * self.area.length
        return metrics
