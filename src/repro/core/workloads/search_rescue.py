"""Search and Rescue workload.

"The 3D Mapping application is augmented with an object detection
machine-learning-based algorithm in the perception stage to constantly
explore and monitor its environment, until a human target is detected"
(Fig. 7e).

The detector runs continuously alongside the mapping pipeline; on the
shared scheduler both contend for cores, so a slow operating point starves
the detector, frames get dropped (the ROS queue semantics), and the drone
can fly past a survivor — the paper's "a faster object detection kernel
prevents the drone from missing sampled frames during any motion".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ...perception.detection import DETECTORS, ObjectDetector
from ...world.environment import World
from ...world.generator import disaster_world
from ..qof import QofReport
from ..simulator import Simulation
from .mapping3d import MappingWorkload


class SearchRescueWorkload(MappingWorkload):
    """Explore a disaster site until a survivor is detected.

    Parameters
    ----------
    detector_name:
        "yolo" (default), "hog", or "haar" — the plug-and-play knob.
    n_survivors:
        Survivors hidden in the rubble field.
    """

    name = "search_rescue"

    def __init__(
        self,
        detector_name: str = "yolo",
        n_survivors: int = 3,
        coverage_target: float = 0.95,
        octomap_resolution: float = 0.8,
        world: Optional[World] = None,
        seed: int = 0,
        **kwargs,
    ) -> None:
        super().__init__(
            coverage_target=coverage_target,
            octomap_resolution=octomap_resolution,
            world=world,
            seed=seed,
            **kwargs,
        )
        if detector_name not in DETECTORS:
            raise ValueError(
                f"unknown detector '{detector_name}' "
                f"(choose from {sorted(DETECTORS)})"
            )
        self.detector_name = detector_name
        self.n_survivors = n_survivors
        self.detector = ObjectDetector(
            model=DETECTORS[detector_name],
            target_kinds=("person",),
            seed=seed,
        )
        self.found_survivor = False
        self.detection_frames = 0
        self._detector_busy = False

    # ------------------------------------------------------------------
    def build_world(self) -> World:
        if self._world is not None:
            return self._world
        world = self.scenario_world()
        if world is not None:
            return world
        return disaster_world(
            size=60.0,
            n_debris=30,
            n_survivors=self.n_survivors,
            seed=self.seed,
        )

    # ------------------------------------------------------------------
    # Detection node: continuously re-submitted while exploring.
    # ------------------------------------------------------------------
    def _detection_tick(self, sim: Simulation) -> None:
        if self._detector_busy or self.found_survivor:
            return
        self._detector_busy = True
        # The frame is grabbed now; results land when the kernel completes.
        position = sim.state.position.copy()
        yaw = sim.state.yaw
        frame_time = sim.now

        def _detect_done(job) -> None:
            self._detector_busy = False
            self.detection_frames += 1
            boxes = self.detector.detect(
                sim.detection_camera, sim.world, position, yaw, time=frame_time
            )
            for box in boxes:
                if box.obstacle_name and box.obstacle_name.startswith("survivor"):
                    self.found_survivor = True
                    return

        sim.submit_kernel(
            self.detector.model.name, on_done=_detect_done
        )

    # ------------------------------------------------------------------
    def run(self) -> QofReport:
        sim = self._sim
        # The mission is MappingWorkload's explore loop with the detector
        # node running alongside the mapping pipeline and a find-triggered
        # exit condition.
        from .base import OccupancyPipeline, warm_up_map
        from ...planning.frontier import FrontierExplorer

        region = self._map_region(sim)
        self.pipeline = OccupancyPipeline(
            sim,
            resolution=self.octomap_resolution,
            map_bounds=region,
            max_rays=80,
        )
        original_pipeline_tick = self.pipeline.tick

        def tick_with_detection() -> None:
            original_pipeline_tick()
            self._detection_tick(sim)

        self.pipeline.tick = tick_with_detection  # type: ignore[method-assign]

        explorer = FrontierExplorer(
            self.pipeline.octomap,
            self.pipeline.checker,
            sensor_range=sim.camera.intrinsics.max_range_m,
            seed=self.seed,
        )
        sim.flight_controller.takeoff(self.altitude)
        if not sim.run_until(
            lambda s: s.flight_controller.at_target(), timeout_s=60.0
        ):
            return sim.report(False, extra=self.extra_metrics())
        warm_up_map(self.pipeline, sweeps=8)
        sim.submit_kernel("slam")

        coverage = self.pipeline.octomap.coverage_fraction(region)
        while (
            not self.found_survivor
            and coverage < self.coverage_target
            and self.explore_rounds < self.max_explore_rounds
            and not sim.failed
        ):
            if not self._explore_once(sim, explorer):
                break
            coverage = self.pipeline.octomap.coverage_fraction(region)
        self.final_coverage = coverage

        sim.flight_controller.land()
        sim.run_until(
            lambda s: s.flight_controller.mode.value == "landed", timeout_s=30.0
        )
        success = self.found_survivor
        if not success and not sim.failed:
            sim.fail("survivor_not_found")
        return sim.report(success, extra=self.extra_metrics())

    # ------------------------------------------------------------------
    def extra_metrics(self) -> Dict[str, float]:
        metrics = super().extra_metrics()
        metrics["found_survivor"] = 1.0 if self.found_survivor else 0.0
        metrics["detection_frames"] = float(self.detection_frames)
        metrics["detector_recall"] = self.detector.recall
        return metrics
