"""OctoMap resolution policies — the Fig. 19 energy case study.

The paper: "Since the drone's environment constantly changes, a dynamic
approach where a runtime sets the resolution is ideally desirable. ...
by switching between the two resolutions according to the environment's
obstacle density, the dynamic approach is able to balance OctoMap
computation with mission feasibility and energy, holistically."

A policy is a callable ``f(sim, pipeline) -> resolution_m`` evaluated at
each planning phase.  Three policies are provided:

* :func:`static_policy` — a fixed resolution (the 0.15 m / 0.80 m
  baselines of Fig. 19);
* :func:`density_policy` — the dynamic approach: fine resolution in
  dense (indoor) surroundings, coarse in open (outdoor) ones;
* :func:`belief_density_policy` — the same decision taken from the
  drone's own map instead of ground truth.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ...world.geometry import AABB

#: Resolutions used in the paper's study (footnote: 0.15 m keeps an
#: average 0.82 m door passable for a 0.65 m drone; 0.80 m does not).
FINE_RESOLUTION = 0.15
COARSE_RESOLUTION = 0.80

ResolutionPolicy = Callable[["Simulation", "OccupancyPipeline"], float]


def static_policy(resolution: float) -> ResolutionPolicy:
    """Always use ``resolution`` (the static baselines)."""

    def policy(sim, pipeline) -> float:
        return resolution

    return policy


def density_policy(
    fine: float = FINE_RESOLUTION,
    coarse: float = COARSE_RESOLUTION,
    density_threshold: float = 0.006,
    radius_m: float = 15.0,
) -> ResolutionPolicy:
    """Dynamic switching on local obstacle density (ground-truth knob).

    The paper's runtime switches "according to the environment's obstacle
    density"; we measure the occupied-volume fraction within ``radius_m``
    of the vehicle and use the fine map when it exceeds the threshold.
    """

    state = {"current": coarse}

    def _local_density(sim, center: np.ndarray, radius: float) -> float:
        lo = np.maximum(center - radius, sim.world.bounds.lo)
        hi = np.minimum(center + radius, sim.world.bounds.hi)
        if np.any(lo >= hi):
            return 0.0
        return sim.world.density(AABB(lo, hi))

    def policy(sim, pipeline) -> float:
        # Look ahead along the upcoming leg (toward the goal the mission
        # published, if any): the fine map must be in place *before* the
        # dense region is first mapped, or the coarse map bakes in closed
        # doorways that send the planner on detours.
        probes = [sim.state.position]
        goal = getattr(sim, "current_goal", None)
        if goal is not None:
            delta = np.asarray(goal, dtype=float) - sim.state.position
            dist = float(np.linalg.norm(delta))
            if dist > 1e-6:
                direction = delta / dist
                probes += [
                    sim.state.position + direction * min(d, dist)
                    for d in (radius_m * 0.5, radius_m)
                ]
        density = max(
            _local_density(sim, np.asarray(p, dtype=float), radius_m * 0.6)
            for p in probes
        )
        # Hysteresis: switch to fine at the threshold, back to coarse only
        # when density drops well below it — flip-flopping at the boundary
        # would rebuild the map every plan and thrash away its knowledge.
        if state["current"] == coarse and density >= density_threshold:
            state["current"] = fine
        elif state["current"] == fine and density < density_threshold / 3.0:
            state["current"] = coarse
        return state["current"]

    return policy


def belief_density_policy(
    fine: float = FINE_RESOLUTION,
    coarse: float = COARSE_RESOLUTION,
    occupied_threshold: float = 0.015,
    radius_m: float = 10.0,
) -> ResolutionPolicy:
    """Dynamic switching on the *believed* local occupancy.

    Counts occupied voxels in the belief map around the vehicle; needs no
    ground-truth access, so it is deployable on a real drone.
    """

    def policy(sim, pipeline) -> float:
        om = pipeline.octomap
        center = sim.state.position
        occupied = om.occupied_centers()
        if occupied.shape[0] == 0:
            return coarse
        near = (
            np.linalg.norm(occupied - center[None, :], axis=1) <= radius_m
        ).sum()
        volume = (2 * radius_m) ** 3
        fraction = near * om.resolution**3 / volume
        return fine if fraction >= occupied_threshold else coarse

    return policy
