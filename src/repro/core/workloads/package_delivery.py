"""Package Delivery workload.

"A MAV navigates through an obstacle-filled environment to reach some
arbitrary destination, deliver a package and come back to its origin."
Pipeline (Fig. 7c): point cloud + SLAM + OctoMap (Perception), collision
check + shortest-path + smoothing (Planning), path tracking (Control).
While flying, the map is continuously updated and the path re-planned when
newly observed obstacles obstruct it — which is how depth-sensor noise
turns into extra re-plans and longer missions in the Table II study.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from ...control.path_tracking import PathTracker
from ...observability import trace as _trace
from ...planning.prm import PrmPlanner
from ...planning.rrt import PlanResult, RrtPlanner, RrtStarPlanner
from ...planning.smoothing import Trajectory, smooth_trajectory
from ...world.environment import World
from ...world.generator import urban_world
from ...world.geometry import norm as _vec_norm, vec
from ..qof import QofReport
from ..simulator import Simulation
from .base import OccupancyPipeline, Workload, warm_up_map

_PLANNERS = {
    "rrt": RrtPlanner,
    "rrt_star": RrtStarPlanner,
    "prm": PrmPlanner,
}


class PackageDeliveryWorkload(Workload):
    """Deliver a package to a goal point and return home.

    Parameters
    ----------
    goal:
        Delivery coordinates; ``None`` picks a far free point automatically.
    planner_name:
        "rrt" (default), "rrt_star", or "prm" — the plug-and-play knob.
    octomap_resolution:
        Belief-map voxel size.
    cruise_speed:
        Upper bound on commanded speed (the Eq.-2 bound may be lower).
    resolution_policy:
        Optional callable ``f(sim, pipeline) -> resolution`` evaluated
        before each planning phase — the dynamic-resolution case study
        hook (Fig. 19).
    """

    name = "package_delivery"

    def __init__(
        self,
        goal: Optional[np.ndarray] = None,
        planner_name: str = "rrt",
        octomap_resolution: float = 0.5,
        cruise_speed: float = 8.0,
        altitude: float = 3.0,
        delivery_hover_s: float = 2.0,
        resolution_policy: Optional[Callable] = None,
        world: Optional[World] = None,
        seed: int = 0,
        scenario=None,
        member=None,
    ) -> None:
        super().__init__(seed=seed, scenario=scenario, member=member)
        if planner_name not in _PLANNERS:
            raise ValueError(
                f"unknown planner '{planner_name}' "
                f"(choose from {sorted(_PLANNERS)})"
            )
        self.goal = None if goal is None else np.asarray(goal, dtype=float)
        self.planner_name = planner_name
        self.octomap_resolution = octomap_resolution
        self.cruise_speed = cruise_speed
        self.altitude = altitude
        self.delivery_hover_s = delivery_hover_s
        self.resolution_policy = resolution_policy
        self._world = world
        self.pipeline: Optional[OccupancyPipeline] = None
        self.plans_failed = 0
        self.delivered = False
        self._prm_planner: Optional[PrmPlanner] = None
        self.prm_roadmap_reuses = 0

    # ------------------------------------------------------------------
    def build_world(self) -> World:
        if self._world is not None:
            return self._world
        world = self.scenario_world()
        if world is not None:
            return world
        return urban_world(
            blocks=3, block_size=22.0, street_width=14.0,
            building_density=0.6, max_height=12.0, seed=self.seed,
        )

    def _default_goal(self, sim: Simulation) -> np.ndarray:
        """A free point near the far corner of the world."""
        bounds = sim.world.bounds
        target = bounds.lo + (bounds.hi - bounds.lo) * vec(0.82, 0.82, 0.0)
        target[2] = self.altitude
        rng = np.random.default_rng(self.seed + 7)
        for _ in range(200):
            candidate = target + rng.normal(0.0, 4.0, size=3)
            candidate[2] = self.altitude
            if sim.world.is_free(candidate, margin=1.0):
                return candidate
        return target

    # ------------------------------------------------------------------
    # Planning helpers
    # ------------------------------------------------------------------
    def _planning_bounds(self, sim: Simulation):
        """Sampling region for the planners: capped at the mission ceiling
        so the drone threads the environment instead of overflying it."""
        from ...world.geometry import AABB

        lo = sim.world.bounds.lo.copy()
        hi = sim.world.bounds.hi.copy()
        lo[2] = max(lo[2], 1.0)
        hi[2] = min(hi[2], self.altitude + 3.0)
        return AABB(lo, hi)

    def _make_planner(
        self, sim: Simulation, goal: Optional[np.ndarray] = None
    ):
        cls = _PLANNERS[self.planner_name]
        seed = int(sim.rng.integers(1 << 31))
        if self.planner_name == "prm":
            # Multi-query roadmap cache: a mission replans ~15 times as
            # the OctoMap absorbs new sensing, but PRM is built for
            # exactly that — keep one roadmap alive across replans,
            # lazily dropping edges the updated belief map now blocks
            # and pinning the recurring leg goal in as a vertex.  The
            # checker object survives resolution switches (the pipeline
            # swaps its ``octomap`` in place), so an identity mismatch
            # means a different pipeline/mission and forces a rebuild.
            planner = self._prm_planner
            if planner is not None and planner.checker is self.pipeline.checker:
                planner.revalidate()
                self.prm_roadmap_reuses += 1
            else:
                planner = PrmPlanner(
                    checker=self.pipeline.checker,
                    bounds=self._planning_bounds(sim),
                    seed=seed,
                )
                self._prm_planner = planner
            if goal is not None:
                planner.ensure_vertex(goal)
            return planner
        kwargs = dict(
            checker=self.pipeline.checker,
            bounds=self._planning_bounds(sim),
            seed=seed,
        )
        kwargs.update(step_size=3.0, max_iterations=3000)
        return cls(**kwargs)

    def _plan_and_smooth(
        self, sim: Simulation, goal: np.ndarray
    ) -> Optional[Trajectory]:
        """Hover while the planning + smoothing kernels execute, then
        return the smoothed trajectory (or None on planning failure)."""
        if self.resolution_policy is not None:
            sim.current_goal = goal  # lookahead hint for dynamic policies
            new_res = self.resolution_policy(sim, self.pipeline)
            if self.pipeline.set_resolution(new_res):
                # Fresh-map rebuild: yaw-sweep the surroundings into the
                # new map, then keep sensing briefly before planning.
                warm_up_map(self.pipeline, sweeps=8)
                self._sense_in_place(sim, duration_s=2.0)
        sim.flight_controller.hover()
        done = {"plan": False, "smooth": False}
        result_holder: Dict[str, Optional[PlanResult]] = {"plan": None}

        def _plan_done(job) -> None:
            planner = self._make_planner(sim, goal=goal)
            result_holder["plan"] = planner.plan(sim.state.position, goal)
            done["plan"] = True

        sim.submit_kernel("shortest_path", on_done=_plan_done)
        if not sim.run_until(lambda s: done["plan"], timeout_s=300.0):
            return None
        plan = result_holder["plan"]
        if plan is None or not plan.success:
            self.plans_failed += 1
            # A degraded cached roadmap (lazy revalidation only removes
            # edges) may be why the query failed: rebuild from scratch
            # on the next attempt.
            self._prm_planner = None
            return None

        def _smooth_done(job) -> None:
            done["smooth"] = True

        sim.submit_kernel("smoothing", on_done=_smooth_done)
        if not sim.run_until(lambda s: done["smooth"], timeout_s=60.0):
            return None
        return smooth_trajectory(
            plan.waypoints,
            max_speed=min(self.cruise_speed, self.pipeline.allowed_velocity()),
            max_acceleration=sim.vehicle.params.max_acceleration_ms2,
            checker=self.pipeline.checker,
            blend_radius=1.5,
            start_time=sim.now,
            seed=self.seed,
        )

    # ------------------------------------------------------------------
    # Leg execution (fly one planned trajectory, re-planning as needed)
    # ------------------------------------------------------------------
    def _fly_leg(self, sim: Simulation, goal: np.ndarray) -> bool:
        """Fly from the current position to ``goal``; True on arrival."""
        max_replans = 30
        attempts = 0
        while attempts <= max_replans:
            attempts += 1
            trajectory = self._plan_and_smooth(sim, goal)
            if trajectory is None:
                if sim.failed:
                    return False
                # Planning failed: gather more map knowledge and retry.
                if attempts > max_replans:
                    sim.fail("planning_failed")
                    return False
                if not self._sense_in_place(sim, duration_s=2.0):
                    return False
                continue
            tracker = PathTracker(max_speed=self.cruise_speed)
            tracker.set_trajectory(trajectory, now=sim.now)
            blocked = {"flag": False}
            check_gate = {"busy": False}
            stall = {"anchor": sim.state.position.copy(), "since": sim.now}

            def _on_tick(s: Simulation) -> None:
                self.pipeline.tick()
                # Stall detection: the reactive brake can pin the drone
                # against a believed obstacle; treat that as a blocked path
                # and force a re-plan from the current position.
                moved = float(
                    _vec_norm(s.state.position - stall["anchor"])
                )
                if moved > 0.5:
                    stall["anchor"] = s.state.position.copy()
                    stall["since"] = s.now
                elif s.now - stall["since"] > 6.0:
                    blocked["flag"] = True
                status = tracker.update(s.state.position, s.now)
                cmd = self.pipeline.safety_filter(
                    status.velocity_command, self.cruise_speed
                )
                s.flight_controller.fly_velocity(cmd)
                # Periodic collision re-validation of the remaining path.
                if not check_gate["busy"]:
                    check_gate["busy"] = True

                    def _check_done(job) -> None:
                        check_gate["busy"] = False
                        # Re-validate the next few seconds of the reference
                        # trajectory against the (updated) belief map.  The
                        # current position is excluded: a drone braked at an
                        # inflated-obstacle boundary legitimately sits in
                        # occupied belief space while its path escapes it.
                        if s.now - trajectory.points[0].time < 1.0:
                            return  # grace period on a fresh trajectory
                        horizon = trajectory.positions_at(
                            s.now + np.array([0.75, 1.5, 2.25, 3.0])
                        )
                        if not self.pipeline.checker.path_free(horizon):
                            blocked["flag"] = True

                    s.submit_kernel("collision_check", on_done=_check_done)

            arrived = sim.run_until(
                lambda s: (
                    blocked["flag"]
                    or tracker.update(s.state.position, s.now).finished
                    or _vec_norm(s.state.position - goal) < 1.0
                ),
                on_tick=_on_tick,
                timeout_s=sim.config.max_mission_time_s,
            )
            if not arrived:
                return False
            if blocked["flag"]:
                self.replans += 1
                _trace.count("mission.replans")
                continue
            return True
        sim.fail("replans_exhausted")
        return False

    def _sense_in_place(self, sim: Simulation, duration_s: float) -> bool:
        """Hover and keep the mapping pipeline running for ``duration_s``."""
        sim.flight_controller.hover()
        end = sim.now + duration_s
        return sim.run_until(
            lambda s: s.now >= end,
            on_tick=lambda s: self.pipeline.tick(),
            timeout_s=duration_s + 30.0,
        )

    # ------------------------------------------------------------------
    def run(self) -> QofReport:
        sim = self._sim
        self.pipeline = OccupancyPipeline(
            sim,
            resolution=self.octomap_resolution,
            stop_distance_m=6.5,
        )
        route = self.member_route()
        if route is not None and self.goal is None:
            # Shared-world fleet member: fly the assigned lane at the
            # assigned altitude (vertical separation between members).
            self.altitude = float(route["altitude_m"])
            goal = np.asarray(route["goal"], dtype=float).copy()
        else:
            goal = (
                self.goal if self.goal is not None else self._default_goal(sim)
            )
        home = sim.state.position.copy() + vec(0.0, 0.0, self.altitude)

        sim.flight_controller.takeoff(self.altitude)
        if not sim.run_until(
            lambda s: s.flight_controller.at_target(), timeout_s=60.0
        ):
            return sim.report(False, extra=self.extra_metrics())
        warm_up_map(self.pipeline, sweeps=8)
        # Localization keeps running in the background (SLAM node).
        sim.submit_kernel("slam")

        # Outbound leg, delivery, return leg.
        if not self._fly_leg(sim, goal):
            return sim.report(False, extra=self.extra_metrics())
        self.delivered = True
        if not self._sense_in_place(sim, self.delivery_hover_s):
            return sim.report(False, extra=self.extra_metrics())
        if not self._fly_leg(sim, home):
            return sim.report(False, extra=self.extra_metrics())

        sim.flight_controller.land()
        sim.run_until(
            lambda s: s.flight_controller.mode.value == "landed", timeout_s=30.0
        )
        return sim.report(True, extra=self.extra_metrics())

    # ------------------------------------------------------------------
    def extra_metrics(self) -> Dict[str, float]:
        metrics = super().extra_metrics()
        metrics["plans_failed"] = float(self.plans_failed)
        metrics["delivered"] = 1.0 if self.delivered else 0.0
        if self.planner_name == "prm":
            metrics["prm_roadmap_reuses"] = float(self.prm_roadmap_reuses)
        if self.pipeline is not None:
            metrics["map_updates"] = float(self.pipeline.updates_completed)
            metrics["allowed_velocity_ms"] = self.pipeline.allowed_velocity()
        return metrics
