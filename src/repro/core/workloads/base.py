"""Workload base classes and the shared perception pipeline.

Every MAVBench application follows the Perception -> Planning -> Control
pipeline of Fig. 5.  This module provides:

* :class:`Workload` — the interface the benchmark harness drives;
* :class:`OccupancyPipeline` — the shared perception chain (depth capture
  -> point cloud -> OctoMap) used by Package Delivery, 3D Mapping, and
  Search and Rescue, including the Eq.-2 velocity bound derived from the
  pipeline's current response time.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ...compute.kernels import octomap_runtime_scale
from ...compute.scheduler import Job
from ...observability import trace as _trace
from ...perception.octomap import OctoMap
from ...perception.point_cloud import PointCloud, depth_to_point_cloud
from ...planning.collision import CollisionChecker
from ...scenarios import (
    ScenarioSpec,
    instantiate_scenario,
    member_route as _member_route,
)
from ...world.environment import World
from ...world.geometry import AABB, norm as _vec_norm
from ..qof import QofReport
from ..simulator import Simulation
from ..velocity import max_velocity


class Workload(abc.ABC):
    """One end-to-end MAV application.

    Lifecycle: construct -> :meth:`build_world` -> attach to a
    :class:`Simulation` via :meth:`bind` -> :meth:`run`.
    """

    #: Workload identifier; must match the kernel-model workload key.
    name: str = "abstract"

    def __init__(self, seed: int = 0, scenario=None, member=None) -> None:
        self.seed = seed
        #: Injected scenario (spec / "family:difficulty" token / payload
        #: dict).  ``None`` keeps the workload's canonical hard-wired
        #: generator, bit-for-bit.
        self.scenario: Optional[ScenarioSpec] = (
            None if scenario is None else ScenarioSpec.coerce(scenario)
        )
        #: Fleet-member index in a shared-world scenario: picks this
        #: mission's start/goal lane assignment (``member_route``).
        #: ``None`` (the default) keeps the workload single-drone.
        self.member: Optional[int] = None if member is None else int(member)
        self.sim: Optional[Simulation] = None
        self.replans = 0

    @abc.abstractmethod
    def build_world(self) -> World:
        """The environment this workload flies in."""

    def scenario_world(self) -> Optional[World]:
        """The injected scenario's world, or ``None`` for the canonical one.

        Scenarios with no pinned seed inherit the workload seed, so a
        campaign's seed axis varies scenario worlds exactly like it
        varies the canonical generators.
        """
        if self.scenario is None:
            return None
        return instantiate_scenario(self.scenario, default_seed=self.seed)

    def member_route(self) -> Optional[Dict[str, object]]:
        """This member's start/goal assignment in a shared-world scenario.

        ``None`` unless both a member index and a scenario whose family
        supports member routes are set — every other configuration keeps
        the historical launch/goal logic bit-for-bit.
        """
        if self.member is None or self.scenario is None:
            return None
        return _member_route(self.scenario.resolved(self.seed), self.member)

    def start_position(self, world: World) -> np.ndarray:
        """Ground-level launch point (must be obstacle-free).

        Default: the first free spot found scanning diagonally inward from
        the southwest corner of the world.  Scenario worlds additionally
        require ground-level clearance: families place low obstacles
        (crop rows, rubble) that a probe at hover height misses but the
        drone would spawn inside.  The extra check is gated on an
        injected scenario so canonical worlds keep their historical
        launch points bit-for-bit.
        """
        route = self.member_route()
        if route is not None:
            # Shared-world members launch from their assigned lane; the
            # family guarantees street lanes are building-free.
            return np.asarray(route["start"], dtype=float).copy()
        lo, hi = world.bounds.lo, world.bounds.hi
        for frac in np.linspace(0.06, 0.5, 23):
            candidate = lo + (hi - lo) * np.array([frac, frac, 0.0])
            candidate[2] = 0.0
            if self.scenario is not None:
                if self._scenario_launch_clear(world, candidate):
                    return candidate
                continue
            probe = candidate.copy()
            probe[2] = 1.5
            if world.is_free(probe, margin=1.0):
                return candidate
        raise RuntimeError(
            f"no free launch point found in world '{world.name}'"
        )

    @staticmethod
    def _scenario_launch_clear(world: World, candidate: np.ndarray) -> bool:
        """Launch-candidate validation for scenario worlds: hover-height
        clearance plus a ground-level probe, because families place low
        obstacles (crop rows, rubble) that the hover-height probe misses
        but the drone would spawn inside."""
        probe = candidate.copy()
        probe[2] = 1.5
        if not world.is_free(probe, margin=1.0):
            return False
        ground = candidate.copy()
        ground[2] = 0.4
        return world.is_free(ground, margin=0.6)

    def bind(self, sim: Simulation) -> None:
        """Attach the workload to an assembled simulation."""
        self.sim = sim

    @abc.abstractmethod
    def run(self) -> QofReport:
        """Execute the full mission and return its QoF report."""

    # Convenience -------------------------------------------------------
    @property
    def _sim(self) -> Simulation:
        if self.sim is None:
            raise RuntimeError(
                f"workload '{self.name}' is not bound to a simulation"
            )
        return self.sim

    def extra_metrics(self) -> Dict[str, float]:
        """Application-specific QoF metrics (override as needed)."""
        return {"replans": float(self.replans)}


@dataclass
class OccupancyPipeline:
    """The depth -> point cloud -> OctoMap perception chain.

    The chain runs continuously while the drone flies: when the previous
    map-update job finishes, a new depth frame is captured and a new job
    chain submitted, so the *map update rate equals what the platform can
    sustain* — slower compute means a staler map, a longer response time,
    and via Eq. (2) a lower permitted velocity.

    Attributes
    ----------
    sim:
        The owning simulation.
    resolution:
        OctoMap voxel size (the energy case-study knob).
    max_rays:
        Point-cloud subsampling cap per inserted frame (bounds the real
        octree insertion cost in our pure-Python tree).
    stop_distance_m:
        The Eq.-2 stopping-distance budget.
    """

    sim: Simulation
    resolution: float = 0.5
    max_rays: int = 60
    stop_distance_m: float = 6.5
    endpoint_only: bool = False
    map_bounds: Optional[AABB] = None

    def __post_init__(self) -> None:
        bounds = self.map_bounds or self.sim.world.bounds
        self.octomap = OctoMap(resolution=self.resolution, bounds=bounds)
        self.checker = CollisionChecker(
            octomap=self.octomap,
            drone_radius=self.sim.vehicle.params.radius_m,
        )
        self._busy = False
        self._pending_cloud: Optional[PointCloud] = None
        self.updates_completed = 0
        self._resolution_scale = octomap_runtime_scale(self.resolution)
        # Fleet-side perception accelerator (repro.fleet.pipeline), or
        # None on the classic sequential path.  Installed by the fleet
        # coordinator when the owning sim is enrolled in a fleet.
        self._accel = None
        # Shared-world registry (repro.fleet.shared_world): when set,
        # other fleet members are sensed as dynamic obstacles by the
        # clearance probes and the collision checker.
        self._shared_world = None
        fleet = getattr(self.sim, "_fleet", None)
        if fleet is not None:
            fleet.adopt_pipeline(self)

    # ------------------------------------------------------------------
    # Continuous mapping
    # ------------------------------------------------------------------
    @property
    def busy(self) -> bool:
        return self._busy

    def tick(self) -> None:
        """Keep the pipeline saturated: start a new update when idle."""
        if not self._busy:
            self.start_update()

    def start_update(self) -> None:
        """Capture a frame and submit the point-cloud + OctoMap jobs."""
        self._busy = True
        self._pending_cloud = self.sim.capture_point_cloud(stride=1)

        def _point_cloud_done(job: Job) -> None:
            octomap_runtime = (
                self.sim.kernel_model.runtime_s(
                    "octomap", self.sim.platform, self.sim.scheduler.rng
                )
                * self._resolution_scale
            )
            self.sim.submit_kernel(
                "octomap",
                on_done=self._octomap_done,
                duration_s=octomap_runtime,
            )

        self.sim.submit_kernel("point_cloud", on_done=_point_cloud_done)

    def _octomap_done(self, job: Job) -> None:
        cloud = self._pending_cloud
        if cloud is not None:
            carve = 0 if self.endpoint_only else self.max_rays
            self.octomap.insert_scan(cloud, carve_rays=carve)
        self._pending_cloud = None
        self._busy = False
        self.updates_completed += 1

    # ------------------------------------------------------------------
    # Resolution switching (dynamic case study)
    # ------------------------------------------------------------------
    def set_resolution(self, resolution: float, reset: bool = True) -> bool:
        """Switch the map resolution (Fig. 19's dynamic knob).

        With ``reset`` (the default) the map starts empty at the new
        resolution and the caller re-scans; cross-resolution evidence is
        treacherous in both directions (re-gridded occupancy either
        blocks doorways for many scans or erodes walls to a single
        grazing beam), so a clean rebuild-from-sensing is both simpler
        and safer.  ``reset=False`` re-grids the existing knowledge via
        :meth:`OctoMap.rebuilt_at_resolution` instead.

        Returns True if the resolution actually changed (callers should
        re-sense before planning either way).
        """
        if abs(resolution - self.resolution) < 1e-9:
            return False
        self.resolution = resolution
        if reset:
            self.octomap = OctoMap(
                resolution=resolution, bounds=self.octomap.bounds
            )
        else:
            self.octomap = self.octomap.rebuilt_at_resolution(resolution)
        self.checker.octomap = self.octomap
        self._resolution_scale = octomap_runtime_scale(resolution)
        if self._accel is not None:
            # The accelerator wraps the (now replaced) octomap; re-adopt
            # so its fast index and caches bind to the new map.
            self._accel = None
            fleet = getattr(self.sim, "_fleet", None)
            if fleet is not None:
                fleet.adopt_pipeline(self)
        return True

    # ------------------------------------------------------------------
    # Eq. (2) velocity bound
    # ------------------------------------------------------------------
    def response_time_s(self) -> float:
        """Deterministic sensor-to-reaction latency of the chain."""
        km = self.sim.kernel_model
        cfg = self.sim.platform
        return (
            km.runtime_s("point_cloud", cfg)
            + km.runtime_s("octomap", cfg) * self._resolution_scale
            + km.runtime_s("collision_check", cfg)
        )

    def allowed_velocity(self) -> float:
        """Eq.-2 bound at the pipeline's current response time, clamped to
        the airframe's mechanical limit."""
        if self._accel is not None:
            return self._accel.allowed_velocity()
        bound = max_velocity(self.response_time_s(), self.stop_distance_m)
        return min(bound, self.sim.vehicle.params.max_speed_ms)

    #: Speed cap while the near-term flight corridor is still unobserved.
    UNKNOWN_SPACE_SPEED = 1.5

    def clearance_along(
        self, direction: np.ndarray, max_dist: float = 8.0
    ) -> float:
        """Distance to the first *believed-occupied* voxel along
        ``direction`` from the vehicle (ray-marched on the belief map).

        In a shared-world fleet the answer is additionally capped by the
        distance to the nearest peer drone along the ray — applied *after*
        the map answer (and outside the accelerator's version-keyed
        cache: the map version doesn't change when peers move)."""
        clearance = self._map_clearance_along(direction, max_dist)
        if self._shared_world is not None:
            clearance = min(
                clearance,
                self._shared_world.clearance_along(
                    self.sim, direction, max_dist
                ),
            )
        return clearance

    def _map_clearance_along(
        self, direction: np.ndarray, max_dist: float = 8.0
    ) -> float:
        if self._accel is not None:
            return self._accel.clearance_along(direction, max_dist)
        d = np.asarray(direction, dtype=float)
        speed = _vec_norm(d)
        if speed < 1e-6:
            return max_dist
        d = d / speed
        position = self.sim.state.position
        radius = self.sim.vehicle.params.radius_m
        step = self.octomap.resolution / 2.0
        # Accumulate the march distances exactly as the scalar loop did
        # (``dist += step``) so the probe set is bit-identical, then answer
        # every probe with one batched occupied-box query.
        dists: List[float] = []
        dist = step
        while dist <= max_dist:
            dists.append(dist)
            dist += step
        if not dists:
            return max_dist
        darr = np.asarray(dists)
        probes = position[None, :] + d[None, :] * darr[:, None]
        occupied = self.octomap.boxes_occupied(probes - radius, probes + radius)
        blocked = np.nonzero(occupied)[0]
        if blocked.size:
            return float(darr[blocked[0]])
        return max_dist

    def safe_speed_limit(self, direction: np.ndarray) -> float:
        """Velocity cap: Eq. (2), a reactive brake before believed
        obstacles, and an unknown-space crawl.

        The reactive term guarantees the drone can stop within its known
        clearance (v <= sqrt(2 a (clearance - margin))); the unknown-space
        term keeps optimistic planning honest by crawling whenever the
        corridor a few meters ahead is still unobserved.
        """
        limit = self.allowed_velocity()
        d = np.asarray(direction, dtype=float)
        speed = _vec_norm(d)
        if speed < 1e-6:
            return limit
        d = d / speed
        a_max = self.sim.vehicle.params.max_acceleration_ms2
        margin = self.sim.vehicle.params.radius_m + self.octomap.resolution
        clearance = self.clearance_along(d)
        brake = math.sqrt(2.0 * a_max * max(clearance - margin, 0.0))
        limit = min(limit, brake)
        position = self.sim.state.position
        # Both unknown-space probes answered by one batched map lookup.
        probes = position[None, :] + d[None, :] * np.array([[2.0], [4.0]])
        if np.any(np.isnan(self.octomap.log_odds_many(probes))):
            return min(limit, self.UNKNOWN_SPACE_SPEED)
        return limit

    def safety_filter(self, cmd: np.ndarray, cruise: float) -> np.ndarray:
        """Final velocity-command filter applied every control tick.

        1. clamps ``cmd`` to min(cruise, :meth:`safe_speed_limit`);
        2. emergency brake: if the vehicle's *current momentum* cannot be
           arrested before its known clearance (accounting for the
           velocity-loop response lag), command a full stop.  The pure
           speed-limit envelope assumes instantaneous response; a real
           (simulated) vehicle needs the lag term or it creeps into
           obstacles at the boundary.
        """
        with _trace.span("tick.safety_filter", "control"):
            return self._safety_filter(cmd, cruise)

    def _safety_filter(self, cmd: np.ndarray, cruise: float) -> np.ndarray:
        cmd = np.asarray(cmd, dtype=float).copy()
        limit = min(cruise, self.safe_speed_limit(cmd))
        speed = _vec_norm(cmd)
        if speed > limit and speed > 0:
            cmd = cmd * (limit / speed)
        v = self.sim.state.velocity
        v_mag = _vec_norm(v)
        if v_mag > 0.3:
            params = self.sim.vehicle.params
            response_lag = 1.0 / 3.0  # velocity-loop time constant
            stop_dist = v_mag**2 / (2.0 * params.max_acceleration_ms2)
            margin = params.radius_m + self.octomap.resolution
            clearance = self.clearance_along(v)
            if clearance - margin <= stop_dist + v_mag * response_lag:
                return np.zeros(3)
        return cmd


def warm_up_map(pipeline: OccupancyPipeline, sweeps: int = 8) -> None:
    """Build initial map knowledge by yawing in place through a few frames.

    Mirrors the initial hover-and-scan phase real missions perform before
    the first plan.  The vehicle stays put; frames are captured at evenly
    spaced yaw angles and inserted synchronously (charged to the scheduler
    as a single warm-up batch by the caller's mission loop).
    """
    sim = pipeline.sim
    state = sim.state
    with _trace.span("perceive.warm_up", "perceive") as sp:
        sp.set(sweeps=sweeps)
        for k in range(sweeps):
            yaw = -np.pi + (2 * np.pi) * (k / max(sweeps, 1))
            image = sim.camera.capture_depth(
                sim.world, state.position, yaw, time=sim.now
            )
            cloud = depth_to_point_cloud(image, stride=1)
            carve = 0 if pipeline.endpoint_only else pipeline.max_rays
            pipeline.octomap.insert_scan(cloud, carve_rays=carve)
