"""The five MAVBench workloads (Section IV-B, Fig. 6/7)."""

from .base import OccupancyPipeline, Workload, warm_up_map
from .scanning import ScanningWorkload
from .package_delivery import PackageDeliveryWorkload
from .mapping3d import MappingWorkload
from .search_rescue import SearchRescueWorkload
from .aerial_photography import AerialPhotographyWorkload

WORKLOADS = {
    ScanningWorkload.name: ScanningWorkload,
    PackageDeliveryWorkload.name: PackageDeliveryWorkload,
    MappingWorkload.name: MappingWorkload,
    SearchRescueWorkload.name: SearchRescueWorkload,
    AerialPhotographyWorkload.name: AerialPhotographyWorkload,
}

__all__ = [
    "AerialPhotographyWorkload",
    "MappingWorkload",
    "OccupancyPipeline",
    "PackageDeliveryWorkload",
    "ScanningWorkload",
    "SearchRescueWorkload",
    "WORKLOADS",
    "Workload",
    "warm_up_map",
]
