"""Aerial Photography workload.

"We design the MAV to follow a moving target with the help of computer
vision algorithms.  The MAV uses a combination of object detection and
tracking algorithms to identify its relative distance from a target
(Perception).  Using a PID controller, it then plans motions to keep the
target near the center of the MAV's camera frame (Planning)" (Fig. 7b).

Metrics (Fig. 14): *error* — distance between the bounding-box center and
the frame center (normalized by frame width here, so it is resolution-
independent) — and *mission time*, where **longer is better**: "The drone
only flies while it can track the person."  Faster detection/tracking
kernels mean fresher box positions, tighter PID control, lower error, and
longer tracking before the target is lost.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ...control.pid import Pid
from ...perception.detection import DETECTORS, BoundingBox, ObjectDetector
from ...perception.tracking import CorrelationTracker
from ...world.environment import World, empty_world
from ...world.geometry import vec
from ...world.obstacles import DynamicObstacle, make_person
from ..qof import QofReport
from ..simulator import Simulation
from .base import Workload


class AerialPhotographyWorkload(Workload):
    """Follow a walking person, keeping them centered in frame.

    Parameters
    ----------
    target_speed:
        The subject's walking speed (dynamic-obstacle knob).
    standoff_m:
        Desired following distance.
    max_duration_s:
        Session length cap; the mission ends early if the target is lost
        for longer than ``lost_timeout_s``.
    tracker_mode:
        "realtime" or "buffered" (Table I's two tracking kernels).
    """

    name = "aerial_photography"

    def __init__(
        self,
        detector_name: str = "yolo",
        tracker_mode: str = "realtime",
        target_speed: float = 1.2,
        standoff_m: float = 8.0,
        altitude: float = 4.0,
        max_duration_s: float = 120.0,
        lost_timeout_s: float = 5.0,
        seed: int = 0,
        scenario=None,
        member=None,
    ) -> None:
        super().__init__(seed=seed, scenario=scenario, member=member)
        if detector_name not in DETECTORS:
            raise ValueError(f"unknown detector '{detector_name}'")
        self.detector = ObjectDetector(
            model=DETECTORS[detector_name], target_kinds=("person",), seed=seed
        )
        self.tracker = CorrelationTracker(
            mode=tracker_mode, search_radius_px=40.0, seed=seed
        )
        self.target_speed = target_speed
        self.standoff_m = standoff_m
        self.altitude = altitude
        self.max_duration_s = max_duration_s
        self.lost_timeout_s = lost_timeout_s
        self._person: Optional[DynamicObstacle] = None
        self._errors_px: List[float] = []
        self.tracked_time_s = 0.0
        self.detector_frames = 0
        self._perception_busy = False
        self._last_box: Optional[BoundingBox] = None
        self._last_seen_time = 0.0

    # ------------------------------------------------------------------
    def build_world(self) -> World:
        world = self.scenario_world()
        if world is None:
            world = empty_world((120.0, 120.0, 30.0), name="photo-park")
            # The subject patrols a large loop through the park.
            loop = [
                (10.0, 0.0, 0.9),
                (40.0, 10.0, 0.9),
                (45.0, 40.0, 0.9),
                (10.0, 45.0, 0.9),
                (-20.0, 20.0, 0.9),
            ]
        else:
            # Scenario worlds (e.g. the "park" congestion family, where
            # difficulty adds distractor walkers) carry the same subject
            # loop, scaled into whatever bounds the family produced.
            lo, hi = world.bounds.lo, world.bounds.hi

            def at(fx: float, fy: float):
                return (
                    float(lo[0] + fx * (hi[0] - lo[0])),
                    float(lo[1] + fy * (hi[1] - lo[1])),
                    0.9,
                )

            loop = [
                at(0.58, 0.50), at(0.83, 0.58), at(0.87, 0.83),
                at(0.58, 0.87), at(0.33, 0.67),
            ]
        self._person = make_person(
            loop[0], waypoints=loop, speed=self.target_speed, name="subject"
        )
        world.add(self._person)
        return world

    def start_position(self, world: World) -> np.ndarray:
        """Launch within camera range of the subject's starting point."""
        if self.scenario is not None:
            # Prefer a spot just southwest of the subject, but scenario
            # families can put obstacles anywhere — validate it with the
            # shared launch check and fall back to the base-class scan
            # when the spot is blocked.
            subject = self._person.waypoints[0]
            candidate = vec(float(subject[0]) - 10.0, float(subject[1]) - 8.0, 0.0)
            if self._scenario_launch_clear(world, candidate):
                return candidate
            return super().start_position(world)
        return vec(0.0, -8.0, 0.0)

    # ------------------------------------------------------------------
    # Perception node: detector to (re)acquire, tracker to follow.
    # ------------------------------------------------------------------
    def _perception_tick(self, sim: Simulation) -> None:
        if self._perception_busy:
            return
        self._perception_busy = True
        position = sim.state.position.copy()
        yaw = sim.state.yaw
        frame_time = sim.now
        use_tracker = self.tracker.tracking

        def _done(job) -> None:
            self._perception_busy = False
            true_center = self._project_target(sim, position, yaw)
            if use_tracker:
                status = self.tracker.update(true_center)
                if status.tracking and status.center_px is not None:
                    self._record_box_center(sim, status.center_px, frame_time)
            else:
                self.detector_frames += 1
                boxes = self.detector.detect(
                    sim.detection_camera, sim.world, position, yaw,
                    time=frame_time,
                )
                target_boxes = [
                    b for b in boxes if b.obstacle_name == self._person.name
                ]
                if target_boxes:
                    box = max(target_boxes, key=lambda b: b.confidence)
                    self.tracker.initialize(box)
                    self._record_box_center(sim, box.center_px, frame_time)

        kernel = (
            self.tracker.kernel_name if use_tracker else self.detector.model.name
        )
        sim.submit_kernel(kernel, on_done=_done)

    def _project_target(
        self, sim: Simulation, position: np.ndarray, yaw: float
    ) -> Optional[Tuple[float, float]]:
        proj = sim.detection_camera.project(
            self._person.position_at(sim.now), position, yaw
        )
        if proj is None:
            return None
        return (proj[0], proj[1])

    def _record_box_center(
        self, sim: Simulation, center: Tuple[float, float], stamp: float
    ) -> None:
        self._last_box = BoundingBox(
            center_px=center, size_px=(0, 0), confidence=1.0, label="person"
        )
        self._last_seen_time = stamp
        intr = sim.detection_camera.intrinsics
        offset = math.hypot(
            center[0] - intr.width / 2.0, center[1] - intr.height / 2.0
        )
        self._errors_px.append(offset)

    # ------------------------------------------------------------------
    # Planning: PID on the image-space error + standoff control.
    # ------------------------------------------------------------------
    def _control_tick(self, sim: Simulation) -> None:
        self._perception_tick(sim)
        if self._last_box is None:
            # Acquisition: drift toward the subject's briefed start area so
            # the detector gets a large enough target to lock onto.
            brief = self._person.waypoints[0]
            delta = brief - sim.state.position
            delta[2] = self.altitude - sim.state.position[2]
            dist = float(np.linalg.norm(delta[:2]))
            if dist > self.standoff_m:
                sim.flight_controller.fly_velocity(
                    delta / max(dist, 1.0) * 2.0
                )
            else:
                sim.flight_controller.hover()
            return
        # Stale perception means stale commands: all control below acts on
        # the last *observed* box, so quality degrades with kernel latency.
        staleness = sim.now - self._last_seen_time
        intr = sim.detection_camera.intrinsics
        half_fov = math.radians(intr.horizontal_fov_deg) / 2.0
        # Yaw: turn so the observed box center moves to the frame center.
        err_x = (self._last_box.center_px[0] - intr.width / 2.0) / (
            intr.width / 2.0
        )
        yaw_correction = self._yaw_pid.update(-err_x * half_fov, sim.config.dt)
        yaw_target = sim.state.yaw + yaw_correction
        # Range: close to the standoff distance along the observed bearing.
        target_pos = self._person.position_at(self._last_seen_time)
        delta = target_pos - sim.state.position
        horizontal = delta.copy()
        horizontal[2] = 0.0
        dist = float(np.linalg.norm(horizontal))
        toward = horizontal / dist if dist > 1e-6 else np.zeros(3)
        range_error = dist - self.standoff_m
        speed_cmd = self._range_pid.update(range_error, sim.config.dt)
        velocity = toward * speed_cmd
        velocity[2] = 1.0 * (self.altitude - sim.state.position[2])
        sim.flight_controller.fly_velocity(velocity, yaw=yaw_target)
        if staleness < 2.0:
            self.tracked_time_s += sim.config.dt

    # ------------------------------------------------------------------
    def run(self) -> QofReport:
        sim = self._sim
        self._yaw_pid = Pid(kp=3.0, ki=0.2, kd=0.3, output_limit=2.0,
                            integral_limit=0.5)
        self._range_pid = Pid(kp=1.2, ki=0.05, kd=0.2, output_limit=6.0,
                              integral_limit=2.0)
        sim.flight_controller.takeoff(self.altitude)
        if not sim.run_until(
            lambda s: s.flight_controller.at_target(), timeout_s=60.0
        ):
            return sim.report(False, extra=self.extra_metrics())
        # Face the subject initially.
        target = self._person.position_at(sim.now)
        yaw0 = math.atan2(
            target[1] - sim.state.position[1], target[0] - sim.state.position[0]
        )
        sim.vehicle.state.yaw = yaw0
        self._last_seen_time = sim.now
        end_time = sim.now + self.max_duration_s

        acquisition_deadline = sim.now + 20.0

        def _session_over(s: Simulation) -> bool:
            if s.now >= end_time:
                return True
            if self._last_box is None:
                # Still acquiring the subject for the first time.
                return s.now >= acquisition_deadline
            lost_for = s.now - self._last_seen_time
            return lost_for > self.lost_timeout_s

        sim.run_until(
            _session_over,
            on_tick=self._control_tick,
            timeout_s=self.max_duration_s + 60.0,
        )
        sim.flight_controller.land()
        sim.run_until(
            lambda s: s.flight_controller.mode.value == "landed", timeout_s=30.0
        )
        # Success = followed the subject for most of the session.
        success = self.tracked_time_s >= 0.5 * self.max_duration_s
        return sim.report(success, extra=self.extra_metrics())

    # ------------------------------------------------------------------
    def extra_metrics(self) -> Dict[str, float]:
        metrics = super().extra_metrics()
        intr = (
            self.sim.detection_camera.intrinsics if self.sim is not None else None
        )
        if self._errors_px and intr is not None:
            metrics["error_norm"] = float(
                np.mean(self._errors_px) / intr.width
            )
            metrics["error_px"] = float(np.mean(self._errors_px))
        metrics["tracked_time_s"] = self.tracked_time_s
        metrics["detector_frames"] = float(self.detector_frames)
        metrics["tracker_losses"] = float(self.tracker.lost_count)
        return metrics
