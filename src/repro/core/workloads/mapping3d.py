"""3D Mapping workload.

"This workload instructs a MAV to build a 3D map of an unknown polygonal
environment specified by its boundaries. ... the map is sampled and a
heuristic is used to select an energy efficient (i.e. short) path with a
high exploratory promise" (Fig. 7d).

The mission alternates frontier-exploration planning (the drone hovers
while the expensive ``frontier_exploration`` kernel runs — 2.6 s even at
the TX2's top operating point) with flight to the chosen viewpoint under
continuous mapping.  Both mechanisms of Section V-A are therefore live:
slower compute means *more hover time* (planning) and *lower max velocity*
(staler map via Eq. 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ...control.path_tracking import PathTracker
from ...planning.frontier import FrontierExplorer
from ...planning.rrt import RrtPlanner
from ...planning.smoothing import smooth_trajectory
from ...world.environment import World
from ...world.generator import forest_world
from ...world.geometry import AABB, vec
from ..qof import QofReport
from ..simulator import Simulation
from .base import OccupancyPipeline, Workload, warm_up_map


class MappingWorkload(Workload):
    """Explore and map a bounded unknown region.

    Parameters
    ----------
    coverage_target:
        Mission completes when this fraction of the region is observed.
    octomap_resolution:
        Belief-map voxel size.
    mapping_ceiling:
        Upper z of the region to map (keeps the coverage volume honest —
        the drone maps the flyable layer, not the whole sky).
    """

    name = "mapping"

    def __init__(
        self,
        coverage_target: float = 0.70,
        octomap_resolution: float = 0.8,
        cruise_speed: float = 8.0,
        altitude: float = 4.0,
        mapping_ceiling: float = 9.0,
        max_explore_rounds: int = 60,
        world: Optional[World] = None,
        seed: int = 0,
        scenario=None,
        member=None,
    ) -> None:
        super().__init__(seed=seed, scenario=scenario, member=member)
        if not 0.0 < coverage_target <= 1.0:
            raise ValueError("coverage target must be in (0, 1]")
        self.coverage_target = coverage_target
        self.octomap_resolution = octomap_resolution
        self.cruise_speed = cruise_speed
        self.altitude = altitude
        self.mapping_ceiling = mapping_ceiling
        self.max_explore_rounds = max_explore_rounds
        self._world = world
        self.pipeline: Optional[OccupancyPipeline] = None
        self.explore_rounds = 0
        self.final_coverage = 0.0

    # ------------------------------------------------------------------
    def build_world(self) -> World:
        if self._world is not None:
            return self._world
        world = self.scenario_world()
        if world is not None:
            return world
        return forest_world(size=60.0, n_trees=25, seed=self.seed)

    def _map_region(self, sim: Simulation) -> AABB:
        lo = sim.world.bounds.lo.copy()
        hi = sim.world.bounds.hi.copy()
        hi[2] = min(hi[2], self.mapping_ceiling)
        return AABB(lo, hi)

    # ------------------------------------------------------------------
    def _explore_once(self, sim: Simulation, explorer: FrontierExplorer) -> bool:
        """One explore round: plan (hover) then fly to the viewpoint."""
        self.explore_rounds += 1
        sim.flight_controller.hover()
        done = {"flag": False, "plan": None}

        def _frontier_done(job) -> None:
            planner = RrtPlanner(
                self.pipeline.checker,
                explorer.octomap.bounds,
                step_size=3.0,
                max_iterations=1500,
                seed=int(sim.rng.integers(1 << 31)),
            )
            done["plan"] = explorer.plan_to_view(sim.state.position, planner)
            done["flag"] = True

        sim.submit_kernel("frontier_exploration", on_done=_frontier_done)
        if not sim.run_until(
            lambda s: done["flag"],
            on_tick=lambda s: self.pipeline.tick(),
            timeout_s=600.0,
        ):
            return False
        plan = done["plan"]
        if plan is None or not plan.success:
            # No reachable frontier this round — sense and try again.
            return self._hover_sense(sim, 1.0)

        trajectory = smooth_trajectory(
            plan.waypoints,
            max_speed=min(self.cruise_speed, self.pipeline.allowed_velocity()),
            max_acceleration=sim.vehicle.params.max_acceleration_ms2,
            checker=self.pipeline.checker,
            blend_radius=1.5,
            start_time=sim.now,
            seed=self.seed,
        )
        tracker = PathTracker(max_speed=self.cruise_speed)
        tracker.set_trajectory(trajectory, now=sim.now)
        stall = {"anchor": sim.state.position.copy(), "since": sim.now,
                 "flag": False}

        def _on_tick(s: Simulation) -> None:
            self.pipeline.tick()
            moved = float(np.linalg.norm(s.state.position - stall["anchor"]))
            if moved > 0.5:
                stall["anchor"] = s.state.position.copy()
                stall["since"] = s.now
            elif s.now - stall["since"] > 6.0:
                # Pinned against a believed obstacle: abandon this view and
                # let the next exploration round pick a reachable one.
                stall["flag"] = True
            status = tracker.update(s.state.position, s.now)
            cmd = self.pipeline.safety_filter(
                status.velocity_command, self.cruise_speed
            )
            s.flight_controller.fly_velocity(cmd)

        return sim.run_until(
            lambda s: stall["flag"]
            or tracker.update(s.state.position, s.now).finished
            or s.now >= trajectory.points[-1].time + 15.0,
            on_tick=_on_tick,
            timeout_s=300.0,
        )

    def _hover_sense(self, sim: Simulation, duration_s: float) -> bool:
        sim.flight_controller.hover()
        end = sim.now + duration_s
        return sim.run_until(
            lambda s: s.now >= end,
            on_tick=lambda s: self.pipeline.tick(),
            timeout_s=duration_s + 30.0,
        )

    # ------------------------------------------------------------------
    def run(self) -> QofReport:
        sim = self._sim
        region = self._map_region(sim)
        self.pipeline = OccupancyPipeline(
            sim,
            resolution=self.octomap_resolution,
            map_bounds=region,
            max_rays=80,
        )
        explorer = FrontierExplorer(
            self.pipeline.octomap,
            self.pipeline.checker,
            sensor_range=self.sim.camera.intrinsics.max_range_m,
            seed=self.seed,
        )
        sim.flight_controller.takeoff(self.altitude)
        if not sim.run_until(
            lambda s: s.flight_controller.at_target(), timeout_s=60.0
        ):
            return sim.report(False, extra=self.extra_metrics())
        warm_up_map(self.pipeline, sweeps=8)
        sim.submit_kernel("slam")

        coverage = self.pipeline.octomap.coverage_fraction(region)
        while (
            coverage < self.coverage_target
            and self.explore_rounds < self.max_explore_rounds
            and not sim.failed
        ):
            if not self._explore_once(sim, explorer):
                break
            coverage = self.pipeline.octomap.coverage_fraction(region)
        self.final_coverage = coverage

        sim.flight_controller.land()
        sim.run_until(
            lambda s: s.flight_controller.mode.value == "landed", timeout_s=30.0
        )
        success = coverage >= self.coverage_target
        if not success and not sim.failed:
            sim.fail("coverage_not_reached")
        return sim.report(success, extra=self.extra_metrics())

    # ------------------------------------------------------------------
    def extra_metrics(self) -> Dict[str, float]:
        metrics = super().extra_metrics()
        metrics["coverage"] = self.final_coverage
        metrics["explore_rounds"] = float(self.explore_rounds)
        if self.pipeline is not None:
            metrics["map_updates"] = float(self.pipeline.updates_completed)
            metrics["map_cells"] = float(self.pipeline.octomap.memory_cells())
        return metrics
