"""Core: the closed-loop simulator, QoF metrics, workloads, and the API."""

from .velocity import (
    PAPER_A_MAX,
    PAPER_STOP_DISTANCE,
    max_velocity,
    max_velocity_curve,
    response_time_for_velocity,
)
from .qof import HOVER_SPEED_THRESHOLD, QofRecorder, QofReport, QofSample
from .simulator import Simulation, SimulationConfig
from .api import (
    WorkloadResult,
    available_workloads,
    make_simulation,
    run_workload,
)
from .workloads import WORKLOADS, Workload

__all__ = [
    "HOVER_SPEED_THRESHOLD",
    "PAPER_A_MAX",
    "PAPER_STOP_DISTANCE",
    "QofRecorder",
    "QofReport",
    "QofSample",
    "Simulation",
    "SimulationConfig",
    "WORKLOADS",
    "Workload",
    "WorkloadResult",
    "available_workloads",
    "make_simulation",
    "max_velocity",
    "max_velocity_curve",
    "response_time_for_velocity",
    "run_workload",
]
