"""The closed-loop MAV simulator.

This is MAVBench's "closed-loop simulation platform": the environment,
sensors, flight dynamics, companion-computer compute model, middleware,
and energy/battery models advancing together in lock-step.  Information
flows exactly as in Fig. 3/4: sensors sample the simulated environment,
kernels process the data on the (modeled) companion computer, flight
commands go to the flight controller, and the vehicle's motion changes
what the sensors see next.

One :class:`Simulation` owns the whole stack; a workload (see
``repro.core.workloads``) drives it through the same interfaces the
paper's applications use on the real TX2: sensor captures, kernel job
submissions, and flight-controller commands.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from ..compute.kernels import KernelModel
from ..compute.platform import JETSON_TX2, PlatformConfig
from ..compute.scheduler import ComputeScheduler, Job
from ..dynamics.flight_controller import FlightController, FlightMode
from ..dynamics.quadrotor import Quadrotor
from ..dynamics.state import VehicleParams, VehicleState
from ..energy.battery import Battery
from ..energy.power_model import RotorPowerModel
from ..middleware.clock import SimClock
from ..middleware.node import NodeGraph
from ..observability import trace as _trace
from ..perception.point_cloud import PointCloud, depth_to_point_cloud
from ..planning.collision import GroundTruthChecker
from ..sensors.camera import DepthImage, RgbdCamera
from ..sensors.imu_gps import Gps, Imu
from ..world.environment import World
from ..world.geometry import vec
from . import fleet_hook
from .qof import QofRecorder, QofReport


@dataclass
class SimulationConfig:
    """Global knobs of the closed-loop simulation (Section III-D).

    Attributes
    ----------
    dt:
        Physics tick (s).  AirSim runs physics at 1 kHz; our point-mass
        model is stable and accurate at 20 Hz, which keeps pure-Python
        missions fast.
    max_mission_time_s:
        Watchdog: missions exceeding this are failed.
    seed:
        Master seed; all stochastic components derive from it.
    """

    dt: float = 0.05
    max_mission_time_s: float = 2400.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.dt <= 0:
            raise ValueError("dt must be positive")
        if self.max_mission_time_s <= 0:
            raise ValueError("mission timeout must be positive")


class Simulation:
    """The assembled closed-loop stack.

    Parameters
    ----------
    world:
        The environment (substitutes Unreal).
    platform:
        Companion-computer operating point (substitutes the TX2).
    kernel_model:
        Kernel runtime model, usually workload-specific.
    vehicle_params:
        Airframe limits.
    camera:
        The RGB-D sensor (noise injected here for the reliability study).
    battery, rotor_power:
        Energy substrate.
    config:
        Global simulation knobs.
    """

    def __init__(
        self,
        world: World,
        platform: Optional[PlatformConfig] = None,
        kernel_model: Optional[KernelModel] = None,
        vehicle_params: Optional[VehicleParams] = None,
        camera: Optional[RgbdCamera] = None,
        detection_camera: Optional[RgbdCamera] = None,
        battery: Optional[Battery] = None,
        rotor_power: Optional[RotorPowerModel] = None,
        config: Optional[SimulationConfig] = None,
    ) -> None:
        self.world = world
        self.config = config or SimulationConfig()
        self.platform = platform or PlatformConfig(JETSON_TX2, 4, 2.2)
        self.kernel_model = kernel_model or KernelModel()
        self.rng = np.random.default_rng(self.config.seed)

        params = vehicle_params or VehicleParams()
        self.vehicle = Quadrotor(params=params)
        self.flight_controller = FlightController(self.vehicle)
        self.camera = camera or RgbdCamera()
        # The RGB detection channel: higher resolution than the depth ray
        # caster (detectors consume pixels, mapping consumes rays).  Only
        # frustum/projection queries run on it, so it costs no ray casting.
        from ..sensors.camera import CameraIntrinsics as _CI

        self.detection_camera = detection_camera or RgbdCamera(
            intrinsics=_CI(width=320, height=240, max_range_m=30.0)
        )
        self.imu = Imu()
        self.gps = Gps()
        self.battery = battery or Battery()
        self.rotor_power = rotor_power or RotorPowerModel(mass_kg=params.mass_kg)

        self.clock = SimClock()
        self.scheduler = ComputeScheduler(
            config=self.platform,
            kernel_model=self.kernel_model,
            rng=np.random.default_rng(self.config.seed + 1),
        )
        self.graph = NodeGraph(clock=self.clock, scheduler=self.scheduler)
        self.qof = QofRecorder()
        self.wind = np.zeros(3)

        # The ground-truth collision oracle for the per-tick crash check
        # (and for validation sweeps over flown trajectories).  Planners
        # must never see it — they query the belief map's checker.
        self.ground_truth = GroundTruthChecker(
            world=world, drone_radius=params.radius_m * 0.5
        )

        self._failure_reason: Optional[str] = None
        self.collisions = 0

        # Fleet coordinator this sim is enrolled with, or None for the
        # classic sequential loop.  Set via the thread-local adoption
        # hook so only sims built inside a fleet thread enroll.
        self._fleet = None
        fleet_hook.adopt(self)

        # Tracing rides the sim clock: spans carry mission time next to
        # host time.  No-op unless a tracer is installed.
        _trace.set_sim_clock(lambda: self.clock.now)

    # ------------------------------------------------------------------
    # Convenience accessors
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self.clock.now

    @property
    def state(self) -> VehicleState:
        return self.vehicle.state

    @property
    def failed(self) -> bool:
        return self._failure_reason is not None

    @property
    def failure_reason(self) -> Optional[str]:
        return self._failure_reason

    def fail(self, reason: str) -> None:
        """Mark the mission as failed (first reason wins)."""
        if self._failure_reason is None:
            self._failure_reason = reason

    # ------------------------------------------------------------------
    # Sensor access (what the workloads call)
    # ------------------------------------------------------------------
    def capture_depth(self) -> DepthImage:
        """Grab an RGB-D depth frame from the vehicle's current pose."""
        s = self.state
        with _trace.span("sense.depth_capture", "sense"):
            return self.camera.capture_depth(
                self.world, s.position, s.yaw, time=self.now
            )

    def capture_point_cloud(self, stride: int = 1) -> PointCloud:
        """Depth frame reprojected straight to a world-frame point cloud.

        The array-native entry point of the perception chain: the scan
        leaves here as (N, 3) hit/miss batches and flows into the batched
        OctoMap insertion kernels without any per-point Python."""
        with _trace.span("perceive.point_cloud", "perceive"):
            return depth_to_point_cloud(self.capture_depth(), stride=stride)

    def submit_kernel(
        self,
        kernel: str,
        on_done: Optional[Callable[[Job], None]] = None,
        duration_s: Optional[float] = None,
    ) -> Job:
        """Submit a kernel job on the companion computer."""
        return self.scheduler.submit(kernel, on_done=on_done, duration_s=duration_s)

    def kernel_runtime_s(self, kernel: str) -> float:
        """Deterministic modeled runtime of ``kernel`` at this operating
        point (used for Eq.-2 response-time estimates)."""
        return self.kernel_model.runtime_s(kernel, self.platform)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Advance the whole closed loop by one tick.

        Each sub-phase is traced (control / dynamics / compute / sense /
        energy) so ``repro profile`` can attribute per-tick host time;
        the spans reduce to shared no-ops when tracing is disabled.
        """
        if self._fleet is not None:
            # Enrolled in a fleet: park at the coordinator's tick gate;
            # the whole fleet's phases run as batched kernels there.
            self._fleet.step(self)
            return
        dt = self.config.dt
        with _trace.span("tick.control", "control"):
            self.flight_controller.update(dt)
        with _trace.span("tick.dynamics", "control"):
            self.vehicle.step(dt, wind=self.wind)
        self.clock.advance(dt)
        with _trace.span("tick.compute", "compute"):
            self.scheduler.advance_to(self.clock.now)
        with _trace.span("tick.sense", "sense"):
            self._check_collision()
        with _trace.span("tick.energy", "energy"):
            self._integrate_energy(dt)

    def _check_collision(self) -> None:
        s = self.state
        if s.position[2] > 0.3 and self.ground_truth.point_collides(
            s.position, time=self.now
        ):
            self.collisions += 1
            self.fail("collision")

    def _integrate_energy(self, dt: float) -> None:
        s = self.state
        airborne = self.flight_controller.airborne
        rotor_w = (
            self.rotor_power.power_for_state(s, wind_xy=self.wind[:2])
            if airborne
            else 0.0
        )
        compute_w = self.platform.cpu_power_w(
            self.scheduler.busy_cores, self.scheduler.gpu_active
        )
        self.battery.draw(rotor_w + compute_w, dt)
        if self.battery.depleted:
            self.fail("battery_depleted")
        self.qof.record(s, rotor_w, compute_w, dt, airborne)

    def run_until(
        self,
        predicate: Callable[["Simulation"], bool],
        on_tick: Optional[Callable[["Simulation"], None]] = None,
        timeout_s: Optional[float] = None,
    ) -> bool:
        """Step until ``predicate`` is true; returns False on timeout/failure."""
        deadline = self.now + (timeout_s or self.config.max_mission_time_s)
        while not predicate(self):
            if self.failed:
                return False
            if self.now >= deadline:
                self.fail("timeout")
                return False
            if on_tick is not None:
                on_tick(self)
            self.step()
        return True

    def report(
        self, success: bool, extra: Optional[Dict[str, float]] = None
    ) -> QofReport:
        """Final QoF report for the mission."""
        return self.qof.report(
            success=success and not self.failed,
            battery_remaining_percent=self.battery.remaining_percent,
            failure_reason=self._failure_reason,
            extra=extra,
        )
