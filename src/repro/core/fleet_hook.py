"""Thread-local fleet enrollment hook.

The fleet runner (``repro.fleet``) advances N missions per NumPy call by
parking each mission's thread at a barrier and executing the per-tick
phases as struct-of-arrays kernels over the whole fleet.  For that to
work, a :class:`~repro.core.simulator.Simulation` constructed inside a
fleet thread must *enroll* with the coordinator the moment it exists —
before the workload ever calls :meth:`Simulation.step`.

This module is that handshake, kept dependency-free so the import graph
stays one-directional: ``repro.fleet`` imports ``repro.core``, never the
other way around.  ``Simulation.__init__`` calls :func:`adopt`, which is
a no-op unless the *current thread* installed an adopter first.  The
adopter is thread-local on purpose: a fleet thread enrolls only its own
mission, while sims built concurrently on other threads (or anywhere in
a non-fleet process) are untouched.
"""

from __future__ import annotations

import threading
from typing import Callable, Optional

_local = threading.local()


def set_adopter(adopter: Optional[Callable]) -> None:
    """Install (or clear, with ``None``) this thread's sim adopter.

    The fleet runner installs its coordinator's ``enroll`` here right
    before constructing a mission, and clears it in a ``finally`` so an
    aborted mission cannot leak enrollment into unrelated sims created
    later on the same thread.
    """
    _local.adopter = adopter


def adopt(sim) -> None:
    """Offer a freshly built simulation to this thread's adopter, if any."""
    adopter = getattr(_local, "adopter", None)
    if adopter is not None:
        adopter(sim)
