"""The Fig. 7 application dataflows as executable node graphs.

Each MAVBench application is, on the real system, a set of ROS nodes
wired by publisher/subscriber FIFOs and service calls (Fig. 7).  The
mission logic in :mod:`repro.core.workloads` drives the closed loop
directly for efficiency; this module expresses the same dataflows on the
:mod:`repro.middleware` substrate, which is useful for

* studying node-level concurrency and queueing on the scheduler (which
  kernels contend for cores, where frames get dropped),
* validating that the middleware reproduces the paper's dataflow
  semantics end to end.

``build_dataflow(name, graph)`` instantiates the named application's node
graph; driving ``graph.spin_once`` then executes the pipeline, with every
node's processing charged to the shared compute scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from ..compute.scheduler import Job
from ..middleware.clock import Timer
from ..middleware.node import Node, NodeGraph


class SensorNode(Node):
    """Publishes sensor frames at a fixed rate (AirSim interface stand-in).

    Publishing itself is free (DMA from the sensor); downstream kernels
    pay compute.
    """

    def __init__(
        self, name: str, topic: str, rate_hz: float, payload_factory=None
    ) -> None:
        super().__init__(name)
        self.topic_name = topic
        self.rate_hz = rate_hz
        self.payload_factory = payload_factory or (lambda t: {"stamp": t})
        self._timer: Optional[Timer] = None
        self.frames_published = 0

    def on_attach(self, graph: NodeGraph) -> None:
        self._timer = graph.make_timer(1.0 / self.rate_hz)

    def try_start(self, graph: NodeGraph) -> bool:
        if self._timer is not None and self._timer.due():
            self.publish(self.topic_name, self.payload_factory(graph.clock.now))
            self.frames_published += 1
        return False  # publishing occupies no cores


class KernelNode(Node):
    """Consumes one input topic, runs a kernel, publishes to an output.

    The workhorse of Fig. 7: OctoMap generation, object detection, SLAM,
    point-cloud generation are all instances.  ``latest_only`` drops the
    queue backlog (a real-time node processes the freshest frame; the
    dropped count is the paper's missed-frames effect).
    """

    def __init__(
        self,
        name: str,
        kernel: str,
        input_topic: str,
        output_topic: Optional[str] = None,
        queue_size: int = 2,
        latest_only: bool = True,
    ) -> None:
        super().__init__(name)
        self.kernel = kernel
        self.input_topic = input_topic
        self.output_topic = output_topic
        self.queue_size = queue_size
        self.latest_only = latest_only
        self.processed = 0

    def on_attach(self, graph: NodeGraph) -> None:
        self._sub = self.subscribe(self.input_topic, queue_size=self.queue_size)

    def try_start(self, graph: NodeGraph) -> bool:
        msg = self._sub.latest() if self.latest_only else self._sub.pop()
        if msg is None:
            return False
        self.run_kernel(self.kernel, context=msg)
        return True

    def on_complete(self, graph: NodeGraph, job: Job, context: Any) -> None:
        self.processed += 1
        if self.output_topic is not None:
            self.publish(
                self.output_topic,
                {"from": self.name, "input": context.data, "job": job.kernel},
            )

    @property
    def dropped_frames(self) -> int:
        return self._sub.dropped


def _scanning(graph: NodeGraph) -> List[Node]:
    """Fig. 7a: GPS -> lawnmower mission/motion planner -> path tracking."""
    return [
        graph.add_node(SensorNode("gps", "position", rate_hz=10.0)),
        graph.add_node(
            KernelNode("mission_planner", "localization_gps", "position",
                       "mission")
        ),
        graph.add_node(
            KernelNode("motion_planner", "lawnmower", "mission", "trajectory")
        ),
        graph.add_node(
            KernelNode("path_tracker", "path_tracking", "trajectory",
                       "rotor_commands")
        ),
    ]


def _aerial_photography(graph: NodeGraph) -> List[Node]:
    """Fig. 7b: camera -> detection + tracking -> PID -> path tracking."""
    return [
        graph.add_node(SensorNode("camera", "image_raw", rate_hz=30.0)),
        graph.add_node(
            KernelNode("detector", "object_detection_yolo", "image_raw",
                       "bounding_box")
        ),
        graph.add_node(
            KernelNode("tracker", "tracking_realtime", "image_raw",
                       "bounding_box")
        ),
        graph.add_node(
            KernelNode("pid", "pid", "bounding_box", "trajectory")
        ),
        graph.add_node(
            KernelNode("path_tracker", "path_tracking", "trajectory",
                       "rotor_commands")
        ),
    ]


def _occupancy_front(graph: NodeGraph) -> List[Node]:
    """Shared perception chain of Figs. 7c/7d/7e."""
    return [
        graph.add_node(SensorNode("camera", "image_depth", rate_hz=10.0)),
        graph.add_node(SensorNode("imu", "imu", rate_hz=100.0)),
        graph.add_node(
            KernelNode("point_cloud", "point_cloud", "image_depth", "cloud")
        ),
        graph.add_node(KernelNode("slam", "slam", "image_depth", "pose")),
        graph.add_node(
            KernelNode("octomap_generator", "octomap", "cloud", "octomap")
        ),
        graph.add_node(
            KernelNode("collision_checker", "collision_check", "octomap",
                       "collision")
        ),
    ]


def _package_delivery(graph: NodeGraph) -> List[Node]:
    """Fig. 7c: occupancy front end + shortest-path planning + tracking."""
    nodes = _occupancy_front(graph)
    nodes.append(
        graph.add_node(
            KernelNode("motion_planner", "shortest_path", "octomap",
                       "trajectory")
        )
    )
    nodes.append(
        graph.add_node(
            KernelNode("smoother", "smoothing", "trajectory",
                       "smooth_trajectory")
        )
    )
    nodes.append(
        graph.add_node(
            KernelNode("path_tracker", "path_tracking", "smooth_trajectory",
                       "rotor_commands")
        )
    )
    return nodes


def _mapping(graph: NodeGraph) -> List[Node]:
    """Fig. 7d: occupancy front end + frontier exploration + tracking."""
    nodes = _occupancy_front(graph)
    nodes.append(
        graph.add_node(
            KernelNode("motion_planner", "frontier_exploration", "octomap",
                       "trajectory")
        )
    )
    nodes.append(
        graph.add_node(
            KernelNode("path_tracker", "path_tracking", "trajectory",
                       "rotor_commands")
        )
    )
    return nodes


def _search_rescue(graph: NodeGraph) -> List[Node]:
    """Fig. 7e: mapping dataflow + an object-detection node."""
    nodes = _mapping(graph)
    nodes.append(
        graph.add_node(
            KernelNode("detector", "object_detection_yolo", "image_depth",
                       "object_detected")
        )
    )
    return nodes


DATAFLOWS = {
    "scanning": _scanning,
    "aerial_photography": _aerial_photography,
    "package_delivery": _package_delivery,
    "mapping": _mapping,
    "search_rescue": _search_rescue,
}


def build_dataflow(name: str, graph: NodeGraph) -> List[Node]:
    """Instantiate the named application's Fig. 7 node graph.

    Raises
    ------
    KeyError
        For unknown application names.
    """
    if name not in DATAFLOWS:
        known = ", ".join(sorted(DATAFLOWS))
        raise KeyError(f"unknown dataflow '{name}' (known: {known})")
    return DATAFLOWS[name](graph)


@dataclass
class DataflowStats:
    """Throughput/drop accounting after spinning a dataflow."""

    processed: Dict[str, int]
    dropped: Dict[str, int]
    published: Dict[str, int]


def spin_dataflow(
    graph: NodeGraph, nodes: List[Node], duration_s: float, dt: float = 0.01
) -> DataflowStats:
    """Spin the graph for ``duration_s`` of simulated time and summarize."""
    steps = int(duration_s / dt)
    for _ in range(steps):
        graph.spin_once(dt)
    processed = {
        n.name: n.processed for n in nodes if isinstance(n, KernelNode)
    }
    dropped = {
        n.name: n.dropped_frames for n in nodes if isinstance(n, KernelNode)
    }
    published = {
        n.name: n.frames_published for n in nodes if isinstance(n, SensorNode)
    }
    return DataflowStats(
        processed=processed, dropped=dropped, published=published
    )
