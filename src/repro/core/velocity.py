"""Compute-bounded maximum velocity — Equation (2) of the paper.

"For a given flight velocity, a collision-free flight is only possible if
the drone can process its surrounding fast enough to react to it. ...
a drone's maximum velocity is determined based on the pixel to response
time":

    v_max = a_max * (sqrt(dt^2 + 2 d / a_max) - dt)        (Eq. 2)

where ``dt`` is the sensor-to-actuation processing time, ``d`` the
required stopping distance, and ``a_max`` the braking deceleration limit.

Fig. 8a plots this for the paper's simulated drone: v_max between 8.83 m/s
(dt = 0) and 1.57 m/s (dt = 4 s); those endpoints pin the paper's
parameters at a_max = 6 m/s^2 and d = 6.5 m, which we adopt as defaults.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

#: Parameters recovered from Fig. 8a's endpoints (see module docstring).
PAPER_A_MAX = 6.0
PAPER_STOP_DISTANCE = 6.5


def max_velocity(
    process_time_s: float,
    stop_distance_m: float = PAPER_STOP_DISTANCE,
    a_max: float = PAPER_A_MAX,
) -> float:
    """Eq. (2): the collision-avoidance-bounded maximum velocity.

    Parameters
    ----------
    process_time_s:
        Pixel-to-response latency of the perception/planning/control
        pipeline (s).
    stop_distance_m:
        Distance budget within which the drone must come to a halt
        (sensing range minus a safety margin).
    a_max:
        Maximum braking deceleration (m/s^2).
    """
    if process_time_s < 0:
        raise ValueError("process time must be non-negative")
    if stop_distance_m <= 0 or a_max <= 0:
        raise ValueError("stopping distance and deceleration must be positive")
    dt = process_time_s
    return a_max * (math.sqrt(dt * dt + 2.0 * stop_distance_m / a_max) - dt)


def max_velocity_curve(
    process_times_s: Sequence[float],
    stop_distance_m: float = PAPER_STOP_DISTANCE,
    a_max: float = PAPER_A_MAX,
) -> List[Tuple[float, float]]:
    """Eq. (2) evaluated over a sweep of processing times (Fig. 8a data)."""
    return [
        (float(t), max_velocity(float(t), stop_distance_m, a_max))
        for t in process_times_s
    ]


def response_time_for_velocity(
    velocity: float,
    stop_distance_m: float = PAPER_STOP_DISTANCE,
    a_max: float = PAPER_A_MAX,
) -> float:
    """Invert Eq. (2): the slowest pipeline that still permits ``velocity``.

    Solving v = a (sqrt(dt^2 + 2d/a) - dt) for dt:

        dt = d / v - v / (2 a)

    Returns 0 when even an instantaneous pipeline cannot reach ``velocity``
    (i.e. ``velocity`` exceeds sqrt(2 a d)).
    """
    if velocity <= 0:
        raise ValueError("velocity must be positive")
    dt = stop_distance_m / velocity - velocity / (2.0 * a_max)
    return max(dt, 0.0)
