"""Quality-of-Flight (QoF) metrics collection.

"MAVBench platform collects statistics of both sorts" — universal metrics
(mission time, energy) and application-specific ones (map coverage error,
distance of the target from the frame center).  The :class:`QofRecorder`
samples the closed loop every tick and computes the universal metrics;
workloads attach their specific metrics to the final report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..dynamics.state import VehicleState
from ..world.geometry import norm as _vec_norm


@dataclass
class QofSample:
    """One tick's worth of flight statistics."""

    time: float
    position: np.ndarray
    speed: float
    rotor_power_w: float
    compute_power_w: float
    hovering: bool


@dataclass
class QofReport:
    """Aggregated quality-of-flight metrics for one mission."""

    mission_time_s: float
    flight_distance_m: float
    average_velocity_ms: float
    max_velocity_ms: float
    hover_time_s: float
    total_energy_j: float
    rotor_energy_j: float
    compute_energy_j: float
    average_rotor_power_w: float
    average_compute_power_w: float
    battery_remaining_percent: float
    success: bool
    failure_reason: Optional[str] = None
    extra: Dict[str, float] = field(default_factory=dict)

    def summary(self) -> str:
        """One-line human-readable summary."""
        status = "OK" if self.success else f"FAIL({self.failure_reason})"
        return (
            f"[{status}] t={self.mission_time_s:.1f}s "
            f"v_avg={self.average_velocity_ms:.2f}m/s "
            f"E={self.total_energy_j / 1000:.1f}kJ "
            f"hover={self.hover_time_s:.1f}s "
            f"batt={self.battery_remaining_percent:.1f}%"
        )


#: Speed below which an airborne drone counts as hovering.
HOVER_SPEED_THRESHOLD = 0.3


class QofRecorder:
    """Accumulates per-tick samples and reduces them to a report."""

    def __init__(self) -> None:
        self._samples: List[QofSample] = []
        self._distance = 0.0
        self._rotor_energy = 0.0
        self._compute_energy = 0.0
        self._hover_time = 0.0
        self._last_position: Optional[np.ndarray] = None

    def record(
        self,
        state: VehicleState,
        rotor_power_w: float,
        compute_power_w: float,
        dt: float,
        airborne: bool,
    ) -> None:
        """Record one tick."""
        hovering = airborne and state.speed < HOVER_SPEED_THRESHOLD
        if self._last_position is not None:
            self._distance += _vec_norm(
                state.position - self._last_position
            )
        self._last_position = state.position.copy()
        self._rotor_energy += rotor_power_w * dt
        self._compute_energy += compute_power_w * dt
        if hovering:
            self._hover_time += dt
        self._samples.append(
            QofSample(
                time=state.time,
                position=state.position.copy(),
                speed=state.speed,
                rotor_power_w=rotor_power_w,
                compute_power_w=compute_power_w,
                hovering=hovering,
            )
        )

    @property
    def samples(self) -> List[QofSample]:
        return self._samples

    @property
    def elapsed_s(self) -> float:
        if not self._samples:
            return 0.0
        return self._samples[-1].time - self._samples[0].time

    def report(
        self,
        success: bool,
        battery_remaining_percent: float,
        failure_reason: Optional[str] = None,
        extra: Optional[Dict[str, float]] = None,
    ) -> QofReport:
        """Reduce the sample history to a :class:`QofReport`."""
        mission_time = self.elapsed_s
        speeds = [s.speed for s in self._samples]
        avg_velocity = (
            self._distance / mission_time if mission_time > 0 else 0.0
        )
        rotor_avg = (
            self._rotor_energy / mission_time if mission_time > 0 else 0.0
        )
        compute_avg = (
            self._compute_energy / mission_time if mission_time > 0 else 0.0
        )
        return QofReport(
            mission_time_s=mission_time,
            flight_distance_m=self._distance,
            average_velocity_ms=avg_velocity,
            max_velocity_ms=float(max(speeds, default=0.0)),
            hover_time_s=self._hover_time,
            total_energy_j=self._rotor_energy + self._compute_energy,
            rotor_energy_j=self._rotor_energy,
            compute_energy_j=self._compute_energy,
            average_rotor_power_w=rotor_avg,
            average_compute_power_w=compute_avg,
            battery_remaining_percent=battery_remaining_percent,
            success=success,
            failure_reason=failure_reason,
            extra=dict(extra or {}),
        )

    def power_trace(self) -> List[Dict[str, float]]:
        """Time series of total power — the Fig. 9b mission-power trace."""
        return [
            {
                "time": s.time,
                "rotor_w": s.rotor_power_w,
                "compute_w": s.compute_power_w,
                "total_w": s.rotor_power_w + s.compute_power_w,
            }
            for s in self._samples
        ]
