"""Reliability substrate: compute-subsystem fault injection.

Implements the Section VI-C extension: "we can also inject errors
directly into the compute subsystem to 'simulate' soft errors and
transient bit flips in logic."
"""

from .fault_injection import FaultInjector, FaultModel

__all__ = ["FaultInjector", "FaultModel"]
