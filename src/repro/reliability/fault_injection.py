"""Compute-subsystem fault injection (Section VI-C's extension hook).

"In addition to injecting noise in the sensor subsystem, we can also
inject errors directly into the compute subsystem to 'simulate' soft
errors and transient bit flips in logic.  Such a capability can be used
to conduct vulnerability analysis."

Faults are modeled at the kernel-invocation level, which is where soft
errors manifest to the rest of the stack:

* **silent data corruption** — the kernel returns a wrong result (a
  detection box teleports, a planner waypoint is perturbed);
* **crash/retry** — the kernel invocation dies and is re-executed,
  multiplying its effective latency;
* **hang** — the invocation takes an arbitrarily long time (watchdog
  territory).

An injector wraps a :class:`~repro.compute.kernels.KernelModel` and
perturbs runtimes; data-level corruption hooks are exposed for the
perception outputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

import numpy as np

from ..compute.kernels import KernelModel
from ..compute.platform import PlatformConfig


@dataclass(frozen=True)
class FaultModel:
    """Per-invocation fault probabilities and magnitudes.

    Attributes
    ----------
    crash_probability:
        Chance an invocation crashes and re-executes (latency doubles or
        worse; geometric retries).
    hang_probability:
        Chance an invocation hangs for ``hang_duration_s``.
    corruption_probability:
        Chance the invocation's *output* is corrupted (consumer-visible;
        exposed via :meth:`FaultInjector.corrupt_vector`).
    corruption_std:
        Magnitude of numeric corruption.
    """

    crash_probability: float = 0.0
    hang_probability: float = 0.0
    hang_duration_s: float = 5.0
    corruption_probability: float = 0.0
    corruption_std: float = 1.0

    def __post_init__(self) -> None:
        for p in (
            self.crash_probability,
            self.hang_probability,
            self.corruption_probability,
        ):
            if not 0.0 <= p <= 1.0:
                raise ValueError("fault probabilities must be in [0, 1]")


@dataclass
class FaultInjector:
    """Wraps a kernel model, injecting latency faults per invocation."""

    base_model: KernelModel
    fault_model: FaultModel = field(default_factory=FaultModel)
    seed: int = 0

    def __post_init__(self) -> None:
        self._rng = np.random.default_rng(self.seed)
        self.crashes = 0
        self.hangs = 0
        self.corruptions = 0
        self.invocations = 0

    # ------------------------------------------------------------------
    # KernelModel-compatible surface
    # ------------------------------------------------------------------
    def profile(self, kernel: str):
        return self.base_model.profile(kernel)

    def runtime_s(
        self,
        kernel: str,
        config: PlatformConfig,
        rng: Optional[np.random.Generator] = None,
    ) -> float:
        """Modeled runtime with injected latency faults."""
        self.invocations += 1
        runtime = self.base_model.runtime_s(kernel, config, rng)
        fm = self.fault_model
        if fm.crash_probability > 0:
            # Geometric retries: each attempt may crash again.
            attempts = 1
            while (
                self._rng.random() < fm.crash_probability and attempts < 10
            ):
                attempts += 1
            if attempts > 1:
                self.crashes += attempts - 1
                runtime *= attempts
        if fm.hang_probability > 0 and self._rng.random() < fm.hang_probability:
            self.hangs += 1
            runtime += fm.hang_duration_s
        return runtime

    def set_override(self, kernel: str, profile) -> None:
        self.base_model.set_override(kernel, profile)

    def scale_kernel(self, kernel: str, factor: float) -> None:
        self.base_model.scale_kernel(kernel, factor)

    @property
    def workload(self):
        return self.base_model.workload

    @property
    def overrides(self):
        return self.base_model.overrides

    # ------------------------------------------------------------------
    # Data corruption hooks
    # ------------------------------------------------------------------
    def corrupt_vector(self, value: np.ndarray) -> np.ndarray:
        """Maybe corrupt a numeric kernel output (returns a copy)."""
        value = np.asarray(value, dtype=float).copy()
        fm = self.fault_model
        if (
            fm.corruption_probability > 0
            and self._rng.random() < fm.corruption_probability
        ):
            self.corruptions += 1
            idx = int(self._rng.integers(value.size))
            flat = value.reshape(-1)
            flat[idx] += float(self._rng.normal(0.0, fm.corruption_std))
        return value

    # ------------------------------------------------------------------
    def fault_counts(self) -> Dict[str, int]:
        return {
            "invocations": self.invocations,
            "crashes": self.crashes,
            "hangs": self.hangs,
            "corruptions": self.corruptions,
        }
