"""World substrate: geometry, environments, and procedural generators.

Substitutes for the Unreal Engine environments used by the paper.
"""

from .geometry import (
    AABB,
    Pose,
    Ray,
    path_length,
    ray_aabb_intersection,
    rotation_matrix,
    segment_intersects_aabb,
    unit,
    vec,
    wrap_angle,
    yaw_rotation,
)
from .obstacles import (
    DynamicObstacle,
    Obstacle,
    make_box_obstacle,
    make_person,
    obstacle_density,
)
from .environment import World, empty_world
from .serialization import (
    load_world,
    save_world,
    world_from_dict,
    world_to_dict,
)
from .generator import (
    ENVIRONMENTS,
    campus_world,
    add_moving_people,
    disaster_world,
    farm_world,
    forest_world,
    indoor_world,
    make_environment,
    urban_world,
)

__all__ = [
    "AABB",
    "Pose",
    "Ray",
    "World",
    "Obstacle",
    "DynamicObstacle",
    "ENVIRONMENTS",
    "add_moving_people",
    "campus_world",
    "disaster_world",
    "empty_world",
    "farm_world",
    "forest_world",
    "indoor_world",
    "make_box_obstacle",
    "make_environment",
    "make_person",
    "obstacle_density",
    "path_length",
    "ray_aabb_intersection",
    "rotation_matrix",
    "segment_intersects_aabb",
    "unit",
    "urban_world",
    "vec",
    "wrap_angle",
    "yaw_rotation",
    "load_world",
    "save_world",
    "world_from_dict",
    "world_to_dict",
]
