"""Geometric primitives for the simulated world.

The world is composed of axis-aligned bounding boxes (AABBs).  All of the
perception substrate (depth camera ray casting, collision checking,
line-of-sight queries) is built on the primitives in this module.

Conventions
-----------
* Right-handed coordinate system: ``x`` forward, ``y`` left, ``z`` up.
* All lengths are in meters; all angles in radians.
* Vectors are ``numpy`` arrays of shape ``(3,)`` and dtype float64.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence, Tuple

import numpy as np

EPS = 1e-9


def vec(x: float, y: float, z: float) -> np.ndarray:
    """Build a 3-vector. Convenience constructor used throughout the library."""
    return np.array([x, y, z], dtype=float)


def norm(v: np.ndarray) -> float:
    """Euclidean norm of a vector.

    For 1-D input this is ``sqrt(dot(v, v))`` — the exact reduction
    ``np.linalg.norm`` lowers to, minus its dispatch overhead (this
    helper sits under every control tick).
    """
    a = np.asarray(v, dtype=float)
    if a.ndim == 1:
        return float(np.sqrt(np.dot(a, a)))
    return float(np.linalg.norm(a))


def unit(v: np.ndarray) -> np.ndarray:
    """Return ``v`` normalized to unit length.

    Raises
    ------
    ValueError
        If ``v`` has (near) zero length.
    """
    n = norm(v)
    if n < EPS:
        raise ValueError("cannot normalize a zero-length vector")
    return v / n


@dataclass(frozen=True)
class AABB:
    """An axis-aligned bounding box defined by two corners.

    Attributes
    ----------
    lo:
        Component-wise minimum corner.
    hi:
        Component-wise maximum corner.
    """

    lo: np.ndarray
    hi: np.ndarray

    def __post_init__(self) -> None:
        lo = np.asarray(self.lo, dtype=float)
        hi = np.asarray(self.hi, dtype=float)
        if lo.shape != (3,) or hi.shape != (3,):
            raise ValueError("AABB corners must be 3-vectors")
        if np.any(lo > hi):
            raise ValueError(f"AABB lo must be <= hi (got lo={lo}, hi={hi})")
        object.__setattr__(self, "lo", lo)
        object.__setattr__(self, "hi", hi)

    @classmethod
    def from_center(cls, center: Sequence[float], size: Sequence[float]) -> "AABB":
        """Build a box from its center point and full edge lengths."""
        c = np.asarray(center, dtype=float)
        half = np.asarray(size, dtype=float) / 2.0
        if np.any(half < 0):
            raise ValueError("AABB size must be non-negative")
        return cls(c - half, c + half)

    @property
    def center(self) -> np.ndarray:
        return (self.lo + self.hi) / 2.0

    @property
    def size(self) -> np.ndarray:
        return self.hi - self.lo

    @property
    def volume(self) -> float:
        return float(np.prod(self.size))

    def contains(self, point: np.ndarray) -> bool:
        """True if ``point`` lies inside or on the boundary of the box."""
        p = np.asarray(point, dtype=float)
        return bool(np.all(p >= self.lo - EPS) and np.all(p <= self.hi + EPS))

    def inflate(self, margin: float) -> "AABB":
        """Return a copy grown by ``margin`` on every face.

        Used to inflate obstacles by the drone's radius so the drone can be
        treated as a point during collision checking.
        """
        m = vec(margin, margin, margin)
        lo = self.lo - m
        hi = self.hi + m
        # A negative margin may invert a degenerate box; clamp to center.
        c = self.center
        return AABB(np.minimum(lo, c), np.maximum(hi, c))

    def intersects(self, other: "AABB") -> bool:
        """True if this box overlaps ``other`` (closed-interval semantics)."""
        return bool(
            np.all(self.lo <= other.hi + EPS) and np.all(other.lo <= self.hi + EPS)
        )

    def closest_point(self, point: np.ndarray) -> np.ndarray:
        """Point on/inside the box closest to ``point``."""
        return np.clip(np.asarray(point, dtype=float), self.lo, self.hi)

    def distance_to(self, point: np.ndarray) -> float:
        """Euclidean distance from ``point`` to the box surface (0 inside)."""
        return norm(self.closest_point(point) - np.asarray(point, dtype=float))

    def corners(self) -> np.ndarray:
        """All 8 corner points, shape (8, 3)."""
        lo, hi = self.lo, self.hi
        xs = [lo[0], hi[0]]
        ys = [lo[1], hi[1]]
        zs = [lo[2], hi[2]]
        return np.array([[x, y, z] for x in xs for y in ys for z in zs])


@dataclass(frozen=True)
class Ray:
    """A half-line with an origin and a unit direction."""

    origin: np.ndarray
    direction: np.ndarray

    def __post_init__(self) -> None:
        o = np.asarray(self.origin, dtype=float)
        d = unit(np.asarray(self.direction, dtype=float))
        object.__setattr__(self, "origin", o)
        object.__setattr__(self, "direction", d)

    def at(self, t: float) -> np.ndarray:
        """Point at parameter ``t`` along the ray."""
        return self.origin + t * self.direction


def ray_aabb_intersection(ray: Ray, box: AABB) -> Optional[Tuple[float, float]]:
    """Slab-method ray/AABB intersection.

    Returns
    -------
    ``(t_near, t_far)`` parameters of entry and exit, or ``None`` when the
    ray misses the box entirely or the box is behind the origin.
    """
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        inv = np.where(
            np.abs(ray.direction) < EPS, np.inf, 1.0 / ray.direction
        )
        t1 = (box.lo - ray.origin) * inv
        t2 = (box.hi - ray.origin) * inv
    # Rays parallel to a slab: origin must be within the slab.
    parallel = np.abs(ray.direction) < EPS
    if np.any(parallel & ((ray.origin < box.lo) | (ray.origin > box.hi))):
        return None
    t1 = np.where(parallel, -np.inf, t1)
    t2 = np.where(parallel, np.inf, t2)
    t_near = float(np.max(np.minimum(t1, t2)))
    t_far = float(np.min(np.maximum(t1, t2)))
    if t_near > t_far + EPS or t_far < 0:
        return None
    return max(t_near, 0.0), t_far


def segment_intersects_aabb(a: np.ndarray, b: np.ndarray, box: AABB) -> bool:
    """True if the segment from ``a`` to ``b`` passes through ``box``."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    d = b - a
    length = norm(d)
    if length < EPS:
        return box.contains(a)
    hit = ray_aabb_intersection(Ray(a, d / length), box)
    if hit is None:
        return False
    t_near, _t_far = hit
    return t_near <= length + EPS


def batch_ray_aabbs(
    origin: np.ndarray,
    directions: np.ndarray,
    los: np.ndarray,
    his: np.ndarray,
    max_range: float,
) -> np.ndarray:
    """Vectorized first-hit distances for many rays against many AABBs.

    Parameters
    ----------
    origin:
        Shared ray origin, shape ``(3,)``.
    directions:
        Unit direction per ray, shape ``(N, 3)``.
    los, his:
        Box corners, each shape ``(M, 3)``.
    max_range:
        Rays that hit nothing within this distance report ``max_range``.

    Returns
    -------
    Array of shape ``(N,)`` with the distance to the nearest box surface
    along each ray, clipped at ``max_range``.

    This is the inner loop of the depth camera; it is fully vectorized over
    the ``N x M`` ray/box pairs.
    """
    directions = np.asarray(directions, dtype=float)
    n = directions.shape[0]
    if los.size == 0:
        return np.full(n, max_range, dtype=float)
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        inv = 1.0 / directions  # (N, 3); inf where direction component is 0
        # Broadcast: (N, 1, 3) against (1, M, 3) -> (N, M, 3)
        o = np.asarray(origin, dtype=float)
        t1 = (los[None, :, :] - o[None, None, :]) * inv[:, None, :]
        t2 = (his[None, :, :] - o[None, None, :]) * inv[:, None, :]
    # Handle parallel rays: where direction==0, t1/t2 are +-inf or nan.
    t_lo = np.fmin(t1, t2)
    t_hi = np.fmax(t1, t2)
    # nan appears when 0 * inf occurs (origin on slab); treat as full range.
    t_lo = np.where(np.isnan(t_lo), -np.inf, t_lo)
    t_hi = np.where(np.isnan(t_hi), np.inf, t_hi)
    t_near = t_lo.max(axis=2)  # (N, M)
    t_far = t_hi.min(axis=2)
    hit = (t_near <= t_far) & (t_far >= 0)
    t_near = np.where(t_near < 0, 0.0, t_near)
    dist = np.where(hit, t_near, np.inf).min(axis=1)
    return np.minimum(dist, max_range)


def yaw_rotation(yaw: float) -> np.ndarray:
    """Rotation matrix for a rotation of ``yaw`` about the +z axis."""
    c, s = math.cos(yaw), math.sin(yaw)
    return np.array([[c, -s, 0.0], [s, c, 0.0], [0.0, 0.0, 1.0]])


def rotation_matrix(yaw: float, pitch: float = 0.0, roll: float = 0.0) -> np.ndarray:
    """Intrinsic ZYX (yaw-pitch-roll) rotation matrix."""
    cy, sy = math.cos(yaw), math.sin(yaw)
    cp, sp = math.cos(pitch), math.sin(pitch)
    cr, sr = math.cos(roll), math.sin(roll)
    rz = np.array([[cy, -sy, 0], [sy, cy, 0], [0, 0, 1]], dtype=float)
    ry = np.array([[cp, 0, sp], [0, 1, 0], [-sp, 0, cp]], dtype=float)
    rx = np.array([[1, 0, 0], [0, cr, -sr], [0, sr, cr]], dtype=float)
    return rz @ ry @ rx


def wrap_angle(theta: float) -> float:
    """Wrap an angle to the interval (-pi, pi]."""
    wrapped = math.fmod(theta + math.pi, 2.0 * math.pi)
    if wrapped <= 0.0:
        wrapped += 2.0 * math.pi
    return wrapped - math.pi


@dataclass
class Pose:
    """Position + yaw of the vehicle (pitch/roll abstracted away).

    The MAVBench workloads command the vehicle in the horizontal plane plus
    altitude, so a 4-DoF pose (x, y, z, yaw) is the natural state.
    """

    position: np.ndarray = field(default_factory=lambda: np.zeros(3))
    yaw: float = 0.0

    def __post_init__(self) -> None:
        self.position = np.asarray(self.position, dtype=float).copy()
        self.yaw = wrap_angle(float(self.yaw))

    def copy(self) -> "Pose":
        return Pose(self.position.copy(), self.yaw)

    def distance_to(self, other: "Pose") -> float:
        return norm(self.position - other.position)

    def forward(self) -> np.ndarray:
        """Unit vector in the direction the vehicle is facing (horizontal)."""
        return vec(math.cos(self.yaw), math.sin(self.yaw), 0.0)


def path_length(points: Iterable[np.ndarray]) -> float:
    """Total polyline length through ``points``."""
    pts = [np.asarray(p, dtype=float) for p in points]
    if len(pts) < 2:
        return 0.0
    return float(sum(norm(b - a) for a, b in zip(pts[:-1], pts[1:])))
