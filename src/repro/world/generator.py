"""Procedural environment generators.

The Unreal marketplace supplies MAVBench with urban, jungle, indoor, and
mountain maps; the paper additionally programs environment knobs such as
static obstacle density and dynamic obstacle speed.  These generators build
the equivalent worlds procedurally and deterministically (seeded), covering
the scenarios the five workloads need:

* ``farm``      — open field for Scanning (no obstacles at altitude).
* ``urban``     — buildings on a street grid for Package Delivery (outdoor).
* ``indoor``    — rooms, walls, and door openings for the OctoMap case study.
* ``forest``    — scattered tall thin obstacles, medium density.
* ``disaster``  — collapsed-building rubble for Search and Rescue, with
                  survivors (person obstacles) hidden among debris.
* ``campus``    — mixed outdoor/indoor delivery site (the Fig. 19
                  dynamic-resolution environment).

(The list is pinned by a test against ``ENVIRONMENTS`` so it cannot
drift again.)
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from .environment import World, empty_world
from .geometry import AABB, vec
from .obstacles import DynamicObstacle, make_box_obstacle, make_person


def farm_world(
    width: float = 120.0,
    length: float = 120.0,
    seed: int = 0,
) -> World:
    """Open farmland: flat, obstacle-free above crop height.

    Scanning flies a lawnmower pattern at altitude, so the world needs no
    obstacles — just bounds and a handful of low crop rows that never reach
    flight altitude.
    """
    rng = np.random.default_rng(seed)
    world = empty_world((width, length, 40.0), name="farm")
    n_rows = 8
    for i in range(n_rows):
        y = -length / 2 + (i + 0.5) * length / n_rows
        height = float(rng.uniform(0.3, 0.9))
        world.add(
            make_box_obstacle(
                center=(0.0, y, height / 2),
                size=(width * 0.9, 1.0, height),
                kind="crop",
            )
        )
    return world


def urban_world(
    blocks: int = 4,
    block_size: float = 30.0,
    street_width: float = 12.0,
    building_density: float = 0.7,
    max_height: float = 25.0,
    seed: int = 0,
) -> World:
    """A street-grid city: buildings on blocks, streets in between.

    ``building_density`` is the probability that a lot holds a building —
    this is the paper's "(static) obstacle density" knob.
    """
    if not 0.0 <= building_density <= 1.0:
        raise ValueError("building_density must be in [0, 1]")
    rng = np.random.default_rng(seed)
    pitch = block_size + street_width
    span = blocks * pitch + street_width
    world = empty_world((span, span, max_height + 15.0), name="urban")
    origin = -span / 2 + street_width + block_size / 2
    for i in range(blocks):
        for j in range(blocks):
            if rng.random() > building_density:
                continue
            cx = origin + i * pitch
            cy = origin + j * pitch
            w = float(rng.uniform(0.5, 0.95)) * block_size
            d = float(rng.uniform(0.5, 0.95)) * block_size
            h = float(rng.uniform(6.0, max_height))
            world.add(
                make_box_obstacle(
                    center=(cx, cy, h / 2), size=(w, d, h), kind="building"
                )
            )
    return world


def indoor_world(
    rooms_x: int = 3,
    rooms_y: int = 2,
    room_size: float = 8.0,
    door_width: float = 0.82,
    wall_thickness: float = 0.2,
    ceiling: float = 3.0,
    seed: int = 0,
) -> World:
    """An indoor floor plan: a grid of rooms joined by door openings.

    The door width default (0.82 m) matches the paper's note that OctoMap
    resolution must let a 0.65 m drone recognize an average door as a
    passageway.  Walls between adjacent rooms carry a centered door gap;
    a coarse occupancy map inflates the wall segments until the gap
    disappears — exactly the failure mode of Fig. 17d / Fig. 19.
    """
    rng = np.random.default_rng(seed)
    span_x = rooms_x * room_size
    span_y = rooms_y * room_size
    world = empty_world((span_x + 4, span_y + 4, ceiling + 2.0), name="indoor")
    x0, y0 = -span_x / 2, -span_y / 2

    def wall(cx: float, cy: float, wx: float, wy: float) -> None:
        world.add(
            make_box_obstacle(
                center=(cx, cy, ceiling / 2),
                size=(wx, wy, ceiling),
                kind="wall",
            )
        )

    # Perimeter walls.
    wall(0.0, y0, span_x + wall_thickness, wall_thickness)
    wall(0.0, -y0, span_x + wall_thickness, wall_thickness)
    wall(x0, 0.0, wall_thickness, span_y + wall_thickness)
    wall(-x0, 0.0, wall_thickness, span_y + wall_thickness)

    def wall_with_door(
        fixed: float, lo: float, hi: float, axis: str, door_at: float
    ) -> None:
        """A wall along ``axis`` from lo..hi with a door gap at ``door_at``."""
        half_gap = door_width / 2
        seg_a = (lo, door_at - half_gap)
        seg_b = (door_at + half_gap, hi)
        for seg_lo, seg_hi in (seg_a, seg_b):
            if seg_hi - seg_lo <= 1e-6:
                continue
            mid = (seg_lo + seg_hi) / 2
            length = seg_hi - seg_lo
            if axis == "x":
                wall(mid, fixed, length, wall_thickness)
            else:
                wall(fixed, mid, wall_thickness, length)

    # Interior walls along x (separating rows of rooms) with doors.
    for j in range(1, rooms_y):
        y = y0 + j * room_size
        for i in range(rooms_x):
            lo = x0 + i * room_size
            hi = lo + room_size
            door_at = float(rng.uniform(lo + 1.5, hi - 1.5))
            wall_with_door(y, lo, hi, axis="x", door_at=door_at)
    # Interior walls along y (separating columns) with doors.
    for i in range(1, rooms_x):
        x = x0 + i * room_size
        for j in range(rooms_y):
            lo = y0 + j * room_size
            hi = lo + room_size
            door_at = float(rng.uniform(lo + 1.5, hi - 1.5))
            wall_with_door(x, lo, hi, axis="y", door_at=door_at)
    return world


def forest_world(
    size: float = 100.0,
    n_trees: int = 60,
    seed: int = 0,
) -> World:
    """Scattered tall thin obstacles (tree trunks + canopies)."""
    rng = np.random.default_rng(seed)
    world = empty_world((size, size, 35.0), name="forest")
    for _ in range(n_trees):
        x = float(rng.uniform(-size / 2 + 2, size / 2 - 2))
        y = float(rng.uniform(-size / 2 + 2, size / 2 - 2))
        h = float(rng.uniform(8.0, 20.0))
        trunk_w = float(rng.uniform(0.4, 1.0))
        world.add(
            make_box_obstacle(
                center=(x, y, h / 2), size=(trunk_w, trunk_w, h), kind="tree"
            )
        )
        canopy = float(rng.uniform(2.0, 5.0))
        world.add(
            make_box_obstacle(
                center=(x, y, h + canopy / 2),
                size=(canopy, canopy, canopy),
                kind="canopy",
            )
        )
    return world


def disaster_world(
    size: float = 80.0,
    n_debris: int = 50,
    n_survivors: int = 3,
    seed: int = 0,
) -> World:
    """Collapsed-building rubble field with survivors for Search and Rescue.

    Survivors are static ``person`` obstacles placed in free pockets between
    debris; the SAR workload's detector looks for the ``person`` tag.
    """
    rng = np.random.default_rng(seed)
    world = empty_world((size, size, 25.0), name="disaster")
    for _ in range(n_debris):
        x = float(rng.uniform(-size / 2 + 2, size / 2 - 2))
        y = float(rng.uniform(-size / 2 + 2, size / 2 - 2))
        w = float(rng.uniform(2.0, 8.0))
        d = float(rng.uniform(2.0, 8.0))
        h = float(rng.uniform(1.0, 6.0))
        world.add(
            make_box_obstacle(center=(x, y, h / 2), size=(w, d, h), kind="debris")
        )
    placed = 0
    tries = 0
    while placed < n_survivors and tries < 500:
        tries += 1
        # Survivors hide in the far (north-east) half of the site: the MAV
        # launches from the south-west corner, so finding one requires
        # actually exploring rather than a lucky first glance.
        x = float(rng.uniform(0.0, size / 2 - 3))
        y = float(rng.uniform(0.0, size / 2 - 3))
        person = make_person((x, y, 0.9), name=f"survivor-{placed}")
        if not any(
            person.box.intersects(o.box) for o in world.static_obstacles
        ):
            world.add(person)
            placed += 1
    return world


def add_moving_people(
    world: World,
    count: int,
    speed: float = 1.2,
    seed: int = 0,
    z: float = 0.9,
) -> list:
    """Scatter patrolling people into ``world`` (dynamic-obstacle knob).

    Each person patrols a random rectangle within the world bounds at
    ``speed`` m/s — the paper's "(dynamic) obstacle speed" knob.
    """
    rng = np.random.default_rng(seed)
    lo, hi = world.bounds.lo, world.bounds.hi
    people = []
    for k in range(count):
        x = float(rng.uniform(lo[0] + 3, hi[0] - 3))
        y = float(rng.uniform(lo[1] + 3, hi[1] - 3))
        dx = float(rng.uniform(3.0, 10.0))
        dy = float(rng.uniform(3.0, 10.0))
        waypoints = [
            (x, y, z),
            (min(x + dx, hi[0] - 1), y, z),
            (min(x + dx, hi[0] - 1), min(y + dy, hi[1] - 1), z),
            (x, min(y + dy, hi[1] - 1), z),
        ]
        person = make_person((x, y, z), waypoints=waypoints, speed=speed)
        world.add(person)
        people.append(person)
    return people


def campus_world(
    outdoor_length: float = 50.0,
    rooms_x: int = 2,
    rooms_y: int = 2,
    room_size: float = 8.0,
    door_width: float = 1.4,
    ceiling: float = 5.0,
    seed: int = 0,
) -> World:
    """A mixed outdoor/indoor delivery scenario (the Fig. 19 environment).

    The west half is open ground (low obstacle density — a coarse OctoMap
    suffices and is cheap); the east half is a building with rooms joined
    by doorways (high obstacle density — only a fine map keeps the doors
    passable).  The drone launches outdoors; the delivery goal sits in the
    far room, so every mission must transition between the two regimes —
    exactly what the dynamic-resolution policy exploits.
    """
    rng = np.random.default_rng(seed)
    span_x = rooms_x * room_size
    span_y = rooms_y * room_size
    total_x = outdoor_length + span_x + 4
    total_y = max(span_y + 8, 24.0)
    world = empty_world((total_x, total_y, ceiling + 6.0), name="campus")
    # A couple of scattered outdoor obstacles (trees) in the west half.
    west_lo = -total_x / 2
    for _ in range(4):
        x = float(rng.uniform(west_lo + 6, west_lo + outdoor_length - 6))
        y = float(rng.uniform(-total_y / 2 + 4, total_y / 2 - 4))
        h = float(rng.uniform(3.0, 6.0))
        world.add(
            make_box_obstacle(center=(x, y, h / 2), size=(1, 1, h), kind="tree")
        )
    # The building occupies the east side.
    bx0 = west_lo + outdoor_length  # west face of the building
    by0 = -span_y / 2
    thickness = 0.5

    def wall(cx: float, cy: float, wx: float, wy: float) -> None:
        world.add(
            make_box_obstacle(
                center=(cx, cy, ceiling / 2),
                size=(wx, wy, ceiling),
                kind="wall",
            )
        )

    def wall_with_door(
        fixed: float, lo: float, hi: float, axis: str, door_at: float
    ) -> None:
        half = door_width / 2
        for seg_lo, seg_hi in ((lo, door_at - half), (door_at + half, hi)):
            if seg_hi - seg_lo <= 1e-6:
                continue
            mid = (seg_lo + seg_hi) / 2
            length = seg_hi - seg_lo
            if axis == "x":
                wall(mid, fixed, length, thickness)
            else:
                wall(fixed, mid, thickness, length)

    east = bx0 + span_x
    # Perimeter: west face has the entrance door (centered on the first
    # room so it does not abut the interior dividing walls); others solid.
    entrance_y = by0 + room_size / 2.0
    wall_with_door(bx0, by0, by0 + span_y, axis="y", door_at=entrance_y)
    wall(east, 0.0, thickness, span_y + thickness)
    wall(bx0 + span_x / 2, by0, span_x + thickness, thickness)
    wall(bx0 + span_x / 2, -by0, span_x + thickness, thickness)
    # Interior walls with doors.
    for i in range(1, rooms_x):
        x = bx0 + i * room_size
        for j in range(rooms_y):
            lo = by0 + j * room_size
            door_at = float(rng.uniform(lo + 2.0, lo + room_size - 2.0))
            wall_with_door(x, lo, lo + room_size, axis="y", door_at=door_at)
    for j in range(1, rooms_y):
        y = by0 + j * room_size
        for i in range(rooms_x):
            lo = bx0 + i * room_size
            door_at = float(rng.uniform(lo + 2.0, lo + room_size - 2.0))
            wall_with_door(y, lo, lo + room_size, axis="x", door_at=door_at)
    # Roof: without it, planners would simply overfly the walls.
    world.add(
        make_box_obstacle(
            center=(bx0 + span_x / 2, 0.0, ceiling + 0.15),
            size=(span_x + thickness, span_y + thickness, 0.3),
            kind="roof",
        )
    )
    return world


ENVIRONMENTS = {
    "campus": campus_world,
    "farm": farm_world,
    "urban": urban_world,
    "indoor": indoor_world,
    "forest": forest_world,
    "disaster": disaster_world,
}


def make_environment(name: str, **kwargs) -> World:
    """Factory over all named environments.

    Raises
    ------
    KeyError
        If ``name`` is not a known environment.
    """
    try:
        factory = ENVIRONMENTS[name]
    except KeyError:
        known = ", ".join(sorted(ENVIRONMENTS))
        raise KeyError(f"unknown environment '{name}' (known: {known})") from None
    return factory(**kwargs)
