"""Static and dynamic obstacles populating the simulated world.

The paper extends AirSim/Unreal with "dynamic and static obstacle creation
capabilities" and exposes environment knobs such as obstacle density and
dynamic-obstacle speed.  This module provides the same capabilities for our
AABB world: static boxes (buildings, walls, trees, furniture) and dynamic
boxes that move along waypoint loops (people, vehicles).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from .geometry import AABB, norm, vec

_obstacle_ids = itertools.count()


@dataclass
class Obstacle:
    """A static axis-aligned obstacle.

    Attributes
    ----------
    box:
        Geometry of the obstacle.
    kind:
        Free-form category tag, e.g. ``"building"``, ``"tree"``, ``"wall"``,
        ``"person"``.  Detection kernels filter on this tag.
    name:
        Unique identifier within a world.
    """

    box: AABB
    kind: str = "generic"
    name: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            self.name = f"{self.kind}-{next(_obstacle_ids)}"

    @property
    def is_dynamic(self) -> bool:
        return False

    def box_at(self, time: float) -> AABB:
        """Obstacle geometry at simulation time ``time`` (static: constant)."""
        return self.box


@dataclass
class DynamicObstacle(Obstacle):
    """An obstacle that patrols a closed loop of waypoints at constant speed.

    Dynamic obstacles model moving people/vehicles.  The aerial-photography
    workload uses one as the tracked subject; package delivery uses them as
    moving hazards.
    """

    waypoints: Sequence[np.ndarray] = field(default_factory=list)
    speed: float = 1.0  # m/s along the patrol loop

    def __post_init__(self) -> None:
        super().__post_init__()
        self.waypoints = [np.asarray(w, dtype=float) for w in self.waypoints]
        if len(self.waypoints) < 2:
            # Degenerate patrol: stay at the initial center.
            self.waypoints = [self.box.center, self.box.center]
        if self.speed < 0:
            raise ValueError("dynamic obstacle speed must be non-negative")
        self._leg_lengths = [
            norm(b - a)
            for a, b in zip(self.waypoints, self.waypoints[1:] + [self.waypoints[0]])
        ]
        self._loop_length = sum(self._leg_lengths)

    @property
    def is_dynamic(self) -> bool:
        return True

    @property
    def is_patrolling(self) -> bool:
        """True if the obstacle actually moves — the same predicate
        :meth:`position_at` uses to decide between patrolling and
        staying put."""
        return self.speed > 0 and self._loop_length > 0

    def position_at(self, time: float) -> np.ndarray:
        """Center position at time ``time`` along the patrol loop."""
        if self._loop_length <= 0 or self.speed <= 0:
            return self.waypoints[0].copy()
        s = (self.speed * time) % self._loop_length
        pts = list(self.waypoints) + [self.waypoints[0]]
        n_legs = len(self._leg_lengths)
        for i, (a, b, leg) in enumerate(
            zip(pts[:-1], pts[1:], self._leg_lengths)
        ):
            if s <= leg or i == n_legs - 1:
                if leg <= 0:
                    return a.copy()
                frac = min(s / leg, 1.0)
                return a + frac * (b - a)
            s -= leg
        return self.waypoints[0].copy()

    def velocity_at(self, time: float) -> np.ndarray:
        """Instantaneous velocity vector (finite difference over 10 ms)."""
        dt = 0.01
        return (self.position_at(time + dt) - self.position_at(time)) / dt

    def box_at(self, time: float) -> AABB:
        return AABB.from_center(self.position_at(time), self.box.size)


def make_box_obstacle(
    center: Sequence[float],
    size: Sequence[float],
    kind: str = "generic",
    name: str = "",
) -> Obstacle:
    """Convenience constructor for a static box obstacle."""
    return Obstacle(box=AABB.from_center(center, size), kind=kind, name=name)


def make_person(
    position: Sequence[float],
    waypoints: Optional[Sequence[Sequence[float]]] = None,
    speed: float = 1.2,
    name: str = "",
) -> DynamicObstacle:
    """A person-sized dynamic obstacle (0.5 x 0.5 x 1.8 m).

    Average human walking speed (~1.2 m/s) is the default patrol speed.
    """
    pos = vec(*position)
    box = AABB.from_center(pos, (0.5, 0.5, 1.8))
    wps = [vec(*w) for w in waypoints] if waypoints else [pos, pos]
    return DynamicObstacle(
        box=box, kind="person", name=name, waypoints=wps, speed=speed
    )


def obstacle_density(obstacles: List[Obstacle], region: AABB) -> float:
    """Fraction of ``region`` volume occupied by obstacles.

    This is the environment knob the OctoMap case study keys off: indoor
    environments are "high obstacle density", outdoor ones low.
    """
    if region.volume <= 0:
        return 0.0
    occupied = 0.0
    for obs in obstacles:
        b = obs.box
        lo = np.maximum(b.lo, region.lo)
        hi = np.minimum(b.hi, region.hi)
        if np.all(lo <= hi):
            occupied += float(np.prod(hi - lo))
    return min(occupied / region.volume, 1.0)
