"""World serialization: save/load environments as JSON.

The paper's environments come from the Unreal marketplace; ours are
procedural.  Serialization makes specific scenario instances shareable
artifacts — a benchmark result can name the exact world file it flew in,
and users can hand-author scenarios without touching the generators.
"""

from __future__ import annotations

import json
from typing import Dict, List, TextIO, Union

import numpy as np

from .environment import World
from .geometry import AABB, vec
from .obstacles import DynamicObstacle, Obstacle

FORMAT_VERSION = 1


def world_to_dict(world: World) -> Dict:
    """A JSON-serializable description of ``world``."""
    obstacles: List[Dict] = []
    for obs in world.obstacles:
        entry: Dict = {
            "kind": obs.kind,
            "name": obs.name,
            "lo": obs.box.lo.tolist(),
            "hi": obs.box.hi.tolist(),
        }
        if isinstance(obs, DynamicObstacle):
            entry["waypoints"] = [w.tolist() for w in obs.waypoints]
            entry["speed"] = obs.speed
        obstacles.append(entry)
    return {
        "format_version": FORMAT_VERSION,
        "name": world.name,
        "bounds": {
            "lo": world.bounds.lo.tolist(),
            "hi": world.bounds.hi.tolist(),
        },
        "obstacles": obstacles,
    }


def world_from_dict(data: Dict) -> World:
    """Rebuild a :class:`World` from :func:`world_to_dict` output.

    Raises
    ------
    ValueError
        On unknown format versions or malformed entries.
    """
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported world format version: {version!r} "
            f"(expected {FORMAT_VERSION})"
        )
    bounds = AABB(
        np.asarray(data["bounds"]["lo"], dtype=float),
        np.asarray(data["bounds"]["hi"], dtype=float),
    )
    world = World(bounds=bounds, name=data.get("name", "unnamed"))
    for entry in data.get("obstacles", []):
        box = AABB(
            np.asarray(entry["lo"], dtype=float),
            np.asarray(entry["hi"], dtype=float),
        )
        if "waypoints" in entry:
            world.add(
                DynamicObstacle(
                    box=box,
                    kind=entry.get("kind", "generic"),
                    name=entry.get("name", ""),
                    waypoints=[
                        np.asarray(w, dtype=float)
                        for w in entry["waypoints"]
                    ],
                    speed=float(entry.get("speed", 1.0)),
                )
            )
        else:
            world.add(
                Obstacle(
                    box=box,
                    kind=entry.get("kind", "generic"),
                    name=entry.get("name", ""),
                )
            )
    return world


def save_world(world: World, destination: Union[str, TextIO]) -> None:
    """Write ``world`` to a JSON file or stream."""
    data = world_to_dict(world)
    if isinstance(destination, str):
        with open(destination, "w") as f:
            json.dump(data, f, indent=2)
    else:
        json.dump(data, destination, indent=2)


def load_world(source: Union[str, TextIO]) -> World:
    """Read a world written by :func:`save_world`."""
    if isinstance(source, str):
        with open(source) as f:
            data = json.load(f)
    else:
        data = json.load(source)
    return world_from_dict(data)
