"""The simulated 3D world: bounds, obstacles, and spatial queries.

This module is our substitute for the Unreal Engine environment.  The
architecture studies in the paper consume the environment only through
geometric queries — collision checks, ray casts for depth sensing, and
line-of-sight tests — all of which :class:`World` provides.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .geometry import (
    AABB,
    Ray,
    batch_ray_aabbs,
    ray_aabb_intersection,
    segment_intersects_aabb,
    vec,
)
from .obstacles import DynamicObstacle, Obstacle, obstacle_density


@dataclass
class World:
    """A bounded 3D world filled with static and dynamic obstacles.

    Attributes
    ----------
    bounds:
        The extent of the world.  The drone may not leave it and planners
        sample within it.
    obstacles:
        Every obstacle, static and dynamic.
    name:
        Human-readable environment label (e.g. ``"urban"``, ``"indoor"``).
    """

    bounds: AABB
    obstacles: List[Obstacle] = field(default_factory=list)
    name: str = "empty"

    def __post_init__(self) -> None:
        self._static_boxes_cache: Optional[Tuple[np.ndarray, np.ndarray]] = None

    # ------------------------------------------------------------------
    # Obstacle management
    # ------------------------------------------------------------------
    def add(self, obstacle: Obstacle) -> None:
        """Add an obstacle, invalidating the static geometry cache."""
        self.obstacles.append(obstacle)
        self._static_boxes_cache = None

    def extend(self, obstacles: Iterable[Obstacle]) -> None:
        for obs in obstacles:
            self.add(obs)

    @property
    def static_obstacles(self) -> List[Obstacle]:
        return [o for o in self.obstacles if not o.is_dynamic]

    @property
    def dynamic_obstacles(self) -> List[DynamicObstacle]:
        return [o for o in self.obstacles if isinstance(o, DynamicObstacle)]

    def find(self, kind: str) -> List[Obstacle]:
        """All obstacles with the given category tag."""
        return [o for o in self.obstacles if o.kind == kind]

    def density(self, region: Optional[AABB] = None) -> float:
        """Obstacle density (occupied volume fraction) in ``region``."""
        return obstacle_density(self.static_obstacles, region or self.bounds)

    # ------------------------------------------------------------------
    # Geometry caches
    # ------------------------------------------------------------------
    def _static_boxes(self) -> Tuple[np.ndarray, np.ndarray]:
        """Stacked (lo, hi) corner arrays for all static obstacles."""
        if self._static_boxes_cache is None:
            statics = self.static_obstacles
            if statics:
                los = np.stack([o.box.lo for o in statics])
                his = np.stack([o.box.hi for o in statics])
            else:
                los = np.zeros((0, 3))
                his = np.zeros((0, 3))
            self._static_boxes_cache = (los, his)
        return self._static_boxes_cache

    def boxes_at(self, time: float) -> Tuple[np.ndarray, np.ndarray]:
        """(lo, hi) corner arrays for *all* obstacles at time ``time``."""
        los, his = self._static_boxes()
        dyn = self.dynamic_obstacles
        if dyn:
            dlos = np.stack([o.box_at(time).lo for o in dyn])
            dhis = np.stack([o.box_at(time).hi for o in dyn])
            los = np.vstack([los, dlos]) if los.size else dlos
            his = np.vstack([his, dhis]) if his.size else dhis
        return los, his

    # ------------------------------------------------------------------
    # Spatial queries
    # ------------------------------------------------------------------
    def in_bounds(self, point: np.ndarray) -> bool:
        return self.bounds.contains(point)

    def is_occupied(
        self, point: np.ndarray, time: float = 0.0, margin: float = 0.0
    ) -> bool:
        """True if ``point`` lies within ``margin`` of any obstacle."""
        p = np.asarray(point, dtype=float)
        for obs in self.obstacles:
            if obs.box_at(time).distance_to(p) <= margin:
                return True
        return False

    def is_free(
        self, point: np.ndarray, time: float = 0.0, margin: float = 0.0
    ) -> bool:
        """True if ``point`` is inside the world and clear of obstacles."""
        return self.in_bounds(point) and not self.is_occupied(point, time, margin)

    def segment_collides(
        self,
        a: np.ndarray,
        b: np.ndarray,
        time: float = 0.0,
        margin: float = 0.0,
    ) -> bool:
        """True if the straight segment a->b hits any (inflated) obstacle."""
        for obs in self.obstacles:
            box = obs.box_at(time)
            if margin > 0:
                box = box.inflate(margin)
            if segment_intersects_aabb(a, b, box):
                return True
        return False

    def line_of_sight(
        self, a: np.ndarray, b: np.ndarray, time: float = 0.0
    ) -> bool:
        """True if nothing blocks the segment between ``a`` and ``b``."""
        return not self.segment_collides(a, b, time=time, margin=0.0)

    def ray_cast(
        self, ray: Ray, max_range: float = 100.0, time: float = 0.0
    ) -> float:
        """Distance along ``ray`` to the first obstacle surface.

        Returns ``max_range`` when nothing is hit within range.
        """
        best = max_range
        for obs in self.obstacles:
            hit = ray_aabb_intersection(ray, obs.box_at(time))
            if hit is not None:
                best = min(best, hit[0])
        return best

    def ray_cast_many(
        self,
        origin: np.ndarray,
        directions: np.ndarray,
        max_range: float = 100.0,
        time: float = 0.0,
    ) -> np.ndarray:
        """Vectorized multi-ray cast — the depth camera's inner loop."""
        los, his = self.boxes_at(time)
        return batch_ray_aabbs(origin, directions, los, his, max_range)

    def sample_free_point(
        self,
        rng: np.random.Generator,
        margin: float = 0.0,
        max_tries: int = 1000,
        z_range: Optional[Tuple[float, float]] = None,
    ) -> np.ndarray:
        """Uniformly sample a collision-free point inside the world bounds.

        Raises
        ------
        RuntimeError
            If no free point is found in ``max_tries`` samples (the world is
            essentially full).
        """
        lo = self.bounds.lo.copy()
        hi = self.bounds.hi.copy()
        if z_range is not None:
            lo[2], hi[2] = z_range
        for _ in range(max_tries):
            p = rng.uniform(lo, hi)
            if self.is_free(p, margin=margin):
                return p
        raise RuntimeError(
            f"could not sample a free point in {max_tries} tries "
            f"(world '{self.name}' too dense?)"
        )


def empty_world(
    size: Sequence[float] = (100.0, 100.0, 30.0), name: str = "empty"
) -> World:
    """A world with no obstacles, centered on the origin at ground level."""
    half_x, half_y = size[0] / 2.0, size[1] / 2.0
    bounds = AABB(vec(-half_x, -half_y, 0.0), vec(half_x, half_y, size[2]))
    return World(bounds=bounds, name=name)
