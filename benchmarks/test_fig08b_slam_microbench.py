"""Fig. 8b — the SLAM circular-path microbenchmark.

Protocol (Section V-A): fly a circle of radius 25 m; emulate different
compute powers as different SLAM frame rates; sweep velocities; bound the
tracking-failure rate to 20%.  Report, per FPS: the max velocity that
stays under the bound and the mission energy at that velocity.

Expected shape: max velocity grows with FPS; energy *falls* with FPS
(faster laps on rotor-dominated power).  The paper reports ~4X energy
reduction for a 5X processing-speed increase.
"""

import pytest
from conftest import run_once

from repro.analysis import format_table, slam_fps_sweep


@pytest.fixture(scope="module")
def sweep():
    return slam_fps_sweep(fps_values=(0.25, 0.5, 1, 2, 4), seed=3)


def test_fig08b_velocity_vs_fps(benchmark, print_header, sweep):
    points = run_once(benchmark, lambda: sweep)

    print_header("Fig. 8b: SLAM FPS vs max velocity and energy")
    print(
        format_table(
            ["SLAM FPS", "max velocity (m/s)", "failure rate",
             "mission (s)", "energy (kJ)"],
            [
                (p.fps, p.velocity_ms, p.failure_rate, p.mission_time_s,
                 p.energy_kj)
                for p in points
            ],
        )
    )
    velocities = [p.velocity_ms for p in points]
    assert all(b >= a for a, b in zip(velocities[:-1], velocities[1:]))
    assert velocities[-1] > velocities[0]
    # All reported points respect the failure-rate bound.
    assert all(p.failure_rate <= 0.2 for p in points)


def test_fig08b_energy_vs_fps(benchmark, print_header, sweep):
    points = run_once(benchmark, lambda: sweep)
    energies = [p.energy_kj for p in points]
    print_header("Fig. 8b: energy falls as compute (FPS) rises")
    ratio = energies[0] / energies[-1]
    print(f"energy at 0.5 FPS / energy at 8 FPS = {ratio:.2f}x "
          f"(paper: ~4x for 5x compute)")
    assert energies[-1] < energies[0]
    assert ratio > 1.5
