"""Fig. 13 — Search and Rescue heatmap.

The paper reports up to 67% mission-time and 57% energy reduction with
compute scaling.  SAR adds object detection on top of the Mapping
pipeline; survivor discovery is stochastic, so cells average over seeds.
"""

from conftest import run_once
from heatmap_common import print_paper_style, run_heatmap


def test_fig13_search_rescue_heatmap(benchmark, print_header):
    result = run_once(
        benchmark, run_heatmap, "search_rescue", seeds=(1, 2)
    )

    print_header("Fig. 13: Search and Rescue")
    print_paper_style(result, "Fig. 13")

    fast = result.cell(4, 2.2)
    slow = result.cell(2, 0.8)
    assert fast.mission_time_s < slow.mission_time_s
    assert fast.energy_kj < slow.energy_kj
    assert result.corner_ratio("mission_time_s") > 1.5
    # The survivor is found at both corners.
    assert fast.extra["found_survivor"] == 1.0
    assert slow.extra["found_survivor"] == 1.0
