"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure from the paper's
evaluation and prints the corresponding rows/series.  Mission-level
experiments run exactly once through ``benchmark.pedantic`` (a mission is
minutes of simulated time; statistical repetition happens across seeds,
not timer rounds), while kernel-level experiments use the normal
pytest-benchmark timing loop.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Callable

import pytest

#: Where the per-figure median wall-times land after a benchmark run.
#: CI uploads this as an artifact so the perf trajectory is visible
#: PR-over-PR; override with the BENCH_JSON env var.
BENCH_JSON_DEFAULT = "BENCH_octomap.json"

_BENCH_DIR = Path(__file__).resolve().parent


def pytest_collection_modifyitems(config, items):
    """Tag every test under benchmarks/ with the ``bench`` marker so the
    CI fast lane can include/exclude the figure benchmarks wholesale
    (``-m bench`` / ``-m "not bench"``)."""
    for item in items:
        try:
            in_bench = _BENCH_DIR in Path(str(item.fspath)).resolve().parents
        except (OSError, ValueError):
            in_bench = False
        if in_bench:
            item.add_marker(pytest.mark.bench)


def pytest_sessionfinish(session, exitstatus):
    """Emit BENCH_octomap.json: median/mean wall-time per figure benchmark.

    Written only when pytest-benchmark actually collected timings (i.e. a
    benchmarks/ run), never on plain unit-test runs.
    """
    bench_session = getattr(session.config, "_benchmarksession", None)
    if bench_session is None or not getattr(bench_session, "benchmarks", None):
        return
    results = {}
    for bench in bench_session.benchmarks:
        stats = getattr(bench, "stats", None)
        if stats is None:
            continue
        try:
            results[bench.fullname] = {
                "median_s": float(stats.median),
                "mean_s": float(stats.mean),
                "min_s": float(stats.min),
                "rounds": int(stats.rounds),
            }
        except (AttributeError, TypeError, ValueError):
            continue
    if not results:
        return
    out_path = Path(
        os.environ.get("BENCH_JSON", BENCH_JSON_DEFAULT)
    )
    if not out_path.is_absolute():
        out_path = Path(str(session.config.rootdir)) / out_path
    # BENCH_octomap.json -> "bench-octomap/1", BENCH_planners.json ->
    # "bench-planners/1": one artifact per kernel family, self-describing.
    family = out_path.stem.replace("BENCH_", "").lower() or "octomap"
    payload = {
        "schema": f"bench-{family}/1",
        "benchmarks": results,
    }
    out_path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def run_once(benchmark, fn: Callable, *args, **kwargs):
    """Execute ``fn`` exactly once under the benchmark fixture.

    Returns ``fn``'s result so the caller can print/assert on it.
    """
    return benchmark.pedantic(
        fn, args=args, kwargs=kwargs, rounds=1, iterations=1, warmup_rounds=0
    )


@pytest.fixture
def print_header(request, capsys):
    """Print a visible experiment banner around the captured output."""

    def _print(title: str) -> None:
        with capsys.disabled():
            print(f"\n=== {title} ===")

    return _print
