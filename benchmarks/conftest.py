"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure from the paper's
evaluation and prints the corresponding rows/series.  Mission-level
experiments run exactly once through ``benchmark.pedantic`` (a mission is
minutes of simulated time; statistical repetition happens across seeds,
not timer rounds), while kernel-level experiments use the normal
pytest-benchmark timing loop.
"""

from __future__ import annotations

from typing import Callable

import pytest


def run_once(benchmark, fn: Callable, *args, **kwargs):
    """Execute ``fn`` exactly once under the benchmark fixture.

    Returns ``fn``'s result so the caller can print/assert on it.
    """
    return benchmark.pedantic(
        fn, args=args, kwargs=kwargs, rounds=1, iterations=1, warmup_rounds=0
    )


@pytest.fixture
def print_header(request, capsys):
    """Print a visible experiment banner around the captured output."""

    def _print(title: str) -> None:
        with capsys.disabled():
            print(f"\n=== {title} ===")

    return _print
