"""Fig. 15 — kernel runtime breakdown across all nine TX2 configurations.

Regenerates the grouped bars: for each (kernel, application) pair, the
modeled runtime at every (cores, frequency) operating point, and checks
the calibrated scaling behaviours the paper reports (tracking ~10X,
motion planning up to ~9X, OctoMap 2.9-6.6X, detection 1.8-2.5X between
the slowest and fastest configurations).
"""

from conftest import run_once

from repro.analysis import format_table
from repro.compute import JETSON_TX2, KernelModel, PlatformConfig

CONFIGS = [
    (c, f) for c in (2, 3, 4) for f in (0.8, 1.5, 2.2)
]

#: (label, workload, kernel) — the bars of Fig. 15.
BARS = [
    ("MP-SC", "scanning", "lawnmower"),
    ("OMG-PD", "package_delivery", "octomap"),
    ("MP-PD", "package_delivery", "shortest_path"),
    ("MP-MAP3D", "mapping", "frontier_exploration"),
    ("OMG-MAP3D", "mapping", "octomap"),
    ("MP-SAR", "search_rescue", "frontier_exploration"),
    ("OMG-SAR", "search_rescue", "octomap"),
    ("OD-AP", "aerial_photography", "object_detection_yolo"),
    ("Track Buffered-AP", "aerial_photography", "tracking_buffered"),
    ("Track RealTime-AP", "aerial_photography", "tracking_realtime"),
]


def _breakdown():
    rows = []
    for label, workload, kernel in BARS:
        model = KernelModel(workload=workload)
        profile = model.profile(kernel)
        runtimes = [
            profile.runtime_ms(PlatformConfig(JETSON_TX2, c, f)) / 1000.0
            for c, f in CONFIGS
        ]
        rows.append([label] + runtimes)
    return rows


def test_fig15_kernel_breakdown(benchmark, print_header):
    rows = run_once(benchmark, _breakdown)

    print_header("Fig. 15: kernel runtimes (s) across TX2 configurations")
    headers = ["kernel-app"] + [f"{c}c/{f}GHz" for c, f in CONFIGS]
    print(format_table(headers, rows))

    by_label = {row[0]: row[1:] for row in rows}
    slow_idx = CONFIGS.index((2, 0.8))
    fast_idx = CONFIGS.index((4, 2.2))

    def speedup(label):
        return by_label[label][slow_idx] / by_label[label][fast_idx]

    print("\nspeedups (2c/0.8GHz -> 4c/2.2GHz) vs paper:")
    expectations = [
        ("Track Buffered-AP", 10.0, (7.0, 12.0)),
        ("MP-PD", 9.2, (6.0, 10.0)),
        ("MP-MAP3D", 6.3, (5.0, 8.0)),
        ("MP-SAR", 6.8, (5.0, 9.0)),
        ("OMG-PD", 2.9, (2.0, 4.0)),
        ("OMG-MAP3D", 6.0, (4.5, 7.5)),
        ("OMG-SAR", 6.6, (5.0, 8.0)),
        ("OD-AP", 2.49, (1.6, 3.2)),
        ("MP-SC", 3.0, (2.2, 4.0)),
    ]
    for label, paper, (lo, hi) in expectations:
        s = speedup(label)
        print(f"  {label:<20s} model {s:5.2f}x   paper {paper:5.2f}x")
        assert lo <= s <= hi, f"{label}: {s:.2f}x outside [{lo}, {hi}]"

    # Every kernel is monotonically faster with frequency at fixed cores.
    for label, values in by_label.items():
        for c_idx, cores in enumerate((2, 3, 4)):
            f08 = values[c_idx * 3 + 0]
            f22 = values[c_idx * 3 + 2]
            assert f22 <= f08 + 1e-12, f"{label} not faster at 2.2 GHz"
