"""Ablation — fleet-batched campaign execution vs the sequential loop.

The fleet runner's pitch is that a campaign's missions, advanced in
lockstep through struct-of-arrays kernels (plus the fleet-side
perception fast paths), finish in a fraction of the sequential loop's
wall clock *while producing byte-identical records*.  This bench is the
CI gate on both halves of that claim, on a real paper figure: the
Fig. 11 package-delivery heatmap's 2.2 GHz column (its three
highest-compute operating points — the cells whose insert-heavy
perception load the fleet fast paths target), seed 1, flown on the
canonical urban world.

Two benchmarks land in ``BENCH_fleet.json`` (sequential reference and
fleet-of-3), so the perf trajectory of *both* paths is visible
PR-over-PR via ``tools/bench_report.py compare``.  The fleet test then
hard-asserts:

* record identity — every run's (spec, report, status) triple matches
  the sequential campaign exactly (``wall_time_s`` excluded: fleet
  members share one wall clock by design);
* speedup — sequential wall over fleet wall is at least
  :data:`SPEEDUP_FLOOR` (measured ~4.7x on the reference runner; the
  floor leaves headroom for machine noise, and a regression below it
  means a fleet fast path stopped engaging).
"""

import json
import time

from conftest import run_once

from repro.campaign import CampaignSpec, run_campaign
from repro.fleet import (
    FleetMission,
    SharedWorldState,
    fleet_gate_stats,
    run_workloads_fleet,
)
from repro.observability import trace

#: The Fig. 11 heatmap's high-frequency column: every core count at the
#: TX2's 2.2 GHz operating point.
GRID_22 = [(2, 2.2), (3, 2.2), (4, 2.2)]

#: Minimum sequential/fleet wall-clock ratio the CI gate accepts.
SPEEDUP_FLOOR = 4.0

#: Fleet size — one fleet flies the whole column.
FLEET = 3

#: Cross-test stash so the fleet benchmark can compare against the
#: sequential reference without re-flying it (file order runs the
#: sequential test first; a solo fleet run recomputes it untimed).
_SEQUENTIAL = {}


def _spec() -> CampaignSpec:
    return CampaignSpec(
        workloads=["package_delivery"], grid=list(GRID_22), seeds=[1]
    )


def _run_campaign(fleet_batch=None):
    """Fly the column; returns (records, wall_seconds)."""
    started = time.perf_counter()
    campaign = run_campaign(_spec(), fleet_batch=fleet_batch)
    wall = time.perf_counter() - started
    assert campaign.failed == 0, campaign.summary()
    return campaign.records, wall


def record_identity(records):
    """Run hash -> (spec payload, report, status); excludes wall_time_s,
    which legitimately differs (same invariant the campaign sharding
    equivalence suite compares)."""
    return {
        r["run_key"]: (
            json.dumps(r["spec"], sort_keys=True),
            json.dumps(r.get("report"), sort_keys=True),
            r["status"],
        )
        for r in records
    }


def _sequential_reference():
    if "records" not in _SEQUENTIAL:
        _SEQUENTIAL["records"], _SEQUENTIAL["wall"] = _run_campaign()
    return _SEQUENTIAL["records"], _SEQUENTIAL["wall"]


def test_fig11_column_sequential(benchmark, print_header):
    print_header("Fleet ablation — sequential reference (Fig. 11, 2.2 GHz column)")
    records, wall = run_once(benchmark, _run_campaign)
    _SEQUENTIAL["records"] = records
    _SEQUENTIAL["wall"] = wall
    print(f"sequential: {len(records)} missions in {wall:.1f}s")


def test_fig11_column_fleet(benchmark, print_header):
    print_header(f"Fleet ablation — fleet of {FLEET} (Fig. 11, 2.2 GHz column)")
    fleet_records, fleet_wall = run_once(
        benchmark, _run_campaign, fleet_batch=FLEET
    )
    seq_records, seq_wall = _sequential_reference()

    assert record_identity(fleet_records) == record_identity(seq_records), (
        "fleet campaign records diverged from sequential execution"
    )
    ratio = seq_wall / fleet_wall
    print(
        f"sequential {seq_wall:.1f}s / fleet {fleet_wall:.1f}s "
        f"= {ratio:.2f}x speedup (gate: >= {SPEEDUP_FLOOR:.1f}x)"
    )
    assert ratio >= SPEEDUP_FLOOR, (
        f"fleet speedup {ratio:.2f}x fell below the {SPEEDUP_FLOOR:.1f}x "
        f"gate (sequential {seq_wall:.1f}s, fleet {fleet_wall:.1f}s) — a "
        "fleet fast path (batched kernels, perception accel, octomap "
        "fast index) likely stopped engaging"
    )


# --- Gate-contention scaling: traced fleets of 3 vs 9 -----------------
#
# Every member pays one gate wait per tick; the gate amortizes each
# tick's batched kernels over all members.  Flying the same short
# scanning mission at both widths (same seed per member, so every
# member survives the full flight and the gate runs at full width
# throughout) puts two rows into BENCH_fleet.json whose ratio is the
# amortization trend: per-mission wall should *fall* as the fleet
# widens, while mean gate wait stays in the same order of magnitude.

#: Cross-test stash: fleet-of-3 row for the fleet-of-9 comparison.
_GATE = {}


def _traced_uniform_fleet(n):
    """Fly n copies of the golden short scanning mission, traced."""
    missions = [
        FleetMission(
            workload="scanning",
            seed=1,
            cores=4,
            frequency_ghz=2.2,
            workload_kwargs={"area_width": 40.0, "area_length": 24.0},
        )
        for _ in range(n)
    ]
    labels = [f"m{i}:scanning" for i in range(n)]
    started = time.perf_counter()
    with trace.capture() as tracer:
        results, errors = run_workloads_fleet(missions, labels=labels)
    wall = time.perf_counter() - started
    assert all(error is None for error in errors), errors
    assert all(result.report.success for result in results)
    return fleet_gate_stats(tracer.metrics.snapshot()), wall


def _gate_row(n, gate, wall):
    waits = [h for h in gate["wait"].values() if h["count"]]
    mean_wait = (
        sum(h["sum"] for h in waits) / sum(h["count"] for h in waits)
        if waits
        else 0.0
    )
    max_wait = max((h["max"] for h in waits), default=0.0)
    return {
        "n": n,
        "ticks": gate["ticks"],
        "wall_s": wall,
        "per_mission_s": wall / n,
        "mean_wait_ms": mean_wait * 1e3,
        "max_wait_ms": max_wait * 1e3,
    }


def _print_gate_row(print_fn, row):
    print_fn(
        f"fleet of {row['n']}: {row['ticks']} gate ticks in "
        f"{row['wall_s']:.2f}s ({row['per_mission_s']:.2f}s/mission), "
        f"gate wait mean {row['mean_wait_ms']:.3f}ms "
        f"max {row['max_wait_ms']:.3f}ms"
    )


def test_gate_wait_fleet3(benchmark, print_header):
    print_header("Gate contention — traced fleet of 3 (scanning, seed 1)")
    gate, wall = run_once(benchmark, _traced_uniform_fleet, 3)
    assert gate["ticks"] > 0 and gate["retired"] == 3
    assert len(gate["wait"]) == 3
    _GATE[3] = _gate_row(3, gate, wall)
    _print_gate_row(print, _GATE[3])


def test_gate_wait_fleet9(benchmark, print_header):
    print_header("Gate contention — traced fleet of 9 (scanning, seed 1)")
    gate, wall = run_once(benchmark, _traced_uniform_fleet, 9)
    assert gate["ticks"] > 0 and gate["retired"] == 9
    assert len(gate["wait"]) == 9
    row9 = _gate_row(9, gate, wall)
    _print_gate_row(print, row9)

    if 3 not in _GATE:  # solo run: recompute the narrow row untimed
        gate3, wall3 = _traced_uniform_fleet(3)
        _GATE[3] = _gate_row(3, gate3, wall3)
    row3 = _GATE[3]
    amortization = row3["per_mission_s"] / row9["per_mission_s"]
    print(
        f"amortization 3 -> 9: {row3['per_mission_s']:.2f}s -> "
        f"{row9['per_mission_s']:.2f}s per mission "
        f"({amortization:.2f}x)"
    )
    # Widening the fleet must not make per-mission wall *worse*: the
    # gate's serialization overhead has to stay amortized away by the
    # batched kernels.  (Floor is deliberately loose — 1.0 would flake
    # on shared CI runners.)
    assert row9["per_mission_s"] < 1.5 * row3["per_mission_s"], (
        f"fleet-of-9 per-mission wall {row9['per_mission_s']:.2f}s vs "
        f"fleet-of-3 {row3['per_mission_s']:.2f}s — gate contention is "
        "no longer amortized by batching"
    )


# --- Shared-world ablation: one city, 3 drones ------------------------
#
# Independent fleets batch N disjoint worlds; the shared-world path adds
# the conflicts gate phase (pairwise separations + priority resolution)
# and peer-aware collision checks on top.  This row times a 3-drone
# package-delivery fleet through one shared_city and lands its wall in
# BENCH_fleet.json, so the airspace machinery's cost trends PR-over-PR
# alongside the plain fleet rows — and hard-asserts the low-difficulty
# safety contract (everyone lands, lanes keep them a street apart).

#: Pinned city every member flies through (one scenario key, one world).
SHARED_CITY = {"family": "shared_city", "difficulty": 0.3, "seed": 7}


def _shared_city_fleet(n):
    """Fly n drones through one shared_city; returns (state, wall)."""
    missions = [
        FleetMission(
            workload="package_delivery",
            seed=10 + member,
            cores=4,
            frequency_ghz=2.2,
            workload_kwargs={"scenario": dict(SHARED_CITY), "member": member},
        )
        for member in range(n)
    ]
    state = SharedWorldState()
    started = time.perf_counter()
    results, errors = run_workloads_fleet(missions, shared_world=state)
    wall = time.perf_counter() - started
    assert all(error is None for error in errors), errors
    assert all(result.report.success for result in results)
    return state, results, wall


def test_shared_city_fleet3(benchmark, print_header):
    print_header("Shared-world ablation — 3 drones, one shared_city")
    state, results, wall = run_once(benchmark, _shared_city_fleet, 3)
    print(
        f"3 drones in {wall:.1f}s: min separation "
        f"{state.min_separation_m:.1f}m, near misses {state.near_misses}, "
        f"holds {state.conflict_holds}, collisions {state.drone_collisions}"
    )
    # Low difficulty + parallel lanes: the airspace must stay clean.
    assert state.drone_collisions == 0
    assert state.near_misses == 0
    assert state.min_separation_m >= 5.0, state.min_separation_m
    # And every report carries the airspace extras.
    for result in results:
        extra = result.report.extra
        assert extra["fleet_near_misses"] == 0, extra
        assert extra["fleet_min_separation_m"] >= 5.0, extra
