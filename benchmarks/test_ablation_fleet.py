"""Ablation — fleet-batched campaign execution vs the sequential loop.

The fleet runner's pitch is that a campaign's missions, advanced in
lockstep through struct-of-arrays kernels (plus the fleet-side
perception fast paths), finish in a fraction of the sequential loop's
wall clock *while producing byte-identical records*.  This bench is the
CI gate on both halves of that claim, on a real paper figure: the
Fig. 11 package-delivery heatmap's 2.2 GHz column (its three
highest-compute operating points — the cells whose insert-heavy
perception load the fleet fast paths target), seed 1, flown on the
canonical urban world.

Two benchmarks land in ``BENCH_fleet.json`` (sequential reference and
fleet-of-3), so the perf trajectory of *both* paths is visible
PR-over-PR via ``tools/bench_report.py compare``.  The fleet test then
hard-asserts:

* record identity — every run's (spec, report, status) triple matches
  the sequential campaign exactly (``wall_time_s`` excluded: fleet
  members share one wall clock by design);
* speedup — sequential wall over fleet wall is at least
  :data:`SPEEDUP_FLOOR` (measured ~4.7x on the reference runner; the
  floor leaves headroom for machine noise, and a regression below it
  means a fleet fast path stopped engaging).
"""

import json
import time

from conftest import run_once

from repro.campaign import CampaignSpec, run_campaign

#: The Fig. 11 heatmap's high-frequency column: every core count at the
#: TX2's 2.2 GHz operating point.
GRID_22 = [(2, 2.2), (3, 2.2), (4, 2.2)]

#: Minimum sequential/fleet wall-clock ratio the CI gate accepts.
SPEEDUP_FLOOR = 4.0

#: Fleet size — one fleet flies the whole column.
FLEET = 3

#: Cross-test stash so the fleet benchmark can compare against the
#: sequential reference without re-flying it (file order runs the
#: sequential test first; a solo fleet run recomputes it untimed).
_SEQUENTIAL = {}


def _spec() -> CampaignSpec:
    return CampaignSpec(
        workloads=["package_delivery"], grid=list(GRID_22), seeds=[1]
    )


def _run_campaign(fleet_batch=None):
    """Fly the column; returns (records, wall_seconds)."""
    started = time.perf_counter()
    campaign = run_campaign(_spec(), fleet_batch=fleet_batch)
    wall = time.perf_counter() - started
    assert campaign.failed == 0, campaign.summary()
    return campaign.records, wall


def record_identity(records):
    """Run hash -> (spec payload, report, status); excludes wall_time_s,
    which legitimately differs (same invariant the campaign sharding
    equivalence suite compares)."""
    return {
        r["run_key"]: (
            json.dumps(r["spec"], sort_keys=True),
            json.dumps(r.get("report"), sort_keys=True),
            r["status"],
        )
        for r in records
    }


def _sequential_reference():
    if "records" not in _SEQUENTIAL:
        _SEQUENTIAL["records"], _SEQUENTIAL["wall"] = _run_campaign()
    return _SEQUENTIAL["records"], _SEQUENTIAL["wall"]


def test_fig11_column_sequential(benchmark, print_header):
    print_header("Fleet ablation — sequential reference (Fig. 11, 2.2 GHz column)")
    records, wall = run_once(benchmark, _run_campaign)
    _SEQUENTIAL["records"] = records
    _SEQUENTIAL["wall"] = wall
    print(f"sequential: {len(records)} missions in {wall:.1f}s")


def test_fig11_column_fleet(benchmark, print_header):
    print_header(f"Fleet ablation — fleet of {FLEET} (Fig. 11, 2.2 GHz column)")
    fleet_records, fleet_wall = run_once(
        benchmark, _run_campaign, fleet_batch=FLEET
    )
    seq_records, seq_wall = _sequential_reference()

    assert record_identity(fleet_records) == record_identity(seq_records), (
        "fleet campaign records diverged from sequential execution"
    )
    ratio = seq_wall / fleet_wall
    print(
        f"sequential {seq_wall:.1f}s / fleet {fleet_wall:.1f}s "
        f"= {ratio:.2f}x speedup (gate: >= {SPEEDUP_FLOOR:.1f}x)"
    )
    assert ratio >= SPEEDUP_FLOOR, (
        f"fleet speedup {ratio:.2f}x fell below the {SPEEDUP_FLOOR:.1f}x "
        f"gate (sequential {seq_wall:.1f}s, fleet {fleet_wall:.1f}s) — a "
        "fleet fast path (batched kernels, perception accel, octomap "
        "fast index) likely stopped engaging"
    )
