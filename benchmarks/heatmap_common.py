"""Shared machinery for the Fig. 10-14 operating-point heatmaps.

The figure benchmarks run on the campaign engine: each heatmap is a
one-workload :class:`CampaignSpec` over the full TX2 grid, executed by
``run_campaign`` and reduced back to the classic ``SweepResult``.  Set
``REPRO_BENCH_JOBS=N`` to fan the grid's missions out over worker
processes (results are identical to the serial run), and
``REPRO_BENCH_STORE=path.jsonl`` to persist/resume the mission results.
"""

from __future__ import annotations

import os
from typing import Dict, Optional, Sequence

from repro.analysis import SweepResult, format_heatmap
from repro.campaign import CampaignSpec, CampaignStore, aggregate_sweep, run_campaign

FULL_GRID = [(c, f) for c in (2, 3, 4) for f in (0.8, 1.5, 2.2)]


def run_heatmap(
    workload: str,
    seeds: Sequence[int] = (1,),
    grid=None,
    workload_kwargs: Optional[Dict] = None,
    jobs: Optional[int] = None,
) -> SweepResult:
    spec = CampaignSpec(
        workloads=[workload],
        grid=list(grid or FULL_GRID),
        seeds=list(seeds),
        workload_kwargs=(
            {workload: dict(workload_kwargs)} if workload_kwargs else {}
        ),
    )
    if jobs is None:
        jobs = int(os.environ.get("REPRO_BENCH_JOBS", "1"))
    store_path = os.environ.get("REPRO_BENCH_STORE")
    store = CampaignStore(store_path) if store_path else None
    campaign = run_campaign(spec, jobs=jobs, store=store)
    return aggregate_sweep(campaign.records, workload=workload)


def print_paper_style(result: SweepResult, label: str) -> None:
    """Print the three per-figure heatmaps in the paper's layout."""
    print(f"\n--- {label} (a) velocity (m/s) ---")
    print(format_heatmap(result, "velocity_ms", fmt="{:.2f}"))
    print(f"\n--- {label} (b) mission time (s) ---")
    print(format_heatmap(result, "mission_time_s", fmt="{:.1f}"))
    print(f"\n--- {label} (c) energy (kJ) ---")
    print(format_heatmap(result, "energy_kj", fmt="{:.1f}"))
    print(
        f"\ncorner ratios (slow 2c/0.8GHz over fast 4c/2.2GHz): "
        f"time {result.corner_ratio('mission_time_s'):.2f}x, "
        f"energy {result.corner_ratio('energy_kj'):.2f}x"
    )
