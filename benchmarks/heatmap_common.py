"""Shared machinery for the Fig. 10-14 operating-point heatmaps.

The figure benchmarks run on the campaign engine: each heatmap is a
one-workload :class:`CampaignSpec` over the full TX2 grid, executed by
``run_campaign`` and reduced back to the classic ``SweepResult``.  Set
``REPRO_BENCH_JOBS=N`` to fan the grid's missions out over worker
processes (results are identical to the serial run), and
``REPRO_BENCH_STORE=path.jsonl`` to persist/resume the mission results.

To split a figure's missions across hosts, set ``REPRO_BENCH_SHARD=I/N``
together with ``REPRO_BENCH_STORE=rootdir``: each host executes only its
run-hash shard into ``rootdir/<campaign_key>/shard-I-of-N.jsonl``, then
merges whatever shard files are present.  Once every shard's file has
landed (copy them into the same root), any host's re-run merges to the
complete store and renders the figure from cache; until then the run
fails loudly instead of averaging a partial seed set.
"""

from __future__ import annotations

import os
from typing import Dict, Optional, Sequence

from repro.analysis import SweepResult, format_heatmap
from repro.campaign import (
    MERGED_STORE_NAME,
    CampaignSpec,
    CampaignStore,
    aggregate_sweep,
    campaign_dir,
    merge_stores,
    missing_runs,
    parse_shard,
    records_in_spec_order,
    run_campaign,
    shard_paths,
    shard_store_path,
)

FULL_GRID = [(c, f) for c in (2, 3, 4) for f in (0.8, 1.5, 2.2)]


def _run_sharded(spec: CampaignSpec, workload: str, jobs: int) -> SweepResult:
    shard = parse_shard(os.environ["REPRO_BENCH_SHARD"])
    root = os.environ.get("REPRO_BENCH_STORE")
    if not root:
        raise RuntimeError(
            "REPRO_BENCH_SHARD requires REPRO_BENCH_STORE "
            "(the campaign store root directory)"
        )
    store = CampaignStore(shard_store_path(root, spec.campaign_key, *shard))
    run_campaign(spec, jobs=jobs, store=store, shard=shard)
    directory = campaign_dir(root, spec.campaign_key)
    dest = directory / MERGED_STORE_NAME
    merge_stores(shard_paths(root, spec.campaign_key), dest)
    merged = CampaignStore(dest)
    missing = missing_runs(spec, merged)
    if missing:
        failed = sum(
            1 for r in missing
            if (merged.get(r.run_key) or {}).get("status") == "error"
        )
        absent = len(missing) - failed
        raise RuntimeError(
            f"{workload}: {len(missing)} runs lack a successful record "
            f"after merging {directory} ({failed} failed — retry their "
            f"shard with the same REPRO_BENCH_SHARD; {absent} not yet "
            "executed — run the remaining shards and copy their "
            "shard-*.jsonl files into the same store root)"
        )
    return aggregate_sweep(
        records_in_spec_order(spec, merged), workload=workload
    )


def run_heatmap(
    workload: str,
    seeds: Sequence[int] = (1,),
    grid=None,
    workload_kwargs: Optional[Dict] = None,
    jobs: Optional[int] = None,
) -> SweepResult:
    spec = CampaignSpec(
        workloads=[workload],
        grid=list(grid or FULL_GRID),
        seeds=list(seeds),
        workload_kwargs=(
            {workload: dict(workload_kwargs)} if workload_kwargs else {}
        ),
    )
    if jobs is None:
        jobs = int(os.environ.get("REPRO_BENCH_JOBS", "1"))
    if os.environ.get("REPRO_BENCH_SHARD"):
        return _run_sharded(spec, workload, jobs)
    store_path = os.environ.get("REPRO_BENCH_STORE")
    store = CampaignStore(store_path) if store_path else None
    campaign = run_campaign(spec, jobs=jobs, store=store)
    return aggregate_sweep(campaign.records, workload=workload)


def print_paper_style(result: SweepResult, label: str) -> None:
    """Print the three per-figure heatmaps in the paper's layout."""
    print(f"\n--- {label} (a) velocity (m/s) ---")
    print(format_heatmap(result, "velocity_ms", fmt="{:.2f}"))
    print(f"\n--- {label} (b) mission time (s) ---")
    print(format_heatmap(result, "mission_time_s", fmt="{:.1f}"))
    print(f"\n--- {label} (c) energy (kJ) ---")
    print(format_heatmap(result, "energy_kj", fmt="{:.1f}"))
    print(
        f"\ncorner ratios (slow 2c/0.8GHz over fast 4c/2.2GHz): "
        f"time {result.corner_ratio('mission_time_s'):.2f}x, "
        f"energy {result.corner_ratio('energy_kj'):.2f}x"
    )
