"""Shared machinery for the Fig. 10-14 operating-point heatmaps."""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.analysis import SweepResult, format_heatmap, sweep_operating_points

FULL_GRID = [(c, f) for c in (2, 3, 4) for f in (0.8, 1.5, 2.2)]


def run_heatmap(
    workload: str,
    seeds: Sequence[int] = (1,),
    grid=None,
    workload_kwargs: Optional[Dict] = None,
) -> SweepResult:
    return sweep_operating_points(
        workload,
        grid=grid or FULL_GRID,
        seeds=seeds,
        workload_kwargs=workload_kwargs,
    )


def print_paper_style(result: SweepResult, label: str) -> None:
    """Print the three per-figure heatmaps in the paper's layout."""
    print(f"\n--- {label} (a) velocity (m/s) ---")
    print(format_heatmap(result, "velocity_ms", fmt="{:.2f}"))
    print(f"\n--- {label} (b) mission time (s) ---")
    print(format_heatmap(result, "mission_time_s", fmt="{:.1f}"))
    print(f"\n--- {label} (c) energy (kJ) ---")
    print(format_heatmap(result, "energy_kj", fmt="{:.1f}"))
    print(
        f"\ncorner ratios (slow 2c/0.8GHz over fast 4c/2.2GHz): "
        f"time {result.corner_ratio('mission_time_s'):.2f}x, "
        f"energy {result.corner_ratio('energy_kj'):.2f}x"
    )
