"""Ablation — compute-subsystem fault injection (Section VI-C extension).

"We can also inject errors directly into the compute subsystem to
'simulate' soft errors and transient bit flips in logic."  This harness
flies Package Delivery with kernel crash/retry faults injected at
increasing rates and reports the QoF degradation — the vulnerability-
analysis capability the paper describes.
"""

import numpy as np
import pytest
from conftest import run_once

from repro.analysis import format_table
from repro.compute import KernelModel
from repro.core.api import make_simulation
from repro.core.workloads import PackageDeliveryWorkload
from repro.reliability import FaultInjector, FaultModel
from repro.world import empty_world, make_box_obstacle


def _world():
    world = empty_world((50, 50, 12), name="fault-city")
    world.add(make_box_obstacle((0, 0, 4), (6, 6, 8), kind="building"))
    return world


def _fly(crash_probability: float, seed: int = 2):
    workload = PackageDeliveryWorkload(
        world=_world(), goal=np.array([18.0, 18.0, 3.0]), seed=seed
    )
    sim = make_simulation(workload, cores=4, frequency_ghz=2.2, seed=seed)
    injector = FaultInjector(
        base_model=KernelModel(workload="package_delivery"),
        fault_model=FaultModel(crash_probability=crash_probability),
        seed=seed,
    )
    sim.kernel_model = injector
    sim.scheduler.kernel_model = injector
    report = workload.run()
    return report, injector.fault_counts()


def test_fault_injection_degrades_qof(benchmark, print_header):
    def study():
        rows = []
        for rate in (0.0, 0.2, 0.5):
            report, counts = _fly(rate)
            rows.append(
                (
                    rate,
                    "ok" if report.success else
                    f"FAIL({report.failure_reason})",
                    report.mission_time_s,
                    report.total_energy_j / 1000.0,
                    counts["crashes"],
                )
            )
        return rows

    rows = run_once(benchmark, study)
    print_header("Ablation: kernel crash/retry fault injection")
    print(
        format_table(
            ["crash prob", "outcome", "mission (s)", "energy (kJ)",
             "crashes"],
            rows,
        )
    )
    clean_time = rows[0][2]
    faulty_time = rows[-1][2]
    # Fault-free baseline succeeds.
    assert rows[0][1] == "ok"
    assert rows[0][4] == 0
    # Heavy fault rates cost mission time (retries inflate every kernel)
    # unless they kill the mission outright.
    assert rows[-1][4] > 0
    assert faulty_time > clean_time or rows[-1][1] != "ok"
