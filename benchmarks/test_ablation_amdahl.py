"""Ablation — Amdahl serial fraction drives the core-scaling shape.

DESIGN.md calls out the per-kernel serial fraction as the central
calibration choice for core scaling.  This ablation sweeps the serial
fraction and verifies the model's behaviour at the extremes: a fully
serial kernel gains nothing from cores (Scanning's flat heatmap), a fully
parallel kernel gains linearly (Mapping's steep one).
"""

import pytest
from conftest import run_once

from repro.analysis import format_table
from repro.compute import JETSON_TX2, KernelProfile, PlatformConfig


def _sweep():
    rows = []
    for serial in (0.0, 0.25, 0.5, 0.75, 1.0):
        profile = KernelProfile(
            name="k", base_ms=100.0, serial_fraction=serial, freq_exponent=1.0
        )
        two = profile.runtime_ms(PlatformConfig(JETSON_TX2, 2, 2.2))
        four = profile.runtime_ms(PlatformConfig(JETSON_TX2, 4, 2.2))
        rows.append((serial, two, four, two / four))
    return rows


def test_ablation_amdahl(benchmark, print_header):
    rows = run_once(benchmark, _sweep)
    print_header("Ablation: Amdahl serial fraction vs core-scaling gain")
    print(
        format_table(
            ["serial fraction", "t @ 2 cores (ms)", "t @ 4 cores (ms)",
             "4-core speedup over 2"],
            rows,
        )
    )
    speedups = [r[3] for r in rows]
    # Monotone: more serial work, less core benefit.
    assert speedups == sorted(speedups, reverse=True)
    assert speedups[0] == pytest.approx(2.0, rel=1e-6)  # fully parallel
    assert speedups[-1] == pytest.approx(1.0, rel=1e-6)  # fully serial


def test_ablation_frequency_exponent(benchmark, print_header):
    def sweep():
        rows = []
        for alpha in (0.5, 1.0, 1.45):
            profile = KernelProfile(
                name="k", base_ms=100.0, serial_fraction=0.0,
                freq_exponent=alpha,
            )
            slow = profile.runtime_ms(PlatformConfig(JETSON_TX2, 4, 0.8))
            fast = profile.runtime_ms(PlatformConfig(JETSON_TX2, 4, 2.2))
            rows.append((alpha, slow, fast, slow / fast))
        return rows

    rows = run_once(benchmark, sweep)
    print_header("Ablation: frequency exponent vs clock-scaling gain")
    print(
        format_table(
            ["freq exponent", "t @ 0.8 GHz (ms)", "t @ 2.2 GHz (ms)",
             "speedup"],
            rows,
        )
    )
    ratio = 2.2 / 0.8
    for alpha, _slow, _fast, speedup in rows:
        assert speedup == pytest.approx(ratio**alpha, rel=1e-6)
