"""Fig. 12 — 3D Mapping heatmap.

The paper reports up to 86% mission-time and 83% energy reduction with
compute scaling: frontier exploration (2.6 s/invocation) dominates hover
time and OctoMap generation bounds max velocity, and the node concurrency
rewards core scaling.  This is the workload with the steepest compute
sensitivity — our closed loop reproduces multi-X corner ratios.
"""

from conftest import run_once
from heatmap_common import print_paper_style, run_heatmap


def test_fig12_mapping_heatmap(benchmark, print_header):
    result = run_once(benchmark, run_heatmap, "mapping")

    print_header("Fig. 12: 3D Mapping")
    print_paper_style(result, "Fig. 12")

    fast = result.cell(4, 2.2)
    slow = result.cell(2, 0.8)
    assert fast.mission_time_s < slow.mission_time_s
    assert fast.energy_kj < slow.energy_kj
    assert fast.velocity_ms > slow.velocity_ms
    # Steep sensitivity (paper: ~7x time, ~6x energy corner ratios).
    assert result.corner_ratio("mission_time_s") > 2.0
    assert result.corner_ratio("energy_kj") > 2.0
    # Both corners actually complete the coverage goal.
    assert fast.success_rate == 1.0
    assert slow.success_rate == 1.0
    # Coverage achieved is comparable — the *time* differs, not the map.
    assert abs(fast.extra["coverage"] - slow.extra["coverage"]) < 0.15
