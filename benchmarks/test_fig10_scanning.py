"""Fig. 10 — Scanning heatmap: compute scaling has a *trivial* effect.

The paper: "We observe trivial differences for velocity, endurance and
energy across all three operating points ... because planning is done
once at the beginning of the mission and its overhead is amortized."
(Velocity 7.5 m/s and energy ~35 kJ in every cell of Fig. 10.)
"""

from conftest import run_once
from heatmap_common import print_paper_style, run_heatmap


def test_fig10_scanning_heatmap(benchmark, print_header):
    result = run_once(benchmark, run_heatmap, "scanning")

    print_header("Fig. 10: Scanning")
    print_paper_style(result, "Fig. 10")

    times = [c.mission_time_s for c in result.cells]
    energies = [c.energy_kj for c in result.cells]
    velocities = [c.velocity_ms for c in result.cells]
    assert all(c.success_rate == 1.0 for c in result.cells)
    # Trivial spread: <5% variation across the whole grid.
    assert max(times) / min(times) < 1.05
    assert max(energies) / min(energies) < 1.05
    assert max(velocities) / min(velocities) < 1.05
    # Planning overhead is amortized: well under 1% of the mission.
    for cell in result.cells:
        planning = cell.extra.get("planning_time_s", 0.0)
        assert planning / cell.mission_time_s < 0.01
