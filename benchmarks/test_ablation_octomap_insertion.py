"""Ablation — OctoMap ray carving vs endpoint-only insertion.

DESIGN.md calls out the insertion mode as a design choice: endpoint-only
updates are much cheaper but never observe free space, which breaks the
coverage metric (and frontier exploration) even though obstacle surfaces
look identical.  Both modes are benchmarked on the same scans.
"""

import pytest

from repro.perception import OctoMap, depth_to_point_cloud
from repro.sensors import CameraIntrinsics, RgbdCamera
from repro.world import forest_world, vec


@pytest.fixture(scope="module")
def scans():
    world = forest_world(size=60.0, n_trees=25, seed=7)
    camera = RgbdCamera(intrinsics=CameraIntrinsics(width=64, height=48))
    clouds = [
        depth_to_point_cloud(
            camera.capture_depth(world, vec(-20.0 + 6 * i, 0.0, 3.0),
                                 yaw=0.5 * i)
        )
        for i in range(5)
    ]
    return world, clouds


@pytest.mark.parametrize("mode", ["ray_carving", "endpoint_only"])
def test_ablation_insertion_mode(benchmark, scans, mode, print_header):
    world, clouds = scans
    carve = 60 if mode == "ray_carving" else 0

    def insert():
        om = OctoMap(resolution=0.5, bounds=world.bounds)
        for cloud in clouds:
            om.insert_scan(cloud, carve_rays=carve)
        return om

    om = benchmark(insert)
    occupied = sum(1 for _ in om.occupied_keys())
    free = sum(1 for _ in om.free_keys())
    print_header(f"OctoMap insertion ablation [{mode}]")
    print(f"occupied voxels: {occupied}, free voxels: {free}")
    assert occupied > 0
    if mode == "ray_carving":
        # Free space is actually observed: coverage is meaningful.
        assert free > occupied
    else:
        # Endpoint-only never observes free space.
        assert free == 0
