"""Ablation — scenario difficulty as a MAVBench environment knob.

MAVBench programs its environments (static obstacle density, dynamic
obstacle count/speed) and reports how mission metrics respond; this
ablation does the same through the scenario subsystem: each workload
flies its canonical scenario family at increasing difficulty, and the
mission-time / energy / success trajectory lands in
``BENCH_scenarios.json`` (CI runs this file with
``BENCH_JSON=BENCH_scenarios.json`` and uploads it alongside
``BENCH_octomap.json`` and ``BENCH_planners.json``).

The instantiation benchmark also carries the synthesis-speed gate: a
5-family x 5-difficulty sweep must build through the batched placement
path in well under a second per world, and re-instantiating the same
sweep must be pure content-hash cache hits.
"""

import time

import pytest
from conftest import run_once

from repro import run_workload
from repro.analysis import format_table
from repro.scenarios import (
    ScenarioSpec,
    build_scenario_world,
    cache_stats,
    clear_scenario_cache,
    instantiate_scenario,
    measure_scenario,
)

SWEEP_FAMILIES = ["farm", "urban", "forest", "indoor", "disaster"]
SWEEP_DIFFICULTIES = [0.0, 0.25, 0.5, 0.75, 1.0]

#: Mission ablation: canonical family per workload, small-world knobs so
#: the three-difficulty series stays CI-sized.
MISSIONS = {
    "scanning": {
        "family": "farm",
        "knobs": {},
        "workload_kwargs": {"area_width": 60.0, "area_length": 40.0},
    },
    "package_delivery": {
        "family": "urban",
        "knobs": {
            "blocks": 3,
            "block_size": 18.0,
            "street_width": 12.0,
            "max_people": 4,
        },
        "workload_kwargs": {},
    },
}
MISSION_DIFFICULTIES = [0.15, 0.5, 0.85]


def test_ablation_scenario_instantiation_sweep(benchmark, print_header):
    """Synthesis-speed gate: 25 worlds batched-built fast, then cached."""
    clear_scenario_cache()
    specs = [
        ScenarioSpec(family, d, seed=1)
        for family in SWEEP_FAMILIES
        for d in SWEEP_DIFFICULTIES
    ]

    def build_all():
        return [instantiate_scenario(spec) for spec in specs]

    t0 = time.perf_counter()
    worlds = run_once(benchmark, build_all)
    cold_s = time.perf_counter() - t0
    stats = cache_stats()
    assert stats["misses"] == len(specs)

    t0 = time.perf_counter()
    build_all()
    warm_s = time.perf_counter() - t0
    stats = cache_stats()
    assert stats["hits"] == len(specs), stats

    # Batched placement keeps the whole 25-world sweep well under the
    # budget a single mission tick would tolerate.
    assert cold_s < 5.0, f"scenario sweep too slow: {cold_s:.2f}s"

    print_header("Scenario instantiation sweep (5 families x 5 difficulties)")
    measured = [measure_scenario(world) for world in worlds]
    rows = [
        (
            spec.label(),
            len(world.obstacles),
            f"{metrics.occupied_fraction:.4f}",
            f"{metrics.dynamic_congestion:.3f}",
            f"{metrics.congestion_score:.4f}",
        )
        for spec, world, metrics in zip(specs, worlds, measured)
    ]
    print(
        format_table(
            ["scenario", "obstacles", "occupied", "dynamic", "score"], rows
        )
    )
    print(f"cold: {cold_s * 1000:.0f} ms   warm (cached): {warm_s * 1000:.0f} ms")

    # The monotone-difficulty contract, measured on the same worlds the
    # sweep built (requested vs realized difficulty).
    for family in SWEEP_FAMILIES:
        scores = [
            m.congestion_score
            for s, m in zip(specs, measured)
            if s.family == family
        ]
        assert all(a <= b + 1e-12 for a, b in zip(scores, scores[1:])), (
            family,
            scores,
        )


@pytest.mark.parametrize("difficulty", MISSION_DIFFICULTIES)
@pytest.mark.parametrize("workload", sorted(MISSIONS))
def test_ablation_scenario_mission(benchmark, print_header, workload, difficulty):
    """One closed-loop mission per (workload, difficulty) cell: the
    congestion ablation behind BENCH_scenarios.json."""
    config = MISSIONS[workload]
    scenario = {
        "family": config["family"],
        "difficulty": difficulty,
        "knobs": dict(config["knobs"]),
    }
    world = build_scenario_world(ScenarioSpec.coerce(scenario).resolved(1))
    realized = measure_scenario(world)

    result = run_once(
        benchmark,
        run_workload,
        workload,
        seed=1,
        workload_kwargs={"scenario": scenario, **config["workload_kwargs"]},
        max_mission_time_s=600.0,
    )

    print_header(
        f"{workload} @ {config['family']}:{difficulty:g} "
        f"(realized congestion {realized.congestion_score:.4f})"
    )
    report = result.report
    print(
        format_table(
            ["metric", "value"],
            [
                ("mission time (s)", f"{report.mission_time_s:.1f}"),
                ("total energy (kJ)", f"{report.total_energy_j / 1000.0:.1f}"),
                ("success", str(report.success)),
                ("replans", f"{report.extra.get('replans', 0.0):g}"),
            ],
        )
    )
    # The easy end of every family must stay flyable; harder cells are
    # allowed to fail (that *is* the ablation) but must still terminate.
    if difficulty <= 0.2:
        assert result.success
    assert report.mission_time_s > 0
