"""Fig. 18 — OctoMap processing time vs resolution, *measured*.

"A 6.5X reduction in resolution results in a 4.5X improvement in
processing time."  This benchmark times our actual octree inserting the
same depth scans at each resolution (this is a real data-structure
measurement, wall-clock via pytest-benchmark), then checks the curve
shape: monotonically cheaper with coarser voxels, with a multi-X ratio
between 0.15 m and 1.0 m.
"""

import pytest

from repro.perception import OctoMap, depth_to_point_cloud
from repro.sensors import CameraIntrinsics, RgbdCamera
from repro.world import urban_world, vec

RESOLUTIONS = [0.15, 0.2, 0.4, 0.6, 0.8, 1.0]

_measured = {}


@pytest.fixture(scope="module")
def scans():
    world = urban_world(seed=5)
    camera = RgbdCamera(intrinsics=CameraIntrinsics(width=64, height=48))
    return world, [
        depth_to_point_cloud(
            camera.capture_depth(world, vec(-45.0 + 8 * i, -45.0, 3.0),
                                 yaw=0.4 * i)
        )
        for i in range(4)
    ]


@pytest.mark.parametrize("resolution", RESOLUTIONS)
def test_fig18_insertion_time(benchmark, scans, resolution):
    world, clouds = scans

    def insert():
        om = OctoMap(resolution=resolution, bounds=world.bounds)
        for cloud in clouds:
            om.insert_scan(cloud, carve_rays=60)
        return om

    om = benchmark(insert)
    _measured[resolution] = benchmark.stats.stats.mean
    assert len(om) > 0


def test_fig18_batched_vs_scalar_speedup(scans, print_header):
    """The PR-1 tentpole claim, measured in place: batched array-kernel
    insertion must be >=10x faster than the seed's scalar per-voxel walk
    at the finest (most expensive) paper resolution."""
    import time

    world, clouds = scans
    resolution = RESOLUTIONS[0]

    def timed(method_name: str) -> float:
        best = float("inf")
        for _ in range(3):
            om = OctoMap(resolution=resolution, bounds=world.bounds)
            start = time.perf_counter()
            for cloud in clouds:
                getattr(om, method_name)(cloud, carve_rays=60)
            best = min(best, time.perf_counter() - start)
        return best

    batched_s = timed("insert_scan")
    scalar_s = timed("insert_scan_scalar")
    ratio = scalar_s / batched_s
    print_header("Fig. 18 addendum: batched vs scalar insertion")
    print(f"  scalar : {1000 * scalar_s:8.2f} ms/4-scans @ {resolution} m")
    print(f"  batched: {1000 * batched_s:8.2f} ms/4-scans @ {resolution} m")
    print(f"  speedup: {ratio:.1f}x (target: >=10x on quiet hardware)")
    # Hard gate set below the measured ~10-13x so shared-CI-runner noise
    # can't flake the per-push bench job; a real regression of the batch
    # kernels (back toward 1x) still fails loudly.
    assert ratio >= 5.0, f"batched speedup regressed: {ratio:.1f}x < 5x"


def test_fig18_curve_shape(benchmark, print_header):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if len(_measured) < len(RESOLUTIONS):
        pytest.skip("insertion timings not collected in this run")
    print_header("Fig. 18: measured OctoMap insertion time vs resolution")
    for res in RESOLUTIONS:
        print(f"  {res:4.2f} m : {1000 * _measured[res]:8.2f} ms/4-scans")
    ratio = _measured[0.15] / _measured[1.0]
    print(f"\n0.15 m / 1.0 m processing-time ratio: {ratio:.1f}x "
          f"(paper: ~4.5x)")
    # Coarser is cheaper, by a multi-X factor end to end.
    assert _measured[1.0] < _measured[0.15]
    assert ratio > 2.5
