"""Fig. 19 — static vs dynamic OctoMap resolution (the energy case study).

"Switching between OctoMap resolutions dynamically leads to successfully
finishing the mission compared to 0.80 m.  It also leads to battery life
improvement compared to 0.15 m."  (Up to 1.8X battery improvement.)

Protocol: fly Package Delivery through the mixed outdoor/indoor campus —
goal inside the far room — under three policies: static 0.15 m, static
0.80 m, and the density-based dynamic switcher.
"""

import numpy as np
import pytest
from conftest import run_once

from repro.analysis import format_table
from repro.core.api import make_simulation
from repro.core.workloads import PackageDeliveryWorkload
from repro.core.workloads.resolution_policy import (
    COARSE_RESOLUTION,
    FINE_RESOLUTION,
    density_policy,
    static_policy,
)
from repro.world import campus_world


def _fly(policy, initial_resolution, seed=3):
    workload = PackageDeliveryWorkload(
        seed=seed,
        world=campus_world(seed=3),
        goal=np.array([19.5, -4.0, 2.0]),
        altitude=2.0,
        cruise_speed=6.0,
        octomap_resolution=initial_resolution,
        resolution_policy=policy,
    )
    make_simulation(workload, cores=4, frequency_ghz=2.2, seed=seed)
    return workload.run()


@pytest.fixture(scope="module")
def outcomes():
    return {
        "static 0.15 m": _fly(static_policy(FINE_RESOLUTION), FINE_RESOLUTION),
        "static 0.80 m": _fly(
            static_policy(COARSE_RESOLUTION), COARSE_RESOLUTION
        ),
        "dynamic": _fly(density_policy(), COARSE_RESOLUTION),
    }


def test_fig19_dynamic_resolution(benchmark, print_header, outcomes):
    results = run_once(benchmark, lambda: outcomes)

    print_header("Fig. 19: static vs dynamic OctoMap resolution")
    print(
        format_table(
            ["policy", "outcome", "flight time (s)", "battery left (%)"],
            [
                (
                    label,
                    "success" if r.success else f"FAIL({r.failure_reason})",
                    r.mission_time_s,
                    r.battery_remaining_percent,
                )
                for label, r in results.items()
            ],
        )
    )

    fine = results["static 0.15 m"]
    coarse = results["static 0.80 m"]
    dynamic = results["dynamic"]

    # The coarse map cannot thread the doorways: mission fails.
    assert not coarse.success
    # Fine and dynamic both finish.
    assert fine.success
    assert dynamic.success
    # Dynamic must stay within noise of always-fine on battery (the paper
    # reports up to 1.8x improvement on its much longer missions; on our
    # short campus delivery the coarse outdoor phase saves little, and
    # the switch itself costs a re-scan, so parity is the honest bar).
    assert (
        dynamic.battery_remaining_percent
        >= fine.battery_remaining_percent - 2.5
    )
    spent_fine = 100.0 - fine.battery_remaining_percent
    spent_dynamic = 100.0 - dynamic.battery_remaining_percent
    improvement = spent_fine / max(spent_dynamic, 1e-9)
    print(f"\nbattery-consumption improvement dynamic vs 0.15 m: "
          f"{improvement:.2f}x (paper: up to 1.8x)")
