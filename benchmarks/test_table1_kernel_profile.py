"""Table I — kernel time profile per application (ms @ 4 cores, 2.2 GHz).

Regenerates the paper's kernel-by-application matrix from the calibrated
kernel runtime model and asserts the published cell values.
"""

import pytest
from conftest import run_once

from repro.analysis import format_table
from repro.compute import JETSON_TX2, KernelModel, PlatformConfig

FAST = PlatformConfig(JETSON_TX2, 4, 2.2)

#: (workload, kernel) -> paper value in ms (Table I).
PAPER_TABLE1 = {
    ("scanning", "lawnmower"): 89,
    ("scanning", "path_tracking"): 1,
    ("aerial_photography", "object_detection_yolo"): 307,
    ("aerial_photography", "tracking_buffered"): 80,
    ("aerial_photography", "tracking_realtime"): 18,
    ("aerial_photography", "path_tracking"): 1,
    ("package_delivery", "point_cloud"): 2,
    ("package_delivery", "octomap"): 630,
    ("package_delivery", "collision_check"): 1,
    ("package_delivery", "slam"): 55,
    ("package_delivery", "shortest_path"): 182,
    ("package_delivery", "path_tracking"): 1,
    ("mapping", "point_cloud"): 2,
    ("mapping", "octomap"): 482,
    ("mapping", "collision_check"): 1,
    ("mapping", "slam"): 46,
    ("mapping", "frontier_exploration"): 2647,
    ("mapping", "path_tracking"): 1,
    ("search_rescue", "point_cloud"): 2,
    ("search_rescue", "octomap"): 427,
    ("search_rescue", "collision_check"): 1,
    ("search_rescue", "object_detection_yolo"): 271,
    ("search_rescue", "slam"): 45,
    ("search_rescue", "frontier_exploration"): 2693,
    ("search_rescue", "path_tracking"): 1,
}


def _model_table():
    rows = []
    for (workload, kernel), paper_ms in sorted(PAPER_TABLE1.items()):
        model = KernelModel(workload=workload)
        ours_ms = model.runtime_s(kernel, FAST) * 1000.0
        rows.append((workload, kernel, paper_ms, ours_ms))
    return rows


def test_table1_kernel_profile(benchmark, print_header):
    rows = run_once(benchmark, _model_table)

    print_header("Table I: kernel time profile (ms @ 4 cores / 2.2 GHz)")
    print(
        format_table(
            ["workload", "kernel", "paper (ms)", "model (ms)"], rows
        )
    )
    for workload, kernel, paper_ms, ours_ms in rows:
        assert ours_ms == pytest.approx(paper_ms, rel=0.15, abs=0.6), (
            f"{workload}/{kernel}: paper {paper_ms} ms vs model {ours_ms:.1f}"
        )


def test_table1_gps_and_pid_negligible(benchmark, print_header):
    """Table I lists GPS localization and PID as ~0 ms."""

    def negligible():
        model = KernelModel(workload="aerial_photography")
        return (
            model.runtime_s("localization_gps", FAST) * 1000.0,
            model.runtime_s("pid", FAST) * 1000.0,
        )

    gps_ms, pid_ms = run_once(benchmark, negligible)
    print_header("Table I: near-zero kernels")
    print(f"GPS localization: {gps_ms:.3f} ms, PID: {pid_ms:.3f} ms")
    assert gps_ms < 1.0
    assert pid_ms < 1.0
