"""Ablation — plug-and-play motion planners (RRT vs RRT* vs PRM+A*).

MAVBench's "plug and play" kernel architecture lets the same workload
swap planners.  This ablation runs Package Delivery once per planner and
also benchmarks the raw planners on a fixed query, checking that all
produce collision-free paths and that RRT* paths are not longer than
plain RRT's.

It also carries the planner-kernel regression gate (the Fig.-18-style
batched-vs-scalar check for the planning stack): the batched planners
must stay >=5x faster than their ``*_scalar`` reference twins *and*
produce identical results.  CI runs this file with
``BENCH_JSON=BENCH_planners.json`` so the planner perf trajectory is an
artifact alongside ``BENCH_octomap.json``.
"""

import numpy as np
import pytest
from conftest import run_once

from repro import run_workload
from repro.analysis import format_table
from repro.perception import OctoMap
from repro.planning import CollisionChecker, PrmPlanner, RrtPlanner, RrtStarPlanner
from repro.world import AABB, vec

PLANNERS = ["rrt", "rrt_star", "prm"]


def _benchmark_world():
    om = OctoMap(resolution=0.5)
    for y in np.arange(0.25, 20, 0.5):
        for z in np.arange(0.25, 8, 0.5):
            if not 8.0 <= y <= 10.5:
                om.mark_occupied((10.25, y, z))
    checker = CollisionChecker(om, drone_radius=0.325)
    bounds = AABB(vec(0, 0, 0), vec(20, 20, 8))
    return checker, bounds


def _fine_benchmark_world(resolution: float = 0.15):
    """The same wall-with-gap world voxelized at the finest paper
    resolution — where per-sample Python costs dominate the scalar stack
    (the regime the batched kernels exist for)."""
    om = OctoMap(resolution=resolution)
    for y in np.arange(resolution / 2, 20, resolution):
        for z in np.arange(resolution / 2, 8, resolution):
            if not 8.0 <= y <= 10.5:
                om.mark_occupied((10.25 - resolution / 3, y, z))
    checker = CollisionChecker(om, drone_radius=0.325)
    bounds = AABB(vec(0, 0, 0), vec(20, 20, 8))
    return checker, bounds


@pytest.mark.parametrize("name", PLANNERS)
def test_ablation_raw_planner(benchmark, name):
    checker, bounds = _benchmark_world()

    def plan():
        if name == "rrt":
            planner = RrtPlanner(checker, bounds, seed=11, max_iterations=4000)
        elif name == "rrt_star":
            planner = RrtStarPlanner(
                checker, bounds, seed=11, max_iterations=2500
            )
        else:
            planner = PrmPlanner(checker, bounds, n_samples=250, seed=11)
        return planner.plan(vec(2, 9, 3), vec(18, 9, 3))

    result = benchmark(plan)
    assert result.success
    assert checker.path_free(result.waypoints)


def test_ablation_batched_vs_scalar_planning(print_header):
    """The planner-kernel regression gate: batched RRT planning and PRM
    roadmap construction must be >=5x faster than the scalar reference
    stack on the fine-resolution query — and return identical results
    (the differential check rides along, so a speedup bought by changed
    behaviour fails here too)."""
    import time

    checker, bounds = _fine_benchmark_world()
    start, goal = vec(2, 9, 3), vec(18, 9, 3)

    def timed(fn, repeats: int) -> float:
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
        return best

    rrt_result = {}

    def rrt_batched():
        planner = RrtPlanner(checker, bounds, seed=11, max_iterations=4000)
        rrt_result["batched"] = planner.plan(start, goal)

    def rrt_scalar():
        planner = RrtPlanner(checker, bounds, seed=11, max_iterations=4000)
        rrt_result["scalar"] = planner.plan_scalar(start, goal)

    prm_result = {}

    def prm_batched():
        planner = PrmPlanner(checker, bounds, n_samples=250, seed=11)
        planner.build()
        prm_result["batched"] = planner

    def prm_scalar():
        planner = PrmPlanner(checker, bounds, n_samples=250, seed=11)
        planner.build_scalar()
        prm_result["scalar"] = planner

    rrt_b = timed(rrt_batched, 3)
    rrt_s = timed(rrt_scalar, 1)
    prm_b = timed(prm_batched, 3)
    prm_s = timed(prm_scalar, 1)

    # Differential: the speedup must not come from different answers.
    a, b = rrt_result["batched"], rrt_result["scalar"]
    assert a.success == b.success
    assert len(a.waypoints) == len(b.waypoints)
    assert all(np.array_equal(p, q) for p, q in zip(a.waypoints, b.waypoints))
    pa, pb = prm_result["batched"], prm_result["scalar"]
    assert pa.num_vertices == pb.num_vertices
    assert pa._edges == pb._edges

    ratio = (rrt_s + prm_s) / (rrt_b + prm_b)
    print_header("Planner ablation addendum: batched vs scalar planning stack")
    print(f"  rrt plan : scalar {1000 * rrt_s:8.1f} ms  batched "
          f"{1000 * rrt_b:8.1f} ms  ({rrt_s / rrt_b:.1f}x)")
    print(f"  prm build: scalar {1000 * prm_s:8.1f} ms  batched "
          f"{1000 * prm_b:8.1f} ms  ({prm_s / prm_b:.1f}x)")
    print(f"  combined speedup: {ratio:.1f}x (gate: >=5x)")
    # Gate set below the measured ~7-8x so shared-CI-runner noise can't
    # flake the job; a real regression toward 1x still fails loudly.
    assert ratio >= 5.0, f"batched planning speedup regressed: {ratio:.1f}x < 5x"


def test_ablation_planner_missions(benchmark, print_header):
    def fly_all():
        rows = []
        for name in PLANNERS:
            result = run_workload(
                "package_delivery",
                cores=4,
                frequency_ghz=2.2,
                seed=1,
                workload_kwargs={"planner_name": name},
            )
            r = result.report
            rows.append(
                (name, "ok" if r.success else "fail", r.mission_time_s,
                 r.total_energy_j / 1000, r.extra.get("replans", 0))
            )
        return rows

    rows = run_once(benchmark, fly_all)
    print_header("Ablation: package delivery across planners")
    print(
        format_table(
            ["planner", "outcome", "mission (s)", "energy (kJ)", "replans"],
            rows,
        )
    )
    outcomes = [r[1] for r in rows]
    assert outcomes.count("ok") >= 2, "at least two planners must deliver"
