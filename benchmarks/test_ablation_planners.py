"""Ablation — plug-and-play motion planners (RRT vs RRT* vs PRM+A*).

MAVBench's "plug and play" kernel architecture lets the same workload
swap planners.  This ablation runs Package Delivery once per planner and
also benchmarks the raw planners on a fixed query, checking that all
produce collision-free paths and that RRT* paths are not longer than
plain RRT's.

It also carries the planner-kernel regression gate (the Fig.-18-style
batched-vs-scalar check for the planning stack): the batched planners
must stay >=5x faster than their ``*_scalar`` reference twins *and*
produce identical results.  CI runs this file with
``BENCH_JSON=BENCH_planners.json`` so the planner perf trajectory is an
artifact alongside ``BENCH_octomap.json``.
"""

import numpy as np
import pytest
from conftest import run_once

from repro import run_workload
from repro.analysis import format_table
from repro.perception import OctoMap
from repro.planning import CollisionChecker, PrmPlanner, RrtPlanner, RrtStarPlanner
from repro.world import AABB, vec

PLANNERS = ["rrt", "rrt_star", "prm"]


def _benchmark_world():
    om = OctoMap(resolution=0.5)
    for y in np.arange(0.25, 20, 0.5):
        for z in np.arange(0.25, 8, 0.5):
            if not 8.0 <= y <= 10.5:
                om.mark_occupied((10.25, y, z))
    checker = CollisionChecker(om, drone_radius=0.325)
    bounds = AABB(vec(0, 0, 0), vec(20, 20, 8))
    return checker, bounds


def _fine_benchmark_world(resolution: float = 0.15):
    """The same wall-with-gap world voxelized at the finest paper
    resolution — where per-sample Python costs dominate the scalar stack
    (the regime the batched kernels exist for)."""
    om = OctoMap(resolution=resolution)
    for y in np.arange(resolution / 2, 20, resolution):
        for z in np.arange(resolution / 2, 8, resolution):
            if not 8.0 <= y <= 10.5:
                om.mark_occupied((10.25 - resolution / 3, y, z))
    checker = CollisionChecker(om, drone_radius=0.325)
    bounds = AABB(vec(0, 0, 0), vec(20, 20, 8))
    return checker, bounds


@pytest.mark.parametrize("name", PLANNERS)
def test_ablation_raw_planner(benchmark, name):
    checker, bounds = _benchmark_world()

    def plan():
        if name == "rrt":
            planner = RrtPlanner(checker, bounds, seed=11, max_iterations=4000)
        elif name == "rrt_star":
            planner = RrtStarPlanner(
                checker, bounds, seed=11, max_iterations=2500
            )
        else:
            planner = PrmPlanner(checker, bounds, n_samples=250, seed=11)
        return planner.plan(vec(2, 9, 3), vec(18, 9, 3))

    result = benchmark(plan)
    assert result.success
    assert checker.path_free(result.waypoints)


def test_ablation_batched_vs_scalar_planning(print_header):
    """The planner-kernel regression gate: batched RRT planning and PRM
    roadmap construction must be >=5x faster than the scalar reference
    stack on the fine-resolution query — and return identical results
    (the differential check rides along, so a speedup bought by changed
    behaviour fails here too)."""
    import time

    checker, bounds = _fine_benchmark_world()
    start, goal = vec(2, 9, 3), vec(18, 9, 3)

    def timed(fn, repeats: int) -> float:
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
        return best

    rrt_result = {}

    def rrt_batched():
        planner = RrtPlanner(checker, bounds, seed=11, max_iterations=4000)
        rrt_result["batched"] = planner.plan(start, goal)

    def rrt_scalar():
        planner = RrtPlanner(checker, bounds, seed=11, max_iterations=4000)
        rrt_result["scalar"] = planner.plan_scalar(start, goal)

    prm_result = {}

    def prm_batched():
        planner = PrmPlanner(checker, bounds, n_samples=250, seed=11)
        planner.build()
        prm_result["batched"] = planner

    def prm_scalar():
        planner = PrmPlanner(checker, bounds, n_samples=250, seed=11)
        planner.build_scalar()
        prm_result["scalar"] = planner

    rrt_b = timed(rrt_batched, 3)
    rrt_s = timed(rrt_scalar, 1)
    prm_b = timed(prm_batched, 3)
    prm_s = timed(prm_scalar, 1)

    # Differential: the speedup must not come from different answers.
    a, b = rrt_result["batched"], rrt_result["scalar"]
    assert a.success == b.success
    assert len(a.waypoints) == len(b.waypoints)
    assert all(np.array_equal(p, q) for p, q in zip(a.waypoints, b.waypoints))
    pa, pb = prm_result["batched"], prm_result["scalar"]
    assert pa.num_vertices == pb.num_vertices
    assert pa._edges == pb._edges

    ratio = (rrt_s + prm_s) / (rrt_b + prm_b)
    print_header("Planner ablation addendum: batched vs scalar planning stack")
    print(f"  rrt plan : scalar {1000 * rrt_s:8.1f} ms  batched "
          f"{1000 * rrt_b:8.1f} ms  ({rrt_s / rrt_b:.1f}x)")
    print(f"  prm build: scalar {1000 * prm_s:8.1f} ms  batched "
          f"{1000 * prm_b:8.1f} ms  ({prm_s / prm_b:.1f}x)")
    print(f"  combined speedup: {ratio:.1f}x (gate: >=5x)")
    # Gate set below the measured ~7-8x so shared-CI-runner noise can't
    # flake the job; a real regression toward 1x still fails loudly.
    assert ratio >= 5.0, f"batched planning speedup regressed: {ratio:.1f}x < 5x"


def test_ablation_informed_indexed_rrt_star(print_header):
    """The PR-6 algorithmic gate: RRT* with its fast defaults (grid
    index + informed sampling + rewire cost propagation + near-optimal
    early stop) must be >=5x faster *per plan* than legacy mode
    (``informed=False, convergence_rtol=None`` — the PR-3 behaviour) on
    the same machine, without giving up solution quality.

    Legacy mode on this query measures within noise of the old ~0.95 s
    per-plan figure that ``BENCH_planners.json`` carried before this
    change, so the ratio is a machine-independent proxy for the
    headline speedup (measured ~8.5x locally)."""
    import time

    checker, bounds = _benchmark_world()
    start, goal = vec(2, 9, 3), vec(18, 9, 3)

    def timed(fn, repeats):
        best, out = float("inf"), None
        for _ in range(repeats):
            t0 = time.perf_counter()
            out = fn()
            best = min(best, time.perf_counter() - t0)
        return best, out

    def fast():
        planner = RrtStarPlanner(checker, bounds, seed=11, max_iterations=2500)
        return planner.plan(start, goal)

    def legacy():
        planner = RrtStarPlanner(
            checker, bounds, seed=11, max_iterations=2500,
            informed=False, convergence_rtol=None,
        )
        return planner.plan(start, goal)

    t_fast, r_fast = timed(fast, 5)
    t_legacy, r_legacy = timed(legacy, 2)
    ratio = t_legacy / t_fast
    print_header("Planner ablation addendum: informed+indexed RRT*")
    print(f"  legacy : {1000 * t_legacy:8.1f} ms  cost {r_legacy.cost:.4f}  "
          f"iters {r_legacy.iterations}")
    print(f"  fast   : {1000 * t_fast:8.1f} ms  cost {r_fast.cost:.4f}  "
          f"iters {r_fast.iterations}")
    print(f"  per-plan speedup: {ratio:.1f}x (gate: >=5x)")
    assert r_fast.success and r_legacy.success
    assert checker.path_free(r_fast.waypoints)
    # Informed sampling must not cost solution quality: the early-stopped
    # plan concedes at most convergence_rtol (1e-4) plus whatever the
    # 2500-iteration legacy run is itself still above optimal.
    assert r_fast.cost <= r_legacy.cost * (1.0 + 1e-3)
    # Gate set below the measured ~8.5x so shared-CI-runner noise can't
    # flake the job; a real regression toward 1x still fails loudly.
    assert ratio >= 5.0, f"informed+indexed speedup regressed: {ratio:.1f}x < 5x"


def test_ablation_planner_missions(benchmark, print_header):
    def fly_all():
        rows = []
        for name in PLANNERS:
            result = run_workload(
                "package_delivery",
                cores=4,
                frequency_ghz=2.2,
                seed=1,
                workload_kwargs={"planner_name": name},
            )
            r = result.report
            rows.append(
                (name, "ok" if r.success else "fail", r.mission_time_s,
                 r.total_energy_j / 1000, r.extra.get("replans", 0))
            )
        return rows

    rows = run_once(benchmark, fly_all)
    print_header("Ablation: package delivery across planners")
    print(
        format_table(
            ["planner", "outcome", "mission (s)", "energy (kJ)", "replans"],
            rows,
        )
    )
    outcomes = [r[1] for r in rows]
    assert outcomes.count("ok") >= 2, "at least two planners must deliver"
