"""Ablation — plug-and-play motion planners (RRT vs RRT* vs PRM+A*).

MAVBench's "plug and play" kernel architecture lets the same workload
swap planners.  This ablation runs Package Delivery once per planner and
also benchmarks the raw planners on a fixed query, checking that all
produce collision-free paths and that RRT* paths are not longer than
plain RRT's.
"""

import numpy as np
import pytest
from conftest import run_once

from repro import run_workload
from repro.analysis import format_table
from repro.perception import OctoMap
from repro.planning import CollisionChecker, PrmPlanner, RrtPlanner, RrtStarPlanner
from repro.world import AABB, vec

PLANNERS = ["rrt", "rrt_star", "prm"]


def _benchmark_world():
    om = OctoMap(resolution=0.5)
    for y in np.arange(0.25, 20, 0.5):
        for z in np.arange(0.25, 8, 0.5):
            if not 8.0 <= y <= 10.5:
                om.mark_occupied((10.25, y, z))
    checker = CollisionChecker(om, drone_radius=0.325)
    bounds = AABB(vec(0, 0, 0), vec(20, 20, 8))
    return checker, bounds


@pytest.mark.parametrize("name", PLANNERS)
def test_ablation_raw_planner(benchmark, name):
    checker, bounds = _benchmark_world()

    def plan():
        if name == "rrt":
            planner = RrtPlanner(checker, bounds, seed=11, max_iterations=4000)
        elif name == "rrt_star":
            planner = RrtStarPlanner(
                checker, bounds, seed=11, max_iterations=2500
            )
        else:
            planner = PrmPlanner(checker, bounds, n_samples=250, seed=11)
        return planner.plan(vec(2, 9, 3), vec(18, 9, 3))

    result = benchmark(plan)
    assert result.success
    assert checker.path_free(result.waypoints)


def test_ablation_planner_missions(benchmark, print_header):
    def fly_all():
        rows = []
        for name in PLANNERS:
            result = run_workload(
                "package_delivery",
                cores=4,
                frequency_ghz=2.2,
                seed=1,
                workload_kwargs={"planner_name": name},
            )
            r = result.report
            rows.append(
                (name, "ok" if r.success else "fail", r.mission_time_s,
                 r.total_energy_j / 1000, r.extra.get("replans", 0))
            )
        return rows

    rows = run_once(benchmark, fly_all)
    print_header("Ablation: package delivery across planners")
    print(
        format_table(
            ["planner", "outcome", "mission (s)", "energy (kJ)", "replans"],
            rows,
        )
    )
    outcomes = [r[1] for r in rows]
    assert outcomes.count("ok") >= 2, "at least two planners must deliver"
