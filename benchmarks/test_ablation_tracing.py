"""Ablation — the disabled tracer's overhead budget.

The observability layer leaves its instrumentation permanently compiled
into the hot paths (five spans per simulator tick, a span per planner
call, histogram observations per collision query).  That is only
acceptable if the *disabled* fast path — one global load, one ``is
None`` test, a shared no-op context manager — is effectively free.

This bench is the CI gate on that promise: it measures the per-call cost
of a disabled ``trace.span`` block, counts how many instrumentation
events one real mission actually emits (by flying it once under
``trace.capture``), and asserts that the implied total overhead stays
under :data:`OVERHEAD_BUDGET` of the untraced mission's wall time.
Charging *every* event at the span price over-estimates (counter/
histogram no-ops are cheaper), so the gate is conservative.

The per-call measurement is a tight loop (median of several reps), not a
mission A/B diff — two mission timings differ by scheduler noise alone,
which would make a 2% gate flaky; the loop x count bound is stable.
"""

import threading
import time

from conftest import run_once

from repro.core.api import run_workload
from repro.fleet import FleetMission, run_workloads_fleet
from repro.observability import trace

#: Maximum tolerated disabled-instrumentation share of mission wall time.
OVERHEAD_BUDGET = 0.02

#: Iterations of the no-op span loop (enough to swamp timer resolution).
LOOP_N = 200_000


def _fly_short_mission():
    """The golden short scanning mission (same shape tests pin)."""
    return run_workload(
        "scanning",
        cores=4,
        frequency_ghz=2.2,
        seed=1,
        workload_kwargs={"area_width": 40.0, "area_length": 24.0},
    )


def _noop_span_loop(n: int = LOOP_N) -> None:
    for _ in range(n):
        with trace.span("bench.noop", "bench"):
            pass


def _metric_event_count(tracer) -> int:
    """Total counter increments + histogram observations in one trace."""
    snap = tracer.metrics.snapshot()
    events = sum(snap["counters"].values())
    events += sum(h["count"] for h in snap["histograms"].values())
    return events


def test_disabled_tracer_overhead_budget(benchmark, print_header):
    assert not trace.enabled(), "another test leaked an installed tracer"

    # Per-call cost of the disabled fast path: median of several reps.
    reps = []
    for _ in range(5):
        t0 = time.perf_counter()
        _noop_span_loop()
        reps.append(time.perf_counter() - t0)
    per_call_s = sorted(reps)[len(reps) // 2] / LOOP_N

    # How many instrumentation events does a real mission emit?  Fly it
    # traced once to count, untraced once to time.
    with trace.capture() as tracer:
        _fly_short_mission()
    events = len(tracer.spans) + _metric_event_count(tracer)

    t0 = time.perf_counter()
    result = run_once(benchmark, _fly_short_mission)
    untraced_s = time.perf_counter() - t0
    assert result.success

    implied_overhead_s = per_call_s * events
    fraction = implied_overhead_s / untraced_s
    print_header("Tracing ablation: disabled-path overhead")
    print(
        f"noop span: {per_call_s * 1e9:.0f} ns/call  x  {events} events "
        f"= {implied_overhead_s * 1e3:.2f} ms implied "
        f"({100 * fraction:.3f}% of {untraced_s:.3f}s mission)"
    )
    assert fraction < OVERHEAD_BUDGET, (
        f"disabled tracer costs {100 * fraction:.2f}% of mission wall "
        f"(budget {100 * OVERHEAD_BUDGET:.0f}%) — the fast path regressed"
    )


def _fly_short_fleet(n: int = 3):
    """The same short scanning mission, n copies flown as one fleet.

    Same seed per member on purpose: every member survives the full
    mission, so the gate runs at width n for its whole life — the
    worst case for per-tick gate instrumentation.
    """
    missions = [
        FleetMission(
            workload="scanning",
            seed=1,
            cores=4,
            frequency_ghz=2.2,
            workload_kwargs={"area_width": 40.0, "area_length": 24.0},
        )
        for _ in range(n)
    ]
    labels = [f"m{i}:scanning" for i in range(n)]
    results, errors = run_workloads_fleet(missions, labels=labels)
    assert all(error is None for error in errors), errors
    return results


def _noop_span_cost_in_thread() -> float:
    """Per-call disabled-span cost measured from a *worker* thread.

    Fleet members run on spawned threads, where the disabled fast path
    additionally misses any main-thread-warmed state; gate the budget
    from their vantage point, not the main thread's.
    """
    out = {}

    def _measure() -> None:
        reps = []
        for _ in range(5):
            t0 = time.perf_counter()
            _noop_span_loop()
            reps.append(time.perf_counter() - t0)
        out["per_call_s"] = sorted(reps)[len(reps) // 2] / LOOP_N

    worker = threading.Thread(target=_measure, name="bench-noop")
    worker.start()
    worker.join()
    return out["per_call_s"]


def test_disabled_fleet_tracer_overhead_budget(benchmark, print_header):
    """The fleet path's disabled-instrumentation budget.

    Since fleets trace (per-mission streams, gate spans, wait/wake
    histograms), the tick gate carries its own disabled fast path: one
    ``get_tracer()`` load per park and per gate run.  Same conservative
    bound as the sequential gate: implied cost = (worker-thread no-op
    span price) x (events one traced fleet flight actually emits), and
    that must stay under OVERHEAD_BUDGET of the untraced fleet's wall.
    """
    assert not trace.enabled(), "another test leaked an installed tracer"

    per_call_s = _noop_span_cost_in_thread()

    with trace.capture() as tracer:
        _fly_short_fleet()
    events = len(tracer.spans) + _metric_event_count(tracer)
    assert tracer.open_depth == 0

    t0 = time.perf_counter()
    results = run_once(benchmark, _fly_short_fleet)
    untraced_s = time.perf_counter() - t0
    assert all(r.report.success for r in results)

    implied_overhead_s = per_call_s * events
    fraction = implied_overhead_s / untraced_s
    print_header("Tracing ablation: disabled-path overhead (fleet of 3)")
    print(
        f"noop span (worker thread): {per_call_s * 1e9:.0f} ns/call  x  "
        f"{events} events = {implied_overhead_s * 1e3:.2f} ms implied "
        f"({100 * fraction:.3f}% of {untraced_s:.3f}s fleet flight)"
    )
    assert fraction < OVERHEAD_BUDGET, (
        f"disabled fleet tracing costs {100 * fraction:.2f}% of fleet wall "
        f"(budget {100 * OVERHEAD_BUDGET:.0f}%) — the gate's fast path "
        "regressed"
    )


def test_disabled_helpers_are_noops(benchmark):
    """count/observe with no tracer must not allocate registries."""
    def _loop():
        for _ in range(10_000):
            trace.count("bench.counter")
            trace.observe("bench.hist", 1.0)

    run_once(benchmark, _loop)
    assert trace.get_tracer() is None
