"""Fig. 17 — OctoMap resolution vs the drone's perception of openings.

"When the resolution is lowered, the voxels size increases to the point
that the drone fails to recognize the openings as possible passageways to
plan through."  We scan the campus building entrance into maps at
0.15 / 0.5 / 0.8 m and check whether the doorway survives as free space
for a 0.65 m drone — on the real octree, not a model.
"""

import numpy as np
from conftest import run_once

from repro.analysis import format_table
from repro.perception import OctoMap, depth_to_point_cloud
from repro.planning import CollisionChecker
from repro.sensors import CameraIntrinsics, RgbdCamera
from repro.world import campus_world, vec


#: West face of the campus building: world west edge + outdoor length.
DOOR_X = -35.0 + 50.0


def _scan_entrance(resolution: float):
    world = campus_world(seed=3, door_width=1.4)
    camera = RgbdCamera(intrinsics=CameraIntrinsics(width=64, height=48))
    om = OctoMap(resolution=resolution, bounds=world.bounds)
    for x in (DOOR_X - 12.0, DOOR_X - 8.0, DOOR_X - 4.0):
        for y in (-6.0, -4.0, -2.0):
            cloud = depth_to_point_cloud(
                camera.capture_depth(world, vec(x, y, 2.0), yaw=0.0)
            )
            om.insert_scan(cloud, carve_rays=80)
    # The entrance door is centered on the first room (y = -4).
    checker = CollisionChecker(om, drone_radius=0.325)
    passable = checker.point_free(vec(DOOR_X, -4.0, 2.0))
    return om, passable


def test_fig17_resolution_vs_perception(benchmark, print_header):
    def study():
        rows = []
        for resolution in (0.15, 0.5, 0.8):
            om, passable = _scan_entrance(resolution)
            rows.append(
                (resolution, len(om), "open" if passable else "blocked")
            )
        return rows

    rows = run_once(benchmark, study)
    print_header("Fig. 17: doorway perception vs OctoMap resolution")
    print(
        format_table(
            ["resolution (m)", "map cells", "1.4 m doorway perceived"],
            rows,
        )
    )
    by_res = {r[0]: r[2] for r in rows}
    # Fine map keeps the door open; the coarsest map closes it.
    assert by_res[0.15] == "open"
    assert by_res[0.8] == "blocked"
    # Memory shrinks with coarser voxels.
    cells = [r[1] for r in rows]
    assert cells == sorted(cells, reverse=True)


def test_fig17_rebuild_inflates_obstacles(benchmark, print_header):
    """Rebuilding a fine map at coarse resolution inflates obstacles
    (Figs. 17b -> 17d on the same observations)."""

    def study():
        om_fine, _ = _scan_entrance(0.15)
        occupied_fine = om_fine.occupied_centers().shape[0] * 0.15**3
        om_coarse = om_fine.rebuilt_at_resolution(0.8)
        occupied_coarse = om_coarse.occupied_centers().shape[0] * 0.8**3
        return occupied_fine, occupied_coarse

    fine_vol, coarse_vol = run_once(benchmark, study)
    print_header("Fig. 17: occupied volume inflation under coarsening")
    print(f"occupied volume at 0.15 m: {fine_vol:8.1f} m^3")
    print(f"occupied volume at 0.80 m: {coarse_vol:8.1f} m^3")
    assert coarse_vol > fine_vol * 1.5
