"""Fig. 11 — Package Delivery heatmap.

The paper reports up to 84% mission-time and 82% energy reduction as
compute scales from (2 cores, 0.8 GHz) to the best operating points,
driven by the OctoMap-generation bottleneck (max-velocity effect) and the
motion-planning kernel (hover-time effect).  Our substrate reproduces the
ordering and the direction; the magnitude is smaller because our missions
fly a smaller city than the paper's Unreal map.
"""

from conftest import run_once
from heatmap_common import print_paper_style, run_heatmap


def test_fig11_package_delivery_heatmap(benchmark, print_header):
    result = run_once(benchmark, run_heatmap, "package_delivery")

    print_header("Fig. 11: Package Delivery")
    print_paper_style(result, "Fig. 11")

    fast = result.cell(4, 2.2)
    slow = result.cell(2, 0.8)
    # Direction: more compute -> shorter mission, less energy, faster.
    assert fast.mission_time_s < slow.mission_time_s
    assert fast.energy_kj < slow.energy_kj
    assert fast.velocity_ms > slow.velocity_ms
    # Meaningful effect size (paper: ~5x; we accept >=1.25x on our maps).
    assert result.corner_ratio("mission_time_s") > 1.25
    assert result.corner_ratio("energy_kj") > 1.2
    # Frequency scaling helps at fixed core count (the paper notes clear
    # frequency trends even where core scaling is noisy).
    for cores in (2, 4):
        assert (
            result.cell(cores, 2.2).mission_time_s
            < result.cell(cores, 0.8).mission_time_s
        )
    # Missions succeed at the grid corners.
    assert fast.success_rate == 1.0
    assert slow.success_rate == 1.0
