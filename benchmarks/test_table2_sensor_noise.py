"""Table II — depth-image noise vs package-delivery reliability.

"We inject Gaussian noise with a range of standard deviations (0 to
1.5 m) into the depth readings of the drone's RGBD camera. ... The more
the drone re-plans its paths, the longer it takes to reach its
destination, which increases it mission time by up to 90%. ... noise with
the standard deviation of 1.5 m results the drone to fail reaching its
delivery destination in 10% of its total runs."
"""

import numpy as np
import pytest
from conftest import run_once

from repro import run_workload
from repro.analysis import format_table

NOISE_LEVELS = [0.0, 0.5, 1.0, 1.5]
SEEDS = [1, 2, 3]


@pytest.fixture(scope="module")
def noise_study():
    rows = []
    for std in NOISE_LEVELS:
        times, replans, failures = [], [], 0
        for seed in SEEDS:
            result = run_workload(
                "package_delivery",
                cores=4,
                frequency_ghz=2.2,
                seed=seed,
                depth_noise_std=std,
            )
            report = result.report
            replans.append(report.extra.get("replans", 0.0))
            if report.success:
                times.append(report.mission_time_s)
            else:
                failures += 1
        rows.append(
            {
                "noise_std": std,
                "failure_rate": 100.0 * failures / len(SEEDS),
                "replans": float(np.mean(replans)),
                "mission_time": float(np.mean(times)) if times else float("nan"),
            }
        )
    return rows


def test_table2_sensor_noise(benchmark, print_header, noise_study):
    rows = run_once(benchmark, lambda: noise_study)

    print_header("Table II: depth-noise reliability study")
    print(
        format_table(
            ["noise std (m)", "failure rate (%)", "re-plans",
             "mission time (s)"],
            [
                (r["noise_std"], r["failure_rate"], r["replans"],
                 r["mission_time"])
                for r in rows
            ],
        )
    )

    clean = rows[0]
    noisiest = rows[-1]
    # Noise-free missions always deliver.
    assert clean["failure_rate"] == 0.0
    # Noise inflates obstacles -> more re-plans than the clean runs.
    assert noisiest["replans"] > clean["replans"]
    # Mission time grows with noise (paper: up to +90%) whenever the noisy
    # runs complete at all; heavy noise may fail missions outright.
    completed = [r for r in rows if np.isfinite(r["mission_time"])]
    assert completed[-1]["mission_time"] > clean["mission_time"] * 1.05 or (
        noisiest["failure_rate"] > 0.0
    )
