"""Fig. 16 — the performance case study: fully-on-edge vs sensor-cloud.

"A drone that can enjoy the cloud's extra compute power sees a 3X speed
up in planning time.  This improves the drone's average velocity due to
hover time reduction, and hence reduces the drone's overall mission time
by as much as 50%, effectively doubling its endurance."

The planning-stage kernel of 3D Mapping (frontier exploration) is routed
to the i7 + GTX 1080 over the 1 Gb/s "future 5G" link; the mission is
re-flown and compared against the TX2-only baseline.
"""

import pytest
from conftest import run_once

from repro.analysis import format_table
from repro.compute import (
    CloudOffloadModel,
    FIVE_G_LINK,
    KernelModel,
    KernelProfile,
    LTE_LINK,
)
from repro.core.api import make_simulation
from repro.core.workloads import MappingWorkload


def _fly_mapping(offload_model=None, seed=2):
    workload = MappingWorkload(seed=seed)
    sim = make_simulation(workload, cores=4, frequency_ghz=2.2, seed=seed)
    if offload_model is not None:
        offload_model.kernel_model = KernelModel(workload="mapping")
        effective_s = offload_model.effective_runtime_s("frontier_exploration")
        sim.kernel_model.set_override(
            "frontier_exploration",
            KernelProfile(
                name="frontier_exploration",
                base_ms=effective_s * 1000.0,
                serial_fraction=1.0,
                freq_exponent=0.0,
                jitter=0.1,
            ),
        )
    report = workload.run()
    return report


def test_fig16_planning_speedup(benchmark, print_header):
    def speedups():
        km = KernelModel(workload="mapping")
        m5g = CloudOffloadModel(link=FIVE_G_LINK, kernel_model=km)
        mlte = CloudOffloadModel(link=LTE_LINK, kernel_model=km)
        return {
            "5g": m5g.speedup("frontier_exploration"),
            "lte": mlte.speedup("frontier_exploration"),
        }

    result = run_once(benchmark, speedups)
    print_header("Fig. 16: planning kernel offload speedup")
    print(f"5G (1 Gb/s): {result['5g']:.1f}x   (paper: ~3x)")
    print(f"LTE        : {result['lte']:.1f}x")
    assert 2.0 <= result["5g"] <= 5.0
    assert result["lte"] < result["5g"]


def test_fig16_mission_comparison(benchmark, print_header):
    def both():
        edge = _fly_mapping(None)
        cloud = _fly_mapping(CloudOffloadModel(link=FIVE_G_LINK))
        return edge, cloud

    edge, cloud = run_once(benchmark, both)
    print_header("Fig. 16: 3D Mapping, edge vs sensor-cloud")
    print(
        format_table(
            ["config", "mission (s)", "hover (s)", "energy (kJ)"],
            [
                ("edge (TX2)", edge.mission_time_s, edge.hover_time_s,
                 edge.total_energy_j / 1000),
                ("sensor-cloud", cloud.mission_time_s, cloud.hover_time_s,
                 cloud.total_energy_j / 1000),
            ],
        )
    )
    reduction = 1.0 - cloud.mission_time_s / edge.mission_time_s
    print(f"mission time reduction: {100 * reduction:.0f}% (paper: up to 50%)")
    assert edge.success and cloud.success
    assert cloud.mission_time_s < edge.mission_time_s
    assert cloud.hover_time_s < edge.hover_time_s
    assert cloud.total_energy_j < edge.total_energy_j
    assert reduction > 0.1
