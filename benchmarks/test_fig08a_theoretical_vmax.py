"""Fig. 8a — theoretical maximum velocity vs processing time (Eq. 2).

The paper: "our simulated drone, in theory, is bounded by the max
velocity anywhere between 8.83 to 1.57 m/s given a pixel to response time
of the range 0 to 4 seconds."  Those endpoints pin a_max = 6 m/s^2 and
d = 6.5 m, which the curve below must reproduce exactly.
"""

import numpy as np
import pytest
from conftest import run_once

from repro.analysis import format_table
from repro.core.velocity import (
    max_velocity,
    max_velocity_curve,
    response_time_for_velocity,
)


def test_fig08a_curve(benchmark, print_header):
    times = np.linspace(0.0, 4.0, 9)
    curve = run_once(benchmark, max_velocity_curve, times)

    print_header("Fig. 8a: Eq.-2 max velocity vs processing time")
    print(format_table(["process time (s)", "v_max (m/s)"], curve))

    v0 = curve[0][1]
    v4 = curve[-1][1]
    print(f"endpoints: v(0) = {v0:.2f} m/s, v(4) = {v4:.2f} m/s "
          f"(paper: 8.83 / 1.57)")
    assert v0 == pytest.approx(8.83, abs=0.05)
    assert v4 == pytest.approx(1.57, abs=0.05)

    velocities = [v for _, v in curve]
    assert velocities == sorted(velocities, reverse=True)


def test_fig08a_inverse(benchmark, print_header):
    """Round-trip: Eq. 2 and its inverse agree across the curve."""

    def round_trip():
        errors = []
        for dt in np.linspace(0.0, 4.0, 17):
            v = max_velocity(float(dt))
            dt_back = response_time_for_velocity(v)
            errors.append(abs(dt_back - dt))
        return max(errors)

    worst = run_once(benchmark, round_trip)
    print_header("Fig. 8a: Eq.-2 inverse round-trip")
    print(f"max |dt - inverse(v(dt))| = {worst:.2e} s")
    assert worst < 1e-9
