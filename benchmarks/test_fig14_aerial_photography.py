"""Fig. 14 — Aerial Photography heatmap (error / mission time / energy).

Unlike the other workloads, *longer* missions are better here: "The drone
only flies while it can track the person, hence a longer mission time
means that the target has been tracked for a longer duration."  Compute
scaling improves tracking error (fresher boxes, tighter PID) and session
length; energy shows no clean trend (the paper observes the same).
"""

from conftest import run_once
from repro.analysis import format_heatmap
from heatmap_common import run_heatmap


def test_fig14_aerial_photography_heatmap(benchmark, print_header):
    result = run_once(
        benchmark, run_heatmap, "aerial_photography", seeds=(1, 2)
    )

    print_header("Fig. 14: Aerial Photography")
    print("\n--- Fig. 14 (a) tracking error (fraction of frame width) ---")
    print(format_heatmap(result, extra_key="error_norm", fmt="{:.3f}"))
    print("\n--- Fig. 14 (b) mission time (s): longer is better ---")
    print(format_heatmap(result, "mission_time_s", fmt="{:.1f}"))
    print("\n--- Fig. 14 (c) energy (kJ) ---")
    print(format_heatmap(result, "energy_kj", fmt="{:.1f}"))

    fast = result.cell(4, 2.2)
    slow = result.cell(2, 0.8)
    # Longer tracked session at the fast corner (paper: up to 267%).
    assert fast.mission_time_s > slow.mission_time_s
    assert fast.extra["tracked_time_s"] > slow.extra["tracked_time_s"]
    print(
        f"\nsession length fast/slow = "
        f"{fast.mission_time_s / max(slow.mission_time_s, 1e-9):.2f}x "
        f"(paper: up to 3.7x)"
    )
