"""Fig. 2 — endurance and size vs battery capacity for commercial MAVs.

Regenerates both scatter series (2a: endurance vs capacity; 2b: size vs
capacity) from the commercial-MAV dataset, and cross-checks the endurance
trend with our coulomb-counter battery model: at each vehicle's rated
hover power, the model's predicted endurance must correlate with the
manufacturer rating.
"""

import numpy as np
from conftest import run_once

from repro.analysis import (
    COMMERCIAL_MAVS,
    endurance_vs_capacity,
    format_table,
    size_vs_capacity,
)
from repro.energy import Battery


def test_fig02a_endurance_vs_capacity(benchmark, print_header):
    rows = run_once(benchmark, endurance_vs_capacity)

    print_header("Fig. 2a: endurance vs battery capacity")
    print(format_table(["MAV", "wing", "battery (mAh)", "endurance (h)"], rows))

    # Key claims: capacity correlates with endurance, and the fixed-wing
    # Disco FPV outlasts the rotor-wing Bebop 2 Power on similar capacity.
    by_name = {r[0]: r for r in rows}
    disco = by_name["Disco FPV"]
    bebop = by_name["Bebop 2 Power"]
    assert disco[3] > bebop[3]
    assert abs(disco[2] - bebop[2]) < 1500  # similar capacity

    caps = np.array([r[2] for r in rows if r[1] == "rotor"])
    ends = np.array([r[3] for r in rows if r[1] == "rotor"])
    corr = np.corrcoef(caps, ends)[0, 1]
    print(f"rotor-wing capacity/endurance correlation: {corr:.2f}")
    assert corr > 0.3


def test_fig02a_battery_model_cross_check(benchmark, print_header):
    def predict():
        out = []
        for mav in COMMERCIAL_MAVS:
            pack = Battery(capacity_mah=mav.battery_mah, cells=mav.battery_cells)
            predicted_min = pack.endurance_estimate_s(mav.hover_power_w) / 60.0
            out.append((mav.name, mav.endurance_min, predicted_min))
        return out

    rows = run_once(benchmark, predict)
    print_header("Fig. 2a cross-check: battery-model endurance")
    print(format_table(["MAV", "rated (min)", "model (min)"], rows))

    rated = np.array([r[1] for r in rows])
    model = np.array([r[2] for r in rows])
    corr = np.corrcoef(rated, model)[0, 1]
    print(f"rated/model correlation: {corr:.2f}")
    assert corr > 0.5


def test_fig02b_size_vs_capacity(benchmark, print_header):
    rows = run_once(benchmark, size_vs_capacity)
    print_header("Fig. 2b: size vs battery capacity")
    print(format_table(["MAV", "battery (mAh)", "size (mm)"], rows))

    # Racing drones break the trend (small + high-discharge packs), so the
    # paper's observation is a loose correlation across camera drones.
    camera_rows = [r for r in rows if "Racing" not in r[0] and "Disco" not in r[0]]
    caps = np.array([r[1] for r in camera_rows])
    sizes = np.array([r[2] for r in camera_rows])
    assert np.corrcoef(caps, sizes)[0, 1] > 0.4
