"""Fig. 1 — FAA UAV registration growth.

Regenerates the bar series of Fig. 1 from the transcribed FAA dataset and
checks the paper's headline claims: >200% growth over two years and a
4M-unit 2021 forecast.
"""

from conftest import run_once

from repro.analysis import (
    FAA_FORECAST_2021,
    FAA_REGISTRATIONS,
    format_table,
    registration_growth_factor,
)


def test_fig01_registration_growth(benchmark, print_header):
    rows = run_once(benchmark, lambda: list(FAA_REGISTRATIONS))

    print_header("Fig. 1: FAA-registered UAV units")
    print(format_table(["period", "units"], rows))
    growth = registration_growth_factor()
    print(f"growth 2015-2016 -> 2017-present: {growth:.2f}x (paper: >2x)")
    print(f"FAA 2021 forecast: {FAA_FORECAST_2021:,} units")

    # Monotone growth, >2x over the two-year window, forecast far above.
    counts = [units for _, units in rows]
    assert counts == sorted(counts)
    assert growth > 2.0
    assert FAA_FORECAST_2021 > 4 * counts[-1]
