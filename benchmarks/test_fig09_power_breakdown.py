"""Fig. 9 — measured power breakdown and mission power trace (3DR Solo).

9a: rotors ~287 W vs compute ~13 W vs flight controller ~2 W — rotors
dominate by ~20X.  9b: total power over an arm/hover/fly/land mission at
two steady-state velocities (flying at 10 m/s draws more than at 5 m/s,
and every flight phase dwarfs compute).
"""

import pytest
from conftest import run_once

from repro.analysis import format_table, mission_power_trace, solo_power_breakdown
from repro.compute import JETSON_TX2, PlatformConfig


def test_fig09a_power_breakdown(benchmark, print_header):
    tx2 = PlatformConfig(JETSON_TX2, 4, 2.2)
    breakdown = run_once(
        benchmark, solo_power_breakdown, tx2.max_cpu_power_w()
    )

    print_header("Fig. 9a: 3DR Solo power breakdown")
    print(
        format_table(
            ["subsystem", "power (W)"],
            [(k.replace("_w", ""), v) for k, v in breakdown.items()],
        )
    )
    ratio = breakdown["rotors_w"] / breakdown["compute_w"]
    print(f"rotors / compute = {ratio:.0f}x (paper: ~20x)")
    assert breakdown["rotors_w"] == pytest.approx(287.0, rel=0.2)
    assert 10.0 <= ratio <= 40.0


def test_fig09b_mission_power_trace(benchmark, print_header):
    def traces():
        return {
            5.0: mission_power_trace(cruise_speed=5.0),
            10.0: mission_power_trace(cruise_speed=10.0),
        }

    result = run_once(benchmark, traces)
    print_header("Fig. 9b: mission power by phase")
    for speed, phases in result.items():
        print(f"\n@ {speed} m/s steady state:")
        print(
            format_table(
                ["phase", "duration (s)", "power (W)"],
                [(p.name, p.duration_s, p.power_w) for p in phases],
            )
        )
    p5 = {p.name: p.power_w for p in result[5.0]}
    p10 = {p.name: p.power_w for p in result[10.0]}
    # Faster flight draws more rotor power; hover identical across runs.
    assert p10["flying"] > p5["flying"]
    assert p5["hover"] == pytest.approx(p10["hover"])
    # All airborne phases in the hundreds of watts (paper: 200-700 W).
    for phases in result.values():
        for p in phases:
            if p.name != "arming":
                assert 100.0 <= p.power_w <= 800.0
