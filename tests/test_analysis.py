"""Tests for the analysis harness: datasets, sweeps, microbench, reporting."""

import numpy as np
import pytest

from repro.analysis import (
    COMMERCIAL_MAVS,
    FAA_REGISTRATIONS,
    SweepCell,
    SweepResult,
    format_heatmap,
    format_table,
    max_velocity_at_fps,
    mission_power_trace,
    registration_growth_factor,
    run_slam_circle,
    solo_power_breakdown,
)


class TestDatasets:
    def test_faa_counts_monotone(self):
        counts = [units for _, units in FAA_REGISTRATIONS]
        assert counts == sorted(counts)

    def test_growth_over_2x(self):
        assert registration_growth_factor() > 2.0

    def test_commercial_mavs_have_both_wing_types(self):
        wings = {m.wing_type for m in COMMERCIAL_MAVS}
        assert wings == {"fixed", "rotor"}

    def test_all_specs_positive(self):
        for m in COMMERCIAL_MAVS:
            assert m.battery_mah > 0
            assert m.endurance_min > 0
            assert m.size_mm > 0
            assert m.hover_power_w > 0


class TestSlamMicrobench:
    def test_run_slam_circle_basic(self):
        point = run_slam_circle(velocity_ms=2.0, fps=4.0, seed=1)
        assert point.mission_time_s == pytest.approx(
            2 * np.pi * 25.0 / 2.0, rel=1e-6
        )
        assert 0.0 <= point.failure_rate <= 1.0
        assert point.energy_kj > 0

    def test_higher_velocity_more_failures(self):
        slow = run_slam_circle(velocity_ms=1.0, fps=0.5, seed=1)
        fast = run_slam_circle(velocity_ms=10.0, fps=0.5, seed=1)
        assert fast.failure_rate >= slow.failure_rate

    def test_higher_fps_fewer_failures(self):
        low = run_slam_circle(velocity_ms=6.0, fps=0.5, seed=1)
        high = run_slam_circle(velocity_ms=6.0, fps=4.0, seed=1)
        assert high.failure_rate <= low.failure_rate

    def test_max_velocity_respects_bound(self):
        point = max_velocity_at_fps(2.0, seed=1)
        assert point.failure_rate <= 0.2

    def test_input_validation(self):
        with pytest.raises(ValueError):
            run_slam_circle(velocity_ms=0.0, fps=1.0)
        with pytest.raises(ValueError):
            run_slam_circle(velocity_ms=1.0, fps=0.0)


class TestPowerBench:
    def test_solo_breakdown_rotor_dominates(self):
        breakdown = solo_power_breakdown()
        assert breakdown["rotors_w"] > 10 * breakdown["compute_w"]

    def test_mission_trace_phases(self):
        phases = mission_power_trace(cruise_speed=5.0)
        names = [p.name for p in phases]
        assert names == ["arming", "hover", "flying", "landing"]
        by_name = {p.name: p.power_w for p in phases}
        assert by_name["flying"] > by_name["arming"]


def _toy_sweep():
    cells = []
    for c in (2, 3, 4):
        for f in (0.8, 1.5, 2.2):
            speed_factor = c * f
            cells.append(
                SweepCell(
                    cores=c,
                    frequency_ghz=f,
                    velocity_ms=speed_factor,
                    mission_time_s=100.0 / speed_factor,
                    energy_kj=50.0 / speed_factor,
                    success_rate=1.0,
                    extra={"replans": 1.0},
                )
            )
    return SweepResult(workload="toy", cells=cells)


class TestSweepResult:
    def test_cell_lookup(self):
        sweep = _toy_sweep()
        cell = sweep.cell(3, 1.5)
        assert cell.cores == 3
        with pytest.raises(KeyError):
            sweep.cell(5, 1.5)

    def test_corner_ratio(self):
        sweep = _toy_sweep()
        expected = (100.0 / (2 * 0.8)) / (100.0 / (4 * 2.2))
        assert sweep.corner_ratio("mission_time_s") == pytest.approx(expected)

    def test_best_over_worst_direction(self):
        """Regression: lower_is_better used to be dead (both branches
        returned max/min); the ratio must follow the metric direction."""
        sweep = _toy_sweep()
        times = [c.mission_time_s for c in sweep.cells]
        speeds = [c.velocity_ms for c in sweep.cells]
        # Lower-is-better (mission time): best is the minimum -> ratio < 1.
        assert sweep.best_over_worst("mission_time_s") == pytest.approx(
            min(times) / max(times)
        )
        assert sweep.best_over_worst("mission_time_s") < 1.0
        # Higher-is-better (velocity): best is the maximum -> ratio > 1.
        assert sweep.best_over_worst(
            "velocity_ms", lower_is_better=False
        ) == pytest.approx(max(speeds) / min(speeds))
        assert sweep.best_over_worst("velocity_ms", lower_is_better=False) > 1.0

    def test_best_over_worst_empty(self):
        sweep = SweepResult(workload="toy", cells=[])
        assert np.isnan(sweep.best_over_worst("mission_time_s"))

    def test_metric_grid(self):
        grid = _toy_sweep().metric_grid("velocity_ms")
        assert len(grid) == 9
        assert grid[(4, 2.2)] == pytest.approx(8.8)

    def test_format_heatmap_layout(self):
        text = format_heatmap(_toy_sweep(), "mission_time_s")
        lines = text.splitlines()
        assert "cores" in lines[0]
        # 4-core row printed first, as in the paper's figures.
        assert lines[2].strip().startswith("4")

    def test_format_heatmap_extra_key(self):
        text = format_heatmap(_toy_sweep(), extra_key="replans", fmt="{:.0f}")
        assert "1" in text


class TestFormatTable:
    def test_basic_table(self):
        text = format_table(["a", "b"], [[1, 2.5], ["x", 0.001]])
        assert "a" in text and "b" in text
        assert "2.50" in text
        assert "0.001" in text

    def test_title(self):
        text = format_table(["h"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_column_alignment(self):
        text = format_table(["col"], [["looooooong"], ["x"]])
        lines = text.splitlines()
        assert len(lines[1]) == len(lines[2])
