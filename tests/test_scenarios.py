"""Tests for the scenario subsystem: specs, families, metrics, cache,
workload injection, and the campaign scenario axis."""

import json

import numpy as np
import pytest

from repro.campaign import (
    CampaignSpec,
    CampaignStore,
    RunSpec,
    parse_scenarios,
    run_campaign,
    select_records,
)
from repro.core.api import run_workload, validate_workload_kwargs
from repro.core.workloads import WORKLOADS
from repro.scenarios import (
    CANONICAL_FAMILY,
    FAMILIES,
    ScenarioSpec,
    available_families,
    build_scenario_world,
    cache_stats,
    clear_scenario_cache,
    corridor_width_percentiles,
    family_knobs,
    instantiate_scenario,
    measure_scenario,
    parse_scenario,
)
from repro.world.serialization import world_to_dict

DIFFICULTIES = [0.0, 0.25, 0.5, 0.75, 1.0]

#: A mission configuration that finishes in well under a second.
TINY_SCANNING = {"area_width": 40.0, "area_length": 24.0}


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_scenario_cache()
    yield
    clear_scenario_cache()


# ----------------------------------------------------------------------
# ScenarioSpec
# ----------------------------------------------------------------------
class TestScenarioSpec:
    def test_payload_round_trip(self):
        spec = ScenarioSpec("urban", 0.7, seed=3, knobs={"blocks": 3})
        clone = ScenarioSpec.from_payload(spec.payload())
        assert clone == spec
        assert clone.scenario_key == spec.scenario_key

    def test_content_hash_is_canonical(self):
        a = ScenarioSpec("urban", 0.7, knobs={"blocks": 3, "street_width": 10})
        b = ScenarioSpec("urban", 0.7, knobs={"street_width": 10, "blocks": 3})
        assert a.scenario_key == b.scenario_key
        assert len(a.scenario_key) == 16

    def test_numeric_knobs_normalized_for_hashing(self):
        """120 and 120.0 name the same scenario (and the same run)."""
        a = ScenarioSpec("farm", 0.5, knobs={"width": 120})
        b = ScenarioSpec("farm", 0.5, knobs={"width": 120.0})
        assert a.scenario_key == b.scenario_key
        run_a = RunSpec("scanning", 4, 2.2, 1, scenario=a.payload())
        run_b = RunSpec("scanning", 4, 2.2, 1, scenario=b.payload())
        assert run_a.run_key == run_b.run_key

    def test_difficulty_changes_hash(self):
        assert (
            ScenarioSpec("forest", 0.2).scenario_key
            != ScenarioSpec("forest", 0.8).scenario_key
        )

    def test_difficulty_bounds_enforced(self):
        with pytest.raises(ValueError, match="difficulty"):
            ScenarioSpec("forest", 1.5)
        with pytest.raises(ValueError, match="difficulty"):
            ScenarioSpec("forest", -0.1)

    def test_unknown_family_rejected(self):
        with pytest.raises(KeyError, match="atlantis"):
            ScenarioSpec("atlantis", 0.5)

    def test_unknown_knob_rejected_at_spec_time(self):
        """A knob typo fails when the spec is built (e.g. during
        CampaignSpec validation), not mid-campaign inside a worker."""
        with pytest.raises(TypeError, match="rows"):
            ScenarioSpec("farm", 0.5, knobs={"rows": 5})
        with pytest.raises(TypeError, match="rows"):
            CampaignSpec(
                workloads=["scanning"],
                scenarios=[{"family": "farm", "knobs": {"rows": 5}}],
            )

    def test_parse_tokens(self):
        assert parse_scenario("forest").difficulty == 0.5
        spec = parse_scenario("urban:0.7")
        assert (spec.family, spec.difficulty, spec.seed) == ("urban", 0.7, None)
        spec = parse_scenario("urban:0.7:3")
        assert spec.seed == 3
        with pytest.raises(ValueError):
            parse_scenario("urban:not-a-number")
        with pytest.raises(ValueError):
            parse_scenario(":0.5")

    def test_coerce_accepts_spec_token_and_payload(self):
        spec = ScenarioSpec("park", 0.4)
        assert ScenarioSpec.coerce(spec) is spec
        assert ScenarioSpec.coerce("park:0.4") == spec
        assert ScenarioSpec.coerce(spec.payload()) == spec
        with pytest.raises(TypeError):
            ScenarioSpec.coerce(42)

    def test_resolved_fills_seed(self):
        spec = ScenarioSpec("farm", 0.5)
        assert spec.resolved(9).seed == 9
        pinned = ScenarioSpec("farm", 0.5, seed=2)
        assert pinned.resolved(9).seed == 2

    def test_label(self):
        assert ScenarioSpec("urban", 0.7).label() == "urban:0.7"
        assert ScenarioSpec("urban", 1.0, seed=3).label() == "urban:1#s3"


# ----------------------------------------------------------------------
# Families: smoke, determinism, monotonicity
# ----------------------------------------------------------------------
class TestFamilies:
    def test_registry_covers_every_workload(self):
        assert set(CANONICAL_FAMILY) == set(WORKLOADS)
        assert set(CANONICAL_FAMILY.values()) <= set(FAMILIES)
        assert len(available_families()) >= 5

    @pytest.mark.parametrize("family", sorted(FAMILIES))
    @pytest.mark.parametrize("difficulty", [0.0, 0.5, 1.0])
    def test_every_family_instantiates(self, family, difficulty):
        """The fast-lane scenario smoke: every family at 0 / 0.5 / 1."""
        world = instantiate_scenario(f"{family}:{difficulty}")
        assert world.bounds.volume > 0
        assert world.name.startswith(f"{family}@")
        for obs in world.obstacles:
            assert np.all(obs.box.lo <= obs.box.hi)

    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_builds_are_deterministic(self, family):
        spec = ScenarioSpec(family, 0.6, seed=5)
        a = world_to_dict(build_scenario_world(spec))
        b = world_to_dict(build_scenario_world(spec))
        assert a == b  # names included: builders pin them

    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_seed_changes_world(self, family):
        a = build_scenario_world(ScenarioSpec(family, 0.6, seed=1))
        b = build_scenario_world(ScenarioSpec(family, 0.6, seed=2))
        assert world_to_dict(a)["obstacles"] != world_to_dict(b)["obstacles"]

    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_congestion_monotone_in_difficulty(self, family):
        """Measured congestion is non-decreasing in requested difficulty
        (per seed, across five levels) — the nested-placement contract."""
        for seed in (0, 7):
            scores = [
                measure_scenario(
                    build_scenario_world(ScenarioSpec(family, d, seed=seed))
                ).congestion_score
                for d in DIFFICULTIES
            ]
            assert all(
                lo <= hi + 1e-12 for lo, hi in zip(scores, scores[1:])
            ), f"{family} seed={seed}: {scores}"
            assert scores[-1] > scores[0]  # difficulty must actually bite

    @pytest.mark.parametrize("family", ["farm", "forest", "disaster", "urban"])
    def test_static_sets_nest_with_difficulty(self, family):
        """Lower difficulty's static obstacles are a subset of higher's
        (same named obstacle -> same or grown box)."""

        def boxes(difficulty):
            world = build_scenario_world(ScenarioSpec(family, difficulty, seed=3))
            return {
                o.name: (o.box.lo.copy(), o.box.hi.copy())
                for o in world.static_obstacles
            }

        low, high = boxes(0.25), boxes(1.0)
        assert set(low) <= set(high)
        for name, (lo, hi) in low.items():
            glo, ghi = high[name]
            assert np.all(glo <= lo + 1e-9) and np.all(ghi >= hi - 1e-9)

    @pytest.mark.parametrize("family", ["forest", "disaster", "urban"])
    def test_corridors_narrow_with_difficulty(self, family):
        p50s = [
            corridor_width_percentiles(
                build_scenario_world(ScenarioSpec(family, d, seed=0))
            )["p50"]
            for d in (0.0, 0.5, 1.0)
        ]
        assert all(hi >= lo for hi, lo in zip(p50s, p50s[1:])), p50s

    def test_indoor_door_width_narrows(self):
        assert (
            family_knobs("indoor", 1.0)["door_width_m"]
            < family_knobs("indoor", 0.0)["door_width_m"]
        )

    def test_park_congestion_is_dynamic(self):
        world = build_scenario_world(ScenarioSpec("park", 1.0, seed=0))
        metrics = measure_scenario(world)
        assert metrics.occupied_fraction == pytest.approx(0.0)
        assert metrics.dynamic_congestion > 0
        assert metrics.congestion_score > 0
        assert "p50" in metrics.corridor_widths_m
        row = metrics.as_dict()
        assert "corridor_p50_m" in row and "congestion_score" in row

    def test_disaster_keeps_named_survivors(self):
        world = build_scenario_world(ScenarioSpec("disaster", 0.8, seed=1))
        survivors = [o for o in world.obstacles if o.name.startswith("survivor")]
        assert len(survivors) == 3

    def test_unknown_knob_rejected(self):
        with pytest.raises(TypeError, match="warp_drive"):
            build_scenario_world(
                ScenarioSpec("forest", 0.5, seed=0, knobs={"warp_drive": 9})
            )

    def test_knob_override_applies(self):
        small = build_scenario_world(
            ScenarioSpec("forest", 1.0, seed=0, knobs={"size": 40.0})
        )
        assert small.bounds.hi[0] == pytest.approx(20.0)

    def test_family_knobs_unknown_family(self):
        with pytest.raises(KeyError):
            family_knobs("atlantis", 0.5)


# ----------------------------------------------------------------------
# Cache
# ----------------------------------------------------------------------
class TestScenarioCache:
    def test_hit_returns_equal_world(self):
        first = instantiate_scenario("forest:0.5:3")
        second = instantiate_scenario("forest:0.5:3")
        stats = cache_stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert second is not first
        assert world_to_dict(second) == world_to_dict(first)

    def test_cached_worlds_are_isolated(self):
        """A mission mutating its world must not leak into the cache."""
        from repro.world.obstacles import make_box_obstacle

        first = instantiate_scenario("farm:0.5")
        n = len(first.obstacles)
        first.add(make_box_obstacle((0, 0, 1), (1, 1, 2), kind="intruder"))
        second = instantiate_scenario("farm:0.5")
        assert len(second.obstacles) == n

    def test_default_seed_distinguishes_entries(self):
        instantiate_scenario("farm:0.5", default_seed=1)
        instantiate_scenario("farm:0.5", default_seed=2)
        assert cache_stats()["misses"] == 2

    def test_cache_bypass(self):
        instantiate_scenario("farm:0.5", cache=False)
        assert cache_stats() == {"hits": 0, "misses": 0, "size": 0}


# ----------------------------------------------------------------------
# Workload injection
# ----------------------------------------------------------------------
class TestWorkloadInjection:
    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_scenario_kwarg_accepted_everywhere(self, name):
        validate_workload_kwargs(name, {"scenario": "forest:0.5"})

    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_default_worlds_unchanged_without_scenario(self, name):
        """No scenario => the canonical hard-wired generator, bit-for-bit
        run to run (the pre-PR reproducibility guarantee)."""
        a = WORKLOADS[name](seed=3).build_world()
        b = WORKLOADS[name](seed=3).build_world()
        da, db = world_to_dict(a), world_to_dict(b)
        assert da["bounds"] == db["bounds"]
        assert len(da["obstacles"]) == len(db["obstacles"])
        for oa, ob in zip(da["obstacles"], db["obstacles"]):
            assert oa["lo"] == ob["lo"] and oa["hi"] == ob["hi"]
            assert oa["kind"] == ob["kind"]

    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_canonical_family_world_attaches(self, name):
        workload = WORKLOADS[name](
            seed=1, scenario=f"{CANONICAL_FAMILY[name]}:0.5"
        )
        world = workload.build_world()
        assert world.name.startswith(CANONICAL_FAMILY[name])
        # The launch point search still works in the scenario world.
        start = workload.start_position(world)
        assert world.in_bounds(start + np.array([0.0, 0.0, 0.1]))

    def test_scenario_inherits_workload_seed(self):
        w1 = WORKLOADS["mapping"](seed=1, scenario="forest:0.5").build_world()
        w2 = WORKLOADS["mapping"](seed=2, scenario="forest:0.5").build_world()
        assert world_to_dict(w1)["obstacles"] != world_to_dict(w2)["obstacles"]
        pinned1 = WORKLOADS["mapping"](seed=1, scenario="forest:0.5:7")
        pinned2 = WORKLOADS["mapping"](seed=2, scenario="forest:0.5:7")
        assert (
            world_to_dict(pinned1.build_world())["obstacles"]
            == world_to_dict(pinned2.build_world())["obstacles"]
        )

    @pytest.mark.parametrize("scenario", ["forest:0.6", "disaster:0.3", "urban:0.9"])
    def test_aerial_photography_launch_clear_in_cluttered_scenarios(
        self, scenario
    ):
        """The preferred near-subject launch spot must be validated (and
        fall back to the base scan) when a family puts obstacles there."""
        for seed in range(4):
            workload = WORKLOADS["aerial_photography"](seed=seed, scenario=scenario)
            world = workload.build_world()
            start = workload.start_position(world)
            probe = start.copy()
            probe[2] = 0.4
            assert not world.is_occupied(probe, margin=0.3)

    def test_aerial_photography_gets_subject(self):
        workload = WORKLOADS["aerial_photography"](seed=1, scenario="park:0.8")
        world = workload.build_world()
        subjects = [o for o in world.obstacles if o.name == "subject"]
        assert len(subjects) == 1
        assert workload._person is subjects[0]
        assert len(world.dynamic_obstacles) > 1  # distractor walkers too

    def test_search_rescue_scenario_has_survivors(self):
        workload = WORKLOADS["search_rescue"](seed=1, scenario="disaster:0.6")
        world = workload.build_world()
        assert any(o.name.startswith("survivor") for o in world.obstacles)

    def test_mission_flies_in_scenario_world(self):
        result = run_workload(
            "scanning",
            seed=1,
            workload_kwargs={"scenario": "farm:0.5", **TINY_SCANNING},
        )
        assert result.success
        assert result.workload_kwargs["scenario"] == "farm:0.5"


# ----------------------------------------------------------------------
# Campaign axis
# ----------------------------------------------------------------------
class TestCampaignScenarioAxis:
    def test_runspec_backcompat_hash(self):
        """Scenario-free runs hash exactly as before the scenario axis
        existed (pre-PR stores stay valid)."""
        import hashlib

        run = RunSpec("scanning", 4, 2.2, 1)
        legacy_payload = {
            "workload": "scanning",
            "cores": 4,
            "frequency_ghz": 2.2,
            "seed": 1,
            "depth_noise_std": 0.0,
            "workload_kwargs": {},
            "sim_kwargs": {},
        }
        legacy_key = hashlib.sha256(
            json.dumps(
                legacy_payload, sort_keys=True, separators=(",", ":"), default=repr
            ).encode()
        ).hexdigest()[:16]
        assert run.run_key == legacy_key
        assert "scenario" not in run.payload()

    def test_runspec_scenario_normalized(self):
        a = RunSpec("scanning", 4, 2.2, 1, scenario="farm:0.5")
        b = RunSpec(
            "scanning", 4, 2.2, 1,
            scenario={"family": "farm", "difficulty": 0.5},
        )
        assert a.run_key == b.run_key
        assert a.scenario == b.scenario
        assert "farm:0.5" in a.label()
        clone = RunSpec.from_payload(a.payload())
        assert clone.run_key == a.run_key

    def test_scenario_axis_and_kwargs_scenario_conflict_rejected(self):
        """A kwargs-level scenario would be silently overwritten by the
        axis entry at execution time while still changing the run key —
        the spec refuses the ambiguity up front."""
        with pytest.raises(ValueError, match="not both"):
            RunSpec(
                "scanning", 4, 2.2, 1,
                workload_kwargs={"scenario": "farm:0.1"},
                scenario="farm:0.9",
            )
        spec = CampaignSpec(
            workloads=["scanning"],
            seeds=[1],
            scenarios=["farm:0.9"],
            workload_kwargs={"scanning": {"scenario": "farm:0.1"}},
        )
        with pytest.raises(ValueError, match="not both"):
            spec.expand()

    def test_expansion_order_and_count(self):
        spec = CampaignSpec(
            workloads=["scanning"],
            grid=[(4, 2.2), (2, 0.8)],
            seeds=[1, 2],
            scenarios=["farm:0.2", "farm:0.8"],
        )
        runs = spec.expand()
        assert spec.run_count == len(runs) == 2 * 2 * 2
        # scenario is outer to the grid: first 4 runs share farm:0.2.
        assert [r.scenario["difficulty"] for r in runs] == [
            0.2, 0.2, 0.2, 0.2, 0.8, 0.8, 0.8, 0.8,
        ]
        assert len({r.run_key for r in runs}) == len(runs)

    def test_default_axis_matches_pre_scenario_expansion(self):
        spec = CampaignSpec(workloads=["scanning"], seeds=[1, 2])
        assert spec.scenarios == [None]
        assert all(r.scenario is None for r in spec.expand())
        assert "scenarios" not in spec.to_dict()

    def test_duplicate_scenario_rejected(self):
        spec = CampaignSpec(
            workloads=["scanning"], seeds=[1],
            scenarios=["farm:0.5", "farm:0.5"],
        )
        with pytest.raises(ValueError, match="duplicate run"):
            spec.expand()

    def test_json_round_trip_with_scenarios(self):
        spec = CampaignSpec(
            workloads=["scanning"],
            grid=[(4, 2.2)],
            seeds=[1],
            scenarios=["farm:0.2", None, "urban:0.9:3"],
        )
        clone = CampaignSpec.from_json(spec.to_json())
        assert [r.run_key for r in clone.expand()] == [
            r.run_key for r in spec.expand()
        ]

    def test_parse_scenarios_tokens(self):
        entries = parse_scenarios(["urban:0.3", "default", "none", "farm"])
        assert entries[0]["family"] == "urban"
        assert entries[1] is None and entries[2] is None
        assert entries[3]["family"] == "farm"

    def test_empty_scenarios_rejected(self):
        with pytest.raises(ValueError, match="scenario"):
            CampaignSpec(workloads=["scanning"], scenarios=[])

    def test_select_records_by_scenario(self):
        records = [
            {"spec": {"workload": "scanning"}},
            {"spec": {"workload": "scanning",
                      "scenario": {"family": "farm", "difficulty": 0.5,
                                   "seed": None, "knobs": {}}}},
        ]
        farm = ScenarioSpec("farm", 0.5).payload()
        assert select_records(records, scenario=farm) == [records[1]]
        assert select_records(records, scenario=None) == [records[0]]
        assert len(select_records(records)) == 2

    def test_select_records_sees_kwargs_routed_scenarios(self):
        """A scenario riding in workload_kwargs must not pollute the
        canonical (scenario=None) bucket, and must match its payload."""
        records = [
            {"spec": {"workload": "scanning", "workload_kwargs": {}}},
            {"spec": {"workload": "scanning",
                      "workload_kwargs": {"scenario": "farm:0.9"}}},
        ]
        assert select_records(records, scenario=None) == [records[0]]
        farm = ScenarioSpec("farm", 0.9).payload()
        assert select_records(records, scenario=farm) == [records[1]]

    def test_kwargs_level_scenario_recorded_in_config(self):
        """A scenario riding in workload_kwargs (no axis entry) must
        still be reported as the flown environment in config.scenario,
        with config.workload_kwargs mirroring spec.workload_kwargs."""
        from repro.campaign import execute_run

        run = RunSpec(
            "scanning", 4, 2.2, 1,
            workload_kwargs={"scenario": "farm:0.5", **TINY_SCANNING},
        )
        record = execute_run(run)
        assert record["status"] == "ok"
        assert record["config"]["scenario"]["family"] == "farm"
        # Inherit-mode seed is resolved to the run seed the world used.
        assert record["config"]["scenario"]["seed"] == 1
        assert (
            record["config"]["workload_kwargs"] == record["spec"]["workload_kwargs"]
        )

    def test_campaign_sweeps_scenarios_with_resume(self, tmp_path):
        """Scenario axis end to end: run, then resume with zero executions."""
        spec = CampaignSpec(
            workloads=["scanning"],
            grid=[(4, 2.2)],
            seeds=[1],
            scenarios=["farm:0.0", "farm:1.0"],
            workload_kwargs={"scanning": dict(TINY_SCANNING)},
        )
        store = CampaignStore(tmp_path / "store.jsonl")
        first = run_campaign(spec, store=store)
        assert first.executed == 2 and first.failed == 0
        for record in first.records:
            assert record["spec"]["scenario"]["family"] == "farm"
            assert record["config"]["scenario"]["family"] == "farm"
        reloaded = CampaignStore(tmp_path / "store.jsonl")
        second = run_campaign(spec, store=reloaded)
        assert second.executed == 0 and second.cached == 2
        assert [r["run_key"] for r in second.records] == [
            r["run_key"] for r in first.records
        ]
