"""The docs gate, as a tier-1 test: links and quoted CLI commands in
``README.md`` + ``docs/*.md`` must resolve against the working tree and
the real argparse surface (``tools/check_docs.py`` is the CI lane's
entry point; this runs the same checks minus the mission smoke)."""

import importlib.util
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent

_spec = importlib.util.spec_from_file_location(
    "check_docs", REPO / "tools" / "check_docs.py"
)
check_docs = importlib.util.module_from_spec(_spec)
sys.modules.setdefault("check_docs", check_docs)
_spec.loader.exec_module(check_docs)


@pytest.mark.parametrize(
    "md", [p.relative_to(REPO) for p in check_docs._doc_files()],
    ids=lambda p: str(p),
)
def test_doc_file_is_clean(md):
    problems = check_docs.check_file(REPO / md)
    assert not problems, "\n".join(problems)


def test_docs_tree_exists():
    assert (REPO / "docs" / "architecture.md").is_file()
    assert (REPO / "docs" / "planners.md").is_file()


class TestCheckerCatchesRot:
    """The gate must actually fail on rot — otherwise it is decoration."""

    def test_broken_relative_link(self, tmp_path):
        md = tmp_path / "x.md"
        md.write_text("see [here](no/such/file.md)\n")
        problems = check_docs.check_links(md)
        assert any("broken link" in p for p in problems)

    def test_missing_backticked_path(self, tmp_path):
        md = tmp_path / "x.md"
        md.write_text("run `tests/test_does_not_exist.py` first\n")
        problems = check_docs.check_links(md)
        assert any("missing path" in p for p in problems)

    def test_stale_cli_example(self, tmp_path):
        md = tmp_path / "x.md"
        md.write_text(
            "```bash\npython -m repro run package_delivery "
            "--no-such-flag 3\n```\n"
        )
        problems = check_docs.check_cli(md)
        assert any("no longer parses" in p for p in problems)

    def test_valid_cli_example_passes(self, tmp_path):
        md = tmp_path / "x.md"
        md.write_text(
            "```bash\npython -m repro run package_delivery "
            "--scenario urban:0.7 --seed 3\n"
            "python -m pytest tests/test_docs.py -q\n```\n"
        )
        assert check_docs.check_cli(md) == []

    def test_stale_pytest_target(self, tmp_path):
        md = tmp_path / "x.md"
        md.write_text("```bash\npython -m pytest tests/test_gone.py -q\n```\n")
        problems = check_docs.check_cli(md)
        assert any("pytest target missing" in p for p in problems)
