"""Tests for repro.world: obstacles, environments, generators."""

import numpy as np
import pytest

from repro.world import (
    AABB,
    DynamicObstacle,
    Ray,
    World,
    add_moving_people,
    disaster_world,
    empty_world,
    farm_world,
    forest_world,
    indoor_world,
    make_box_obstacle,
    make_environment,
    make_person,
    obstacle_density,
    urban_world,
    vec,
)
from repro.world.generator import ENVIRONMENTS


class TestObstacles:
    def test_static_obstacle_constant_over_time(self):
        obs = make_box_obstacle((0, 0, 1), (2, 2, 2), kind="building")
        assert not obs.is_dynamic
        assert np.allclose(obs.box_at(0.0).center, obs.box_at(99.0).center)

    def test_obstacle_names_unique(self):
        a = make_box_obstacle((0, 0, 0), (1, 1, 1))
        b = make_box_obstacle((0, 0, 0), (1, 1, 1))
        assert a.name != b.name

    def test_person_dimensions(self):
        p = make_person((5, 5, 0.9))
        assert p.kind == "person"
        assert p.box.size[2] == pytest.approx(1.8)

    def test_dynamic_obstacle_moves_along_loop(self):
        p = make_person(
            (0, 0, 0.9), waypoints=[(0, 0, 0.9), (10, 0, 0.9)], speed=1.0
        )
        assert np.allclose(p.position_at(0.0), [0, 0, 0.9])
        assert np.allclose(p.position_at(5.0), [5, 0, 0.9])
        # Loop: at t=10 it reaches the far end, then comes back.
        assert np.allclose(p.position_at(15.0), [5, 0, 0.9])
        assert np.allclose(p.position_at(20.0), [0, 0, 0.9])

    def test_dynamic_obstacle_zero_speed_stays(self):
        p = make_person((3, 3, 0.9), waypoints=[(3, 3, 0.9), (8, 3, 0.9)], speed=0.0)
        assert np.allclose(p.position_at(100.0), [3, 3, 0.9])

    def test_dynamic_velocity_magnitude(self):
        p = make_person(
            (0, 0, 0.9), waypoints=[(0, 0, 0.9), (100, 0, 0.9)], speed=2.0
        )
        v = p.velocity_at(1.0)
        assert np.linalg.norm(v) == pytest.approx(2.0, rel=0.05)

    def test_negative_speed_rejected(self):
        with pytest.raises(ValueError):
            DynamicObstacle(
                box=AABB.from_center((0, 0, 0), (1, 1, 1)),
                waypoints=[vec(0, 0, 0), vec(1, 0, 0)],
                speed=-1.0,
            )

    def test_obstacle_density_half_filled(self):
        region = AABB(vec(0, 0, 0), vec(2, 1, 1))
        obs = [make_box_obstacle((0.5, 0.5, 0.5), (1, 1, 1))]
        assert obstacle_density(obs, region) == pytest.approx(0.5)

    def test_obstacle_density_clipped_to_region(self):
        region = AABB(vec(0, 0, 0), vec(1, 1, 1))
        obs = [make_box_obstacle((0.5, 0.5, 0.5), (10, 10, 10))]
        assert obstacle_density(obs, region) == pytest.approx(1.0)


class TestWorldQueries:
    def _simple_world(self):
        world = empty_world((20, 20, 10))
        world.add(make_box_obstacle((5, 0, 2.5), (2, 2, 5), kind="pillar"))
        return world

    def test_is_free_and_occupied(self):
        world = self._simple_world()
        assert world.is_free(vec(0, 0, 2))
        assert world.is_occupied(vec(5, 0, 2))
        assert not world.is_free(vec(5, 0, 2))

    def test_margin_expands_occupancy(self):
        world = self._simple_world()
        p = vec(6.3, 0, 2)  # 0.3 m from the pillar face at x=6
        assert world.is_free(p)
        assert world.is_occupied(p, margin=0.5)

    def test_out_of_bounds_not_free(self):
        world = self._simple_world()
        assert not world.is_free(vec(100, 0, 2))

    def test_segment_collision(self):
        world = self._simple_world()
        assert world.segment_collides(vec(0, 0, 2), vec(10, 0, 2))
        assert not world.segment_collides(vec(0, 5, 2), vec(10, 5, 2))

    def test_line_of_sight(self):
        world = self._simple_world()
        assert world.line_of_sight(vec(0, 5, 2), vec(10, 5, 2))
        assert not world.line_of_sight(vec(0, 0, 2), vec(10, 0, 2))

    def test_ray_cast_hits_pillar(self):
        world = self._simple_world()
        d = world.ray_cast(Ray(vec(0, 0, 2), vec(1, 0, 0)), max_range=50)
        assert d == pytest.approx(4.0)

    def test_ray_cast_many_matches_single(self):
        world = self._simple_world()
        dirs = np.array([[1.0, 0, 0], [0, 1.0, 0]])
        dists = world.ray_cast_many(vec(0, 0, 2), dirs, max_range=50)
        assert dists[0] == pytest.approx(4.0)
        assert dists[1] == pytest.approx(50.0)

    def test_ray_cast_many_sees_dynamic_obstacles(self):
        world = self._simple_world()
        person = make_person(
            (0, -5, 0.9), waypoints=[(0, -5, 0.9), (0, 5, 0.9)], speed=1.0
        )
        world.add(person)
        dirs = np.array([[0.0, -1.0, 0.0]])
        d0 = world.ray_cast_many(vec(0, 0, 0.9), dirs, max_range=50, time=0.0)
        # At t=5 the person is at the sensor's location's y=0... use t=3: y=-2.
        d3 = world.ray_cast_many(vec(0, 0, 0.9), dirs, max_range=50, time=3.0)
        assert d0[0] > d3[0]

    def test_sample_free_point(self):
        world = self._simple_world()
        rng = np.random.default_rng(0)
        for _ in range(20):
            p = world.sample_free_point(rng, margin=0.2)
            assert world.is_free(p, margin=0.2)

    def test_sample_free_point_impossible_raises(self):
        world = empty_world((2, 2, 2))
        world.add(make_box_obstacle((0, 0, 1), (10, 10, 10)))
        with pytest.raises(RuntimeError):
            world.sample_free_point(np.random.default_rng(0), max_tries=50)

    def test_find_by_kind(self):
        world = self._simple_world()
        assert len(world.find("pillar")) == 1
        assert world.find("nonexistent") == []

    def test_cache_invalidation_on_add(self):
        world = self._simple_world()
        d_before = world.ray_cast_many(
            vec(0, 0, 2), np.array([[-1.0, 0, 0]]), max_range=50
        )[0]
        world.add(make_box_obstacle((-5, 0, 2.5), (2, 2, 5)))
        d_after = world.ray_cast_many(
            vec(0, 0, 2), np.array([[-1.0, 0, 0]]), max_range=50
        )[0]
        assert d_before == pytest.approx(50.0)
        assert d_after == pytest.approx(4.0)


def _geometry_signature(world):
    """Obstacle set stripped of auto-generated names (a process-global
    counter), so two builds of the same world can be compared exactly."""
    rows = []
    for obs in world.obstacles:
        row = {
            "kind": obs.kind,
            "lo": obs.box.lo.tolist(),
            "hi": obs.box.hi.tolist(),
        }
        if isinstance(obs, DynamicObstacle):
            row["waypoints"] = [w.tolist() for w in obs.waypoints]
            row["speed"] = obs.speed
        rows.append(row)
    return rows


class TestGenerators:
    def test_generators_are_deterministic(self):
        a = urban_world(seed=3)
        b = urban_world(seed=3)
        assert len(a.obstacles) == len(b.obstacles)
        for oa, ob in zip(a.obstacles, b.obstacles):
            assert np.allclose(oa.box.lo, ob.box.lo)

    @pytest.mark.parametrize("name", sorted(ENVIRONMENTS))
    def test_every_generator_seed_deterministic(self, name):
        """Same seed => bit-identical obstacle set, for all six families."""
        a = make_environment(name, seed=11)
        b = make_environment(name, seed=11)
        assert _geometry_signature(a) == _geometry_signature(b)
        assert np.array_equal(a.bounds.lo, b.bounds.lo)
        assert np.array_equal(a.bounds.hi, b.bounds.hi)
        # A different seed must actually change something for the seeded
        # generators (all but the door-grid layouts which only reseed
        # door positions — those too, in fact).
        c = make_environment(name, seed=12)
        assert _geometry_signature(a) != _geometry_signature(c)

    def test_docstring_lists_every_environment(self):
        """The module docstring's environment list tracks ENVIRONMENTS
        (it once dropped 'campus'; pin it so it cannot drift again)."""
        from repro.world import generator

        for name in ENVIRONMENTS:
            assert f"``{name}``" in generator.__doc__, (
                f"generator.py docstring is missing environment '{name}'"
            )

    def test_urban_density_knob(self):
        dense = urban_world(building_density=1.0, seed=0)
        sparse = urban_world(building_density=0.2, seed=0)
        assert len(dense.find("building")) > len(sparse.find("building"))

    def test_urban_rejects_bad_density(self):
        with pytest.raises(ValueError):
            urban_world(building_density=1.5)

    def test_farm_has_no_tall_obstacles(self):
        world = farm_world(seed=1)
        assert all(o.box.hi[2] < 2.0 for o in world.static_obstacles)

    def test_indoor_has_walls_and_passable_doors(self):
        world = indoor_world(seed=2)
        walls = world.find("wall")
        assert len(walls) > 4
        # Doors exist: density is well below a fully-walled grid.
        assert world.density() < 0.5

    def test_forest_world_tree_count(self):
        world = forest_world(n_trees=10, seed=0)
        assert len(world.find("tree")) == 10
        assert len(world.find("canopy")) == 10

    def test_disaster_world_has_survivors(self):
        world = disaster_world(n_survivors=2, seed=0)
        survivors = world.find("person")
        assert len(survivors) == 2
        # Survivors don't start inside debris.
        for s in survivors:
            assert not any(
                s.box.intersects(d.box) for d in world.find("debris")
            )

    def test_make_environment_factory(self):
        world = make_environment("farm", seed=5)
        assert world.name == "farm"
        with pytest.raises(KeyError):
            make_environment("atlantis")

    def test_add_moving_people(self):
        world = empty_world((50, 50, 10))
        people = add_moving_people(world, count=4, speed=2.0, seed=1)
        assert len(people) == 4
        assert len(world.dynamic_obstacles) == 4
        for p in people:
            assert p.speed == 2.0
