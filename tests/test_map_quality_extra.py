"""Additional property-based tests on core data-structure invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.perception.octomap import (
    LOG_ODDS_MAX,
    LOG_ODDS_MIN,
    OCCUPANCY_THRESHOLD,
    OctoMap,
)
from repro.perception.point_cloud import PointCloud
from repro.world.geometry import AABB, vec

coords = st.floats(-20, 20, allow_nan=False, allow_infinity=False)


class TestOctoMapInvariants:
    @given(
        points=st.lists(
            st.tuples(coords, coords, coords), min_size=1, max_size=30
        ),
        res=st.sampled_from([0.15, 0.5, 0.8]),
    )
    @settings(max_examples=30, deadline=None)
    def test_log_odds_always_clamped(self, points, res):
        om = OctoMap(resolution=res)
        rng = np.random.default_rng(1)
        for p in points:
            if rng.random() < 0.5:
                om.mark_occupied(p)
            else:
                om.mark_free(p)
        for key in list(om.occupied_keys()) + list(om.free_keys()):
            value = om._cells[key]
            assert LOG_ODDS_MIN <= value <= LOG_ODDS_MAX

    @given(
        ox=coords, oy=coords, oz=coords,
        ex=coords, ey=coords, ez=coords,
    )
    @settings(max_examples=40, deadline=None)
    def test_ray_keys_never_include_endpoint_voxel(self, ox, oy, oz, ex, ey, ez):
        om = OctoMap(resolution=0.5)
        keys = om.ray_keys(vec(ox, oy, oz), vec(ex, ey, ez))
        end_key = om.key_for((ex, ey, ez))
        assert end_key not in keys

    @given(
        hits=st.lists(
            st.tuples(st.floats(2, 15), st.floats(-5, 5), st.floats(0, 5)),
            min_size=1,
            max_size=20,
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_scan_hits_always_occupied_after_insert(self, hits):
        """Within one scan, endpoint evidence must win over carving."""
        om = OctoMap(resolution=0.5)
        cloud = PointCloud(
            origin=vec(0, 0, 2),
            hits=np.array(hits, dtype=float),
            misses=np.zeros((0, 3)),
        )
        om.insert_scan(cloud, carve_rays=len(hits))
        for h in hits:
            assert om.is_occupied(h)

    @given(res_a=st.sampled_from([0.15, 0.25]), res_b=st.sampled_from([0.5, 0.8]))
    @settings(max_examples=10, deadline=None)
    def test_rebuild_preserves_occupancy_conservatively(self, res_a, res_b):
        """Every occupied point stays occupied after re-gridding, in both
        directions (coarsen then refine)."""
        om = OctoMap(resolution=res_a)
        rng = np.random.default_rng(3)
        points = rng.uniform(0, 8, size=(40, 3))
        for p in points:
            om.mark_occupied(p)
        coarse = om.rebuilt_at_resolution(res_b)
        for p in points:
            assert coarse.is_occupied(p)
        fine_again = coarse.rebuilt_at_resolution(res_a)
        for p in points:
            assert fine_again.is_occupied(p)

    def test_coverage_monotone_under_updates(self):
        bounds = AABB(vec(0, 0, 0), vec(4, 4, 4))
        om = OctoMap(resolution=0.5, bounds=bounds)
        last = 0.0
        rng = np.random.default_rng(5)
        for p in rng.uniform(0, 4, size=(60, 3)):
            om.mark_free(p)
            coverage = om.coverage_fraction()
            assert coverage >= last - 1e-12
            last = coverage
