"""End-to-end workload tests (small worlds, fast operating point).

These are integration tests across the entire stack: world + sensors +
dynamics + compute model + middleware + kernels + mission logic.
"""

import numpy as np
import pytest

from repro import available_workloads, run_workload
from repro.core.api import make_simulation
from repro.core.workloads import (
    AerialPhotographyWorkload,
    MappingWorkload,
    PackageDeliveryWorkload,
    ScanningWorkload,
    SearchRescueWorkload,
    WORKLOADS,
)
from repro.core.workloads.base import OccupancyPipeline, warm_up_map
from repro.world import empty_world, make_box_obstacle, vec


class TestRegistry:
    def test_all_five_workloads_registered(self):
        assert set(available_workloads()) == {
            "scanning",
            "package_delivery",
            "mapping",
            "search_rescue",
            "aerial_photography",
        }

    def test_unknown_workload_raises(self):
        with pytest.raises(KeyError):
            run_workload("pizza_delivery")

    def test_workload_names_match_classes(self):
        for name, cls in WORKLOADS.items():
            assert cls.name == name


class TestScanning:
    def test_small_scan_succeeds(self):
        workload = ScanningWorkload(
            area_width=40.0, area_length=24.0, lane_spacing=12.0, seed=1
        )
        make_simulation(workload, cores=4, frequency_ghz=2.2, seed=1)
        report = workload.run()
        assert report.success
        assert report.flight_distance_m > 100.0
        assert report.extra["planning_time_s"] < 1.0

    def test_compute_insensitive(self):
        """The Fig. 10 property: scanning barely notices the platform."""
        times = {}
        for cores, freq in [(4, 2.2), (2, 0.8)]:
            workload = ScanningWorkload(
                area_width=40.0, area_length=24.0, seed=1
            )
            make_simulation(workload, cores=cores, frequency_ghz=freq, seed=1)
            times[(cores, freq)] = workload.run().mission_time_s
        assert times[(2, 0.8)] / times[(4, 2.2)] < 1.05


@pytest.mark.slow
class TestPackageDelivery:
    def _world(self):
        world = empty_world((50, 50, 12), name="mini-city")
        world.add(make_box_obstacle((0, 0, 4), (6, 6, 8), kind="building"))
        return world

    def test_delivers_and_returns(self):
        workload = PackageDeliveryWorkload(
            world=self._world(),
            goal=np.array([18.0, 18.0, 3.0]),
            seed=2,
        )
        sim = make_simulation(workload, cores=4, frequency_ghz=2.2, seed=2)
        report = workload.run()
        assert report.success
        assert report.extra["delivered"] == 1.0
        # Returned home: final position near start.
        assert np.linalg.norm(sim.state.position[:2] - vec(-22, -22, 0)[:2]) < 6.0

    def test_invalid_planner_rejected(self):
        with pytest.raises(ValueError):
            PackageDeliveryWorkload(planner_name="teleport")

    def test_plug_and_play_planner(self):
        workload = PackageDeliveryWorkload(
            world=self._world(),
            goal=np.array([15.0, 15.0, 3.0]),
            planner_name="prm",
            seed=2,
        )
        make_simulation(workload, cores=4, frequency_ghz=2.2, seed=2)
        report = workload.run()
        assert report.extra["delivered"] == 1.0

    def test_depth_noise_degrades_mission(self):
        """The Table II mechanism, at test scale: heavy depth noise makes
        the mission worse on at least one axis (more re-plans, longer, or
        outright failure) — never strictly better on all of them."""

        def fly(noise):
            workload = PackageDeliveryWorkload(
                world=self._world(), goal=np.array([18.0, 18.0, 3.0]), seed=3
            )
            make_simulation(
                workload, cores=4, frequency_ghz=2.2, seed=3,
                depth_noise_std=noise,
            )
            return workload.run()

        clean = fly(0.0)
        noisy = fly(1.5)
        assert clean.success
        degraded = (
            not noisy.success
            or noisy.extra["replans"] + noisy.extra["plans_failed"]
            >= clean.extra["replans"] + clean.extra["plans_failed"]
            or noisy.mission_time_s > clean.mission_time_s
        )
        assert degraded


class TestMapping:
    def test_maps_small_arena(self):
        world = empty_world((30, 30, 10), name="arena")
        world.add(make_box_obstacle((5, 5, 2), (3, 3, 4), kind="crate"))
        workload = MappingWorkload(
            world=world, coverage_target=0.5, mapping_ceiling=8.0, seed=1
        )
        make_simulation(workload, cores=4, frequency_ghz=2.2, seed=1)
        report = workload.run()
        assert report.success
        assert report.extra["coverage"] >= 0.5
        assert report.extra["map_cells"] > 100

    def test_coverage_target_validation(self):
        with pytest.raises(ValueError):
            MappingWorkload(coverage_target=0.0)


class TestSearchRescue:
    def test_finds_survivor(self):
        world = empty_world((30, 30, 10), name="site")
        world.add(make_box_obstacle((0, 8, 2), (4, 2, 4), kind="debris"))
        from repro.world import make_person

        world.add(make_person((8.0, 8.0, 0.9), name="survivor-0"))
        workload = SearchRescueWorkload(
            world=world, coverage_target=0.9, mapping_ceiling=8.0, seed=1
        )
        make_simulation(workload, cores=4, frequency_ghz=2.2, seed=1)
        report = workload.run()
        assert report.success
        assert report.extra["found_survivor"] == 1.0

    def test_invalid_detector_rejected(self):
        with pytest.raises(ValueError):
            SearchRescueWorkload(detector_name="psychic")


class TestAerialPhotography:
    def test_tracks_subject(self):
        workload = AerialPhotographyWorkload(max_duration_s=30.0, seed=1)
        make_simulation(workload, cores=4, frequency_ghz=2.2, seed=1)
        report = workload.run()
        assert report.extra["tracked_time_s"] > 15.0
        assert report.extra["error_norm"] < 0.5

    def test_invalid_detector_rejected(self):
        with pytest.raises(ValueError):
            AerialPhotographyWorkload(detector_name="psychic")

    def test_tracker_mode_kernels(self):
        realtime = AerialPhotographyWorkload(tracker_mode="realtime")
        buffered = AerialPhotographyWorkload(tracker_mode="buffered")
        assert realtime.tracker.kernel_name == "tracking_realtime"
        assert buffered.tracker.kernel_name == "tracking_buffered"


class TestOccupancyPipeline:
    def _pipeline(self, cores=4, freq=2.2, resolution=0.5):
        workload = PackageDeliveryWorkload(seed=1)
        world = empty_world((40, 40, 12))
        world.add(make_box_obstacle((8, 0, 2), (2, 10, 4), kind="wall"))
        workload._world = world
        sim = make_simulation(workload, cores=cores, frequency_ghz=freq, seed=1)
        return sim, OccupancyPipeline(sim, resolution=resolution)

    def test_warm_up_builds_map(self):
        sim, pipeline = self._pipeline()
        sim.vehicle.state.position = vec(0, 0, 2)
        warm_up_map(pipeline, sweeps=8)
        assert len(pipeline.octomap) > 100
        assert pipeline.octomap.is_occupied((7.2, 0, 2))

    def test_update_rate_tracks_compute(self):
        """The core closed-loop coupling: map update latency equals the
        modeled octomap runtime, so slower platforms update less often."""
        sim, pipeline = self._pipeline(cores=4, freq=2.2)
        pipeline.start_update()
        t0 = sim.now
        sim.run_until(lambda s: not pipeline.busy, timeout_s=10)
        fast_latency = sim.now - t0

        sim2, pipeline2 = self._pipeline(cores=2, freq=0.8)
        pipeline2.start_update()
        t0 = sim2.now
        sim2.run_until(lambda s: not pipeline2.busy, timeout_s=10)
        slow_latency = sim2.now - t0
        assert slow_latency > fast_latency * 1.5

    def test_allowed_velocity_scales_with_compute(self):
        _, fast = self._pipeline(cores=4, freq=2.2)
        _, slow = self._pipeline(cores=2, freq=0.8)
        assert fast.allowed_velocity() > slow.allowed_velocity()

    def test_resolution_switch_rebuilds(self):
        sim, pipeline = self._pipeline(resolution=0.25)
        sim.vehicle.state.position = vec(0, 0, 2)
        warm_up_map(pipeline, sweeps=4)
        cells_before = pipeline.octomap.memory_cells()
        pipeline.set_resolution(0.8)
        assert pipeline.octomap.resolution == 0.8
        assert pipeline.octomap.memory_cells() < cells_before
        assert pipeline.checker.octomap is pipeline.octomap

    def test_coarser_resolution_faster_response(self):
        _, fine = self._pipeline(resolution=0.15)
        _, coarse = self._pipeline(resolution=0.8)
        assert coarse.response_time_s() < fine.response_time_s()

    def test_safety_filter_zeroes_into_wall(self):
        sim, pipeline = self._pipeline()
        sim.vehicle.state.position = vec(5.0, 0, 2)  # 2 m from the wall
        warm_up_map(pipeline, sweeps=8)
        sim.vehicle.state.velocity = vec(4.0, 0, 0)  # charging at it
        cmd = pipeline.safety_filter(vec(5.0, 0, 0), cruise=8.0)
        assert np.linalg.norm(cmd) < 0.5
