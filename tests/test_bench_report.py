"""Tests for ``tools/bench_report.py`` — the BENCH_*.json gate.

Loaded the same way ``tests/test_docs.py`` loads ``check_docs``: by
file path, so the tool stays a standalone script (no package install).
The committed baselines (``BENCH_planners.json`` etc.) are validated
here too, so an emitter change that drifts the schema fails in the fast
lane, not in a nightly artifact diff.
"""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent

_spec = importlib.util.spec_from_file_location(
    "bench_report", REPO / "tools" / "bench_report.py"
)
bench_report = importlib.util.module_from_spec(_spec)
sys.modules.setdefault("bench_report", bench_report)
_spec.loader.exec_module(bench_report)


def _valid_doc(family="planners", median=0.5):
    return {
        "schema": f"bench-{family}/1",
        "benchmarks": {
            "benchmarks/test_x.py::test_a": {
                "median_s": median,
                "mean_s": median * 1.1,
                "min_s": median * 0.9,
                "rounds": 3,
            }
        },
    }


class TestValidate:
    def test_valid_doc_passes(self):
        assert bench_report.validate_bench(_valid_doc()) == []

    def test_missing_schema_fails(self):
        doc = _valid_doc()
        del doc["schema"]
        assert any("schema" in p for p in bench_report.validate_bench(doc))

    def test_wrong_schema_family_format_fails(self):
        doc = _valid_doc()
        doc["schema"] = "bench-planners/2"
        assert bench_report.validate_bench(doc) != []

    def test_unknown_top_level_key_fails(self):
        doc = _valid_doc()
        doc["sneaky"] = True
        assert any("sneaky" in p for p in bench_report.validate_bench(doc))

    def test_missing_stat_key_fails(self):
        doc = _valid_doc()
        del doc["benchmarks"]["benchmarks/test_x.py::test_a"]["median_s"]
        assert any("median_s" in p for p in bench_report.validate_bench(doc))

    def test_extra_stat_key_fails(self):
        doc = _valid_doc()
        doc["benchmarks"]["benchmarks/test_x.py::test_a"]["stddev_s"] = 0.1
        assert any("stddev_s" in p for p in bench_report.validate_bench(doc))

    def test_non_numeric_stat_fails(self):
        doc = _valid_doc()
        doc["benchmarks"]["benchmarks/test_x.py::test_a"]["median_s"] = "fast"
        assert bench_report.validate_bench(doc) != []

    def test_negative_stat_fails(self):
        doc = _valid_doc()
        doc["benchmarks"]["benchmarks/test_x.py::test_a"]["median_s"] = -1.0
        assert any("negative" in p for p in bench_report.validate_bench(doc))

    def test_empty_benchmarks_fails(self):
        assert bench_report.validate_bench(
            {"schema": "bench-x/1", "benchmarks": {}}
        ) != []


class TestCli:
    def _write(self, tmp_path, name, doc):
        path = tmp_path / name
        path.write_text(json.dumps(doc))
        return path

    def test_summarize_valid(self, tmp_path, capsys):
        path = self._write(tmp_path, "BENCH_planners.json", _valid_doc())
        assert bench_report.main(["summarize", str(path)]) == 0
        out = capsys.readouterr().out
        assert "bench-planners/1" in out
        assert "test_a" in out

    def test_summarize_drift_exits_2(self, tmp_path, capsys):
        doc = _valid_doc()
        doc["schema"] = "not-a-bench"
        path = self._write(tmp_path, "bad.json", doc)
        assert bench_report.main(["summarize", str(path)]) == 2
        assert "SCHEMA DRIFT" in capsys.readouterr().err

    def test_summarize_missing_file_exits_2(self, tmp_path):
        assert bench_report.main(
            ["summarize", str(tmp_path / "nope.json")]
        ) == 2

    def test_compare_reports_ratio(self, tmp_path, capsys):
        old = self._write(tmp_path, "old.json", _valid_doc(median=0.5))
        new = self._write(tmp_path, "new.json", _valid_doc(median=1.0))
        assert bench_report.main(["compare", str(old), str(new)]) == 0
        assert "2.00x" in capsys.readouterr().out

    def test_compare_regression_fails_with_budget(self, tmp_path, capsys):
        old = self._write(tmp_path, "old.json", _valid_doc(median=0.5))
        new = self._write(tmp_path, "new.json", _valid_doc(median=1.0))
        assert bench_report.main(
            ["compare", str(old), str(new), "--max-ratio", "1.5"]
        ) == 1
        assert "REGRESSION" in capsys.readouterr().err

    def test_compare_within_budget_passes(self, tmp_path):
        old = self._write(tmp_path, "old.json", _valid_doc(median=0.5))
        new = self._write(tmp_path, "new.json", _valid_doc(median=0.6))
        assert bench_report.main(
            ["compare", str(old), str(new), "--max-ratio", "1.5"]
        ) == 0

    def test_compare_cross_family_is_drift(self, tmp_path, capsys):
        old = self._write(tmp_path, "old.json", _valid_doc(family="planners"))
        new = self._write(
            tmp_path, "new.json", _valid_doc(family="scenarios")
        )
        assert bench_report.main(["compare", str(old), str(new)]) == 2
        assert "families" in capsys.readouterr().err

    def test_compare_names_added_and_removed(self, tmp_path, capsys):
        old_doc = _valid_doc()
        new_doc = _valid_doc()
        new_doc["benchmarks"]["benchmarks/test_x.py::test_b"] = dict(
            new_doc["benchmarks"]["benchmarks/test_x.py::test_a"]
        )
        old = self._write(tmp_path, "old.json", old_doc)
        new = self._write(tmp_path, "new.json", new_doc)
        assert bench_report.main(["compare", str(old), str(new)]) == 0
        out = capsys.readouterr().out
        assert "added:" in out
        assert "test_b" in out


#: Every committed baseline must satisfy the schema this tool pins.
@pytest.mark.parametrize(
    "name", sorted(p.name for p in REPO.glob("BENCH_*.json"))
)
def test_committed_baselines_validate(name):
    doc, problems = bench_report.load_bench(REPO / name)
    assert problems == []
    family = name.replace("BENCH_", "").replace(".json", "").lower()
    assert doc["schema"] == f"bench-{family}/1"
