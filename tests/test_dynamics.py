"""Tests for the quadrotor dynamics and flight controller."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dynamics import (
    DJI_MATRICE_100,
    FlightController,
    FlightMode,
    Quadrotor,
    VehicleParams,
    VehicleState,
)
from repro.world.geometry import vec


def fly(quad, seconds, dt=0.02, wind=None):
    for _ in range(int(seconds / dt)):
        quad.step(dt, wind=wind)
    return quad.state


class TestVehicleState:
    def test_speed(self):
        s = VehicleState(velocity=vec(3, 4, 0))
        assert s.speed == pytest.approx(5.0)
        assert s.horizontal_speed == pytest.approx(5.0)

    def test_yaw_wrapped(self):
        s = VehicleState(yaw=3 * np.pi)
        assert -np.pi < s.yaw <= np.pi

    def test_copy_is_independent(self):
        s = VehicleState(position=vec(1, 2, 3))
        c = s.copy()
        c.position[0] = 99
        assert s.position[0] == 1

    def test_params_validation(self):
        with pytest.raises(ValueError):
            VehicleParams(mass_kg=-1)
        with pytest.raises(ValueError):
            VehicleParams(max_speed_ms=0)


class TestQuadrotor:
    def test_reaches_commanded_velocity(self):
        quad = Quadrotor()
        quad.command_velocity(vec(3, 0, 0))
        state = fly(quad, 5.0)
        assert state.velocity[0] == pytest.approx(3.0, abs=0.2)

    def test_velocity_command_clamped_to_max_speed(self):
        quad = Quadrotor()
        quad.command_velocity(vec(100, 0, 0))
        assert np.linalg.norm(quad.velocity_command) <= quad.params.max_speed_ms

    def test_acceleration_limited(self):
        quad = Quadrotor()
        quad.command_velocity(vec(10, 0, 0))
        for _ in range(100):
            state = quad.step(0.02)
            accel = np.linalg.norm(state.acceleration)
            assert accel <= quad.params.max_acceleration_ms2 + 1e-6

    def test_vertical_speed_limited(self):
        quad = Quadrotor()
        quad.command_velocity(vec(0, 0, 10))
        state = fly(quad, 3.0)
        assert state.velocity[2] <= quad.params.max_vertical_speed_ms + 1e-9

    def test_hover_command_stops(self):
        quad = Quadrotor()
        quad.command_velocity(vec(5, 0, 0))
        fly(quad, 3.0)
        quad.command_hover()
        state = fly(quad, 4.0)
        assert state.speed < 0.1

    def test_yaw_follows_motion(self):
        quad = Quadrotor()
        quad.command_velocity(vec(0, 3, 0))
        state = fly(quad, 4.0)
        assert state.yaw == pytest.approx(np.pi / 2, abs=0.15)

    def test_explicit_yaw_command(self):
        quad = Quadrotor()
        quad.command_velocity(vec(0, 0, 0), yaw=1.0)
        state = fly(quad, 3.0)
        assert state.yaw == pytest.approx(1.0, abs=0.05)

    def test_rejects_nonpositive_dt(self):
        quad = Quadrotor()
        with pytest.raises(ValueError):
            quad.step(0.0)

    def test_wind_pushes_drone(self):
        quad = Quadrotor()
        quad.command_hover()
        state = fly(quad, 5.0, wind=vec(5, 0, 0))
        # Drag couples the wind into the vehicle: nonzero downwind drift.
        assert state.velocity[0] > 0.01

    def test_stopping_distance(self):
        quad = Quadrotor()
        d = quad.stopping_distance(speed=10.0)
        assert d == pytest.approx(100.0 / (2 * quad.params.max_acceleration_ms2))

    def test_time_advances(self):
        quad = Quadrotor()
        fly(quad, 1.0, dt=0.05)
        assert quad.state.time == pytest.approx(1.0)

    @given(
        vx=st.floats(-5, 5), vy=st.floats(-5, 5), vz=st.floats(-2, 2)
    )
    @settings(max_examples=25, deadline=None)
    def test_converges_to_any_reachable_command(self, vx, vy, vz):
        quad = Quadrotor()
        quad.command_velocity(vec(vx, vy, vz))
        state = fly(quad, 6.0)
        cmd = quad.velocity_command
        assert np.linalg.norm(state.velocity - cmd) < 0.5


class TestFlightController:
    def _sim(self, fc, quad, seconds, dt=0.02):
        for _ in range(int(seconds / dt)):
            fc.update(dt)
            quad.step(dt)

    def test_takeoff_reaches_altitude(self):
        quad = Quadrotor()
        fc = FlightController(quad)
        fc.takeoff(3.0)
        self._sim(fc, quad, 10.0)
        assert quad.state.position[2] == pytest.approx(3.0, abs=0.3)
        assert fc.mode == FlightMode.HOVER

    def test_fly_to_waypoint(self):
        quad = Quadrotor()
        fc = FlightController(quad)
        fc.takeoff(2.0)
        self._sim(fc, quad, 8.0)
        fc.fly_to(vec(10, 5, 2), speed=4.0)
        self._sim(fc, quad, 20.0)
        assert np.linalg.norm(quad.state.position - vec(10, 5, 2)) < 1.0
        assert fc.at_target()

    def test_landing(self):
        quad = Quadrotor()
        fc = FlightController(quad)
        fc.takeoff(3.0)
        self._sim(fc, quad, 10.0)
        fc.land()
        self._sim(fc, quad, 15.0)
        assert fc.mode == FlightMode.LANDED
        assert quad.state.position[2] == pytest.approx(0.0, abs=0.05)

    def test_arming_delays_flight(self):
        quad = Quadrotor()
        fc = FlightController(quad)
        fc.arm(arm_duration=1.0)
        assert fc.mode == FlightMode.ARMING
        self._sim(fc, quad, 2.0)
        assert fc.mode == FlightMode.HOVER

    def test_hover_is_stationary(self):
        quad = Quadrotor()
        fc = FlightController(quad)
        fc.takeoff(2.0)
        self._sim(fc, quad, 8.0)
        p0 = quad.state.position.copy()
        self._sim(fc, quad, 5.0)
        assert np.linalg.norm(quad.state.position - p0) < 0.2

    def test_airborne_flag(self):
        quad = Quadrotor()
        fc = FlightController(quad)
        assert not fc.airborne
        fc.takeoff(2.0)
        assert fc.airborne
        self._sim(fc, quad, 8.0)
        fc.land()
        self._sim(fc, quad, 10.0)
        assert not fc.airborne

    def test_fly_velocity_direct(self):
        quad = Quadrotor()
        fc = FlightController(quad)
        fc.takeoff(2.0)
        self._sim(fc, quad, 8.0)
        fc.fly_velocity(vec(2, 0, 0))
        self._sim(fc, quad, 3.0)
        assert quad.state.velocity[0] == pytest.approx(2.0, abs=0.3)

    def test_approach_slowdown_prevents_overshoot(self):
        quad = Quadrotor()
        fc = FlightController(quad, waypoint_tolerance=0.5)
        fc.takeoff(2.0)
        self._sim(fc, quad, 8.0)
        fc.fly_to(vec(5, 0, 2), speed=10.0)
        max_x = 0.0
        for _ in range(int(20.0 / 0.02)):
            fc.update(0.02)
            quad.step(0.02)
            max_x = max(max_x, quad.state.position[0])
        assert max_x < 6.0
